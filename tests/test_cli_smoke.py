"""Make-free smoke target: run the real ``python -m repro`` entry point.

These tests exercise the packaging path (``__main__`` -> ``cli`` ->
``repro.quant``) in a subprocess, exactly as a user would, so a broken
console entry point or import cycle fails tier-1 rather than only the
published wheel.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _run_repro(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=300, cwd=REPO_ROOT, env=env,
    )


class TestPythonDashMRepro:
    def test_formats_table(self):
        result = _run_repro("formats")
        assert result.returncode == 0, result.stderr
        assert "BBFP(4,2)" in result.stdout
        assert "memory_efficiency" in result.stdout

    def test_quantize_synthetic_tensor(self):
        result = _run_repro("quantize", "--format", "BBFP(4,2)", "--size", "256")
        assert result.returncode == 0, result.stderr
        assert "sqnr_db" in result.stdout
        assert "BBFP(4,2)" in result.stdout

    def test_unknown_format_is_a_clean_usage_error(self):
        result = _run_repro("quantize", "--format", "FANCY13", "--size", "64")
        assert result.returncode != 0
        assert "unknown format" in result.stderr
        assert "Traceback" not in result.stderr
