"""Tests for the result cache and the run manifest."""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.pipeline.cache import ResultCache
from repro.pipeline.manifest import MANIFEST_NAME, RunManifest, TaskRecord


def _result(name="T1"):
    return ExperimentResult(
        experiment_id=name, title="demo", rows=[{"x": 1, "y": 2.5}],
        columns=["x", "y"], notes="n", metadata={"seed": 7},
    )


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.lookup("k" * 64) is None
        cache.store("k" * 64, _result(), name="t1", fast=True)
        loaded = cache.lookup("k" * 64)
        assert loaded.experiment_id == "T1"
        assert loaded.rows == [{"x": 1, "y": 2.5}]
        assert loaded.columns == ["x", "y"]
        assert loaded.metadata == {"seed": 7}
        assert ("k" * 64) in cache

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("abc", _result())
        (tmp_path / "abc.json").write_text("{not json")
        assert cache.lookup("abc") is None

    def test_prune_keeps_only_requested_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("keep", _result())
        cache.store("drop", _result())
        assert cache.prune(keep=["keep"]) == 1
        assert "keep" in cache and "drop" not in cache


class TestRunManifest:
    def test_save_load_round_trip(self, tmp_path):
        manifest = RunManifest(fast=True, jobs=4, code_fingerprint="fp")
        manifest.record(TaskRecord(name="table1", status="completed", wall_time_s=1.5,
                                   worker="pid:7", result_path="r/table1.json"))
        manifest.record(TaskRecord(name="table2", status="failed", error="boom"))
        path = manifest.save(tmp_path / MANIFEST_NAME)

        loaded = RunManifest.load(path)
        assert loaded.fast is True and loaded.jobs == 4
        assert loaded.get("table1").is_done()
        assert loaded.get("table1").wall_time_s == 1.5
        assert not loaded.get("table2").is_done()
        assert loaded.get("table2").error == "boom"

    def test_done_statuses(self):
        for status in ("completed", "cached", "resumed"):
            assert TaskRecord(name="x", status=status).is_done()
        for status in ("pending", "failed", "skipped"):
            assert not TaskRecord(name="x", status=status).is_done()

    def test_try_load_tolerates_missing_and_corrupt(self, tmp_path):
        assert RunManifest.try_load(tmp_path / "nope.json") is None
        (tmp_path / "bad.json").write_text("{")
        assert RunManifest.try_load(tmp_path / "bad.json") is None
