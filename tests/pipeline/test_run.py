"""End-to-end tests of the pipeline orchestration (repro.pipeline.run).

These inject a tiny registry of fake experiment drivers so they exercise the
real cache / manifest / scheduling machinery without training any models.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.reporting import ExperimentResult
from repro.pipeline import MANIFEST_NAME, PipelineError, RunManifest, run_experiments
from repro.pipeline.manifest import TaskRecord


def _make_registry(counters, failing=()):
    """Registry of cheap drivers that count invocations; ``failing`` names raise."""

    def driver(name):
        def run(fast=None):
            counters[name] = counters.get(name, 0) + 1
            if name in failing:
                raise RuntimeError(f"{name} exploded")
            return ExperimentResult(experiment_id=name.title(), title=f"demo {name}",
                                    rows=[{"name": name, "value": counters[name] * 0 + 1.5}])
        return run

    return {name: driver(name) for name in ("alpha", "beta", "gamma")}


class TestRunExperiments:
    def test_runs_all_and_writes_results_and_manifest(self, tmp_path):
        counters = {}
        registry = _make_registry(counters)
        results = run_experiments(output_dir=tmp_path, jobs=1, use_cache=False,
                                  verbose=False, registry=registry)
        assert sorted(results) == ["alpha", "beta", "gamma"]
        assert counters == {"alpha": 1, "beta": 1, "gamma": 1}
        assert (tmp_path / "alpha.json").exists()
        manifest = RunManifest.load(tmp_path / MANIFEST_NAME)
        for name in registry:
            record = manifest.get(name)
            assert record.status == "completed"
            assert record.worker == "main"
            assert record.result_path.endswith(f"{name}.json")

    def test_unknown_experiment_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError, match="unknown experiments"):
            run_experiments(["nope"], output_dir=tmp_path, verbose=False,
                            registry=_make_registry({}))

    def test_parallel_matches_serial(self, tmp_path):
        serial = run_experiments(output_dir=tmp_path / "ser", jobs=1, use_cache=False,
                                 verbose=False, registry=_make_registry({}))
        parallel = run_experiments(output_dir=tmp_path / "par", jobs=3, executor="thread",
                                   use_cache=False, verbose=False,
                                   registry=_make_registry({}))
        assert {n: r.to_dict() for n, r in serial.items()} == \
               {n: r.to_dict() for n, r in parallel.items()}
        for name in serial:
            ser = json.loads((tmp_path / "ser" / f"{name}.json").read_text())
            par = json.loads((tmp_path / "par" / f"{name}.json").read_text())
            assert ser == par


class TestCaching:
    def test_second_run_hits_cache_without_executing(self, tmp_path):
        counters = {}
        registry = _make_registry(counters)
        kwargs = dict(output_dir=tmp_path / "out", cache_dir=tmp_path / "cache",
                      verbose=False, registry=registry)
        first = run_experiments(**kwargs)
        assert counters == {"alpha": 1, "beta": 1, "gamma": 1}
        second = run_experiments(**kwargs)
        assert counters == {"alpha": 1, "beta": 1, "gamma": 1}  # nothing re-ran
        assert {n: r.to_dict() for n, r in first.items()} == \
               {n: r.to_dict() for n, r in second.items()}
        manifest = RunManifest.load(tmp_path / "out" / MANIFEST_NAME)
        assert all(manifest.get(n).status == "cached" for n in registry)
        assert all(manifest.get(n).cache_hit for n in registry)

    def test_config_change_invalidates_cache(self, tmp_path):
        counters = {}
        registry = _make_registry(counters)
        kwargs = dict(output_dir=tmp_path / "out", cache_dir=tmp_path / "cache",
                      verbose=False, registry=registry)
        run_experiments(cache_extra={"seq_len": 128}, **kwargs)
        run_experiments(cache_extra={"seq_len": 128}, **kwargs)
        assert counters == {"alpha": 1, "beta": 1, "gamma": 1}
        run_experiments(cache_extra={"seq_len": 512}, **kwargs)  # config changed
        assert counters == {"alpha": 2, "beta": 2, "gamma": 2}

    def test_fast_flag_is_part_of_the_key(self, tmp_path):
        counters = {}
        registry = _make_registry(counters)
        kwargs = dict(output_dir=tmp_path / "out", cache_dir=tmp_path / "cache",
                      verbose=False, registry=registry)
        run_experiments(fast=True, **kwargs)
        run_experiments(fast=False, **kwargs)
        assert counters == {"alpha": 2, "beta": 2, "gamma": 2}

    def test_no_cache_always_executes(self, tmp_path):
        counters = {}
        registry = _make_registry(counters)
        kwargs = dict(output_dir=tmp_path / "out", cache_dir=tmp_path / "cache",
                      use_cache=False, verbose=False, registry=registry)
        run_experiments(**kwargs)
        run_experiments(**kwargs)
        assert counters == {"alpha": 2, "beta": 2, "gamma": 2}


class TestFailureAndResume:
    def test_failure_is_recorded_and_raises_by_default(self, tmp_path):
        registry = _make_registry({}, failing={"beta"})
        with pytest.raises(PipelineError, match="beta"):
            run_experiments(output_dir=tmp_path, use_cache=False, verbose=False,
                            registry=registry)
        manifest = RunManifest.load(tmp_path / MANIFEST_NAME)
        assert manifest.get("beta").status == "failed"
        assert "exploded" in manifest.get("beta").error
        assert manifest.get("alpha").status == "completed"
        assert manifest.get("gamma").status == "completed"

    def test_resume_after_simulated_failure(self, tmp_path):
        counters = {}
        broken = _make_registry(counters, failing={"beta"})
        results = run_experiments(output_dir=tmp_path, use_cache=False, verbose=False,
                                  registry=broken, raise_on_error=False)
        assert sorted(results) == ["alpha", "gamma"]
        assert counters == {"alpha": 1, "beta": 1, "gamma": 1}

        fixed = _make_registry(counters)  # "beta" no longer raises
        resumed = run_experiments(output_dir=tmp_path, use_cache=False, verbose=False,
                                  registry=fixed, resume=True)
        assert sorted(resumed) == ["alpha", "beta", "gamma"]
        # alpha/gamma were NOT re-executed, only the previously failed beta ran
        assert counters == {"alpha": 1, "beta": 2, "gamma": 1}
        manifest = RunManifest.load(tmp_path / MANIFEST_NAME)
        assert manifest.get("alpha").status == "resumed"
        assert manifest.get("gamma").status == "resumed"
        assert manifest.get("beta").status == "completed"

    def test_failure_chains_the_original_driver_exception(self, tmp_path):
        registry = _make_registry({}, failing={"beta"})
        with pytest.raises(PipelineError) as excinfo:
            run_experiments(output_dir=tmp_path, use_cache=False, verbose=False,
                            registry=registry)
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert "beta exploded" in str(excinfo.value.__cause__)

    def test_resume_rejects_manifest_from_a_different_fast_mode(self, tmp_path):
        counters = {}
        registry = _make_registry(counters)
        run_experiments(fast=True, output_dir=tmp_path, use_cache=False, verbose=False,
                        registry=registry)
        run_experiments(fast=False, output_dir=tmp_path, use_cache=False, verbose=False,
                        registry=registry, resume=True)
        # the fast=True manifest must not satisfy a fast=False resume
        assert counters == {"alpha": 2, "beta": 2, "gamma": 2}

    def test_resume_rejects_manifest_from_a_different_source_tree(self, tmp_path, monkeypatch):
        counters = {}
        registry = _make_registry(counters)
        run_experiments(output_dir=tmp_path, use_cache=False, verbose=False,
                        registry=registry)
        monkeypatch.setattr("repro.pipeline.run.code_fingerprint", lambda *a: "different-tree")
        run_experiments(output_dir=tmp_path, use_cache=False, verbose=False,
                        registry=registry, resume=True)
        assert counters == {"alpha": 2, "beta": 2, "gamma": 2}

    def test_resume_reruns_experiments_with_corrupt_result_files(self, tmp_path):
        counters = {}
        registry = _make_registry(counters)
        run_experiments(output_dir=tmp_path, use_cache=False, verbose=False,
                        registry=registry)
        (tmp_path / "alpha.json").write_text("{torn mid-write")  # simulate a killed writer
        resumed = run_experiments(output_dir=tmp_path, use_cache=False, verbose=False,
                                  registry=registry, resume=True)
        assert counters == {"alpha": 2, "beta": 1, "gamma": 1}
        assert resumed["alpha"].rows  # the re-run produced a fresh, loadable result

    def test_resume_ignores_stale_records_with_missing_files(self, tmp_path):
        counters = {}
        registry = _make_registry(counters)
        manifest = RunManifest()
        manifest.record(TaskRecord(name="alpha", status="completed",
                                   result_path=str(tmp_path / "gone.json")))
        manifest.save(tmp_path / MANIFEST_NAME)
        run_experiments(["alpha"], output_dir=tmp_path, use_cache=False, verbose=False,
                        registry=registry, resume=True)
        assert counters == {"alpha": 1}  # stale manifest entry did not suppress the run


class TestZooStage:
    def test_model_deps_become_shared_upstream_tasks(self, tmp_path, monkeypatch):
        trained = []
        monkeypatch.setattr("repro.pipeline.run._train_model_worker",
                            lambda name, fast: trained.append(name))
        order = []
        registry = {
            "exp1": lambda fast=None: (order.append("exp1"),
                                       ExperimentResult("Exp1", "t", [{"v": 1}]))[1],
            "exp2": lambda fast=None: (order.append("exp2"),
                                       ExperimentResult("Exp2", "t", [{"v": 1}]))[1],
        }
        deps = {"exp1": ("Llama-7B",), "exp2": ("Llama-7B", "OPT-6.7B")}
        run_experiments(output_dir=tmp_path, use_cache=False, verbose=False,
                        registry=registry, model_deps=lambda name, fast: deps[name])
        # each model trained exactly once even though Llama-7B is needed twice
        assert sorted(trained) == ["Llama-7B", "OPT-6.7B"]
        assert order == ["exp1", "exp2"]


    def test_failed_zoo_stage_surfaces_its_error(self, tmp_path, monkeypatch):
        def broken_trainer(name, fast):
            raise OSError(f"disk full while writing {name}")

        monkeypatch.setattr("repro.pipeline.run._train_model_worker", broken_trainer)
        registry = {"exp1": lambda fast=None: ExperimentResult("Exp1", "t", [{"v": 1}])}
        with pytest.raises(PipelineError) as excinfo:
            run_experiments(output_dir=tmp_path, use_cache=False, verbose=False,
                            registry=registry,
                            model_deps=lambda name, fast: ("Llama-7B",))
        # the training error is both chained and recorded, not swallowed
        assert isinstance(excinfo.value.__cause__, OSError)
        assert "disk full" in str(excinfo.value.__cause__)
        manifest = RunManifest.load(tmp_path / MANIFEST_NAME)
        assert manifest.get("zoo:Llama-7B").status == "failed"
        assert "disk full" in manifest.get("zoo:Llama-7B").error
        assert manifest.get("exp1").status == "skipped"


class TestExperimentModelSpecs:
    def test_dependency_declarations_mirror_the_drivers(self):
        from repro.experiments.common import experiment_model_specs

        assert experiment_model_specs("table1", fast=True) == ()
        assert experiment_model_specs("fig1a", fast=True) == ("OPT-6.7B",)
        assert len(experiment_model_specs("table2", fast=True)) == 4
        assert len(experiment_model_specs("table2", fast=False)) == 12
        assert experiment_model_specs("table4", fast=True) == ("Llama-7B",)
        assert len(experiment_model_specs("fig8", fast=False)) == 12
        assert experiment_model_specs("ext_mixed_precision", fast=True) == ("Llama-1B",)

    def test_single_model_declarations_match_the_driver_defaults(self):
        """The scheduler's zoo deps must name the checkpoints the drivers load.

        Multi-model experiments share ``common.*_model_specs`` helpers with
        their drivers, so they cannot drift; the single-model experiments use
        the drivers' ``model_name`` keyword defaults, pinned here.
        """
        import inspect

        from repro.experiments import extensions, fig1_distribution, fig3_shared_exponent, fig4_overlap
        from repro.experiments.common import experiment_model_specs

        def default_model(fn):
            return inspect.signature(fn).parameters["model_name"].default

        for fast in (True, False):
            assert experiment_model_specs("fig1a", fast) == (default_model(fig1_distribution.run),)
            assert experiment_model_specs("fig3", fast) == (default_model(fig3_shared_exponent.run),)
            assert experiment_model_specs("fig4", fast) == (default_model(fig4_overlap.run),)
            assert experiment_model_specs("ext_mixed_precision", fast) == (
                default_model(extensions.mixed_precision_extension),)
