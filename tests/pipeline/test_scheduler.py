"""Tests for the dependency-aware scheduler (repro.pipeline.scheduler)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.pipeline.scheduler import DependencyError, Task, run_tasks, topological_order


def _graph(edges):
    """Build ``{name: Task}`` from ``{name: deps}`` with no-op callables."""
    return {name: Task(name=name, fn=lambda: None, deps=tuple(deps))
            for name, deps in edges.items()}


class TestTopologicalOrder:
    def test_dependencies_come_first(self):
        order = topological_order(_graph({"c": ("b",), "b": ("a",), "a": ()}))
        assert order.index("a") < order.index("b") < order.index("c")

    def test_stable_in_insertion_order_for_independent_tasks(self):
        assert topological_order(_graph({"x": (), "y": (), "z": ()})) == ["x", "y", "z"]

    def test_unknown_dependency_raises(self):
        with pytest.raises(DependencyError, match="unknown task"):
            topological_order(_graph({"a": ("ghost",)}))

    def test_cycle_raises(self):
        with pytest.raises(DependencyError, match="cycle"):
            topological_order(_graph({"a": ("b",), "b": ("a",)}))


class TestInlineExecution:
    def test_runs_in_dependency_order_and_passes_results(self):
        calls = []
        tasks = {
            "train": Task(name="train", fn=lambda: calls.append("train"), deps=()),
            "eval": Task(name="eval", fn=lambda: calls.append("eval"), deps=("train",)),
        }
        outcomes = run_tasks(tasks, jobs=1)
        assert calls == ["train", "eval"]
        assert all(o.status == "completed" for o in outcomes.values())
        assert outcomes["train"].worker == "main"

    def test_failure_skips_dependents_but_not_siblings(self):
        calls = []

        def boom():
            raise RuntimeError("bad stage")

        tasks = {
            "bad": Task(name="bad", fn=boom),
            "child": Task(name="child", fn=lambda: calls.append("child"), deps=("bad",)),
            "grandchild": Task(name="grandchild", fn=lambda: calls.append("gc"),
                               deps=("child",)),
            "independent": Task(name="independent", fn=lambda: calls.append("ind")),
        }
        outcomes = run_tasks(tasks, jobs=1)
        assert outcomes["bad"].status == "failed"
        assert "bad stage" in outcomes["bad"].error
        assert outcomes["child"].status == "skipped"
        assert outcomes["grandchild"].status == "skipped"
        assert outcomes["independent"].status == "completed"
        assert calls == ["ind"]

    def test_on_complete_sees_every_task_once(self):
        seen = []
        tasks = _graph({"a": (), "b": ("a",)})
        run_tasks(tasks, jobs=1, on_complete=lambda o: seen.append(o.name))
        assert sorted(seen) == ["a", "b"]


class TestThreadExecution:
    def test_dependency_completes_before_dependent_starts(self):
        events = {}
        lock = threading.Lock()

        def stamp(name, delay):
            with lock:
                events[f"{name}:start"] = time.monotonic()
            time.sleep(delay)
            with lock:
                events[f"{name}:end"] = time.monotonic()

        tasks = {
            "up": Task(name="up", fn=stamp, args=("up", 0.05)),
            "down": Task(name="down", fn=stamp, args=("down", 0.0), deps=("up",)),
            "side": Task(name="side", fn=stamp, args=("side", 0.0)),
        }
        outcomes = run_tasks(tasks, jobs=2, executor="thread")
        assert all(o.status == "completed" for o in outcomes.values())
        assert events["up:end"] <= events["down:start"]

    def test_independent_tasks_overlap(self):
        barrier = threading.Barrier(2, timeout=5)
        tasks = {
            "a": Task(name="a", fn=barrier.wait),
            "b": Task(name="b", fn=barrier.wait),
        }
        # both tasks must be in flight at once to pass the barrier
        outcomes = run_tasks(tasks, jobs=2, executor="thread")
        assert all(o.status == "completed" for o in outcomes.values())

    def test_failure_skips_dependents(self):
        def boom():
            raise ValueError("nope")

        tasks = {
            "bad": Task(name="bad", fn=boom),
            "child": Task(name="child", fn=lambda: None, deps=("bad",)),
            "ok": Task(name="ok", fn=lambda: 42),
        }
        outcomes = run_tasks(tasks, jobs=2, executor="thread")
        assert outcomes["bad"].status == "failed"
        assert outcomes["child"].status == "skipped"
        assert outcomes["ok"].status == "completed"
        assert outcomes["ok"].result == 42


def _square(x):
    return x * x


class TestProcessExecution:
    def test_results_come_back_from_worker_processes(self):
        tasks = {
            "a": Task(name="a", fn=_square, args=(3,)),
            "b": Task(name="b", fn=_square, args=(4,)),
        }
        outcomes = run_tasks(tasks, jobs=2, executor="process")
        assert outcomes["a"].result == 9
        assert outcomes["b"].result == 16
        assert all(o.worker.startswith("pid:") for o in outcomes.values())

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_tasks(_graph({"a": ()}), jobs=2, executor="carrier-pigeon")
