"""Tests for content fingerprints and cache keys (repro.pipeline.fingerprint)."""

from __future__ import annotations

from repro.pipeline.fingerprint import (
    clear_fingerprint_cache,
    code_fingerprint,
    experiment_cache_key,
    fingerprint_paths,
)


def _tree(tmp_path, files):
    for name, content in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    return sorted(tmp_path.rglob("*.py"))


class TestFingerprintPaths:
    def test_deterministic_and_order_independent(self, tmp_path):
        files = _tree(tmp_path, {"a.py": "x = 1\n", "b.py": "y = 2\n"})
        fp = fingerprint_paths(files, root=tmp_path)
        assert fp == fingerprint_paths(list(reversed(files)), root=tmp_path)
        assert len(fp) == 64

    def test_changes_when_content_changes(self, tmp_path):
        files = _tree(tmp_path, {"a.py": "x = 1\n"})
        before = fingerprint_paths(files, root=tmp_path)
        (tmp_path / "a.py").write_text("x = 2\n")
        assert fingerprint_paths(files, root=tmp_path) != before

    def test_changes_when_file_renamed(self, tmp_path):
        before = fingerprint_paths(_tree(tmp_path, {"a.py": "x = 1\n"}), root=tmp_path)
        (tmp_path / "a.py").rename(tmp_path / "b.py")
        after = fingerprint_paths(sorted(tmp_path.rglob("*.py")), root=tmp_path)
        assert after != before


class TestCodeFingerprint:
    def test_covers_the_repro_package_and_memoizes(self):
        assert code_fingerprint() == code_fingerprint()

    def test_tracks_source_edits(self, tmp_path):
        _tree(tmp_path, {"pkg/mod.py": "a = 1\n"})
        first = code_fingerprint(tmp_path)
        clear_fingerprint_cache()
        (tmp_path / "pkg" / "mod.py").write_text("a = 2\n")
        assert code_fingerprint(tmp_path) != first
        clear_fingerprint_cache()


class TestExperimentCacheKey:
    def test_stable_for_identical_inputs(self):
        assert (experiment_cache_key("table1", True, "fp") ==
                experiment_cache_key("table1", True, "fp"))

    def test_varies_with_every_ingredient(self):
        base = experiment_cache_key("table1", True, "fp")
        assert experiment_cache_key("table2", True, "fp") != base
        assert experiment_cache_key("table1", False, "fp") != base
        assert experiment_cache_key("table1", True, "other") != base
        assert experiment_cache_key("table1", True, "fp", extra={"models": ["a"]}) != base

    def test_extra_dict_ordering_is_irrelevant(self):
        assert (experiment_cache_key("t", True, "fp", extra={"a": 1, "b": 2}) ==
                experiment_cache_key("t", True, "fp", extra={"b": 2, "a": 1}))
