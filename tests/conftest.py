"""Shared fixtures: deterministic RNG, a small corpus and a tiny trained model.

The heavier fixtures are session-scoped so the cost of training the tiny
reference model (a couple of seconds) is paid once per test run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm.config import ModelConfig
from repro.llm.dataset import CorpusConfig, SyntheticCorpus
from repro.llm.inference import InferenceModel
from repro.llm.outliers import LLAMA_PROFILE, inject_outliers
from repro.llm.training import TrainingConfig, train_model


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the pipeline's result cache at a per-test directory.

    Without this, a test running ``repro run`` (directly or through the CLI)
    would read and write the repository's ``.cache/results/``: stale entries
    from a developer's earlier run could mask a driver regression.
    """
    monkeypatch.setenv("REPRO_RESULT_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def outlier_tensor(rng):
    """A 1-D tensor with injected outliers — the typical LLM activation shape."""
    x = rng.standard_normal(2048)
    x[::128] *= 30.0
    return x


@pytest.fixture(scope="session")
def small_corpus():
    return SyntheticCorpus(CorpusConfig(num_sentences=500, seed=7))


@pytest.fixture(scope="session")
def tiny_model_config(small_corpus):
    return ModelConfig(
        name="tiny-llama",
        vocab_size=small_corpus.vocab_size,
        d_model=32,
        n_heads=4,
        n_layers=2,
        d_ff=64,
        max_seq_len=64,
        arch="llama",
        seed=3,
    )


@pytest.fixture(scope="session")
def tiny_opt_config(small_corpus):
    return ModelConfig(
        name="tiny-opt",
        vocab_size=small_corpus.vocab_size,
        d_model=32,
        n_heads=4,
        n_layers=2,
        d_ff=64,
        max_seq_len=64,
        arch="opt",
        seed=4,
    )


@pytest.fixture(scope="session")
def tiny_training_result(tiny_model_config, small_corpus):
    return train_model(
        tiny_model_config,
        small_corpus,
        TrainingConfig(steps=60, batch_size=4, seq_len=32, eval_every=0, seed=0),
    )


@pytest.fixture(scope="session")
def tiny_state_dict(tiny_training_result, tiny_model_config):
    return inject_outliers(tiny_model_config, tiny_training_result.state_dict, LLAMA_PROFILE)


@pytest.fixture
def tiny_inference_model(tiny_model_config, tiny_state_dict):
    return InferenceModel(tiny_model_config, tiny_state_dict)
