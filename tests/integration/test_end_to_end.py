"""Integration tests spanning the core formats, the LLM substrate and the hardware models."""

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, AcceleratorSimulator, decoder_workload
from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.core.overlap_search import select_overlap_width
from repro.hardware.pe import pe_for_strategy
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import EvalConfig, evaluate_perplexity, perplexity_table
from repro.nonlinear.lut import lut_function, lut_softmax
from repro.nonlinear.unit import NonlinearUnit

_EVAL = EvalConfig(batch_size=2, seq_len=24, max_batches=2)


class TestLinearQuantisationPipeline:
    def test_table2_style_ordering_on_tiny_model(self, tiny_inference_model, small_corpus):
        """End-to-end: the Table II orderings hold on a freshly trained model."""
        schemes = [
            QuantizationScheme.fp16(),
            QuantizationScheme.from_format(BFPConfig(6)),
            QuantizationScheme.from_format(BFPConfig(4)),
            QuantizationScheme.from_format(BBFPConfig(4, 2)),
            QuantizationScheme.from_format(BBFPConfig(6, 3)),
        ]
        ppl = perplexity_table(tiny_inference_model, small_corpus, schemes, _EVAL)
        assert ppl["BBFP(6,3)"] <= ppl["BFP4"]
        assert ppl["BBFP(4,2)"] <= ppl["BFP4"] * 1.02
        assert ppl["BBFP(6,3)"] <= ppl["FP16"] * 1.05

    def test_nonlinear_pipeline_bbfp_tracks_fp(self, tiny_inference_model, small_corpus):
        """End-to-end Table IV behaviour on the tiny model."""
        fp_ppl = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        unit_scheme = QuantizationScheme.fp_reference().with_nonlinear(
            softmax_fn=lut_softmax(BBFPConfig(10, 5)),
            nonlinear_fn=lut_function(BBFPConfig(10, 5)),
        )
        tiny_inference_model.set_scheme(unit_scheme)
        bbfp_ppl = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        bfp_scheme = QuantizationScheme.fp_reference().with_nonlinear(
            softmax_fn=lut_softmax(BFPConfig(10)),
            nonlinear_fn=lut_function(BFPConfig(10)),
        )
        tiny_inference_model.set_scheme(bfp_scheme)
        bfp_ppl = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        tiny_inference_model.set_scheme(QuantizationScheme.fp_reference())
        assert bbfp_ppl <= fp_ppl * 1.1
        assert bfp_ppl >= bbfp_ppl

    def test_algorithm1_with_real_ppl_and_hardware(self, tiny_inference_model, small_corpus):
        """Algorithm 1 wired to the real perplexity evaluator and the real PE cost model."""

        def ppl_fn(config):
            tiny_inference_model.set_scheme(QuantizationScheme.from_format(config))
            return evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)

        result = select_overlap_width(
            mantissa_bits=4,
            ppl_fn=ppl_fn,
            overhead_fn=lambda config: pe_for_strategy(config).area_um2(),
            overhead_weight=0.5,
        )
        tiny_inference_model.set_scheme(QuantizationScheme.fp_reference())
        assert 0 <= result.best_overlap < 4
        assert len(result.candidates) == 4
        # Overhead decreases monotonically with wider overlap (narrower datapath).
        overheads = [c.overhead for c in result.candidates]
        assert overheads == sorted(overheads, reverse=True)


class TestAcceleratorPipeline:
    def test_model_config_drives_simulator(self, tiny_model_config):
        workload = decoder_workload(tiny_model_config, 32, phase="prefill")
        config = AcceleratorConfig(strategy=BBFPConfig(4, 2), pe_rows=8, pe_cols=8)
        report = AcceleratorSimulator(config).run(workload)
        assert report.total_macs == workload.total_macs
        assert report.energy.total_j > 0

    def test_iso_area_and_accuracy_tradeoff(self, tiny_inference_model, small_corpus):
        """Fig. 8 in miniature: BBFP(3,1) is at least as accurate as BFP4 and has a smaller PE."""
        tiny_inference_model.set_scheme(QuantizationScheme.from_format(BBFPConfig(3, 1)))
        bbfp_ppl = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        tiny_inference_model.set_scheme(QuantizationScheme.from_format(BFPConfig(4)))
        bfp_ppl = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        tiny_inference_model.set_scheme(QuantizationScheme.fp_reference())
        assert bbfp_ppl <= bfp_ppl * 1.1
        assert pe_for_strategy(BBFPConfig(3, 1)).area_um2() < pe_for_strategy(BFPConfig(4)).area_um2()

    def test_nonlinear_unit_cost_consistent_with_simulator(self, tiny_model_config):
        unit_cost = NonlinearUnit().cost()
        workload = decoder_workload(tiny_model_config, 32, phase="prefill")
        config = AcceleratorConfig(strategy=BBFPConfig(4, 2), pe_rows=8, pe_cols=8)
        report = AcceleratorSimulator(config).run(workload)
        softmax_ops = [op for op in workload.nonlinears if op.kind == "softmax"]
        assert report.nonlinear_cycles >= unit_cost.latency_cycles(softmax_ops[0].vector_length)


class TestNumericalConsistency:
    def test_scheme_matmul_equals_core_matmul(self, rng):
        """The inference-path fake quantisation equals the core bbfp_matmul semantics."""
        from repro.core.dotproduct import bbfp_matmul

        config = BBFPConfig(4, 2)
        scheme = QuantizationScheme.from_format(config)
        x = rng.standard_normal((6, 64))
        w = rng.standard_normal((64, 5))
        via_scheme = scheme.activation_fn("layer", x) @ scheme.weight_fn("layer", w)
        via_core = bbfp_matmul(x, w, config)
        assert np.allclose(via_scheme, via_core)
