"""Cross-module integration tests for the extension subsystems.

These exercise the new pieces *together* — formats through the inference path,
the bit-level datapath against the quantised matmul, the tiling scheduler
against the simulator's traffic accounting, and the mixed-precision result
plugged back into end-to-end evaluation — mirroring how a downstream user
would chain them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.dataflow import compare_dataflows
from repro.accelerator.roofline import analyze_workload
from repro.accelerator.scheduling import best_tiling
from repro.accelerator.simulator import AcceleratorSimulator
from repro.accelerator.workloads import decoder_workload
from repro.baselines.gptq import GPTQConfig, build_gptq_scheme
from repro.core.bbfp import BBFPConfig, quantize_bbfp
from repro.core.bie import BiEConfig
from repro.core.microscaling import MXFP8
from repro.hardware.datapath import MACDatapath
from repro.llm.generation import GenerationConfig, generate_tokens
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import EvalConfig, evaluate_perplexity
from repro.search.mixed_precision import greedy_mixed_precision_search

_EVAL = EvalConfig(batch_size=2, seq_len=24, max_batches=2)


class TestExtensionFormatsThroughInference:
    def test_bie_and_mx_track_the_fp_reference_on_the_tiny_model(
        self, tiny_inference_model, small_corpus
    ):
        tiny_inference_model.set_scheme(QuantizationScheme.fp_reference())
        reference = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        results = {}
        for config in (BiEConfig(6), MXFP8, BBFPConfig(6, 3)):
            tiny_inference_model.set_scheme(QuantizationScheme.from_format(config))
            results[config.name] = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        tiny_inference_model.set_scheme(QuantizationScheme.fp_reference())
        for name, ppl in results.items():
            assert ppl <= reference * 1.10, name

    def test_gptq_scheme_supports_generation(self, tiny_inference_model, small_corpus):
        scheme = build_gptq_scheme(tiny_inference_model, small_corpus, GPTQConfig(weight_bits=4))
        tiny_inference_model.set_scheme(scheme)
        tokens = generate_tokens(tiny_inference_model, [1, 2, 3],
                                 GenerationConfig(max_new_tokens=12))
        tiny_inference_model.set_scheme(QuantizationScheme.fp_reference())
        assert tokens.size == 15
        assert tokens.max() < tiny_inference_model.config.vocab_size


class TestDatapathAgainstQuantisedMatmul:
    def test_bit_level_mac_reproduces_a_quantised_linear_layer_output(self, rng):
        """One output element of x @ w computed by the gate-level datapath equals
        the dequantised math the inference path uses."""
        config = BBFPConfig(4, 2)
        x = rng.standard_normal(64)
        w_column = rng.standard_normal(64)
        xq = quantize_bbfp(x, config)
        wq = quantize_bbfp(w_column, config)
        datapath = MACDatapath(config)
        bit_level = float(datapath.block_dot(xq, wq).sum())
        dequantised = float(np.dot(xq.dequantize(), wq.dequantize()))
        assert bit_level == pytest.approx(dequantised, rel=1e-12)


class TestSchedulerSimulatorConsistency:
    def _workload(self):
        from repro.llm.config import ModelConfig

        dims = ModelConfig(name="sched-check", vocab_size=64, d_model=256, n_heads=4,
                           n_layers=1, d_ff=512, max_seq_len=512, arch="llama")
        return decoder_workload(dims, seq_len=128, phase="prefill")

    def test_tiled_traffic_never_below_simulator_compulsory_traffic(self):
        """The simulator charges compulsory (stream-once) DRAM traffic; any legal
        tiling must move at least that much."""
        config = AcceleratorConfig(strategy=BBFPConfig(4, 2), pe_rows=16, pe_cols=16)
        simulator = AcceleratorSimulator(config)
        for op in self._workload().matmuls:
            compulsory = simulator._matmul_traffic_bytes(op)["dram"]
            assert best_tiling(op, config).dram_bytes >= compulsory - 1e-6

    def test_roofline_and_dataflow_account_the_same_macs(self):
        config = AcceleratorConfig(strategy=BBFPConfig(4, 2), pe_rows=32, pe_cols=32)
        workload = self._workload()
        roofline_macs = sum(a.macs for a in analyze_workload(config, workload))
        assert roofline_macs == workload.total_macs
        for op in workload.matmuls:
            for row in compare_dataflows(op):
                assert row["cycles"] > 0  # every dataflow produces a schedule for every GEMM


class TestMixedPrecisionEndToEnd:
    def test_search_result_scheme_reproduces_measured_perplexity(
        self, tiny_inference_model, small_corpus
    ):
        candidates = [BBFPConfig(6, 3), BBFPConfig(3, 1)]
        result = greedy_mixed_precision_search(
            tiny_inference_model, small_corpus, candidates,
            ppl_budget_ratio=1.2, eval_config=_EVAL,
        )
        tiny_inference_model.set_scheme(result.scheme)
        replayed = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        tiny_inference_model.set_scheme(QuantizationScheme.fp_reference())
        assert replayed == pytest.approx(result.perplexity, rel=1e-9)
