"""Gateway telemetry over real sockets: /metrics, /stats fields, access log."""

from __future__ import annotations

import asyncio
import json

from repro.gateway.driver import Gateway, GatewayConfig
from repro.gateway.loadgen import _read_http_head
from repro.gateway.server import GatewayServer
from repro.obs import Observability
from repro.serve.engine import EngineConfig, ServeEngine, WallClock


def make_server(model, obs=None, max_batch_size=2, **gateway_kwargs):
    engine = ServeEngine(model, EngineConfig(max_batch_size=max_batch_size,
                                             kv_page_size=4),
                         clock=WallClock(), obs=obs)
    gateway = Gateway(engine, GatewayConfig(drain_timeout_s=5.0, **gateway_kwargs))
    return GatewayServer(gateway, port=0)


async def fetch(host, port, path, body=None):
    """One request; returns (status, headers, raw body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        if body is None:
            writer.write(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
        else:
            writer.write((f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
                          f"Content-Type: application/json\r\n"
                          f"Content-Length: {len(body)}\r\n\r\n").encode() + body)
        await writer.drain()
        status, headers = await _read_http_head(reader)
        raw = await reader.read()
        length = headers.get("content-length")
        if length is not None:
            raw = raw[:int(length)]
        return status, headers, raw
    finally:
        writer.close()


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into {series_line_name: value}; checks shape."""
    series = {}
    types = {}
    for line in text.splitlines():
        assert line == line.strip()
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in ("counter", "gauge", "histogram"), line
            types[name] = kind
        elif line.startswith("# HELP ") or not line:
            continue
        else:
            name_part, _, value = line.rpartition(" ")
            series[name_part] = float(value)
    return {"series": series, "types": types}


#: The exact /stats payload contract (satellite: field-set pinned).
STATS_FIELDS = {
    "draining", "queue_depth", "num_active", "projected_load", "token_budget",
    "kv_pages_in_use", "kv_hit_rate", "reused_tokens", "peak_pages_in_use",
    "sessions", "submitted", "completed", "shed", "cancelled", "timed_out",
}


class TestStatsFields:
    def test_stats_payload_is_exactly_the_documented_field_set(
            self, tiny_inference_model):
        async def scenario():
            server = make_server(tiny_inference_model)
            await server.start()
            body = json.dumps({"prompt_tokens": [1, 2, 3, 4],
                               "max_new_tokens": 4}).encode()
            await fetch(server.host, server.port, "/v1/generate", body)
            status, _headers, raw = await fetch(server.host, server.port, "/stats")
            await server.shutdown()
            return status, json.loads(raw)

        status, stats = asyncio.run(scenario())
        assert status == 200
        assert set(stats) == STATS_FIELDS
        assert stats["submitted"] == 1
        assert stats["completed"] == 1
        assert isinstance(stats["reused_tokens"], int)
        assert isinstance(stats["peak_pages_in_use"], int)
        assert stats["peak_pages_in_use"] > 0

    def test_drain_report_adds_only_the_audit_fields(self, tiny_inference_model):
        async def scenario():
            server = make_server(tiny_inference_model)
            await server.start()
            return await server.shutdown()

        report = asyncio.run(scenario())
        assert set(report) == STATS_FIELDS | {"kv_audit", "kv_leaked_pages"}
        assert report["kv_leaked_pages"] == 0


class TestMetricsEndpoint:
    def test_metrics_scrape_covers_sessions_sheds_cancels_and_kv(
            self, tiny_inference_model):
        async def scenario():
            # one decode slot + a 1-deep queue: while the streaming request
            # holds the slot, the first follow-up queues and the rest shed
            server = make_server(tiny_inference_model,
                                 obs=Observability.enabled(),
                                 max_batch_size=1, max_queue_depth=1)
            await server.start()
            host, port = server.host, server.port
            stream = json.dumps({"prompt_tokens": [1, 2, 3, 4],
                                 "max_new_tokens": 32, "stream": True}).encode()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((f"POST /v1/generate HTTP/1.1\r\nHost: {host}\r\n"
                          f"Content-Type: application/json\r\n"
                          f"Content-Length: {len(stream)}\r\n\r\n").encode()
                         + stream)
            await writer.drain()
            await _read_http_head(reader)
            await reader.readuntil(b"\n\n")     # the engine accepted the stream
            generate = json.dumps({"prompt_tokens": [1, 2, 3, 4],
                                   "max_new_tokens": 4}).encode()
            results = await asyncio.gather(*(
                fetch(host, port, "/v1/generate", generate) for _ in range(3)))
            statuses = sorted(result[0] for result in results)
            await reader.read()                 # drain the stream to its end
            writer.close()
            status, headers, raw = await fetch(host, port, "/metrics")
            await server.shutdown()
            return statuses, status, headers, raw.decode()

        statuses, status, headers, text = asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"] == "text/plain; version=0.0.4; charset=utf-8"
        assert statuses[0] == 200 and statuses[-1] == 429
        parsed = parse_prometheus(text)
        series, types = parsed["series"], parsed["types"]
        assert types["gateway_submitted_total"] == "counter"
        assert series["gateway_submitted_total"] == 4   # stream + 3 follow-ups
        assert series["gateway_shed_total"] == statuses.count(429)
        assert series["gateway_completed_total"] >= 2   # stream + queued one
        assert "gateway_cancelled_total" in series
        assert types["engine_kv_pages_in_use"] == "gauge"
        assert types["engine_ttft_seconds"] == "histogram"
        assert series['engine_ttft_seconds_bucket{le="+Inf"}'] >= 2
        # one registry serves both layers' series in a single scrape
        assert series["engine_decode_tokens_total"] > 0

    def test_disabled_observability_scrapes_empty_but_valid(
            self, tiny_inference_model):
        async def scenario():
            server = make_server(tiny_inference_model)    # obs=None: disabled
            await server.start()
            status, _headers, raw = await fetch(server.host, server.port,
                                                "/metrics")
            await server.shutdown()
            return status, raw

        status, raw = asyncio.run(scenario())
        assert status == 200
        assert raw == b""

    def test_cancel_increments_both_counter_surfaces(self, tiny_inference_model):
        async def scenario():
            obs = Observability.enabled()
            server = make_server(tiny_inference_model, obs=obs)
            await server.start()
            host, port = server.host, server.port
            stream = json.dumps({"prompt_tokens": [1, 2, 3, 4],
                                 "max_new_tokens": 32, "stream": True}).encode()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((f"POST /v1/generate HTTP/1.1\r\nHost: {host}\r\n"
                          f"Content-Type: application/json\r\n"
                          f"Content-Length: {len(stream)}\r\n\r\n").encode()
                         + stream)
            await writer.drain()
            await _read_http_head(reader)
            accepted = await reader.readuntil(b"\n\n")
            request_id = json.loads(
                accepted.split(b"data: ")[1].split(b"\n")[0])["request_id"]
            await fetch(host, port, f"/v1/cancel/{request_id}", b"")
            writer.close()
            _status, _headers, raw = await fetch(host, port, "/metrics")
            stats = server.gateway.stats()
            await server.shutdown()
            return raw.decode(), stats

        text, stats = asyncio.run(scenario())
        series = parse_prometheus(text)["series"]
        assert series["gateway_cancelled_total"] == 1
        assert stats["cancelled"] == 1      # plain dict counters stay in sync


class TestAccessLog:
    def test_one_json_line_per_request(self, tiny_inference_model):
        lines = []

        async def scenario():
            engine = ServeEngine(tiny_inference_model,
                                 EngineConfig(max_batch_size=2, kv_page_size=4),
                                 clock=WallClock())
            gateway = Gateway(engine, GatewayConfig(drain_timeout_s=5.0))
            server = GatewayServer(gateway, port=0, access_log=lines.append)
            await server.start()
            await fetch(server.host, server.port, "/healthz")
            await fetch(server.host, server.port, "/nope")
            body = json.dumps({"prompt_tokens": [1, 2, 3],
                               "max_new_tokens": 3}).encode()
            await fetch(server.host, server.port, "/v1/generate", body)
            await server.shutdown()

        asyncio.run(scenario())
        entries = [json.loads(line) for line in lines]
        assert [(e["method"], e["path"], e["status"]) for e in entries] == [
            ("GET", "/healthz", 200),
            ("GET", "/nope", 404),
            ("POST", "/v1/generate", 200),
        ]
        for entry in entries:
            assert set(entry) == {"event", "method", "path", "status",
                                  "duration_ms"}
            assert entry["event"] == "http_access"
            assert entry["duration_ms"] >= 0

    def test_no_log_callable_means_no_logging(self, tiny_inference_model):
        async def scenario():
            server = make_server(tiny_inference_model)
            await server.start()
            status, _headers, _raw = await fetch(server.host, server.port,
                                                 "/healthz")
            await server.shutdown()
            return status

        assert asyncio.run(scenario()) == 200
