"""The gateway_bench driver: sweep rows, leak enforcement, catalog and CLI wiring."""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.gateway.bench import (
    default_gateway_config,
    default_gateway_workload,
    default_rates,
    gateway_model_name,
    gateway_sweep,
)
from repro.gateway.driver import GatewayConfig
from repro.serve.engine import EngineConfig
from repro.serve.workload import WorkloadConfig

REPO_ROOT = Path(__file__).resolve().parents[2]

ROW_KEYS = ("arrival_rate", "requests", "completed", "shed", "cancelled",
            "errors", "goodput_rps", "shed_rate", "ttft_p50_ms", "ttft_p95_ms",
            "itl_p50_ms", "itl_p95_ms", "cancel_reclaim_p50_ms",
            "kv_leaked_pages", "server_shed", "server_completed")


class TestDefaults:
    def test_model_names_track_the_mode(self):
        assert gateway_model_name(True) == "Llama-1B"
        assert gateway_model_name(False) == "Llama-7B"

    def test_rate_grids_are_sorted_for_knee_detection(self):
        for fast in (True, False):
            rates = default_rates(fast)
            assert list(rates) == sorted(rates)

    def test_default_shapes_construct(self):
        assert default_gateway_workload(True).num_requests == 12
        assert default_gateway_config(True).max_queue_depth == 6
        assert default_gateway_config(False, "drop_oldest").shed_policy == \
            "drop_oldest"


class TestSweep:
    def test_two_rate_sweep_produces_full_rows_without_leaks(
            self, tiny_inference_model):
        rows = asyncio.run(gateway_sweep(
            tiny_inference_model,
            rates=(50.0, 200.0),
            workload=WorkloadConfig(num_requests=6, arrival_rate=50.0,
                                    prompt_tokens=(3, 8), new_tokens=(2, 5),
                                    seed=0),
            engine_config=EngineConfig(max_batch_size=2, kv_page_size=4),
            gateway_config=GatewayConfig(max_queue_depth=16,
                                         drain_timeout_s=5.0),
            cancel_every=3,
        ))
        assert [row["arrival_rate"] for row in rows] == [50.0, 200.0]
        for row in rows:
            for key in ROW_KEYS:
                assert key in row, key
            assert row["requests"] == 6
            assert row["errors"] == 0
            assert row["kv_leaked_pages"] == 0
            assert np.isfinite(row["goodput_rps"])

    def test_sweep_reports_progress_per_rate(self, tiny_inference_model):
        seen = []
        asyncio.run(gateway_sweep(
            tiny_inference_model,
            rates=(100.0,),
            workload=WorkloadConfig(num_requests=3, arrival_rate=100.0,
                                    prompt_tokens=(3, 6), new_tokens=(2, 4)),
            engine_config=EngineConfig(max_batch_size=2, kv_page_size=4),
            gateway_config=GatewayConfig(drain_timeout_s=5.0),
            progress=seen.append,
        ))
        assert len(seen) == 1 and seen[0]["arrival_rate"] == 100.0


class TestCatalogWiring:
    def test_model_dependency_is_declared_for_the_scheduler(self):
        from repro.experiments.common import experiment_model_specs

        assert experiment_model_specs("gateway_bench", fast=True) == ("Llama-1B",)
        assert experiment_model_specs("gateway_bench", fast=False) == ("Llama-7B",)

    def test_driver_is_registered_in_the_catalog(self):
        from repro.experiments.runner import EXPERIMENTS, experiment_descriptions

        assert "gateway_bench" in EXPERIMENTS
        assert experiment_descriptions()["gateway_bench"]


class TestCLISmoke:
    def _run_repro(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", "")
        env["REPRO_FAST"] = "1"
        return subprocess.run([sys.executable, "-m", "repro", *args],
                              capture_output=True, text=True, timeout=300,
                              cwd=REPO_ROOT, env=env)

    def test_gateway_bench_fast_subprocess(self, tmp_path):
        result = self._run_repro("gateway-bench", "--fast", "--num-requests", "4",
                                 "--rates", "50", "200", "--cancel-every", "0",
                                 "--output-dir", str(tmp_path / "out"))
        assert result.returncode == 0, result.stderr
        assert "Gateway-Bench" in result.stdout
        assert "goodput_rps" in result.stdout
        assert (tmp_path / "out" / "gateway-bench.json").exists()
