"""The open-loop load generator: config, knee detection, end-to-end replay."""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.gateway.driver import Gateway, GatewayConfig
from repro.gateway.loadgen import (
    LoadGenConfig,
    RequestOutcome,
    find_saturation_knee,
    loadgen,
    run_loadgen,
)
from repro.gateway.server import GatewayServer
from repro.serve.engine import EngineConfig, ServeEngine, WallClock
from repro.serve.workload import WorkloadConfig


class TestConfig:
    def test_open_loop_requires_a_positive_rate(self):
        with pytest.raises(ValueError, match="> 0"):
            LoadGenConfig(workload=WorkloadConfig(arrival_rate=0.0))
        with pytest.raises(ValueError, match="arrival_rate"):
            LoadGenConfig(workload=WorkloadConfig(arrival_rate=float("nan")))

    def test_validation(self):
        with pytest.raises(ValueError, match="cancel_every"):
            LoadGenConfig(cancel_every=-1)
        with pytest.raises(ValueError, match="cancel_after_tokens"):
            LoadGenConfig(cancel_after_tokens=-1)
        with pytest.raises(ValueError, match="timeout_s"):
            LoadGenConfig(timeout_s=0.0)
        with pytest.raises(ValueError, match="time_scale"):
            LoadGenConfig(time_scale=0.0)


class TestOutcome:
    def test_latency_views(self):
        outcome = RequestOutcome(request_id=0, status=200, state="DONE",
                                 tokens=(1, 2, 3), token_times=(0.1, 0.15, 0.25))
        assert outcome.ok and not outcome.shed
        assert outcome.ttft_s == 0.1
        np.testing.assert_allclose(outcome.inter_token_s, [0.05, 0.1])

    def test_shed_covers_429_and_displaced_streams(self):
        assert RequestOutcome(request_id=0, status=429).shed
        assert RequestOutcome(request_id=0, status=200, state="SHED").shed
        assert not RequestOutcome(request_id=0, status=200, state="DONE").shed


class TestKneeDetection:
    def test_monotone_goodput_has_no_knee_yet(self):
        assert find_saturation_knee([1, 2, 4, 8], [1.0, 2.0, 3.9, 7.5]) == 3

    def test_plateau_is_the_knee(self):
        assert find_saturation_knee([1, 2, 4, 8], [1.0, 2.0, 2.05, 2.0]) == 2

    def test_goodput_collapse_is_the_knee(self):
        assert find_saturation_knee([1, 2, 4], [5.0, 2.0, 1.0]) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="equal-length"):
            find_saturation_knee([1, 2], [1.0])
        with pytest.raises(ValueError, match="non-empty"):
            find_saturation_knee([], [])
        with pytest.raises(ValueError, match="sorted"):
            find_saturation_knee([2, 1], [1.0, 2.0])


class TestEndToEnd:
    def test_replay_with_cancels_measures_reclaim_and_leaks_nothing(
            self, tiny_inference_model):
        async def scenario():
            engine = ServeEngine(tiny_inference_model,
                                 EngineConfig(max_batch_size=2, kv_page_size=4),
                                 clock=WallClock())
            server = GatewayServer(Gateway(engine,
                                           GatewayConfig(drain_timeout_s=5.0)),
                                   port=0)
            await server.start()
            config = LoadGenConfig(
                workload=WorkloadConfig(num_requests=8, arrival_rate=200.0,
                                        prompt_tokens=(3, 8), new_tokens=(3, 6),
                                        seed=2),
                cancel_every=4, cancel_after_tokens=1)
            report = await loadgen(server.host, server.port,
                                   tiny_inference_model.config.vocab_size, config)
            stats = await server.shutdown()
            return report, stats

        report, stats = asyncio.run(scenario())
        summary = report.summary()
        assert summary["requests"] == 8
        assert summary["errors"] == 0
        assert summary["completed"] + summary["cancelled"] + summary["shed"] == 8
        assert summary["goodput_rps"] > 0
        assert np.isfinite(summary["ttft_p50_ms"])
        # every 4th request issued a cancel; its round trip was measured
        measured = [o for o in report.outcomes if o.cancel_latency_s is not None]
        assert len(measured) == 2
        assert stats["kv_leaked_pages"] == 0

    def test_run_loadgen_blocking_entry(self, tiny_inference_model):
        # run_loadgen spins its own event loop, so the server lives on a
        # second loop in a background thread for the duration of the replay
        started = threading.Event()
        box = {}

        def serve():
            async def main():
                engine = ServeEngine(tiny_inference_model,
                                     EngineConfig(max_batch_size=2,
                                                  kv_page_size=4),
                                     clock=WallClock())
                server = GatewayServer(
                    Gateway(engine, GatewayConfig(drain_timeout_s=5.0)), port=0)
                await server.start()
                box["host"], box["port"] = server.host, server.port
                box["loop"] = asyncio.get_running_loop()
                box["stop"] = asyncio.Event()
                started.set()
                await box["stop"].wait()
                box["stats"] = await server.shutdown()

            asyncio.run(main())

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            assert started.wait(timeout=10)
            config = LoadGenConfig(
                workload=WorkloadConfig(num_requests=3, arrival_rate=100.0,
                                        prompt_tokens=(3, 6), new_tokens=(2, 4)))
            report = run_loadgen(box["host"], box["port"],
                                 tiny_inference_model.config.vocab_size, config)
        finally:
            box["loop"].call_soon_threadsafe(box["stop"].set)
            thread.join(timeout=10)
        assert all(o.ok for o in report.outcomes)
        assert box["stats"]["completed"] == 3

    def test_time_scale_compresses_the_replay(self, tiny_inference_model):
        async def scenario():
            engine = ServeEngine(tiny_inference_model,
                                 EngineConfig(max_batch_size=2, kv_page_size=4),
                                 clock=WallClock())
            server = GatewayServer(Gateway(engine,
                                           GatewayConfig(drain_timeout_s=5.0)),
                                   port=0)
            await server.start()
            base = WorkloadConfig(num_requests=4, arrival_rate=20.0,
                                  prompt_tokens=(3, 5), new_tokens=(2, 3))
            config = LoadGenConfig(workload=base, time_scale=0.05)
            report = await loadgen(server.host, server.port,
                                   tiny_inference_model.config.vocab_size, config)
            await server.shutdown()
            return report

        report = asyncio.run(scenario())
        # 4 arrivals at 20 rps span ~0.1s of trace time; scaled by 0.05 the
        # whole replay (including service) finishes far inside one second
        assert report.elapsed_s < 1.0
        assert report.offered_rate == pytest.approx(400.0)
