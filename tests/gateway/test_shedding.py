"""Admission-gate policies judged against a three-attribute stub engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.gateway.shedding import SHED_POLICIES, AdmissionGate, Decision, ShedConfig
from repro.serve.engine import Request


@dataclass
class StubEngine:
    """The load-signal surface the gate reads; nothing else."""

    queue_depth: int = 0
    projected_load: int = 0
    token_budget: int = 100
    queued: list = field(default_factory=list)

    def queued_requests(self):
        return list(self.queued)


def request(rid=0, deadline=None, tokens=10):
    return Request(request_id=rid, prompt_tokens=tuple(range(1, tokens - 3)),
                   max_new_tokens=4, deadline=deadline)


def gate(policy="reject", depth=4, load_factor=2.0):
    return AdmissionGate(ShedConfig(max_queue_depth=depth, policy=policy,
                                    load_factor=load_factor))


class TestConfig:
    def test_policies_are_registered(self):
        assert SHED_POLICIES == ("reject", "drop_oldest", "deadline")

    def test_validation(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            ShedConfig(max_queue_depth=0)
        with pytest.raises(ValueError, match="unknown shedding policy"):
            ShedConfig(policy="yolo")
        with pytest.raises(ValueError, match="load_factor"):
            ShedConfig(load_factor=0.0)


class TestOverloadSignals:
    def test_headroom_admits_without_victims(self):
        decision = gate().decide(StubEngine(), request(), now=0.0)
        assert decision == Decision(admit=True)

    def test_full_queue_triggers_the_gate(self):
        decision = gate(depth=2).decide(StubEngine(queue_depth=2), request(), 0.0)
        assert not decision.admit
        assert "queue depth 2" in decision.reason

    def test_projected_load_ceiling_triggers_the_gate(self):
        engine = StubEngine(projected_load=195, token_budget=100)
        decision = gate(load_factor=2.0).decide(engine, request(tokens=10), 0.0)
        assert not decision.admit
        assert "shed ceiling" in decision.reason


class TestDropOldest:
    def test_sheds_the_oldest_queued_request(self):
        engine = StubEngine(queue_depth=2,
                            queued=[request(rid=11), request(rid=12)])
        decision = gate("drop_oldest", depth=2).decide(engine, request(rid=13), 0.0)
        assert decision.admit
        assert decision.victims == (11,)

    def test_refuses_when_overload_is_all_active_work(self):
        engine = StubEngine(projected_load=500, token_budget=100, queued=[])
        decision = gate("drop_oldest").decide(engine, request(), 0.0)
        assert not decision.admit and decision.victims == ()


class TestDeadlineAware:
    def test_expired_queued_requests_are_shed_first(self):
        engine = StubEngine(queue_depth=3, queued=[
            request(rid=1, deadline=0.5), request(rid=2), request(rid=3, deadline=0.9)])
        decision = gate("deadline", depth=3).decide(engine, request(rid=4), now=1.0)
        assert decision.admit
        assert set(decision.victims) == {1, 3}

    def test_tighter_newcomer_displaces_the_loosest_deadline(self):
        engine = StubEngine(queue_depth=2, queued=[
            request(rid=1, deadline=5.0), request(rid=2, deadline=9.0)])
        decision = gate("deadline", depth=2).decide(
            engine, request(rid=3, deadline=2.0), now=0.0)
        assert decision.admit and decision.victims == (2,)

    def test_no_deadline_queued_request_is_loosest(self):
        engine = StubEngine(queue_depth=2, queued=[
            request(rid=1, deadline=5.0), request(rid=2)])
        decision = gate("deadline", depth=2).decide(
            engine, request(rid=3, deadline=2.0), now=0.0)
        assert decision.admit and decision.victims == (2,)

    def test_looser_newcomer_is_refused(self):
        engine = StubEngine(queue_depth=2, queued=[
            request(rid=1, deadline=2.0), request(rid=2, deadline=3.0)])
        decision = gate("deadline", depth=2).decide(
            engine, request(rid=3, deadline=9.0), now=0.0)
        assert not decision.admit

    def test_newcomer_without_deadline_never_displaces(self):
        engine = StubEngine(queue_depth=2, queued=[
            request(rid=1, deadline=2.0), request(rid=2)])
        decision = gate("deadline", depth=2).decide(engine, request(rid=3), now=0.0)
        assert not decision.admit

    def test_gate_never_mutates_the_engine(self):
        engine = StubEngine(queue_depth=2, queued=[request(rid=1, deadline=0.1)])
        before = list(engine.queued)
        gate("deadline", depth=2).decide(engine, request(rid=2), now=1.0)
        assert engine.queued == before
