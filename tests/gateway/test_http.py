"""The HTTP front door over real loopback sockets: routes, SSE, identity."""

from __future__ import annotations

import asyncio
import json
import os
import signal

import pytest

from repro.gateway.driver import Gateway, GatewayConfig
from repro.gateway.loadgen import _post, _read_http_head, _sse_events
from repro.gateway.server import GatewayServer, serve_gateway
from repro.serve.engine import EngineConfig, ServeEngine, WallClock
from repro.serve.workload import WorkloadConfig, generate_trace


def make_server(model, gateway_config=None, **engine_kwargs):
    engine_kwargs.setdefault("max_batch_size", 2)
    engine_kwargs.setdefault("kv_page_size", 4)
    engine = ServeEngine(model, EngineConfig(**engine_kwargs), clock=WallClock())
    gateway = Gateway(engine, gateway_config or GatewayConfig(drain_timeout_s=5.0))
    return GatewayServer(gateway, port=0)


async def get(host, port, path):
    """Minimal GET; returns (status, parsed JSON body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
        await writer.drain()
        status, headers = await _read_http_head(reader)
        raw = await reader.read()
        length = headers.get("content-length")
        if length is not None:
            raw = raw[:int(length)]
        return status, json.loads(raw.decode()) if raw else {}
    finally:
        writer.close()


async def post_raw(host, port, path, body: bytes, content_type="application/json"):
    """POST arbitrary bytes; returns (status, headers, parsed JSON body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
                      f"Content-Type: {content_type}\r\n"
                      f"Content-Length: {len(body)}\r\n"
                      f"Connection: close\r\n\r\n").encode() + body)
        await writer.drain()
        status, headers = await _read_http_head(reader)
        raw = await reader.read()
        length = headers.get("content-length")
        if length is not None:
            raw = raw[:int(length)]
        return status, headers, json.loads(raw.decode()) if raw else {}
    finally:
        writer.close()


async def stream_generate(host, port, payload):
    """POST /v1/generate with stream=true; returns the raw SSE event list."""
    body = json.dumps({**payload, "stream": True}).encode()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((f"POST /v1/generate HTTP/1.1\r\nHost: {host}\r\n"
                      f"Content-Type: application/json\r\n"
                      f"Content-Length: {len(body)}\r\n"
                      f"Connection: close\r\n\r\n").encode() + body)
        await writer.drain()
        status, _headers = await _read_http_head(reader)
        assert status == 200, status
        return [event async for event in _sse_events(reader)]
    finally:
        writer.close()


class TestRoutes:
    def test_healthz_stats_and_unknown_routes(self, tiny_inference_model):
        async def scenario():
            server = make_server(tiny_inference_model)
            await server.start()
            health = await get(server.host, server.port, "/healthz")
            stats = await get(server.host, server.port, "/stats")
            missing = await get(server.host, server.port, "/nope")
            await server.shutdown()
            return health, stats, missing

        health, stats, missing = asyncio.run(scenario())
        assert health == (200, {"status": "ok"})
        assert stats[0] == 200
        for key in ("queue_depth", "num_active", "projected_load", "token_budget",
                    "kv_pages_in_use", "kv_hit_rate", "submitted", "shed"):
            assert key in stats[1]
        assert missing[0] == 404

    def test_non_streaming_generate_returns_tokens_and_prompt(
            self, tiny_inference_model):
        async def scenario():
            server = make_server(tiny_inference_model)
            await server.start()
            status, _headers, body = await post_raw(
                server.host, server.port, "/v1/generate",
                json.dumps({"prompt_tokens": [1, 2, 3], "max_new_tokens": 4}).encode())
            await server.shutdown()
            return status, body

        status, body = asyncio.run(scenario())
        assert status == 200
        assert body["state"] == "DONE" and body["finish_reason"] == "length"
        assert body["num_tokens"] == 4 and len(body["tokens"]) == 4
        assert body["prompt_tokens"] == [1, 2, 3]

    def test_malformed_requests_get_400(self, tiny_inference_model):
        async def scenario():
            server = make_server(tiny_inference_model)
            await server.start()
            host, port = server.host, server.port
            results = [
                await post_raw(host, port, "/v1/generate", b"not json"),
                await post_raw(host, port, "/v1/generate", b"[1, 2]"),
                await post_raw(host, port, "/v1/generate",
                               json.dumps({"prompt_tokens": [1], "wat": 1}).encode()),
                await post_raw(host, port, "/v1/generate",
                               json.dumps({"prompt_tokens": [10**9]}).encode()),
                await post_raw(host, port, "/v1/cancel/banana", b""),
            ]
            await server.shutdown()
            return results

        for status, _headers, body in asyncio.run(scenario()):
            assert status == 400
            assert "error" in body

    def test_cancel_endpoint_is_idempotent_over_http(self, tiny_inference_model):
        async def scenario():
            server = make_server(tiny_inference_model)
            await server.start()
            status, unknown = await _post(server.host, server.port,
                                          "/v1/cancel/42", None)
            await server.shutdown()
            return status, unknown

        status, body = asyncio.run(scenario())
        assert status == 200
        assert body == {"request_id": 42, "cancelled": False}


class TestStreaming:
    def test_sse_wire_format_and_cancellation_handle(self, tiny_inference_model):
        async def scenario():
            server = make_server(tiny_inference_model)
            await server.start()
            events = await stream_generate(server.host, server.port,
                                           {"prompt_tokens": [2, 4, 6],
                                            "max_new_tokens": 3})
            await server.shutdown()
            return events

        events = asyncio.run(scenario())
        names = [name for name, _ in events]
        assert names == ["accepted", "token", "token", "token", "end"]
        assert events[0][1] == {"request_id": 0}   # the mid-stream cancel handle
        for index, (_, payload) in enumerate(events[1:-1]):
            assert payload["index"] == index and isinstance(payload["token"], int)
        end = events[-1][1]
        assert end["state"] == "DONE" and end["finish_reason"] == "length"
        assert [p["token"] for _, p in events[1:-1]] == end["tokens"]

    def test_mid_stream_cancel_ends_the_stream_with_cancelled(
            self, tiny_inference_model):
        async def scenario():
            server = make_server(tiny_inference_model)
            await server.start()
            host, port = server.host, server.port
            body = json.dumps({"prompt_tokens": list(range(1, 9)),
                               "max_new_tokens": 40, "stream": True}).encode()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((f"POST /v1/generate HTTP/1.1\r\nHost: {host}\r\n"
                          f"Content-Length: {len(body)}\r\n"
                          f"Connection: close\r\n\r\n").encode() + body)
            await writer.drain()
            await _read_http_head(reader)
            events = []
            handle = None
            async for name, payload in _sse_events(reader):
                events.append((name, payload))
                if name == "accepted":
                    handle = payload["request_id"]
                elif name == "token" and len(events) == 2:  # first token: cancel now
                    await _post(host, port, f"/v1/cancel/{handle}", None)
                elif name == "end":
                    break
            writer.close()
            audit = server.gateway.engine.audit_kv_pages()
            stats = await server.shutdown()
            return events, audit, stats

        events, audit, stats = asyncio.run(scenario())
        assert events[-1][0] == "end"
        assert events[-1][1]["state"] == "CANCELLED"
        assert len(events) < 2 + 40   # genuinely cut short
        assert audit["leaked"] == []
        assert stats["cancelled"] == 1 and stats["kv_leaked_pages"] == 0

    def test_streamed_tokens_are_byte_identical_to_offline_engine(
            self, tiny_inference_model):
        """Acceptance: the gateway serves exactly what the offline engine computes."""
        workload = WorkloadConfig(num_requests=8, arrival_rate=0.0,
                                  prompt_tokens=(3, 10), new_tokens=(2, 6),
                                  temperature=0.7, top_k=8, seed=11)
        trace = generate_trace(tiny_inference_model.config.vocab_size, workload)
        offline_engine = ServeEngine(
            tiny_inference_model,
            EngineConfig(max_batch_size=2, kv_page_size=4), clock=WallClock())
        offline = {c.request.request_id: c.generated_tokens
                   for c in offline_engine.run(trace).completed}

        async def scenario():
            server = make_server(tiny_inference_model, max_batch_size=2)
            await server.start()
            streams = await asyncio.gather(*(
                stream_generate(server.host, server.port, {
                    "prompt_tokens": list(request.prompt_tokens),
                    "max_new_tokens": request.max_new_tokens,
                    "temperature": request.temperature,
                    "top_k": request.top_k,
                    "seed": request.seed,
                }) for request in trace))
            stats = await server.shutdown()
            return streams, stats

        streams, stats = asyncio.run(scenario())
        assert stats["kv_leaked_pages"] == 0
        for request, events in zip(trace, streams):
            streamed = tuple(payload["token"] for name, payload in events
                             if name == "token")
            assert streamed == offline[request.request_id], (
                f"request {request.request_id}: gateway stream diverged from the "
                f"offline engine replay"
            )


class TestSheddingOverHttp:
    def test_overload_gets_429_with_retry_after(self, tiny_inference_model):
        async def scenario():
            config = GatewayConfig(max_queue_depth=1, shed_policy="reject",
                                   drain_timeout_s=5.0)
            server = make_server(tiny_inference_model, gateway_config=config,
                                 max_batch_size=1)
            await server.start()
            host, port = server.host, server.port
            # hold the only slot with a long stream, then overfill the queue
            long_task = asyncio.ensure_future(stream_generate(
                host, port, {"prompt_tokens": list(range(1, 9)),
                             "max_new_tokens": 40}))
            while server.gateway.engine.num_active == 0:
                await asyncio.sleep(0.001)
            queued_task = asyncio.ensure_future(post_raw(
                host, port, "/v1/generate",
                json.dumps({"prompt_tokens": [1, 2], "max_new_tokens": 2}).encode()))
            while server.gateway.engine.queue_depth == 0:
                await asyncio.sleep(0.001)
            status, headers, body = await post_raw(
                host, port, "/v1/generate",
                json.dumps({"prompt_tokens": [3, 4], "max_new_tokens": 2}).encode())
            await long_task
            queued_status, _, _ = await queued_task
            stats = await server.shutdown()
            return status, headers, body, queued_status, stats

        status, headers, body, queued_status, stats = asyncio.run(scenario())
        assert status == 429
        assert headers.get("retry-after") == "1"
        assert body["error"] == "shed" and "queue depth" in body["reason"]
        assert queued_status == 200        # the queued request still completed
        assert stats["shed"] == 1 and stats["kv_leaked_pages"] == 0

    def test_draining_server_rejects_generates_and_fails_healthz(
            self, tiny_inference_model):
        async def scenario():
            server = make_server(tiny_inference_model)
            await server.start()
            host, port = server.host, server.port
            server.gateway.draining = True   # simulate mid-drain
            health = await get(host, port, "/healthz")
            status, _headers, body = await post_raw(
                host, port, "/v1/generate",
                json.dumps({"prompt_tokens": [1, 2]}).encode())
            server.gateway.draining = False
            await server.shutdown()
            return health, status, body

        health, status, body = asyncio.run(scenario())
        assert health == (503, {"status": "draining"})
        assert status == 503
        assert "draining" in body["error"]


class TestGracefulShutdown:
    def test_serve_gateway_drains_on_signal(self, tiny_inference_model):
        engine = ServeEngine(tiny_inference_model,
                             EngineConfig(max_batch_size=2, kv_page_size=4),
                             clock=WallClock())
        gateway = Gateway(engine, GatewayConfig(drain_timeout_s=5.0))
        announcements = []

        async def scenario():
            ready = asyncio.Event()
            serve_task = asyncio.ensure_future(serve_gateway(
                gateway, port=0, ready=ready, stop_signals=(signal.SIGUSR1,),
                announce=announcements.append))
            await asyncio.wait_for(ready.wait(), timeout=5)
            host, port = announcements[0].rsplit(" ", 1)[1].split(":")
            status, _headers, body = await post_raw(
                host, int(port), "/v1/generate",
                json.dumps({"prompt_tokens": [1, 2, 3], "max_new_tokens": 3}).encode())
            os.kill(os.getpid(), signal.SIGUSR1)
            stats = await asyncio.wait_for(serve_task, timeout=10)
            return status, body, stats, int(port)

        status, body, stats, port = asyncio.run(scenario())
        assert status == 200 and body["state"] == "DONE"
        assert stats["draining"] is True
        assert stats["completed"] == 1
        assert stats["kv_leaked_pages"] == 0
        assert announcements[0].startswith("gateway listening on ")
        assert announcements[-1].startswith("gateway drained: ")
        # new connections are refused once the listener is closed
        with pytest.raises(OSError):
            asyncio.run(get("127.0.0.1", port, "/healthz"))
