"""The Gateway facade: pump, admission, cancellation, drain and stats."""

from __future__ import annotations

import asyncio

import pytest

from repro.gateway.driver import Gateway, GatewayConfig, GatewayDraining
from repro.gateway.session import CANCELLED, DONE, SHED
from repro.serve.engine import EngineConfig, ServeEngine, WallClock


def make_gateway(model, *, gateway=None, **engine_kwargs):
    engine_kwargs.setdefault("max_batch_size", 2)
    engine_kwargs.setdefault("kv_page_size", 4)
    engine = ServeEngine(model, EngineConfig(**engine_kwargs), clock=WallClock())
    return Gateway(engine, gateway or GatewayConfig(drain_timeout_s=5.0))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="default_timeout_s"):
            GatewayConfig(default_timeout_s=0.0)
        with pytest.raises(ValueError, match="drain_timeout_s"):
            GatewayConfig(drain_timeout_s=-1.0)
        with pytest.raises(ValueError, match="idle_poll_s"):
            GatewayConfig(idle_poll_s=0.0)

    def test_shed_config_mirrors_the_gateway_shape(self):
        config = GatewayConfig(max_queue_depth=7, shed_policy="drop_oldest",
                               load_factor=1.5)
        shed = config.shed_config()
        assert (shed.max_queue_depth, shed.policy, shed.load_factor) == \
            (7, "drop_oldest", 1.5)


class TestLifecycle:
    def test_submit_runs_to_done_and_streams_tokens(self, tiny_inference_model):
        async def scenario():
            gateway = make_gateway(tiny_inference_model)
            gateway.start()
            session = gateway.submit((1, 2, 3), max_new_tokens=5)
            record = await asyncio.wait_for(session.wait(), timeout=10)
            stats = await gateway.drain()
            return session, record, stats

        session, record, stats = asyncio.run(scenario())
        assert session.state == DONE
        assert record.finish_reason == "length"
        assert tuple(session.tokens) == record.generated_tokens
        assert len(session.tokens) == 5
        assert stats["completed"] == 1 and stats["kv_leaked_pages"] == 0

    def test_concurrent_sessions_all_finish(self, tiny_inference_model):
        async def scenario():
            gateway = make_gateway(tiny_inference_model, max_batch_size=2)
            gateway.start()
            sessions = [gateway.submit((1 + i, 2 + i), max_new_tokens=3)
                        for i in range(5)]
            await asyncio.wait_for(
                asyncio.gather(*(s.wait() for s in sessions)), timeout=20)
            stats = await gateway.drain()
            return sessions, stats

        sessions, stats = asyncio.run(scenario())
        assert all(s.state == DONE for s in sessions)
        assert stats["completed"] == 5
        assert stats["kv_leaked_pages"] == 0

    def test_cancel_mid_decode_releases_pages_before_returning(
            self, tiny_inference_model):
        async def scenario():
            gateway = make_gateway(tiny_inference_model)
            gateway.start()
            session = gateway.submit(tuple(range(1, 9)), max_new_tokens=40)
            # wait for the first streamed token: the request is mid-decode
            event = await asyncio.wait_for(session.events().__anext__(), timeout=10)
            assert event[0] == "token"
            cancelled = gateway.cancel(session.request_id)
            audit = gateway.engine.audit_kv_pages()   # synchronous: already clean
            active_after = gateway.engine.num_active
            stats = await gateway.drain()
            return session, cancelled, audit, active_after, stats

        session, cancelled, audit, active_after, stats = asyncio.run(scenario())
        assert cancelled is True
        assert session.state == CANCELLED
        assert audit["leaked"] == [] and active_after == 0
        assert stats["cancelled"] == 1 and stats["kv_leaked_pages"] == 0

    def test_cancel_is_idempotent_and_false_for_unknown_ids(self, tiny_inference_model):
        async def scenario():
            gateway = make_gateway(tiny_inference_model)
            gateway.start()
            session = gateway.submit((1, 2), max_new_tokens=2)
            await asyncio.wait_for(session.wait(), timeout=10)
            results = (gateway.cancel(session.request_id), gateway.cancel(999))
            await gateway.drain()
            return results

        assert asyncio.run(scenario()) == (False, False)

    def test_duplicate_engine_ids_cannot_happen_but_engine_guard_is_live(
            self, tiny_inference_model):
        # the gateway allocates monotonically increasing ids; the engine-level
        # duplicate guard still protects direct engine users sharing the engine
        async def scenario():
            gateway = make_gateway(tiny_inference_model)
            gateway.start()
            session = gateway.submit((1, 2), max_new_tokens=2)
            with pytest.raises(ValueError, match="duplicate request id"):
                gateway.engine.submit(session.request)
            await asyncio.wait_for(session.wait(), timeout=10)
            await gateway.drain()

        asyncio.run(scenario())


class TestSheddingThroughTheGateway:
    def test_queue_bound_sheds_newcomers_with_reason(self, tiny_inference_model):
        async def scenario():
            config = GatewayConfig(max_queue_depth=2, shed_policy="reject",
                                   drain_timeout_s=5.0)
            gateway = make_gateway(tiny_inference_model, gateway=config,
                                   max_batch_size=1)
            # pump not started: the queue cannot drain while we overfill it
            admitted = [gateway.submit((1, 2), max_new_tokens=2) for _ in range(2)]
            shed = gateway.submit((3, 4), max_new_tokens=2)
            gateway.start()
            await asyncio.wait_for(
                asyncio.gather(*(s.wait() for s in admitted)), timeout=10)
            stats = await gateway.drain()
            return shed, stats

        shed, stats = asyncio.run(scenario())
        assert shed.state == SHED
        assert "queue depth" in shed.shed_reason
        assert stats["shed"] == 1 and stats["kv_leaked_pages"] == 0

    def test_drop_oldest_displaces_the_queued_victim(self, tiny_inference_model):
        async def scenario():
            config = GatewayConfig(max_queue_depth=1, shed_policy="drop_oldest",
                                   drain_timeout_s=5.0)
            gateway = make_gateway(tiny_inference_model, gateway=config,
                                   max_batch_size=1)
            gateway.start()
            first = gateway.submit(tuple(range(1, 9)), max_new_tokens=40)
            event = await asyncio.wait_for(first.events().__anext__(), timeout=10)
            assert event[0] == "token"      # first holds the only slot, decoding
            victim = gateway.submit((3, 4), max_new_tokens=2)    # queued
            newcomer = gateway.submit((5, 6), max_new_tokens=2)  # displaces victim
            await asyncio.wait_for(
                asyncio.gather(first.wait(), newcomer.wait()), timeout=10)
            stats = await gateway.drain()
            return first, victim, newcomer, stats

        first, victim, newcomer, stats = asyncio.run(scenario())
        assert victim.state == SHED
        assert first.state == DONE and newcomer.state == DONE
        assert stats["shed"] == 1 and stats["kv_leaked_pages"] == 0

    def test_queued_requests_are_visible_before_the_pump_runs(
            self, tiny_inference_model):
        async def scenario():
            gateway = make_gateway(tiny_inference_model, max_batch_size=1)
            gateway.submit((1, 2), max_new_tokens=2)
            depth = gateway.engine.queue_depth
            gateway.start()
            stats_live = gateway.stats()
            await gateway.drain()
            return depth, stats_live

        depth, stats_live = asyncio.run(scenario())
        assert depth == 1
        assert stats_live["submitted"] == 1
        assert "kv_audit" not in stats_live   # audit only on request


class TestDrain:
    def test_draining_gateway_refuses_new_work(self, tiny_inference_model):
        async def scenario():
            gateway = make_gateway(tiny_inference_model)
            gateway.start()
            drain_task = asyncio.ensure_future(gateway.drain())
            await asyncio.sleep(0)
            with pytest.raises(GatewayDraining):
                gateway.submit((1, 2), max_new_tokens=2)
            return await drain_task

        stats = asyncio.run(scenario())
        assert stats["draining"] is True
        assert stats["kv_leaked_pages"] == 0

    def test_drain_cancels_stragglers_and_audits_clean(self, tiny_inference_model):
        async def scenario():
            config = GatewayConfig(drain_timeout_s=0.0)   # no grace: cancel now
            gateway = make_gateway(tiny_inference_model, gateway=config)
            gateway.start()
            session = gateway.submit(tuple(range(1, 9)), max_new_tokens=40)
            event = await asyncio.wait_for(session.events().__anext__(), timeout=10)
            assert event[0] == "token"
            stats = await gateway.drain()
            return session, stats

        session, stats = asyncio.run(scenario())
        assert session.state == CANCELLED
        assert stats["kv_leaked_pages"] == 0
        assert stats["num_active"] == 0

    def test_per_request_timeout_times_out_on_the_engine(self, tiny_inference_model):
        async def scenario():
            gateway = make_gateway(tiny_inference_model)
            gateway.start()
            session = gateway.submit((1, 2, 3, 4), max_new_tokens=60,
                                     timeout_s=0.005)
            record = await asyncio.wait_for(session.wait(), timeout=20)
            stats = await gateway.drain()
            return session, record, stats

        session, record, stats = asyncio.run(scenario())
        assert session.state == "TIMEOUT"
        assert record.finish_reason == "timeout"
        assert stats["timed_out"] == 1 and stats["kv_leaked_pages"] == 0

    def test_bad_timeout_rejected(self, tiny_inference_model):
        async def scenario():
            gateway = make_gateway(tiny_inference_model)
            gateway.start()
            with pytest.raises(ValueError, match="timeout_s"):
                gateway.submit((1, 2), timeout_s=-1.0)
            await gateway.drain()

        asyncio.run(scenario())
