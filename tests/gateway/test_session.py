"""The per-request state machine: legal transitions, events, terminal mapping."""

from __future__ import annotations

import asyncio

import pytest

from repro.gateway.session import (
    CANCELLED,
    DECODE,
    DONE,
    PREFILL,
    QUEUED,
    SHED,
    TERMINAL_STATES,
    TIMEOUT,
    Session,
    SessionError,
    terminal_state_for,
)
from repro.serve.engine import Request


def make_session(**kwargs):
    request = Request(request_id=kwargs.pop("request_id", 0),
                      prompt_tokens=(1, 2, 3), max_new_tokens=4)
    return Session(request, **kwargs)


class TestTransitions:
    def test_happy_path_queued_prefill_decode_done(self):
        session = make_session(created_at=1.0)
        assert session.state == QUEUED and not session.is_terminal
        session.mark_admitted(2.0)
        assert session.state == PREFILL
        session.push_token(7, 3.0)
        assert session.state == DECODE and session.first_token_at == 3.0
        session.push_token(9, 4.0)
        session.finish(DONE, record="rec", at=5.0)
        assert session.is_terminal and session.record == "rec"
        assert [s for s, _ in session.history] == [QUEUED, PREFILL, DECODE, DONE]

    def test_queued_can_shed_cancel_or_timeout(self):
        for terminal in (SHED, CANCELLED, TIMEOUT):
            session = make_session()
            session.finish(terminal, at=1.0)
            assert session.state == terminal

    def test_token_after_terminal_state_raises(self):
        session = make_session()
        session.finish(CANCELLED, at=1.0)
        with pytest.raises(SessionError, match="after terminal"):
            session.push_token(3, 2.0)

    def test_token_without_admission_raises(self):
        with pytest.raises(SessionError, match="never admitted"):
            make_session().push_token(3, 1.0)

    def test_done_requires_reaching_decode(self):
        session = make_session()
        with pytest.raises(SessionError, match="illegal transition"):
            session.finish(DONE, at=1.0)

    def test_finish_rejects_non_terminal_states(self):
        with pytest.raises(SessionError, match="terminal state"):
            make_session().finish(DECODE, at=1.0)

    def test_unknown_state_rejected(self):
        with pytest.raises(SessionError, match="unknown session state"):
            make_session().transition("LIMBO", 0.0)

    def test_double_finish_raises(self):
        session = make_session()
        session.finish(SHED, at=1.0)
        with pytest.raises(SessionError, match="illegal transition"):
            session.finish(CANCELLED, at=2.0)


class TestReasonMapping:
    def test_engine_reasons_map_to_terminal_states(self):
        assert terminal_state_for("length") == DONE
        assert terminal_state_for("stop_token") == DONE
        assert terminal_state_for("cancelled") == CANCELLED
        assert terminal_state_for("timeout") == TIMEOUT

    def test_unknown_reason_raises(self):
        with pytest.raises(SessionError, match="unknown engine finish reason"):
            terminal_state_for("exploded")

    def test_terminal_states_are_closed(self):
        assert TERMINAL_STATES == {DONE, CANCELLED, SHED, TIMEOUT}


class TestEvents:
    def test_events_stream_tokens_then_exactly_one_end(self):
        async def scenario():
            session = make_session()
            session.mark_admitted(0.0)
            session.push_token(5, 1.0)
            session.push_token(6, 2.0)
            session.finish(DONE, record="rec", at=3.0)
            return [event async for event in session.events()]

        events = asyncio.run(scenario())
        assert events == [("token", 5, 1.0), ("token", 6, 2.0), ("end", DONE, "rec")]

    def test_wait_returns_the_terminal_record(self):
        async def scenario():
            session = make_session()
            waiter = asyncio.ensure_future(session.wait())
            await asyncio.sleep(0)
            session.finish(SHED, record=None, at=1.0)
            return await waiter

        assert asyncio.run(scenario()) is None

    def test_to_dict_is_json_ready(self):
        session = make_session()
        session.mark_admitted(0.5)
        session.push_token(3, 1.0)
        view = session.to_dict()
        assert view["request_id"] == 0
        assert view["state"] == DECODE
        assert view["tokens"] == [3]
        assert view["finish_reason"] is None
