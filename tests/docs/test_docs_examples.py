"""Execute every example in the documentation so the docs cannot rot.

All ``>>>`` examples in ``README.md`` and ``docs/*.md`` are run through
doctest.  A documentation page with examples that stop matching the
implementation fails tier-1, exactly like a broken unit test.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]

#: Pages that must carry runnable examples (a regression guard: deleting all
#: examples from these pages should be a deliberate act, not silent rot).
REQUIRE_EXAMPLES = {"quant-formats.md", "README.md"}

OPTIONFLAGS = doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_documentation_examples_execute(path):
    assert path.exists(), f"documented file {path} is missing"
    results = doctest.testfile(str(path), module_relative=False, optionflags=OPTIONFLAGS,
                               verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {path.name}"
    if path.name in REQUIRE_EXAMPLES:
        assert results.attempted > 0, f"{path.name} lost all of its runnable examples"


def test_experiment_catalog_is_complete():
    """docs/experiments.md must mention every registered experiment by name."""
    from repro.experiments.runner import EXPERIMENTS

    text = (REPO_ROOT / "docs" / "experiments.md").read_text()
    missing = [name for name in EXPERIMENTS if f"`{name}`" not in text]
    assert not missing, f"docs/experiments.md is missing experiments: {missing}"


def test_readme_points_at_the_docs():
    """The README's pointer map must reference every page under docs/."""
    readme = (REPO_ROOT / "README.md").read_text()
    for page in (REPO_ROOT / "docs").glob("*.md"):
        assert f"docs/{page.name}" in readme, f"README does not link docs/{page.name}"
