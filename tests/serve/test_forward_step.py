"""Equivalence of the incremental KV-cached forward path with full recompute."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm.generation import GenerationConfig, generate_tokens
from repro.llm.inference import QuantizationScheme
from repro.serve.bench import kv_cached_negative_log_likelihood
from repro.serve.kv_cache import KVCache


def full_recompute_greedy(model, prompt, max_new_tokens):
    """The seed decode loop: re-run forward over the whole context per token."""
    window = model.config.max_seq_len - 1
    tokens = list(prompt)
    for _ in range(max_new_tokens):
        context = np.array(tokens[-window:], dtype=np.int64)
        logits = model.forward(context[None, :])[0, -1]
        tokens.append(int(np.argmax(logits)))
    return np.array(tokens, dtype=np.int64)


class TestPrefillEquivalence:
    def test_single_sequence_prefill_matches_forward(self, tiny_inference_model):
        tokens = np.arange(1, 13, dtype=np.int64)[None, :]
        cache = KVCache(tiny_inference_model.config, batch_size=1)
        step = tiny_inference_model.forward_step(tokens, cache)
        full = tiny_inference_model.forward(tokens)
        np.testing.assert_allclose(step, full, rtol=0, atol=1e-12)
        assert cache.lengths[0] == 12

    def test_batched_prefill_matches_forward(self, tiny_inference_model):
        rng = np.random.default_rng(5)
        tokens = rng.integers(0, tiny_inference_model.config.vocab_size, size=(3, 10))
        cache = KVCache(tiny_inference_model.config, batch_size=3)
        step = tiny_inference_model.forward_step(tokens, cache)
        full = tiny_inference_model.forward(tokens)
        np.testing.assert_allclose(step, full, rtol=0, atol=1e-12)

    def test_chunked_prefill_matches_one_shot(self, tiny_inference_model):
        tokens = np.arange(2, 18, dtype=np.int64)[None, :]
        full = tiny_inference_model.forward(tokens)
        cache = KVCache(tiny_inference_model.config, batch_size=1)
        chunks = [tiny_inference_model.forward_step(tokens[:, :5], cache),
                  tiny_inference_model.forward_step(tokens[:, 5:11], cache),
                  tiny_inference_model.forward_step(tokens[:, 11:], cache)]
        np.testing.assert_allclose(np.concatenate(chunks, axis=1), full, atol=1e-10)


class TestGreedyDecodeEquivalence:
    def test_cached_decode_matches_full_recompute(self, tiny_inference_model):
        prompt = [3, 5, 7, 11]
        reference = full_recompute_greedy(tiny_inference_model, prompt, 24)
        cached = generate_tokens(tiny_inference_model, prompt,
                                 GenerationConfig(max_new_tokens=24))
        np.testing.assert_array_equal(cached, reference)

    def test_cached_decode_matches_for_batch_of_prompts(self, tiny_inference_model):
        # batch > 1: decode several sequences through one shared cache and
        # compare each against its own full-recompute loop
        prompts = [[1, 2, 3], [9, 8, 7, 6, 5], [4, 4, 4, 4]]
        max_new = 12
        cache = KVCache(tiny_inference_model.config, batch_size=len(prompts))
        sequences = []
        for row, prompt in enumerate(prompts):
            logits = tiny_inference_model.forward_step(
                np.array(prompt, dtype=np.int64)[None, :], cache, rows=[row])
            sequences.append(list(prompt) + [int(np.argmax(logits[0, -1]))])
        for _ in range(max_new - 1):
            last = np.array([[seq[-1]] for seq in sequences], dtype=np.int64)
            logits = tiny_inference_model.forward_step(last, cache)
            for row, seq in enumerate(sequences):
                seq.append(int(np.argmax(logits[row, -1])))
        for prompt, seq in zip(prompts, sequences):
            reference = full_recompute_greedy(tiny_inference_model, prompt, max_new)
            np.testing.assert_array_equal(np.array(seq), reference)

    def test_prompt_longer_than_one_step_chunked_prefill_decodes_identically(
        self, tiny_inference_model
    ):
        # prefill in multiple steps (a chunked-prefill scheduler), then decode
        prompt = list(range(1, 21))
        cache = KVCache(tiny_inference_model.config, batch_size=1)
        tiny_inference_model.forward_step(np.array(prompt[:8])[None, :], cache)
        logits = tiny_inference_model.forward_step(np.array(prompt[8:])[None, :], cache)
        tokens = list(prompt) + [int(np.argmax(logits[0, -1]))]
        for _ in range(9):
            logits = tiny_inference_model.forward_step(
                np.array([[tokens[-1]]], dtype=np.int64), cache)
            tokens.append(int(np.argmax(logits[0, -1])))
        reference = full_recompute_greedy(tiny_inference_model, prompt, 10)
        np.testing.assert_array_equal(np.array(tokens), reference)

    def test_quantised_scheme_decodes_identically_with_cache(self, tiny_inference_model):
        original = tiny_inference_model.scheme
        try:
            tiny_inference_model.set_scheme(QuantizationScheme.from_format("bbfp(4,2)"))
            prompt = [2, 3, 5]
            reference = full_recompute_greedy(tiny_inference_model, prompt, 16)
            cached = generate_tokens(tiny_inference_model, prompt,
                                     GenerationConfig(max_new_tokens=16))
            np.testing.assert_array_equal(cached, reference)
        finally:
            tiny_inference_model.set_scheme(original)


class TestRaggedBatches:
    def test_decode_with_unequal_cached_lengths_matches_solo_decode(self, tiny_inference_model):
        model = tiny_inference_model
        prompts = {0: [1, 2, 3, 4, 5, 6, 7], 1: [9, 8]}
        shared = KVCache(model.config, batch_size=2)
        solo_logits = {}
        for row, prompt in prompts.items():
            tokens = np.array(prompt, dtype=np.int64)[None, :]
            shared_out = model.forward_step(tokens, shared, rows=[row])
            solo = KVCache(model.config, batch_size=1)
            np.testing.assert_allclose(shared_out, model.forward_step(tokens, solo),
                                       atol=1e-12)
        # ragged batched decode: row 0 has 7 cached positions, row 1 has 2
        last = np.array([[prompts[0][-1]], [prompts[1][-1]]], dtype=np.int64)
        batched = model.forward_step(last, shared)
        for row, prompt in prompts.items():
            solo = KVCache(model.config, batch_size=1)
            model.forward_step(np.array(prompt, dtype=np.int64)[None, :], solo)
            solo_logits[row] = model.forward_step(
                np.array([[prompt[-1]]], dtype=np.int64), solo)
            np.testing.assert_allclose(batched[row], solo_logits[row][0], atol=1e-10)


class TestErrors:
    def test_overflow_beyond_capacity_raises(self, tiny_inference_model):
        cache = KVCache(tiny_inference_model.config, batch_size=1, max_seq_len=6)
        with pytest.raises(ValueError, match="max_seq_len"):
            tiny_inference_model.forward_step(np.arange(7)[None, :], cache)

    def test_row_count_must_match_batch(self, tiny_inference_model):
        cache = KVCache(tiny_inference_model.config, batch_size=2)
        with pytest.raises(ValueError, match="rows"):
            tiny_inference_model.forward_step(np.arange(3)[None, :], cache, rows=[0, 1])

    def test_batch_must_match_cache_without_rows(self, tiny_inference_model):
        cache = KVCache(tiny_inference_model.config, batch_size=2)
        with pytest.raises(ValueError, match="cache batch"):
            tiny_inference_model.forward_step(np.arange(3)[None, :], cache)

    def test_empty_step_rejected(self, tiny_inference_model):
        cache = KVCache(tiny_inference_model.config, batch_size=1)
        with pytest.raises(ValueError, match="at least one"):
            tiny_inference_model.forward_step(np.zeros((1, 0), dtype=np.int64), cache)


class TestQuantisedKV:
    @pytest.mark.parametrize("spec", ["bfp8@b32", "bbfp(4,2)"])
    def test_kv_nll_is_chunk_invariant_for_block_formats(self, tiny_inference_model, spec):
        """Block formats scale within one position: one-shot == token-by-token.

        (Per-tensor INT specs are append-granular — their scale spans the
        appended block — so only the blocked formats carry this guarantee.)
        """
        from repro.llm.activations import log_softmax

        model = tiny_inference_model
        tokens = np.arange(1, 17, dtype=np.int64)
        one_shot = kv_cached_negative_log_likelihood(model, tokens, kv_spec=spec)
        cache = KVCache(model.config, batch_size=1, kv_spec=spec)
        logits = [model.forward_step(np.array([[t]], dtype=np.int64), cache)[0]
                  for t in tokens[:-1]]
        log_probs = log_softmax(np.concatenate(logits, axis=0), axis=-1)
        picked = np.take_along_axis(log_probs, tokens[1:, None], axis=-1)[:, 0]
        assert one_shot == pytest.approx(float(-picked.mean()), rel=1e-12)

    def test_unquantised_kv_nll_matches_model_nll(self, tiny_inference_model):
        tokens = np.arange(1, 25, dtype=np.int64)
        direct = tiny_inference_model.negative_log_likelihood(tokens)
        cached = kv_cached_negative_log_likelihood(tiny_inference_model, tokens)
        assert cached == pytest.approx(direct, rel=1e-12)
