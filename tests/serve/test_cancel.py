"""Cancellation, deadlines and KV page-reclaim invariants of the engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.engine import EngineConfig, Request, ServeEngine, VirtualClock


def make_engine(model, **kwargs):
    kwargs.setdefault("max_batch_size", 2)
    return ServeEngine(model, EngineConfig(**kwargs), clock=VirtualClock())


def assert_clean_audit(engine):
    audit = engine.audit_kv_pages()
    assert audit["leaked"] == [], audit


BACKENDS = [
    dict(kv_backend="paged", kv_page_size=4),
    dict(kv_backend="contiguous"),
]


class TestCancelQueued:
    @pytest.mark.parametrize("backend", BACKENDS, ids=["paged", "contiguous"])
    def test_cancel_before_admission_never_touches_the_cache(
            self, tiny_inference_model, backend):
        engine = make_engine(tiny_inference_model, **backend)
        engine.submit(Request(request_id=7, prompt_tokens=(1, 2, 3), max_new_tokens=4))
        record = engine.cancel(7)
        assert record.finish_reason == "cancelled"
        assert record.generated_tokens == ()
        assert record.admitted_time is None and record.first_token_time is None
        assert engine.queue_depth == 0 and not engine.has_work
        assert_clean_audit(engine)
        assert engine.cache.pages_in_use == 0

    def test_cancel_rebuilds_a_valid_heap(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model)
        for rid in range(4):
            engine.submit(Request(request_id=rid, prompt_tokens=(1 + rid,),
                                  max_new_tokens=2, arrival_time=float(rid)))
        engine.cancel(1)
        remaining = [r.request_id for r in engine.queued_requests()]
        assert remaining == [0, 2, 3]
        report = engine.run()
        ok = [c for c in report.completed if c.ok]
        assert sorted(c.request.request_id for c in ok) == [0, 2, 3]


class TestCancelActive:
    @pytest.mark.parametrize("backend", BACKENDS, ids=["paged", "contiguous"])
    def test_cancel_just_after_prefill_reclaims_every_page(
            self, tiny_inference_model, backend):
        engine = make_engine(tiny_inference_model, **backend)
        engine.submit(Request(request_id=0, prompt_tokens=tuple(range(1, 11)),
                              max_new_tokens=30))
        engine.step()   # admits + prefills + one decode token
        assert engine.num_active == 1
        record = engine.cancel(0)
        assert record.finish_reason == "cancelled"
        assert record.admitted_time is not None
        assert engine.num_active == 0
        assert_clean_audit(engine)
        if backend["kv_backend"] == "paged":
            # prompt pages committed at prefill stay radix-owned (refcount 1,
            # evictable); everything else went back to the free list
            owned = set(engine.cache.index.owned_blocks())
            assert set(engine.cache.pool.allocated_blocks()) == owned
            assert all(engine.cache.pool.refcount(b) == 1 for b in owned)
        else:
            assert engine.cache.pages_in_use == 0

    @pytest.mark.parametrize("backend", BACKENDS, ids=["paged", "contiguous"])
    def test_cancel_mid_decode_frees_or_returns_pages_to_the_index(
            self, tiny_inference_model, backend):
        engine = make_engine(tiny_inference_model, **backend)
        engine.submit(Request(request_id=0, prompt_tokens=(2, 4, 6, 8), max_new_tokens=30))
        engine.submit(Request(request_id=1, prompt_tokens=(3, 5, 7), max_new_tokens=30))
        for _ in range(3):
            engine.step()
        assert engine.num_active == 2
        engine.cancel(0)
        # the survivor keeps decoding correctly after its neighbour vanishes
        assert engine.num_active == 1
        assert_clean_audit(engine)
        report = engine.run()
        ok = [c for c in report.completed if c.ok]
        assert [c.request.request_id for c in ok] == [1]
        assert_clean_audit(engine)

    def test_cancel_does_not_index_the_partial_generation(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, kv_backend="paged", kv_page_size=4)
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2, 3, 4, 5, 6, 7, 8),
                              max_new_tokens=20))
        engine.step()
        index_before = len(engine.cache.index)   # prompt pages committed at prefill
        engine.cancel(0)
        # cancellation must not add the partial generation's pages to the index
        assert len(engine.cache.index) <= index_before
        audit = engine.audit_kv_pages()
        assert audit["leaked"] == []
        # every surviving page is index-owned with refcount exactly 1
        for block in engine.cache.index.owned_blocks():
            assert engine.cache.pool.refcount(block) == 1

    @pytest.mark.parametrize("backend", BACKENDS, ids=["paged", "contiguous"])
    def test_cancel_reclaim_is_observable_via_pages_in_use(
            self, tiny_inference_model, backend):
        engine = make_engine(tiny_inference_model, **backend)
        engine.submit(Request(request_id=0, prompt_tokens=tuple(range(1, 9)),
                              max_new_tokens=30))
        engine.step()
        if backend["kv_backend"] == "paged":
            assert engine.cache.pages_in_use > 0
            owned = set(engine.cache.index.owned_blocks())
            active = {b for b in engine.cache._tables[0]}
            assert active  # the request genuinely holds pages before the cancel
        engine.cancel(0)
        if backend["kv_backend"] == "paged":
            for block in set(engine.cache.pool.allocated_blocks()):
                assert engine.cache.pool.refcount(block) == 1
                assert block in set(engine.cache.index.owned_blocks())
        else:
            assert engine.cache.lengths[0] == 0

    def test_cancel_unknown_or_finished_id_raises_key_error(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model)
        with pytest.raises(KeyError, match="never submitted"):
            engine.cancel(99)
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2), max_new_tokens=1))
        engine.run()
        with pytest.raises(KeyError):
            engine.cancel(0)

    def test_cancelled_requests_are_counted_but_not_in_percentiles(
            self, tiny_inference_model):
        engine = make_engine(tiny_inference_model)
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2), max_new_tokens=30))
        engine.submit(Request(request_id=1, prompt_tokens=(3, 4), max_new_tokens=2))
        engine.step()
        engine.cancel(0)
        report = engine.run()
        summary = report.summary()
        assert summary["cancelled"] == 1
        assert summary["requests"] == 1    # only the ok request
        assert np.isfinite(summary["latency_p50_ms"])


class TestDuplicateIds:
    def test_duplicate_id_rejected_with_clear_message(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model)
        engine.submit(Request(request_id=5, prompt_tokens=(1, 2), max_new_tokens=2))
        with pytest.raises(ValueError, match="duplicate request id 5"):
            engine.submit(Request(request_id=5, prompt_tokens=(3, 4), max_new_tokens=2))

    def test_id_stays_claimed_after_completion(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model)
        engine.submit(Request(request_id=5, prompt_tokens=(1, 2), max_new_tokens=1))
        engine.run()
        with pytest.raises(ValueError, match="duplicate request id"):
            engine.submit(Request(request_id=5, prompt_tokens=(3, 4), max_new_tokens=1))


class TestDeadlines:
    def test_queued_past_deadline_times_out_without_prefill(self, tiny_inference_model):
        # one slot: request 1 waits while 0 prefills 8 tokens (0.008 virtual
        # seconds at the default token rate), blowing its 0.002 deadline
        engine = make_engine(tiny_inference_model, max_batch_size=1)
        engine.submit(Request(request_id=0, prompt_tokens=tuple(range(1, 9)),
                              max_new_tokens=8))
        engine.submit(Request(request_id=1, prompt_tokens=(3, 5), max_new_tokens=4,
                              deadline=0.002))
        engine.submit(Request(request_id=2, prompt_tokens=(2, 4), max_new_tokens=2))
        report = engine.run()
        by_id = {c.request.request_id: c for c in report.completed}
        assert by_id[0].ok and by_id[2].ok
        timed = by_id[1]
        assert timed.finish_reason == "timeout"
        assert timed.admitted_time is None and timed.generated_tokens == ()
        assert report.summary()["timed_out"] == 1
        assert_clean_audit(engine)

    def test_decode_past_deadline_finishes_with_timeout_reason(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model)
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2, 3), max_new_tokens=50,
                              deadline=0.006))
        report = engine.run()
        (done,) = report.completed
        assert done.finish_reason == "timeout"
        assert 0 < len(done.generated_tokens) < 50
        assert_clean_audit(engine)
        assert report.summary()["timed_out"] == 1

    def test_timed_out_decode_still_indexes_its_valid_prefix(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, kv_backend="paged", kv_page_size=4)
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2, 3, 4), max_new_tokens=50,
                              deadline=0.006))
        engine.run()
        # a timeout's K/V is valid: its pages stay cached for prefix reuse
        assert len(engine.cache.index) > 0
        assert_clean_audit(engine)

    def test_non_finite_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            Request(request_id=0, prompt_tokens=(1,), deadline=float("nan"))
        with pytest.raises(ValueError, match="deadline"):
            Request(request_id=0, prompt_tokens=(1,), deadline=float("inf"))


class TestCallbacks:
    def test_on_admit_and_on_token_fire_in_order(self, tiny_inference_model):
        events = []
        engine = ServeEngine(
            tiny_inference_model, EngineConfig(max_batch_size=2),
            clock=VirtualClock(),
            on_admit=lambda rid, t: events.append(("admit", rid)),
            on_token=lambda rid, tok, t: events.append(("token", rid, tok)))
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2, 3), max_new_tokens=3))
        report = engine.run()
        (done,) = report.completed
        assert events[0] == ("admit", 0)
        streamed = [e[2] for e in events if e[0] == "token"]
        assert tuple(streamed) == done.generated_tokens
