"""Block pool, radix prefix index and paged-cache invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.kv_cache import KVCache, PagedKVCache
from repro.serve.paging import BlockPool, PoolExhaustedError, RadixIndex


@pytest.fixture
def pool(tiny_model_config):
    return BlockPool(tiny_model_config, num_blocks=16, page_size=4)


class TestBlockPool:
    def test_alloc_is_lowest_id_first_and_tracks_peak(self, pool):
        first, second = pool.alloc(), pool.alloc()
        assert (first, second) == (0, 1)
        assert pool.pages_in_use == 2 and pool.num_free == 14
        pool.release(first)
        assert pool.alloc() == 0  # freed page is reused, lowest id first
        assert pool.peak_pages_in_use == 2

    def test_refcounts_gate_the_free_list(self, pool):
        block = pool.alloc()
        pool.retain(block)
        pool.release(block)
        assert pool.refcount(block) == 1 and pool.num_free == 15
        pool.release(block)
        assert pool.refcount(block) == 0 and pool.num_free == 16

    def test_double_free_and_retain_of_free_block_raise(self, pool):
        block = pool.alloc()
        pool.release(block)
        with pytest.raises(ValueError, match="double free"):
            pool.release(block)
        with pytest.raises(ValueError, match="retain free"):
            pool.retain(block)

    def test_exhaustion_raises(self, tiny_model_config):
        pool = BlockPool(tiny_model_config, num_blocks=2, page_size=4)
        pool.alloc(), pool.alloc()
        assert pool.try_alloc() is None
        with pytest.raises(PoolExhaustedError):
            pool.alloc()

    def test_copy_block_clones_storage(self, pool, rng):
        block = pool.alloc()
        pool.k_store[0][block] = rng.standard_normal(pool.k_store[0][block].shape)
        clone = pool.copy_block(block)
        assert clone != block and pool.refcount(clone) == 1
        np.testing.assert_array_equal(pool.k_store[0][clone], pool.k_store[0][block])

    def test_invalid_shapes_rejected(self, tiny_model_config):
        with pytest.raises(ValueError, match="num_blocks"):
            BlockPool(tiny_model_config, num_blocks=0, page_size=4)
        with pytest.raises(ValueError, match="page_size"):
            BlockPool(tiny_model_config, num_blocks=4, page_size=0)


class TestBlockPoolStress:
    def test_randomized_alloc_fork_free_never_leaks_or_double_frees(
        self, tiny_model_config
    ):
        """Thousands of interleaved alloc/fork/free ops leave the pool clean.

        Invariants checked continuously: the tracked reference counts match
        the pool's, pages are never lost (free + in-use == capacity), and
        after retiring every holder the free list equals the capacity again.
        """
        pool = BlockPool(tiny_model_config, num_blocks=32, page_size=4)
        rng = np.random.default_rng(20260730)
        held = []  # one entry per outstanding reference
        for step in range(5000):
            action = rng.random()
            if action < 0.4 and pool.num_free:
                held.append(pool.alloc())
            elif action < 0.7 and held:
                # fork: share an existing reference (refcount + 1)
                held.append(pool.retain(held[int(rng.integers(len(held)))]))
            elif held:
                victim = int(rng.integers(len(held)))
                pool.release(held.pop(victim))
            if step % 500 == 0:
                expected = np.bincount(held, minlength=pool.capacity) if held else \
                    np.zeros(pool.capacity, dtype=np.int64)
                np.testing.assert_array_equal(pool._refcounts, expected)
                assert pool.num_free + len(set(held)) == pool.capacity
        for block in held:
            pool.release(block)
        assert pool.num_free == pool.capacity
        assert not pool._refcounts.any()
        assert sorted(pool._free) == list(range(pool.capacity))

    def test_stress_through_the_paged_cache_lifecycle(self, tiny_model_config):
        """Random begin/append/fork/retire/reset cycles leave no leaked pages."""
        cache = PagedKVCache(tiny_model_config, batch_size=4, max_seq_len=32,
                             page_size=4, num_blocks=48)
        rng = np.random.default_rng(7)
        lengths = [0, 0, 0, 0]

        def kv(n):
            shape = (1, tiny_model_config.n_heads, n, tiny_model_config.head_dim)
            return rng.standard_normal(shape), rng.standard_normal(shape)

        tokens = {row: () for row in range(4)}
        for _ in range(400):
            row = int(rng.integers(4))
            action = rng.random()
            if action < 0.35:
                prompt = tuple(int(t) for t in rng.integers(0, 16, size=rng.integers(2, 12)))
                cache.retire_request(row, tokens[row])
                matched = cache.begin_request(row, prompt)
                tokens[row] = prompt[:matched]
                lengths[row] = matched
            elif action < 0.7 and lengths[row] + 4 < 32:
                n = int(rng.integers(1, 4))
                k, v = kv(n)
                cache.append(0, [row], k, v)
                cache.append(1, [row], k, v)
                cache.advance([row], n)
                tokens[row] = tokens[row] + tuple(int(t) for t in rng.integers(0, 16, size=n))
                lengths[row] += n
            elif action < 0.85:
                other = int(rng.integers(4))
                cache.fork(row, other)
                tokens[other] = tokens[row]
                lengths[other] = lengths[row]
            else:
                cache.reset(rows=[row])
                tokens[row] = ()
                lengths[row] = 0
        for row in range(4):
            cache.reset(rows=[row])
        cache.index.clear()
        assert cache.pool.num_free == cache.pool.capacity
        assert not cache.pool._refcounts.any()


class TestRadixIndex:
    def test_match_is_full_pages_of_the_longest_prefix(self, pool):
        index = RadixIndex(pool)
        blocks = [pool.alloc(), pool.alloc(), pool.alloc()]
        tokens = tuple(range(12))  # 3 full pages of 4
        index.insert(tokens, blocks)
        assert len(index) == 3
        assert len(index.match(tokens)) == 3
        assert len(index.match(tokens[:11])) == 2          # partial page is not matched
        assert len(index.match(tokens, max_tokens=9)) == 2  # cap respects page bounds
        assert len(index.match((9, 9, 9, 9))) == 0

    def test_insert_takes_index_owned_references(self, pool):
        index = RadixIndex(pool)
        blocks = [pool.alloc(), pool.alloc()]
        index.insert(tuple(range(8)), blocks)
        assert [pool.refcount(b) for b in blocks] == [2, 2]
        for block in blocks:  # the caller retires: index refs keep pages alive
            pool.release(block)
        assert [pool.refcount(b) for b in blocks] == [1, 1]
        assert pool.num_free == 14

    def test_duplicate_insert_keeps_the_existing_chain(self, pool):
        index = RadixIndex(pool)
        first = [pool.alloc(), pool.alloc()]
        index.insert(tuple(range(8)), first)
        second = [pool.alloc(), pool.alloc()]
        inserted = index.insert(tuple(range(8)), second)
        assert inserted == 0 and len(index) == 2
        assert [pool.refcount(b) for b in second] == [1, 1]  # duplicates stay caller-owned

    def test_eviction_is_lru_and_leaf_first(self, pool):
        index = RadixIndex(pool)
        a = [pool.alloc(), pool.alloc()]
        b = [pool.alloc()]
        index.insert((0, 1, 2, 3, 4, 5, 6, 7), a)   # chain of two pages
        index.insert((9, 9, 9, 9), b)               # inserted later: more recent
        for block in a + b:
            pool.release(block)
        # acquire + release chain a (match alone is a pure peek): b becomes LRU
        for block in index.acquire(index.match((0, 1, 2, 3, 4, 5, 6, 7))):
            pool.release(block)
        assert index.evictable_blocks() == 3
        assert index.evict_one()
        assert len(index.match((9, 9, 9, 9))) == 0          # b went first (LRU)
        assert len(index.match((0, 1, 2, 3, 4, 5, 6, 7))) == 2
        assert index.evict_one()
        assert len(index.match((0, 1, 2, 3, 4, 5, 6, 7))) == 1  # leaf before parent
        assert index.evict_one() and not index.evict_one()
        assert pool.num_free == pool.capacity

    def test_acquired_chains_are_not_evictable(self, pool):
        index = RadixIndex(pool)
        blocks = [pool.alloc()]
        index.insert((1, 2, 3, 4), blocks)
        pool.release(blocks[0])  # the inserter retires: only the index holds it
        assert index.evictable_blocks() == 1
        nodes = index.match((1, 2, 3, 4, 5))
        acquired = index.acquire(nodes)  # an active request now holds the page
        assert index.evictable_blocks() == 0
        assert not index.evict_one()
        pool.release(acquired[0])  # the request retires: evictable again
        assert index.evictable_blocks() == 1 and index.evict_one()


class TestPagedKVCache:
    def _kv(self, config, batch, n_new, seed=0):
        rng = np.random.default_rng(seed)
        shape = (batch, config.n_heads, n_new, config.head_dim)
        return rng.standard_normal(shape), rng.standard_normal(shape)

    def test_append_context_round_trips_across_page_boundaries(self, tiny_model_config):
        cache = PagedKVCache(tiny_model_config, batch_size=2, page_size=4)
        k, v = self._kv(tiny_model_config, 2, 10)  # spans 3 pages
        for layer in range(tiny_model_config.n_layers):
            cache.append(layer, [0, 1], k, v)
        cache.advance([0, 1], 10)
        k_ctx, v_ctx = cache.context(0, [0, 1], 10)
        np.testing.assert_array_equal(k_ctx, k)
        np.testing.assert_array_equal(v_ctx, v)
        assert cache.pages_in_use == 6

    def test_matches_dense_cache_values_exactly(self, tiny_model_config):
        dense = KVCache(tiny_model_config, batch_size=1)
        paged = PagedKVCache(tiny_model_config, batch_size=1, page_size=4)
        for step, n_new in enumerate((7, 1, 1, 5)):
            k, v = self._kv(tiny_model_config, 1, n_new, seed=step)
            for layer in range(tiny_model_config.n_layers):
                dense.append(layer, [0], k, v)
                paged.append(layer, [0], k, v)
            dense.advance([0], n_new)
            paged.advance([0], n_new)
        for layer in range(tiny_model_config.n_layers):
            k_d, v_d = dense.context(layer, [0], 14)
            k_p, v_p = paged.context(layer, [0], 14)
            np.testing.assert_array_equal(k_p, k_d)
            np.testing.assert_array_equal(v_p, v_d)

    def test_prefix_reuse_skips_full_pages_only(self, tiny_model_config):
        cache = PagedKVCache(tiny_model_config, batch_size=2, page_size=4)
        prompt = tuple(range(10))
        cache.begin_request(0, prompt)
        k, v = self._kv(tiny_model_config, 1, 10)
        for layer in range(tiny_model_config.n_layers):
            cache.append(layer, [0], k, v)
        cache.advance([0], 10)
        cache.commit_prefix(0, prompt)
        assert cache.match_prefix(prompt) == 8          # 2 full pages of the 10
        assert cache.match_prefix(prompt[:9]) == 8
        assert cache.match_prefix(prompt[:8]) == 4      # must leave one token to prefill
        matched = cache.begin_request(1, prompt)
        assert matched == 8 and int(cache.lengths[1]) == 8
        k_ctx, _ = cache.context(0, [1], 8)
        np.testing.assert_array_equal(k_ctx[0], k[0, :, :8])

    def test_fork_shares_pages_and_copy_on_write_isolates_divergence(
        self, tiny_model_config
    ):
        cache = PagedKVCache(tiny_model_config, batch_size=2, page_size=4)
        k, v = self._kv(tiny_model_config, 1, 6)
        for layer in range(tiny_model_config.n_layers):
            cache.append(layer, [0], k, v)
        cache.advance([0], 6)
        cache.fork(0, 1)
        assert cache.pages_in_use == 2  # both rows address the same two pages
        k0, v0 = self._kv(tiny_model_config, 1, 1, seed=1)
        k1, v1 = self._kv(tiny_model_config, 1, 1, seed=2)
        for layer in range(tiny_model_config.n_layers):
            cache.append(layer, [0], k0, v0)
            cache.append(layer, [1], k1, v1)  # same position: must copy the shared page
        cache.advance([0, 1], 1)
        assert cache.pages_in_use == 3
        ctx0, _ = cache.context(0, [0], 7)
        ctx1, _ = cache.context(0, [1], 7)
        np.testing.assert_array_equal(ctx0[0, :, :6], ctx1[0, :, :6])
        assert not np.array_equal(ctx0[0, :, 6], ctx1[0, :, 6])

    def test_allocation_evicts_lru_cached_chains(self, tiny_model_config):
        cache = PagedKVCache(tiny_model_config, batch_size=1, max_seq_len=16,
                             page_size=4, num_blocks=4)
        prompt = tuple(range(9))
        cache.begin_request(0, prompt)
        k, v = self._kv(tiny_model_config, 1, 9)
        for layer in range(tiny_model_config.n_layers):
            cache.append(layer, [0], k, v)
        cache.advance([0], 9)
        cache.retire_request(0, prompt)
        assert cache.pages_in_use == 2 and len(cache.index) == 2
        # a fresh 16-token request needs all 4 pages: the cached chain must go
        cache.begin_request(0, tuple(range(20, 36)))
        k, v = self._kv(tiny_model_config, 1, 16, seed=3)
        for layer in range(tiny_model_config.n_layers):
            cache.append(layer, [0], k, v)
        cache.advance([0], 16)
        assert cache.pages_in_use == 4 and len(cache.index) == 0
        assert cache.match_prefix(prompt) == 0

    def test_memory_accounting_is_page_granular(self, tiny_model_config):
        cache = PagedKVCache(tiny_model_config, batch_size=1, page_size=4,
                             kv_spec="int8")
        assert cache.memory_bits() == 0.0
        k, v = self._kv(tiny_model_config, 1, 5)
        for layer in range(tiny_model_config.n_layers):
            cache.append(layer, [0], k, v)
        cache.advance([0], 5)
        assert cache.pages_in_use == 2
        assert cache.memory_bits() == pytest.approx(8 * cache.bits_per_token())
        assert cache.peak_memory_bits() == cache.memory_bits()
        assert cache.memory_efficiency() > 1.0

    def test_pool_too_small_for_one_sequence_rejected(self, tiny_model_config):
        with pytest.raises(ValueError, match="num_blocks"):
            PagedKVCache(tiny_model_config, batch_size=1, max_seq_len=32,
                         page_size=4, num_blocks=4)
