"""Scheduling invariants of the continuous-batching engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm.generation import GenerationConfig, generate_tokens
from repro.serve.engine import EngineConfig, Request, ServeEngine, VirtualClock
from repro.serve.workload import WorkloadConfig, generate_requests


def make_engine(model, clock=None, **kwargs):
    return ServeEngine(model, EngineConfig(**kwargs), clock=clock or VirtualClock())


class TestCorrectness:
    def test_single_greedy_request_matches_generate_tokens(self, tiny_inference_model):
        request = Request(request_id=0, prompt_tokens=(3, 5, 7), max_new_tokens=10)
        report = make_engine(tiny_inference_model, max_batch_size=1).run([request])
        (done,) = report.completed
        expected = generate_tokens(tiny_inference_model, [3, 5, 7],
                                   GenerationConfig(max_new_tokens=10))
        np.testing.assert_array_equal(done.tokens, expected)
        assert done.finish_reason == "length"

    def test_concurrent_greedy_requests_each_match_their_solo_decode(self, tiny_inference_model):
        prompts = ((1, 2, 3), (9, 8, 7, 6), (4, 4), (2, 6, 10, 14, 18))
        requests = [Request(request_id=i, prompt_tokens=p, max_new_tokens=8)
                    for i, p in enumerate(prompts)]
        report = make_engine(tiny_inference_model, max_batch_size=4).run(requests)
        assert len(report.completed) == len(prompts)
        for done in report.completed:
            solo = generate_tokens(tiny_inference_model,
                                   np.array(done.request.prompt_tokens),
                                   GenerationConfig(max_new_tokens=8))
            np.testing.assert_array_equal(done.tokens, solo)

    def test_sampled_requests_reproduce_generate_tokens_with_same_seed(self, tiny_inference_model):
        request = Request(request_id=0, prompt_tokens=(1, 2, 3), max_new_tokens=12,
                          temperature=1.0, top_k=8, seed=42)
        report = make_engine(tiny_inference_model, max_batch_size=1).run([request])
        expected = generate_tokens(
            tiny_inference_model, [1, 2, 3],
            GenerationConfig(max_new_tokens=12, temperature=1.0, top_k=8, seed=42))
        np.testing.assert_array_equal(report.completed[0].tokens, expected)

    def test_stop_token_terminates_early(self, tiny_inference_model):
        # discover the greedy continuation, then stop on its second new token
        greedy = generate_tokens(tiny_inference_model, [3, 5, 7],
                                 GenerationConfig(max_new_tokens=10))
        stop = int(greedy[4])  # second generated token
        request = Request(request_id=0, prompt_tokens=(3, 5, 7), max_new_tokens=10,
                          stop_token=stop)
        report = make_engine(tiny_inference_model, max_batch_size=1).run([request])
        (done,) = report.completed
        assert done.finish_reason == "stop_token"
        assert done.generated_tokens[-1] == stop
        assert len(done.generated_tokens) <= 10


class TestScheduling:
    def test_deterministic_under_fixed_seed_and_virtual_clock(self, tiny_inference_model):
        workload = WorkloadConfig(num_requests=12, arrival_rate=200.0,
                                  prompt_tokens=(3, 9), new_tokens=(2, 6),
                                  temperature=0.8, seed=11)
        outcomes = []
        for _ in range(2):
            requests = generate_requests(tiny_inference_model.config.vocab_size, workload)
            report = make_engine(tiny_inference_model, max_batch_size=3,
                                 token_budget=48).run(requests)
            outcomes.append([
                (d.request.request_id, d.generated_tokens, d.first_token_time, d.finish_time)
                for d in report.completed
            ])
        assert outcomes[0] == outcomes[1]

    def test_token_budget_respected_at_every_step(self, tiny_inference_model):
        budget = 30
        engine = make_engine(tiny_inference_model, max_batch_size=4, token_budget=budget)
        for i in range(8):
            engine.submit(Request(request_id=i, prompt_tokens=(1, 2, 3, 4, 5, 6),
                                  max_new_tokens=6))
        while engine.has_work:
            engine.step()
            assert engine.active_projected_tokens <= budget
        assert len(engine.report().completed) == 8

    def test_no_starvation_under_heavy_load(self, tiny_inference_model):
        # far more requests than slots, mixed sizes: everything must finish,
        # and admission must follow arrival order (FIFO, head-of-line blocking)
        workload = WorkloadConfig(num_requests=20, arrival_rate=500.0,
                                  prompt_tokens=(2, 12), new_tokens=(1, 8), seed=3)
        requests = generate_requests(tiny_inference_model.config.vocab_size, workload)
        engine = make_engine(tiny_inference_model, max_batch_size=2, token_budget=40)
        report = engine.run(requests, max_steps=1000)
        assert sorted(d.request.request_id for d in report.completed) == list(range(20))
        # pairwise FIFO: an earlier arrival is never admitted after a later one
        # (admissions within one step share a timestamp, hence <=)
        done = report.completed
        for a in done:
            for b in done:
                if a.request.arrival_time < b.request.arrival_time:
                    assert a.admitted_time <= b.admitted_time

    def test_idle_engine_fast_forwards_to_next_arrival(self, tiny_inference_model):
        clock = VirtualClock(time_per_token=1e-3)
        engine = make_engine(tiny_inference_model, clock=clock, max_batch_size=2)
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2), max_new_tokens=2,
                              arrival_time=5.0))
        report = engine.run()
        assert report.completed[0].first_token_time >= 5.0
        assert report.completed[0].time_to_first_token_s < 1.0

    def test_slots_are_recycled(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, max_batch_size=1)
        requests = [Request(request_id=i, prompt_tokens=(1 + i, 2), max_new_tokens=3)
                    for i in range(5)]
        report = engine.run(requests)
        assert len(report.completed) == 5
        assert report.peak_active == 1

    def test_report_counts_prefill_and_decode_tokens(self, tiny_inference_model):
        request = Request(request_id=0, prompt_tokens=(1, 2, 3, 4), max_new_tokens=5)
        report = make_engine(tiny_inference_model, max_batch_size=1).run([request])
        assert report.prefill_tokens == 4
        # first token comes from prefill; the remaining 4 from decode steps
        assert report.decode_tokens == 4
        summary = report.summary()
        assert summary["requests"] == 1
        assert summary["decode_tokens_per_s"] > 0


class TestValidation:
    def test_prompt_outside_vocabulary_rejected(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model)
        with pytest.raises(ValueError, match="vocabulary"):
            engine.submit(Request(request_id=0, prompt_tokens=(10_000,), max_new_tokens=2))

    def test_request_larger_than_slot_capacity_rejected(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, max_seq_len=8)
        with pytest.raises(ValueError, match="capacity"):
            engine.submit(Request(request_id=0, prompt_tokens=tuple(range(1, 7)),
                                  max_new_tokens=4))

    def test_request_larger_than_token_budget_rejected(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, token_budget=6)
        with pytest.raises(ValueError, match="budget"):
            engine.submit(Request(request_id=0, prompt_tokens=(1, 2, 3, 4), max_new_tokens=4))

    def test_invalid_request_fields_rejected(self):
        with pytest.raises(ValueError, match="at least one token"):
            Request(request_id=0, prompt_tokens=(), max_new_tokens=2)
        with pytest.raises(ValueError, match="max_new_tokens"):
            Request(request_id=0, prompt_tokens=(1,), max_new_tokens=0)

    def test_per_tensor_kv_quantisation_is_isolated_per_request(self, tiny_inference_model):
        """A request's tokens must not depend on who shares its decode batch.

        Per-tensor INT scales are computed per cache row, so an outlier-heavy
        co-batched request cannot coarsen another request's stored K/V.
        """
        target = Request(request_id=0, prompt_tokens=(3, 5, 7, 9), max_new_tokens=8)
        noisy = Request(request_id=1, prompt_tokens=(1, 1, 2, 2, 3, 3), max_new_tokens=8)
        solo = make_engine(tiny_inference_model, max_batch_size=1,
                           kv_spec="int8").run([target])
        together = make_engine(tiny_inference_model, max_batch_size=2,
                               kv_spec="int8").run([target, noisy])
        solo_tokens = solo.completed[0].generated_tokens
        batched_tokens = next(d for d in together.completed
                              if d.request.request_id == 0).generated_tokens
        assert solo_tokens == batched_tokens

    def test_quantised_kv_engine_still_terminates_and_is_valid(self, tiny_inference_model):
        requests = [Request(request_id=i, prompt_tokens=(1, 2, 3), max_new_tokens=6)
                    for i in range(3)]
        report = make_engine(tiny_inference_model, max_batch_size=3,
                             kv_spec="bfp8@b32").run(requests)
        assert report.kv_spec != "fp16"
        vocab = tiny_inference_model.config.vocab_size
        for done in report.completed:
            assert len(done.generated_tokens) == 6
            assert all(0 <= t < vocab for t in done.generated_tokens)


class TestExternalDriveHooks:
    """The introspection surface an external co-simulator (repro.cluster) steps by."""

    def test_queue_depth_and_num_active_track_the_lifecycle(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, max_batch_size=2)
        assert engine.queue_depth == 0 and engine.num_active == 0
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2), max_new_tokens=3))
        engine.submit(Request(request_id=1, prompt_tokens=(4, 5), max_new_tokens=3))
        assert engine.queue_depth == 2 and engine.num_active == 0
        engine.step()  # admits + prefills both, first decode
        assert engine.queue_depth == 0 and engine.num_active == 2
        while engine.has_work:
            engine.step()
        assert engine.queue_depth == 0 and engine.num_active == 0

    def test_projected_load_counts_active_and_queued_tokens(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, max_batch_size=1)
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2, 3), max_new_tokens=4))
        engine.submit(Request(request_id=1, prompt_tokens=(5, 6), max_new_tokens=2))
        assert engine.projected_load == 7 + 4
        engine.step()  # request 0 admitted (slot limit keeps 1 queued)
        assert engine.active_projected_tokens == 7
        assert engine.projected_load == 7 + 4

    def test_next_event_time_drives_event_ordering(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, max_batch_size=1)
        assert engine.next_event_time == float("inf")
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2), max_new_tokens=6,
                              arrival_time=0.5))
        assert engine.next_event_time == 0.5  # idle: the head-of-queue arrival
        engine.step()
        assert engine.next_event_time == engine.clock.now()  # decoding: now
        while engine.has_work:
            engine.step()
        assert engine.next_event_time == float("inf")


class TestWorkloadValidation:
    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError, match="temperature"):
            WorkloadConfig(temperature=-0.1)

    def test_negative_top_k_rejected(self):
        with pytest.raises(ValueError, match="top_k"):
            WorkloadConfig(top_k=-1)

    def test_zero_sampling_parameters_stay_valid(self):
        config = WorkloadConfig(temperature=0.0, top_k=0)
        assert config.temperature == 0.0 and config.top_k == 0
