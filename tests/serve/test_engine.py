"""Scheduling invariants of the continuous-batching engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm.generation import GenerationConfig, generate_tokens
from repro.serve.engine import EngineConfig, Request, ServeEngine, VirtualClock
from repro.serve.workload import WorkloadConfig, generate_requests


def make_engine(model, clock=None, **kwargs):
    return ServeEngine(model, EngineConfig(**kwargs), clock=clock or VirtualClock())


class TestCorrectness:
    def test_single_greedy_request_matches_generate_tokens(self, tiny_inference_model):
        request = Request(request_id=0, prompt_tokens=(3, 5, 7), max_new_tokens=10)
        report = make_engine(tiny_inference_model, max_batch_size=1).run([request])
        (done,) = report.completed
        expected = generate_tokens(tiny_inference_model, [3, 5, 7],
                                   GenerationConfig(max_new_tokens=10))
        np.testing.assert_array_equal(done.tokens, expected)
        assert done.finish_reason == "length"

    def test_concurrent_greedy_requests_each_match_their_solo_decode(self, tiny_inference_model):
        prompts = ((1, 2, 3), (9, 8, 7, 6), (4, 4), (2, 6, 10, 14, 18))
        requests = [Request(request_id=i, prompt_tokens=p, max_new_tokens=8)
                    for i, p in enumerate(prompts)]
        report = make_engine(tiny_inference_model, max_batch_size=4).run(requests)
        assert len(report.completed) == len(prompts)
        for done in report.completed:
            solo = generate_tokens(tiny_inference_model,
                                   np.array(done.request.prompt_tokens),
                                   GenerationConfig(max_new_tokens=8))
            np.testing.assert_array_equal(done.tokens, solo)

    def test_sampled_requests_reproduce_generate_tokens_with_same_seed(self, tiny_inference_model):
        request = Request(request_id=0, prompt_tokens=(1, 2, 3), max_new_tokens=12,
                          temperature=1.0, top_k=8, seed=42)
        report = make_engine(tiny_inference_model, max_batch_size=1).run([request])
        expected = generate_tokens(
            tiny_inference_model, [1, 2, 3],
            GenerationConfig(max_new_tokens=12, temperature=1.0, top_k=8, seed=42))
        np.testing.assert_array_equal(report.completed[0].tokens, expected)

    def test_stop_token_terminates_early(self, tiny_inference_model):
        # discover the greedy continuation, then stop on its second new token
        greedy = generate_tokens(tiny_inference_model, [3, 5, 7],
                                 GenerationConfig(max_new_tokens=10))
        stop = int(greedy[4])  # second generated token
        request = Request(request_id=0, prompt_tokens=(3, 5, 7), max_new_tokens=10,
                          stop_token=stop)
        report = make_engine(tiny_inference_model, max_batch_size=1).run([request])
        (done,) = report.completed
        assert done.finish_reason == "stop_token"
        assert done.generated_tokens[-1] == stop
        assert len(done.generated_tokens) <= 10


class TestScheduling:
    def test_deterministic_under_fixed_seed_and_virtual_clock(self, tiny_inference_model):
        workload = WorkloadConfig(num_requests=12, arrival_rate=200.0,
                                  prompt_tokens=(3, 9), new_tokens=(2, 6),
                                  temperature=0.8, seed=11)
        outcomes = []
        for _ in range(2):
            requests = generate_requests(tiny_inference_model.config.vocab_size, workload)
            report = make_engine(tiny_inference_model, max_batch_size=3,
                                 token_budget=48).run(requests)
            outcomes.append([
                (d.request.request_id, d.generated_tokens, d.first_token_time, d.finish_time)
                for d in report.completed
            ])
        assert outcomes[0] == outcomes[1]

    def test_token_budget_respected_at_every_step(self, tiny_inference_model):
        budget = 30
        engine = make_engine(tiny_inference_model, max_batch_size=4, token_budget=budget)
        for i in range(8):
            engine.submit(Request(request_id=i, prompt_tokens=(1, 2, 3, 4, 5, 6),
                                  max_new_tokens=6))
        while engine.has_work:
            engine.step()
            assert engine.active_projected_tokens <= budget
        assert len(engine.report().completed) == 8

    def test_no_starvation_under_heavy_load(self, tiny_inference_model):
        # far more requests than slots, mixed sizes: everything must finish,
        # and admission must follow arrival order (FIFO, head-of-line blocking)
        workload = WorkloadConfig(num_requests=20, arrival_rate=500.0,
                                  prompt_tokens=(2, 12), new_tokens=(1, 8), seed=3)
        requests = generate_requests(tiny_inference_model.config.vocab_size, workload)
        engine = make_engine(tiny_inference_model, max_batch_size=2, token_budget=40)
        report = engine.run(requests, max_steps=1000)
        assert sorted(d.request.request_id for d in report.completed) == list(range(20))
        # pairwise FIFO: an earlier arrival is never admitted after a later one
        # (admissions within one step share a timestamp, hence <=)
        done = report.completed
        for a in done:
            for b in done:
                if a.request.arrival_time < b.request.arrival_time:
                    assert a.admitted_time <= b.admitted_time

    def test_idle_engine_fast_forwards_to_next_arrival(self, tiny_inference_model):
        clock = VirtualClock(time_per_token=1e-3)
        engine = make_engine(tiny_inference_model, clock=clock, max_batch_size=2)
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2), max_new_tokens=2,
                              arrival_time=5.0))
        report = engine.run()
        assert report.completed[0].first_token_time >= 5.0
        assert report.completed[0].time_to_first_token_s < 1.0

    def test_slots_are_recycled(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, max_batch_size=1)
        requests = [Request(request_id=i, prompt_tokens=(1 + i, 2), max_new_tokens=3)
                    for i in range(5)]
        report = engine.run(requests)
        assert len(report.completed) == 5
        assert report.peak_active == 1

    def test_report_counts_prefill_and_decode_tokens(self, tiny_inference_model):
        request = Request(request_id=0, prompt_tokens=(1, 2, 3, 4), max_new_tokens=5)
        report = make_engine(tiny_inference_model, max_batch_size=1).run([request])
        assert report.prefill_tokens == 4
        # first token comes from prefill; the remaining 4 from decode steps
        assert report.decode_tokens == 4
        summary = report.summary()
        assert summary["requests"] == 1
        assert summary["decode_tokens_per_s"] > 0


class TestValidation:
    def test_prompt_outside_vocabulary_rejected(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model)
        with pytest.raises(ValueError, match="vocabulary"):
            engine.submit(Request(request_id=0, prompt_tokens=(10_000,), max_new_tokens=2))

    def test_request_larger_than_slot_capacity_rejected(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, max_seq_len=8)
        with pytest.raises(ValueError, match="capacity"):
            engine.submit(Request(request_id=0, prompt_tokens=tuple(range(1, 7)),
                                  max_new_tokens=4))

    def test_request_larger_than_token_budget_rejected(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, token_budget=6)
        with pytest.raises(ValueError, match="budget"):
            engine.submit(Request(request_id=0, prompt_tokens=(1, 2, 3, 4), max_new_tokens=4))

    def test_invalid_request_fields_rejected(self):
        with pytest.raises(ValueError, match="at least one token"):
            Request(request_id=0, prompt_tokens=(), max_new_tokens=2)
        with pytest.raises(ValueError, match="max_new_tokens"):
            Request(request_id=0, prompt_tokens=(1,), max_new_tokens=0)

    def test_per_tensor_kv_quantisation_is_isolated_per_request(self, tiny_inference_model):
        """A request's tokens must not depend on who shares its decode batch.

        Per-tensor INT scales are computed per cache row, so an outlier-heavy
        co-batched request cannot coarsen another request's stored K/V.
        """
        target = Request(request_id=0, prompt_tokens=(3, 5, 7, 9), max_new_tokens=8)
        noisy = Request(request_id=1, prompt_tokens=(1, 1, 2, 2, 3, 3), max_new_tokens=8)
        solo = make_engine(tiny_inference_model, max_batch_size=1,
                           kv_spec="int8").run([target])
        together = make_engine(tiny_inference_model, max_batch_size=2,
                               kv_spec="int8").run([target, noisy])
        solo_tokens = solo.completed[0].generated_tokens
        batched_tokens = next(d for d in together.completed
                              if d.request.request_id == 0).generated_tokens
        assert solo_tokens == batched_tokens

    def test_quantised_kv_engine_still_terminates_and_is_valid(self, tiny_inference_model):
        requests = [Request(request_id=i, prompt_tokens=(1, 2, 3), max_new_tokens=6)
                    for i in range(3)]
        report = make_engine(tiny_inference_model, max_batch_size=3,
                             kv_spec="bfp8@b32").run(requests)
        assert report.kv_spec != "fp16"
        vocab = tiny_inference_model.config.vocab_size
        for done in report.completed:
            assert len(done.generated_tokens) == 6
            assert all(0 <= t < vocab for t in done.generated_tokens)


class TestExternalDriveHooks:
    """The introspection surface an external co-simulator (repro.cluster) steps by."""

    def test_queue_depth_and_num_active_track_the_lifecycle(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, max_batch_size=2)
        assert engine.queue_depth == 0 and engine.num_active == 0
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2), max_new_tokens=3))
        engine.submit(Request(request_id=1, prompt_tokens=(4, 5), max_new_tokens=3))
        assert engine.queue_depth == 2 and engine.num_active == 0
        engine.step()  # admits + prefills both, first decode
        assert engine.queue_depth == 0 and engine.num_active == 2
        while engine.has_work:
            engine.step()
        assert engine.queue_depth == 0 and engine.num_active == 0

    def test_projected_load_counts_active_and_queued_tokens(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, max_batch_size=1)
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2, 3), max_new_tokens=4))
        engine.submit(Request(request_id=1, prompt_tokens=(5, 6), max_new_tokens=2))
        assert engine.projected_load == 7 + 4
        engine.step()  # request 0 admitted (slot limit keeps 1 queued)
        assert engine.active_projected_tokens == 7
        assert engine.projected_load == 7 + 4

    def test_next_event_time_drives_event_ordering(self, tiny_inference_model):
        engine = make_engine(tiny_inference_model, max_batch_size=1)
        assert engine.next_event_time == float("inf")
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2), max_new_tokens=6,
                              arrival_time=0.5))
        assert engine.next_event_time == 0.5  # idle: the head-of-queue arrival
        engine.step()
        assert engine.next_event_time == engine.clock.now()  # decoding: now
        while engine.has_work:
            engine.step()
        assert engine.next_event_time == float("inf")


class TestPagedEngine:
    """The paged KV backend: token identity, prefix reuse, block admission."""

    def _shared_prefix_requests(self, prefix_len=20, count=6, max_new=5):
        prefix = tuple(range(1, prefix_len + 1))
        return [Request(request_id=i, prompt_tokens=prefix + (30 + i, 31 + i),
                        max_new_tokens=max_new) for i in range(count)]

    def test_greedy_decode_is_token_identical_to_the_dense_cache(
        self, tiny_inference_model
    ):
        requests = self._shared_prefix_requests()
        reports = {
            backend: make_engine(tiny_inference_model, max_batch_size=3,
                                 kv_backend=backend, kv_page_size=4).run(requests)
            for backend in ("contiguous", "paged")
        }
        by_id = lambda report: sorted(report.completed,
                                      key=lambda c: c.request.request_id)
        for dense, paged in zip(by_id(reports["contiguous"]), by_id(reports["paged"])):
            assert dense.generated_tokens == paged.generated_tokens

    def test_prefix_hits_skip_prefill_and_cut_virtual_time(self, tiny_inference_model):
        requests = self._shared_prefix_requests(prefix_len=24)
        dense = make_engine(tiny_inference_model, max_batch_size=3,
                            kv_backend="contiguous").run(requests)
        paged = make_engine(tiny_inference_model, max_batch_size=3,
                            kv_backend="paged", kv_page_size=4).run(requests)
        assert paged.reused_tokens > 0
        assert paged.prefill_tokens + paged.reused_tokens == dense.prefill_tokens
        assert paged.kv_hit_rate > 0.5  # 24 of 26 prompt tokens shared
        assert paged.elapsed_s < dense.elapsed_s  # skipped prefill = skipped tokens
        assert dense.kv_hit_rate == 0.0 and dense.peak_pages_in_use == 0

    def test_quantised_paged_decode_matches_dense_for_block_formats(
        self, tiny_inference_model
    ):
        requests = self._shared_prefix_requests(count=4)
        dense = make_engine(tiny_inference_model, max_batch_size=2,
                            kv_backend="contiguous", kv_spec="bfp8@b32").run(requests)
        paged = make_engine(tiny_inference_model, max_batch_size=2,
                            kv_backend="paged", kv_page_size=4,
                            kv_spec="bfp8@b32").run(requests)
        for d, p in zip(sorted(dense.completed, key=lambda c: c.request.request_id),
                        sorted(paged.completed, key=lambda c: c.request.request_id)):
            assert d.generated_tokens == p.generated_tokens

    def test_page_size_at_least_max_seq_len_reproduces_dense_rows(
        self, tiny_inference_model
    ):
        """One page per slot = no full pages to share = the dense schedule."""
        workload = WorkloadConfig(num_requests=10, arrival_rate=150.0,
                                  prompt_tokens=(3, 9), new_tokens=(2, 6), seed=4)
        requests = generate_requests(tiny_inference_model.config.vocab_size, workload)
        seq = tiny_inference_model.config.max_seq_len
        dense = make_engine(tiny_inference_model, max_batch_size=3,
                            kv_backend="contiguous").run(requests)
        paged = make_engine(tiny_inference_model, max_batch_size=3,
                            kv_backend="paged", kv_page_size=seq).run(requests)
        paging_keys = ("peak_pages_in_use", "kv_peak_memory_mib")
        dense_summary = {k: v for k, v in dense.summary().items() if k not in paging_keys}
        paged_summary = {k: v for k, v in paged.summary().items() if k not in paging_keys}
        assert paged_summary == dense_summary

    def test_free_block_accounting_blocks_head_of_line_until_pages_free(
        self, tiny_inference_model
    ):
        # 8 pages of 4 = 32 token positions; each request projects 12 tokens
        # (3 pages), so only two fit concurrently despite 4 slots
        engine = make_engine(tiny_inference_model, max_batch_size=4,
                             kv_backend="paged", kv_page_size=4, num_kv_blocks=8,
                             max_seq_len=16)
        for i in range(5):
            engine.submit(Request(request_id=i,
                                  prompt_tokens=tuple(range(1 + i, 9 + i)),
                                  max_new_tokens=4))
        while engine.has_work:
            engine.step()
            assert engine.cache.pages_in_use <= 8
            assert engine.num_active <= 2
        assert len(engine.report().completed) == 5

    def test_prompt_beyond_positional_window_rejected_at_submit(
        self, tiny_inference_model
    ):
        engine = make_engine(tiny_inference_model, max_seq_len=8)
        with pytest.raises(ValueError, match="positional window"):
            engine.submit(Request(request_id=0, prompt_tokens=tuple(range(1, 11)),
                                  max_new_tokens=1))

    def test_paged_run_is_deterministic_under_virtual_clock(self, tiny_inference_model):
        workload = WorkloadConfig(num_requests=12, arrival_rate=200.0,
                                  prompt_tokens=(3, 9), new_tokens=(2, 6),
                                  temperature=0.7, seed=11)
        summaries = []
        for _ in range(2):
            requests = generate_requests(tiny_inference_model.config.vocab_size, workload)
            report = make_engine(tiny_inference_model, max_batch_size=3,
                                 kv_backend="paged", kv_page_size=4).run(requests)
            summaries.append((report.summary(),
                              [(c.request.request_id, c.generated_tokens,
                                c.first_token_time, c.finish_time)
                               for c in report.completed]))
        assert summaries[0] == summaries[1]

    def test_report_carries_the_paging_surface(self, tiny_inference_model):
        requests = self._shared_prefix_requests(count=3)
        report = make_engine(tiny_inference_model, max_batch_size=3,
                             kv_backend="paged", kv_page_size=4).run(requests)
        assert report.kv_backend == "paged" and report.kv_page_size == 4
        assert report.peak_pages_in_use > 0
        assert report.kv_peak_memory_bits > 0
        summary = report.summary()
        assert set(("kv_hit_rate", "peak_pages_in_use", "kv_peak_memory_mib")) <= \
            set(summary)


class TestWorkloadValidation:
    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError, match="temperature"):
            WorkloadConfig(temperature=-0.1)

    def test_negative_top_k_rejected(self):
        with pytest.raises(ValueError, match="top_k"):
            WorkloadConfig(top_k=-1)

    def test_zero_sampling_parameters_stay_valid(self):
        config = WorkloadConfig(temperature=0.0, top_k=0)
        assert config.temperature == 0.0 and config.top_k == 0
