"""The serve_bench driver: quantised-KV quality, rows, pipeline and CLI wiring."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.llm.perplexity import EvalConfig, evaluate_perplexity
from repro.serve.bench import clock_factory, kv_cached_perplexity, serve_bench
from repro.serve.engine import EngineConfig, VirtualClock, WallClock
from repro.serve.workload import WorkloadConfig

REPO_ROOT = Path(__file__).resolve().parents[2]

_EVAL = EvalConfig(batch_size=4, seq_len=32, max_batches=2)


class TestQuantisedKVPerplexity:
    def test_unquantised_kv_matches_the_offline_perplexity(
        self, tiny_inference_model, small_corpus
    ):
        offline = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        cached = kv_cached_perplexity(tiny_inference_model, small_corpus, kv_spec=None,
                                      eval_config=_EVAL)
        assert cached == pytest.approx(offline, rel=1e-9)

    def test_perplexity_degrades_monotonically_with_kv_precision(
        self, tiny_inference_model, small_corpus
    ):
        """Smoke: harsher KV quantisation can only hurt (int8 -> int4, bfp8 -> bfp4)."""
        ppl = {spec: kv_cached_perplexity(tiny_inference_model, small_corpus, kv_spec=spec,
                                          eval_config=_EVAL)
               for spec in (None, "int8", "int4", "bfp8@b32", "bfp4")}
        assert ppl["int4"] > ppl[None]
        assert ppl["int4"] > ppl["int8"]
        assert ppl["bfp4"] > ppl["bfp8@b32"]
        # 8-bit KV storage is near lossless on the tiny model
        assert ppl["int8"] == pytest.approx(ppl[None], rel=5e-3)
        assert ppl["bfp8@b32"] == pytest.approx(ppl[None], rel=5e-3)


class TestServeBenchRows:
    def test_rows_cover_every_spec_with_metrics(self, tiny_inference_model, small_corpus):
        rows = serve_bench(
            tiny_inference_model,
            kv_specs=(None, "int8"),
            workload=WorkloadConfig(num_requests=6, arrival_rate=100.0,
                                    prompt_tokens=(3, 8), new_tokens=(2, 5), seed=0),
            engine=EngineConfig(max_batch_size=3),
            corpus=small_corpus,
            eval_config=_EVAL,
        )
        assert [row["kv_cache"] for row in rows] == ["fp16", "INT8"]
        for row in rows:
            assert row["requests"] == 6
            for key in ("decode_tokens_per_s", "total_tokens_per_s", "ttft_p50_ms",
                        "ttft_p95_ms", "latency_p50_ms", "latency_p95_ms",
                        "kv_bits_per_token", "kv_perplexity"):
                assert np.isfinite(row[key]), key
        assert rows[1]["kv_bits_per_token"] < rows[0]["kv_bits_per_token"]
        assert rows[1]["kv_memory_efficiency"] > 1.0

    def test_every_spec_replays_the_identical_trace(self, tiny_inference_model):
        workload = WorkloadConfig(num_requests=5, arrival_rate=100.0,
                                  prompt_tokens=(3, 6), new_tokens=(2, 4), seed=1)
        rows = serve_bench(tiny_inference_model, kv_specs=(None, None),
                           workload=workload, engine=EngineConfig(max_batch_size=2))
        assert rows[0]["requests"] == rows[1]["requests"]
        assert rows[0]["kv_cache"] == rows[1]["kv_cache"] == "fp16"


class TestDeterministicClock:
    """The serve-bench clock option: virtual rows are machine-independent."""

    _WORKLOAD = WorkloadConfig(num_requests=6, arrival_rate=200.0,
                               prompt_tokens=(3, 8), new_tokens=(2, 5),
                               temperature=0.8, top_k=8, seed=2)

    def test_clock_factory_resolves_names_and_callables(self):
        assert clock_factory(None) is WallClock
        assert clock_factory("wall") is WallClock
        assert clock_factory("virtual") is VirtualClock
        factory = clock_factory(lambda: VirtualClock(2e-3))
        assert factory().time_per_token == 2e-3
        with pytest.raises(ValueError, match="unknown clock"):
            clock_factory("sundial")

    def test_virtual_clock_rows_are_identical_across_runs(self, tiny_inference_model):
        """Same seed + trace => byte-identical summary rows, run to run."""
        runs = [serve_bench(tiny_inference_model, kv_specs=(None, "int8"),
                            workload=self._WORKLOAD,
                            engine=EngineConfig(max_batch_size=3), clock="virtual")
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_trace_replay_is_invariant_across_kv_specs(self, tiny_inference_model):
        """Scheduling/latency columns depend only on the trace, not the KV spec.

        The fake-quantised cache stores dequantised values, so the virtual
        clock charges every spec the same token count: all scheduling-side
        columns must be bit-identical between specs, isolating the KV format
        to the memory/accuracy columns.
        """
        rows = serve_bench(tiny_inference_model, kv_specs=(None, "int8", "bfp8@b32"),
                           workload=self._WORKLOAD,
                           engine=EngineConfig(max_batch_size=3), clock="virtual")
        scheduling_keys = ("requests", "decode_tokens_per_s", "total_tokens_per_s",
                           "ttft_p50_ms", "ttft_p95_ms", "latency_p50_ms",
                           "latency_p95_ms", "peak_active")
        for row in rows[1:]:
            for key in scheduling_keys:
                assert row[key] == rows[0][key], key

    def test_driver_defaults_to_virtual_clock_in_fast_mode(self):
        from repro.serve.bench import run as serve_bench_run

        results = [serve_bench_run(fast=True, kv_specs=(None,), num_requests=4,
                                   arrival_rate=500.0) for _ in range(2)]
        assert results[0].metadata["clock"] == "virtual"
        assert results[0].rows == results[1].rows


class TestPipelineIntegration:
    def test_serve_bench_runs_under_the_cached_pipeline(self, tmp_path):
        """`repro run serve_bench` works: cached, manifest-tracked, resumable."""
        from repro.pipeline.run import run_experiments

        output_dir = tmp_path / "results"
        results = run_experiments(["serve_bench"], fast=True, output_dir=str(output_dir),
                                  jobs=1, verbose=False)
        assert "serve_bench" in results
        result = results["serve_bench"]
        assert len(result.rows) >= 2  # at least two KV-quantisation specs
        for row in result.rows:
            for key in ("ttft_p50_ms", "latency_p50_ms", "latency_p95_ms",
                        "decode_tokens_per_s"):
                assert np.isfinite(row[key])
        assert (output_dir / "serve-bench.json").exists()
        assert (output_dir / "manifest.json").exists()
        # second invocation must be served from the content-addressed cache
        second = run_experiments(["serve_bench"], fast=True,
                                 output_dir=str(tmp_path / "results2"), jobs=1,
                                 verbose=False)
        assert second["serve_bench"].rows == result.rows

    def test_model_dependency_is_declared_for_the_scheduler(self):
        from repro.experiments.common import experiment_model_specs

        assert experiment_model_specs("serve_bench", fast=True) == ("Llama-1B",)
        assert experiment_model_specs("serve_bench", fast=False) == ("Llama-7B",)

    def test_driver_is_registered_in_the_catalog(self):
        from repro.experiments.runner import EXPERIMENTS, experiment_descriptions

        assert "serve_bench" in EXPERIMENTS
        assert experiment_descriptions()["serve_bench"]


class TestCLISmoke:
    def _run_repro(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_FAST"] = "1"
        return subprocess.run([sys.executable, "-m", "repro", *args],
                              capture_output=True, text=True, timeout=300,
                              cwd=REPO_ROOT, env=env)

    def test_serve_bench_fast_subprocess(self, tmp_path):
        result = self._run_repro("serve-bench", "--fast", "--num-requests", "5",
                                 "--arrival-rate", "100", "--kv-specs", "fp16", "int8",
                                 "--output-dir", str(tmp_path / "out"))
        assert result.returncode == 0, result.stderr
        assert "Serve-Bench" in result.stdout
        assert "decode_tokens_per_s" in result.stdout
        assert "INT8" in result.stdout
        # overrides must not lose the accuracy column of the registered driver
        assert "kv_perplexity" in result.stdout
        assert (tmp_path / "out" / "serve-bench.json").exists()

    def test_unknown_kv_spec_is_a_clean_usage_error(self):
        result = self._run_repro("serve-bench", "--fast", "--kv-specs", "fancy13")
        assert result.returncode != 0
        assert "unknown format" in result.stderr
        assert "Traceback" not in result.stderr
