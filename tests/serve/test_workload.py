"""Shared-prefix and multi-turn trace generators (the prefix-reuse workloads)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.workload import (
    MultiTurnConfig,
    SharedPrefixConfig,
    WorkloadConfig,
    generate_multi_turn_requests,
    generate_requests,
    generate_shared_prefix_requests,
    generate_trace,
    validate_arrival_rate,
)

VOCAB = 64


class TestSharedPrefixTrace:
    _CONFIG = SharedPrefixConfig(num_requests=40, arrival_rate=50.0, num_prefixes=3,
                                 prefix_tokens=12, unique_tokens=(2, 6),
                                 new_tokens=(2, 5), shared_fraction=0.8, seed=5)

    def test_shared_fraction_of_prompts_draw_few_prefixes(self):
        requests = generate_shared_prefix_requests(VOCAB, self._CONFIG)
        assert len(requests) == 40
        prefixes = {}
        for request in requests:
            prefixes.setdefault(request.prompt_tokens[:12], []).append(request)
        shared = [group for group in prefixes.values() if len(group) > 1]
        shared_requests = sum(len(group) for group in shared)
        # ~80% of 40 requests land on the 3 shared prefixes
        assert len(shared) <= 3
        assert 0.6 * 40 <= shared_requests <= 0.95 * 40

    def test_prompt_shape_and_per_request_seeds(self):
        requests = generate_shared_prefix_requests(VOCAB, self._CONFIG)
        for request in requests:
            assert 12 + 2 <= len(request.prompt_tokens) <= 12 + 6
            assert all(0 <= t < VOCAB for t in request.prompt_tokens)
        assert len({r.seed for r in requests}) == len(requests)
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)

    def test_trace_is_deterministic(self):
        first = generate_shared_prefix_requests(VOCAB, self._CONFIG)
        second = generate_shared_prefix_requests(VOCAB, self._CONFIG)
        assert first == second

    def test_zero_shared_fraction_gives_private_prefixes(self):
        config = SharedPrefixConfig(num_requests=16, shared_fraction=0.0,
                                    prefix_tokens=8, seed=1)
        requests = generate_shared_prefix_requests(256, config)
        assert len({r.prompt_tokens[:8] for r in requests}) == 16

    def test_validation(self):
        with pytest.raises(ValueError, match="shared_fraction"):
            SharedPrefixConfig(shared_fraction=1.5)
        with pytest.raises(ValueError, match="num_prefixes"):
            SharedPrefixConfig(num_prefixes=0)
        with pytest.raises(ValueError, match="prefix_tokens"):
            SharedPrefixConfig(prefix_tokens=0)
        with pytest.raises(ValueError, match="unique_tokens"):
            SharedPrefixConfig(unique_tokens=(5, 2))
        with pytest.raises(ValueError, match="vocab_size"):
            generate_shared_prefix_requests(1, SharedPrefixConfig())


class TestMultiTurnTrace:
    _CONFIG = MultiTurnConfig(num_conversations=5, turns=(2, 4), arrival_rate=10.0,
                              think_time_s=0.2, system_tokens=6, user_tokens=(2, 5),
                              new_tokens=(2, 4), seed=3)

    def test_turns_extend_the_previous_prompt(self):
        requests = generate_multi_turn_requests(VOCAB, self._CONFIG)
        system = requests[0].prompt_tokens[:6]
        by_prefix = {}
        for request in requests:
            assert request.prompt_tokens[:6] == system  # one deployment-wide system prompt
            by_prefix.setdefault(request.prompt_tokens[:7], []).append(request)
        # group turns by conversation via their first user token, then check nesting
        conversations = [sorted(group, key=lambda r: len(r.prompt_tokens))
                         for group in by_prefix.values()]
        assert sum(len(c) for c in conversations) == len(requests)
        for turns in conversations:
            for earlier, later in zip(turns, turns[1:]):
                assert later.prompt_tokens[:len(earlier.prompt_tokens)] == \
                    earlier.prompt_tokens
                assert later.arrival_time > earlier.arrival_time

    def test_ids_are_unique_and_sorted_by_arrival(self):
        requests = generate_multi_turn_requests(VOCAB, self._CONFIG)
        assert [r.request_id for r in requests] == list(range(len(requests)))
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)

    def test_trace_is_deterministic(self):
        assert generate_multi_turn_requests(VOCAB, self._CONFIG) == \
            generate_multi_turn_requests(VOCAB, self._CONFIG)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_conversations"):
            MultiTurnConfig(num_conversations=0)
        with pytest.raises(ValueError, match="think_time_s"):
            MultiTurnConfig(think_time_s=-1.0)
        with pytest.raises(ValueError, match="turns"):
            MultiTurnConfig(turns=(3, 1))


class TestGenerateTrace:
    def test_dispatches_on_config_type(self):
        assert generate_trace(VOCAB, WorkloadConfig(num_requests=3)) == \
            generate_requests(VOCAB, WorkloadConfig(num_requests=3))
        assert generate_trace(VOCAB, SharedPrefixConfig(num_requests=3)) == \
            generate_shared_prefix_requests(VOCAB, SharedPrefixConfig(num_requests=3))
        assert generate_trace(VOCAB, MultiTurnConfig(num_conversations=2)) == \
            generate_multi_turn_requests(VOCAB, MultiTurnConfig(num_conversations=2))

    def test_unknown_config_type_rejected(self):
        with pytest.raises(TypeError, match="unsupported workload"):
            generate_trace(VOCAB, object())


class TestArrivalRateValidation:
    def test_negative_rate_rejected_everywhere(self):
        for make in (lambda r: WorkloadConfig(arrival_rate=r),
                     lambda r: SharedPrefixConfig(arrival_rate=r),
                     lambda r: MultiTurnConfig(arrival_rate=r)):
            with pytest.raises(ValueError, match="arrival_rate must be a finite"):
                make(-1.0)

    def test_non_finite_rate_rejected_with_useful_message(self):
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ValueError, match="requests/s"):
                WorkloadConfig(arrival_rate=bad)

    def test_zero_stays_the_closed_loop_burst_convention(self):
        requests = generate_requests(VOCAB, WorkloadConfig(num_requests=4,
                                                           arrival_rate=0.0))
        assert all(r.arrival_time == 0.0 for r in requests)

    def test_positive_mode_rejects_zero(self):
        validate_arrival_rate(8.0, positive=True)   # fine
        validate_arrival_rate(0.0)                  # closed-loop burst: fine
        with pytest.raises(ValueError, match="> 0"):
            validate_arrival_rate(0.0, positive=True)
