"""Engine telemetry: metric series, request spans, and decode-path profiling."""

from __future__ import annotations

import pytest

from repro.obs import Observability
from repro.serve.engine import EngineConfig, Request, ServeEngine, VirtualClock


def _engine(model, obs, **overrides):
    overrides.setdefault("max_batch_size", 2)
    overrides.setdefault("kv_backend", "paged")
    overrides.setdefault("kv_page_size", 4)
    return ServeEngine(model, EngineConfig(**overrides),
                       clock=VirtualClock(time_per_token=0.001), obs=obs)


def _requests(n=4, max_new_tokens=5):
    return [Request(request_id=index, prompt_tokens=[1 + index % 3, 2, 3, 4],
                    max_new_tokens=max_new_tokens, arrival_time=0.0)
            for index in range(n)]


class TestEngineMetrics:
    def test_token_and_finish_counters(self, tiny_inference_model):
        obs = Observability.enabled()
        engine = _engine(tiny_inference_model, obs)
        for request in _requests():
            engine.submit(request)
        report = engine.run()
        snap = obs.registry.snapshot()
        assert snap["engine_prefill_tokens_total"] == report.prefill_tokens
        assert snap["engine_decode_tokens_total"] == report.decode_tokens
        assert snap["engine_requests_finished_total{reason=length}"] == 4
        assert snap["engine_steps_total"] >= 1
        # terminal gauges: everything drained
        assert snap["engine_queue_depth"] == 0
        assert snap["engine_active_requests"] == 0

    def test_latency_histograms_record_each_request(self, tiny_inference_model):
        obs = Observability.enabled()
        engine = _engine(tiny_inference_model, obs)
        for request in _requests():
            engine.submit(request)
        engine.run()
        snap = obs.registry.snapshot()
        assert snap["engine_ttft_seconds"]["count"] == 4
        assert snap["engine_request_latency_seconds"]["count"] == 4
        assert snap["engine_ttft_seconds"]["sum"] > 0

    def test_prefix_reuse_counter(self, tiny_inference_model):
        obs = Observability.enabled()
        engine = _engine(tiny_inference_model, obs)
        prompt = [1, 2, 3, 4, 5, 6, 7, 8]
        engine.submit(Request(request_id=0, prompt_tokens=prompt,
                              max_new_tokens=3, arrival_time=0.0))
        engine.run()
        engine.submit(Request(request_id=1, prompt_tokens=prompt,
                              max_new_tokens=3, arrival_time=engine.clock.now()))
        engine.run()
        snap = obs.registry.snapshot()
        assert snap["engine_reused_tokens_total"] == engine.reused_tokens
        assert engine.reused_tokens > 0

    def test_disabled_obs_records_nothing(self, tiny_inference_model):
        engine = _engine(tiny_inference_model, None)
        for request in _requests():
            engine.submit(request)
        engine.run()
        assert engine.obs.registry.snapshot() == {}
        assert engine.obs.tracer is None


class TestEngineSpans:
    def test_three_spans_per_completed_request(self, tiny_inference_model):
        obs = Observability.enabled()
        engine = _engine(tiny_inference_model, obs)
        for request in _requests(n=3):
            engine.submit(request)
        engine.run()
        spans = [e for e in obs.tracer.events() if e["ph"] == "X"]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert {name: len(group) for name, group in by_name.items()} == {
            "queued": 3, "prefill": 3, "decode": 3}
        decode = by_name["decode"][0]
        assert decode["args"]["finish_reason"] == "length"
        assert decode["args"]["tokens"] == 5
        # lifecycle phases tile the request's latency on the engine clock
        for request_id in range(3):
            phases = sorted((s for s in spans
                             if s["args"]["request_id"] == request_id),
                            key=lambda s: s["ts"])
            for earlier, later in zip(phases, phases[1:]):
                assert earlier["ts"] + earlier["dur"] == later["ts"]

    def test_cancelled_queued_request_gets_single_queued_span(
            self, tiny_inference_model):
        obs = Observability.enabled()
        engine = _engine(tiny_inference_model, obs, max_batch_size=1)
        engine.submit(Request(request_id=0, prompt_tokens=[1, 2, 3],
                              max_new_tokens=32, arrival_time=0.0))
        engine.step()                       # admit 0; request 1 still queued
        engine.submit(Request(request_id=1, prompt_tokens=[1, 2, 3],
                              max_new_tokens=4,
                              arrival_time=engine.clock.now()))
        engine.cancel(1)
        spans = [e for e in obs.tracer.events() if e["ph"] == "X"
                 and e["args"].get("request_id") == 1]
        assert [s["name"] for s in spans] == ["queued"]
        assert spans[0]["args"]["finish_reason"] == "cancelled"
        snap = obs.registry.snapshot()
        assert snap["engine_requests_finished_total{reason=cancelled}"] == 1


class TestEngineProfiler:
    def test_all_phases_booked_on_a_quantised_paged_run(self, tiny_inference_model):
        obs = Observability.enabled()
        engine = _engine(tiny_inference_model, obs, kv_spec="bfp8@b32")
        for request in _requests():
            engine.submit(request)
        engine.run()
        phases = {row["phase"] for row in obs.profiler.hotspots()}
        assert phases == {"admission", "prefill_forward", "decode_forward",
                          "page_gather", "quantize_append", "sampling",
                          "release"}
        shares = [row["share"] for row in obs.profiler.hotspots()
                  if row["share"] is not None]
        assert sum(shares) == pytest.approx(1.0)

    def test_profiler_reaches_the_kv_cache(self, tiny_inference_model):
        obs = Observability.enabled()
        engine = _engine(tiny_inference_model, obs)
        assert engine.cache.profiler is obs.profiler

    def test_metric_labels_flow_from_the_bundle(self, tiny_inference_model):
        obs = Observability.enabled(labels={"replica": "r7"})
        engine = _engine(tiny_inference_model, obs)
        for request in _requests(n=1):
            engine.submit(request)
        engine.run()
        snap = obs.registry.snapshot()
        assert snap["engine_decode_tokens_total{replica=r7}"] > 0
