"""Tests for the pre-allocated (optionally quantised) K/V cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quant import get_quantizer
from repro.serve.kv_cache import KVCache


class TestConstruction:
    def test_starts_empty(self, tiny_model_config):
        cache = KVCache(tiny_model_config, batch_size=3)
        np.testing.assert_array_equal(cache.lengths, np.zeros(3, dtype=np.int64))
        assert cache.memory_bits() == 0.0
        assert cache.kv_spec == "fp16"

    def test_max_seq_len_defaults_to_model_limit(self, tiny_model_config):
        cache = KVCache(tiny_model_config, batch_size=1)
        assert cache.max_seq_len == tiny_model_config.max_seq_len

    def test_invalid_shapes_rejected(self, tiny_model_config):
        with pytest.raises(ValueError, match="batch_size"):
            KVCache(tiny_model_config, batch_size=0)
        with pytest.raises(ValueError, match="max_seq_len"):
            KVCache(tiny_model_config, batch_size=1,
                    max_seq_len=tiny_model_config.max_seq_len + 1)

    def test_unknown_kv_spec_raises(self, tiny_model_config):
        with pytest.raises(ValueError, match="unknown format"):
            KVCache(tiny_model_config, batch_size=1, kv_spec="fancy13")


class TestAppendAdvance:
    def _kv(self, config, batch, n_new, seed=0):
        rng = np.random.default_rng(seed)
        shape = (batch, config.n_heads, n_new, config.head_dim)
        return rng.standard_normal(shape), rng.standard_normal(shape)

    def test_append_then_context_round_trips(self, tiny_model_config):
        cache = KVCache(tiny_model_config, batch_size=2)
        k, v = self._kv(tiny_model_config, 2, 5)
        for layer in range(tiny_model_config.n_layers):
            cache.append(layer, [0, 1], k, v)
        cache.advance([0, 1], 5)
        k_ctx, v_ctx = cache.context(0, [0, 1], 5)
        np.testing.assert_array_equal(k_ctx, k)
        np.testing.assert_array_equal(v_ctx, v)
        np.testing.assert_array_equal(cache.lengths, [5, 5])

    def test_rows_are_independent(self, tiny_model_config):
        cache = KVCache(tiny_model_config, batch_size=3)
        k, v = self._kv(tiny_model_config, 1, 4)
        cache.append(0, [1], k, v)
        cache.advance([1], 4)
        np.testing.assert_array_equal(cache.lengths, [0, 4, 0])
        cache.reset(rows=[1])
        np.testing.assert_array_equal(cache.lengths, [0, 0, 0])

    def test_append_past_capacity_raises(self, tiny_model_config):
        cache = KVCache(tiny_model_config, batch_size=1, max_seq_len=4)
        k, v = self._kv(tiny_model_config, 1, 5)
        with pytest.raises(ValueError, match="overflows"):
            cache.append(0, [0], k, v)

    def test_advance_past_capacity_raises(self, tiny_model_config):
        cache = KVCache(tiny_model_config, batch_size=1, max_seq_len=4)
        with pytest.raises(ValueError, match="capacity"):
            cache.advance([0], 5)


class TestQuantisedStorage:
    def test_appended_values_are_fake_quantised(self, tiny_model_config):
        cache = KVCache(tiny_model_config, batch_size=1, kv_spec="int4")
        rng = np.random.default_rng(0)
        shape = (1, tiny_model_config.n_heads, 3, tiny_model_config.head_dim)
        k, v = rng.standard_normal(shape), rng.standard_normal(shape)
        cache.append(0, [0], k, v)
        cache.advance([0], 3)
        quantizer = get_quantizer("int4")
        k_ctx, v_ctx = cache.context(0, [0], 3)
        np.testing.assert_array_equal(k_ctx[0], quantizer.quantize_dequantize(k, axis=-1)[0])
        np.testing.assert_array_equal(v_ctx[0], quantizer.quantize_dequantize(v, axis=-1)[0])
        assert not np.array_equal(k_ctx[0], k[0])  # int4 storage is lossy

    def test_memory_accounting_follows_the_format(self, tiny_model_config):
        fp = KVCache(tiny_model_config, batch_size=1)
        q = KVCache(tiny_model_config, batch_size=1, kv_spec="int8")
        per_token_fp = 2 * tiny_model_config.n_layers * tiny_model_config.d_model * 16.0
        assert fp.bits_per_token() == pytest.approx(per_token_fp)
        bpe = get_quantizer("int8").bits_per_element()
        assert q.bits_per_token() == pytest.approx(
            2 * tiny_model_config.n_layers * tiny_model_config.d_model * bpe)
        assert q.memory_efficiency() == pytest.approx(16.0 / bpe)
        q.advance([0], 7)
        assert q.memory_bits() == pytest.approx(7 * q.bits_per_token())
