"""Repository hygiene: no bytecode artefacts tracked or left to shadow code.

A reverted change once left a stale ``src/repro/obs/__pycache__`` behind:
the package directory was deleted but its compiled bytecode survived, so
``import repro.obs`` kept resolving against code that no longer existed in
the tree.  These checks make that failure mode a test failure instead of a
debugging session — nothing under version control may be bytecode, and any
``.pyc`` on disk under ``src/`` must correspond to a source file that still
exists next to it.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def _tracked_files():
    out = subprocess.run(["git", "ls-files"], cwd=REPO_ROOT, check=True,
                         capture_output=True, text=True).stdout
    return [line for line in out.splitlines() if line]


def test_no_bytecode_is_tracked():
    offenders = [path for path in _tracked_files()
                 if "__pycache__" in path or path.endswith(".pyc")]
    assert offenders == [], f"bytecode artefacts under version control: {offenders}"


def test_gitignore_covers_pycache():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    assert "__pycache__" in gitignore


def test_no_orphaned_bytecode_under_src():
    """Every ``.pyc`` under ``src/`` must have a live source module.

    CPython names cache files ``<module>.<tag>.pyc`` inside ``__pycache__``;
    the module is orphaned when ``<module>.py`` no longer exists in the
    parent package — exactly the state a partial delete or revert leaves.
    """
    orphans = []
    for pyc in SRC.rglob("*.pyc"):
        if pyc.parent.name != "__pycache__":
            orphans.append(str(pyc))    # legacy-layout bytecode: never legitimate
            continue
        module = pyc.name.split(".")[0]
        if not (pyc.parent.parent / f"{module}.py").exists():
            orphans.append(str(pyc))
    assert orphans == [], f"orphaned bytecode shadowing deleted modules: {orphans}"
