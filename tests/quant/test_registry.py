"""Tests for the format registry, the spec-string grammar and memoization."""

from __future__ import annotations

import pytest

from repro.core.bbfp import BBFPConfig
from repro.core.bie import BiEConfig
from repro.core.blockfp import BFPConfig
from repro.core.floatspec import FP8_E4M3, FP16, FloatSpec
from repro.core.integer import Granularity, IntQuantConfig
from repro.core.microscaling import MXFP4, MXFP6_E3M2, MXConfig
from repro.quant import (
    Quantizer,
    UnknownFormatError,
    family_of,
    get_quantizer,
    list_formats,
    parse_spec,
    registered_families,
    spec_of,
)

#: Every example spec of every registered family (includes the lazy baselines).
ALL_EXAMPLE_SPECS = [
    spec for entry in list_formats() for spec in entry["example_specs"]
]

#: One representative config per core family, used by completeness checks.
CORE_CONFIGS = [
    BBFPConfig(4, 2),
    BFPConfig(6),
    IntQuantConfig(8),
    FP8_E4M3,
    MXFP4,
    BiEConfig(4),
]


class TestParseSpec:
    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("BBFP(4,2)", BBFPConfig(4, 2)),
            ("bbfp(6,3)", BBFPConfig(6, 3)),
            ("BBFP(4,2,4)", BBFPConfig(4, 2, exponent_bits=4)),
            ("bbfp(4,2)@b16", BBFPConfig(4, 2, block_size=16)),
            ("BFP6", BFPConfig(6)),
            ("bfp8@b32", BFPConfig(8)),
            ("bfp8@b16@e4", BFPConfig(8, block_size=16, exponent_bits=4)),
            ("int8", IntQuantConfig(8)),
            ("INT8@pc", IntQuantConfig(8, granularity=Granularity.PER_CHANNEL)),
            ("int4@b64", IntQuantConfig(4, granularity=Granularity.PER_BLOCK, block_size=64)),
            ("int8@c0.9", IntQuantConfig(8, clip_ratio=0.9)),
            ("fp16", FP16),
            ("FP8_E4M3", FP8_E4M3),
            ("fp8", FP8_E4M3),
            ("mxfp4", MXFP4),
            ("MXFP6", MXFP6_E3M2),
            ("mxfp6_e3m2", MXFP6_E3M2),
            ("bie4", BiEConfig(4)),
            ("BiE4(k=2)", BiEConfig(4)),
            ("bie6@k3", BiEConfig(6, outlier_count=3)),
        ],
    )
    def test_grammar(self, spec, expected):
        assert parse_spec(spec) == expected

    def test_whitespace_and_case_insensitive(self):
        assert parse_spec(" bBfP( 4 , 2 ) ") == BBFPConfig(4, 2)

    @pytest.mark.parametrize("spec", ["FANCY13", "", "fp7", "bbfp(4)", "int8@zz9",
                                      "mxfp6_e9m9", "fp8_e9m9",
                                      # config-level validation errors funnel in too
                                      "bfp0", "int1", "mxfp8@b0",
                                      # float / bare values where ints are required
                                      "bfp8@b2.5", "bbfp(4,2)@e3.7", "bfp8@b",
                                      # contradictory or unsupported combinations
                                      "int8@pc@b32", "bbfp(4,2,6)@e3", "fp16@b32"])
    def test_malformed_or_unknown_raises_one_error_type(self, spec):
        with pytest.raises(UnknownFormatError, match="unknown format"):
            parse_spec(spec)

    def test_did_you_mean_suggestion(self):
        with pytest.raises(UnknownFormatError, match=r"did you mean 'bbfp\(4,2\)'"):
            parse_spec("bbpf(4,2)")

    def test_malformed_spec_errors_name_the_original_spelling(self):
        with pytest.raises(UnknownFormatError, match=r"'int8@zz9'.*unsupported modifiers"):
            parse_spec("int8@zz9")

    def test_lossless_clip_ratio_spec(self):
        config = IntQuantConfig(8, clip_ratio=0.123456789)
        assert parse_spec(config.spec) == config
        tiny = IntQuantConfig(8, clip_ratio=1e-05)
        assert parse_spec(tiny.spec) == tiny

    def test_non_string_rejected(self):
        with pytest.raises(UnknownFormatError):
            parse_spec(1234)


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", ALL_EXAMPLE_SPECS)
    def test_parse_spec_of_canonical_spec_round_trips(self, spec):
        config = parse_spec(spec)
        assert parse_spec(spec_of(config)) == config

    @pytest.mark.parametrize("spec", ALL_EXAMPLE_SPECS)
    def test_quantizer_spec_matches_config_spec(self, spec):
        quantizer = get_quantizer(spec)
        assert quantizer.spec == spec_of(quantizer.config)
        assert parse_spec(quantizer.spec) == quantizer.config

    @pytest.mark.parametrize("config", CORE_CONFIGS, ids=lambda c: type(c).__name__)
    def test_config_spec_property(self, config):
        assert parse_spec(config.spec) == config

    def test_relabelled_specs_still_round_trip(self):
        # Display names are cosmetic: a FloatSpec (or MX element) with a
        # non-canonical label still gets a parseable, equal-config spec.
        relabelled = FloatSpec("E4M3", 4, 3)
        assert parse_spec(relabelled.spec) == relabelled
        assert relabelled == FP8_E4M3
        wrapped = MXConfig(FP16)
        assert wrapped.spec == "mxfp16_e5m10"
        assert parse_spec(wrapped.spec) == wrapped

    def test_non_default_fields_survive_the_round_trip(self):
        for config in (
            BBFPConfig(5, 2, block_size=16, exponent_bits=6),
            BFPConfig(7, block_size=8, exponent_bits=4),
            IntQuantConfig(6, granularity=Granularity.PER_BLOCK, block_size=16, clip_ratio=0.95),
            BiEConfig(5, outlier_count=4, block_size=16),
            MXConfig(FloatSpec("FP5_E2M2", 2, 2), block_size=16, scale_bits=6),
        ):
            assert parse_spec(config.spec) == config


class TestRegistry:
    def test_every_core_family_is_registered(self):
        families = registered_families()
        for family in ("bbfp", "bfp", "int", "minifloat", "mx", "bie"):
            assert family in families

    @pytest.mark.parametrize("config", CORE_CONFIGS, ids=lambda c: type(c).__name__)
    def test_every_core_config_type_dispatches(self, config):
        quantizer = get_quantizer(config)
        assert isinstance(quantizer, Quantizer)
        assert quantizer.config == config
        assert quantizer.bits_per_element() > 0

    def test_family_of(self):
        assert family_of(BBFPConfig(4, 2)) == "bbfp"
        assert family_of("mxfp8") == "mx"

    def test_list_formats_reports_example_specs(self):
        entries = {entry["family"]: entry for entry in list_formats()}
        assert "bbfp(4,2)" in entries["bbfp"]["example_specs"]
        assert entries["minifloat"]["config_type"] == "FloatSpec"

    def test_baseline_families_register_lazily(self):
        quantizer = get_quantizer("oltron4")
        assert quantizer.family == "oltron"
        assert get_quantizer("olive4").bits_per_element() == 4.0


class TestMemoization:
    def test_same_spec_returns_same_instance(self):
        assert get_quantizer("BBFP(4,2)") is get_quantizer("bbfp( 4,2 )")

    def test_config_and_spec_share_the_instance(self):
        assert get_quantizer(BBFPConfig(4, 2)) is get_quantizer("BBFP(4,2)")

    def test_quantizer_passthrough(self):
        quantizer = get_quantizer("bfp6")
        assert get_quantizer(quantizer) is quantizer

    def test_distinct_configs_get_distinct_instances(self):
        assert get_quantizer("bfp6") is not get_quantizer("bfp4")

    def test_relabelled_configs_keep_their_display_name(self):
        # Labels are excluded from config equality but the cache must not
        # merge them, or whichever label was seen first would win globally.
        canonical = get_quantizer(FP8_E4M3)
        custom = get_quantizer(FloatSpec("MyCustomFP8", 4, 3))
        assert canonical.name == "FP8_E4M3"
        assert custom.name == "MyCustomFP8"
        assert canonical is not custom
        assert canonical.config == custom.config
