"""Tests that registry dispatch is numerically identical to the legacy calls."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig, bbfp_quantize_dequantize
from repro.core.bie import BiEConfig, bie_quantize_dequantize
from repro.core.blockfp import BFPConfig, bfp_quantize_dequantize
from repro.core.floatspec import FP8_E4M3
from repro.core.fp_formats import minifloat_quantize_dequantize
from repro.core.integer import Granularity, IntQuantConfig, int_quantize_dequantize
from repro.core.microscaling import MXFP4, mx_quantize_dequantize
from repro.core.rounding import RoundingMode
from repro.quant import QuantizedTensor, get_quantizer


@pytest.fixture
def activation(rng):
    x = rng.standard_normal((4, 128))
    x[:, ::32] *= 25.0
    return x


LEGACY_EQUIVALENTS = [
    (BBFPConfig(4, 2), lambda x: bbfp_quantize_dequantize(x, BBFPConfig(4, 2), axis=-1)),
    (BFPConfig(6), lambda x: bfp_quantize_dequantize(x, BFPConfig(6), axis=-1)),
    (BiEConfig(4), lambda x: bie_quantize_dequantize(x, BiEConfig(4), axis=-1)),
    (IntQuantConfig(8), lambda x: int_quantize_dequantize(x, IntQuantConfig(8))),
    (FP8_E4M3, lambda x: minifloat_quantize_dequantize(x, FP8_E4M3)),
    (MXFP4, lambda x: mx_quantize_dequantize(x, MXFP4, axis=-1)),
]


class TestNumericalEquivalence:
    @pytest.mark.parametrize("config, legacy", LEGACY_EQUIVALENTS,
                             ids=lambda arg: getattr(arg, "name", ""))
    def test_quantize_dequantize_matches_legacy_free_function(self, activation, config, legacy):
        quantizer = get_quantizer(config)
        assert np.array_equal(quantizer.quantize_dequantize(activation, axis=-1),
                              legacy(activation))

    @pytest.mark.parametrize("config, legacy", LEGACY_EQUIVALENTS,
                             ids=lambda arg: getattr(arg, "name", ""))
    def test_encode_decode_matches_fused_path(self, activation, config, legacy):
        quantizer = get_quantizer(config)
        encoded = quantizer.quantize(activation, axis=-1)
        assert np.array_equal(encoded.dequantize(),
                              quantizer.quantize_dequantize(activation, axis=-1))

    def test_stochastic_rounding_threads_the_rng(self, activation):
        config = BBFPConfig(4, 2, rounding=RoundingMode.STOCHASTIC)
        quantizer = get_quantizer(config)
        a = quantizer.quantize_dequantize(activation, rng=np.random.default_rng(7))
        b = bbfp_quantize_dequantize(activation, config, rng=np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestQuantizedTensor:
    def test_container_reports_shape_spec_and_memory(self, activation):
        encoded = get_quantizer("BBFP(4,2)").quantize(activation)
        assert isinstance(encoded, QuantizedTensor)
        assert encoded.shape == activation.shape
        assert encoded.spec == "BBFP(4,2)"
        # m + sign + flag per element plus a 5-bit exponent per block of 32.
        elements = activation.size
        assert encoded.memory_bits() == elements * 6 + (elements // 32) * 5

    def test_int_payload_memory_accounts_for_scales(self, activation):
        per_block = IntQuantConfig(4, granularity=Granularity.PER_BLOCK, block_size=32)
        encoded = get_quantizer(per_block).quantize(activation, axis=-1)
        # 4 bits per code plus one FP16 scale per block of 32 — not per
        # element, even though int_quantize broadcasts the scale.
        blocks = activation.size // 32
        assert encoded.memory_bits() == activation.size * 4 + blocks * 16
        assert np.max(np.abs(encoded.dequantize() - activation)) < np.max(np.abs(activation))

    def test_per_tensor_int_stores_one_scale(self, activation):
        encoded = get_quantizer("int8").quantize(activation)
        assert encoded.memory_bits() == activation.size * 8 + 16

    def test_minifloat_payload_memory(self, activation):
        encoded = get_quantizer("fp8_e4m3").quantize(activation)
        assert encoded.memory_bits() == activation.size * 8

    def test_dequantize_restores_original_shape_along_any_axis(self, rng):
        x = rng.standard_normal((6, 40))
        for axis in (0, 1, -1):
            encoded = get_quantizer("bfp4").quantize(x, axis=axis)
            assert encoded.dequantize().shape == x.shape

    def test_int_per_block_blocks_along_requested_axis(self, rng):
        weight = rng.standard_normal((64, 8))
        weight[::16, :] *= 50.0
        per_block = IntQuantConfig(4, granularity=Granularity.PER_BLOCK, block_size=16)
        quantizer = get_quantizer(per_block)
        axis0 = quantizer.quantize_dequantize(weight, axis=0)
        axis_last = quantizer.quantize_dequantize(weight, axis=-1)
        assert np.array_equal(axis0, int_quantize_dequantize(weight.T, per_block).T)
        assert not np.array_equal(axis0, axis_last)


class TestSchemeIntegration:
    def test_scheme_from_spec_string_quantizes_along_the_right_axes(self, rng):
        from repro.llm.inference import QuantizationScheme

        scheme = QuantizationScheme.from_format("bbfp(4,2)")
        weight = rng.standard_normal((64, 8))
        expected = bbfp_quantize_dequantize(weight, BBFPConfig(4, 2), axis=0)
        assert np.array_equal(scheme.weight_fn("layer", weight), expected)

    def test_layerwise_scheme_accepts_spec_strings(self):
        from repro.search.layerwise import build_layerwise_scheme

        scheme = build_layerwise_scheme({"q_proj": "bfp6", "down_proj": "int8"})
        assert "BFP6" in scheme.name and "INT8" in scheme.name
