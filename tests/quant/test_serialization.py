"""Tests for ``to_dict`` / ``from_dict`` round-trips across the registry."""

from __future__ import annotations

import json

import pytest

from repro.core.bbfp import BBFPConfig
from repro.core.bie import BiEConfig
from repro.core.blockfp import BFPConfig
from repro.core.exponent_selection import ExponentStrategy
from repro.core.floatspec import FloatSpec
from repro.core.integer import Granularity, IntQuantConfig
from repro.core.microscaling import MXConfig
from repro.core.rounding import RoundingMode
from repro.core.serializable import SerializableConfig
from repro.quant import UnknownFormatError, config_from_dict, list_formats, parse_spec

#: Every example spec of every registered family.
ALL_EXAMPLE_SPECS = [
    spec for entry in list_formats() for spec in entry["example_specs"]
]

#: Configs exercising fields the spec grammar cannot express.
EXOTIC_CONFIGS = [
    BBFPConfig(4, 2, exponent_strategy=ExponentStrategy.BBFP_PLUS_ONE,
               rounding=RoundingMode.STOCHASTIC),
    BFPConfig(6, rounding=RoundingMode.TRUNCATE),
    IntQuantConfig(8, granularity=Granularity.PER_CHANNEL, clip_ratio=0.98),
    BiEConfig(4, rounding=RoundingMode.TRUNCATE),
    MXConfig(FloatSpec("FP5_E2M2", 2, 2), block_size=16, scale_bits=6),
]


class TestDictRoundTrip:
    @pytest.mark.parametrize("spec", ALL_EXAMPLE_SPECS)
    def test_every_registered_example_round_trips(self, spec):
        config = parse_spec(spec)
        payload = config.to_dict()
        assert payload["family"]
        assert config_from_dict(payload) == config

    @pytest.mark.parametrize("config", EXOTIC_CONFIGS, ids=lambda c: type(c).__name__)
    def test_fields_outside_the_spec_grammar_round_trip(self, config):
        assert config_from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("spec", ALL_EXAMPLE_SPECS)
    def test_payload_is_json_safe(self, spec):
        config = parse_spec(spec)
        payload = json.loads(json.dumps(config.to_dict()))
        assert config_from_dict(payload) == config

    def test_typed_from_dict_checks_the_family(self):
        payload = BBFPConfig(4, 2).to_dict()
        assert BBFPConfig.from_dict(payload) == BBFPConfig(4, 2)
        with pytest.raises(TypeError, match="BFPConfig"):
            BFPConfig.from_dict(payload)

    def test_untyped_from_dict_accepts_any_family(self):
        payload = IntQuantConfig(8).to_dict()
        assert SerializableConfig.from_dict(payload) == IntQuantConfig(8)

    def test_nested_element_config_round_trips(self):
        payload = parse_spec("mxfp4").to_dict()
        assert payload["element"]["family"] == "minifloat"
        assert config_from_dict(payload) == parse_spec("mxfp4")


class TestDictErrors:
    def test_missing_family_rejected(self):
        with pytest.raises(UnknownFormatError, match="family"):
            config_from_dict({"mantissa_bits": 4})

    def test_unknown_family_rejected(self):
        with pytest.raises(UnknownFormatError, match="unknown format"):
            config_from_dict({"family": "fancy"})

    def test_unknown_field_rejected(self):
        with pytest.raises(UnknownFormatError, match="unknown field"):
            config_from_dict({"family": "bfp", "mantissa_bits": 6, "bogus": 1})

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError):
            config_from_dict("bfp6")
