"""Property tests: spec and dict round-trips hold across the whole registry.

For every registered family, randomly generated configurations must satisfy

* ``parse_spec(config.spec) == config`` (the spec string is lossless for
  every field the grammar expresses), and
* ``config_from_dict(config.to_dict()) == config`` after a JSON round trip
  (the dictionary form is lossless for *all* fields).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bbfp import BBFPConfig
from repro.core.bie import BiEConfig
from repro.core.blockfp import BFPConfig
from repro.core.exponent_selection import ExponentStrategy
from repro.core.floatspec import FloatSpec
from repro.core.integer import Granularity, IntQuantConfig
from repro.core.microscaling import MXConfig
from repro.core.rounding import RoundingMode
from repro.quant import config_from_dict, parse_spec

_BLOCKS = st.sampled_from([1, 8, 16, 32, 64])
_EXP_BITS = st.integers(min_value=2, max_value=8)
#: Arbitrary clip ratios in (0, 1]; the spec grammar renders them with
#: ``repr`` (shortest exact decimal), so every float round-trips losslessly.
_CLIPS = st.floats(min_value=0.0, max_value=1.0, exclude_min=True, allow_nan=False)


@st.composite
def bbfp_configs(draw):
    m = draw(st.integers(min_value=2, max_value=10))
    return BBFPConfig(
        mantissa_bits=m,
        overlap_bits=draw(st.integers(min_value=0, max_value=m - 1)),
        block_size=draw(_BLOCKS),
        exponent_bits=draw(_EXP_BITS),
    )


@st.composite
def bfp_configs(draw):
    return BFPConfig(
        mantissa_bits=draw(st.integers(min_value=1, max_value=10)),
        block_size=draw(_BLOCKS),
        exponent_bits=draw(_EXP_BITS),
    )


@st.composite
def bie_configs(draw):
    block = draw(_BLOCKS)
    return BiEConfig(
        mantissa_bits=draw(st.integers(min_value=1, max_value=10)),
        outlier_count=draw(st.integers(min_value=0, max_value=block - 1)),
        block_size=block,
        exponent_bits=draw(_EXP_BITS),
    )


@st.composite
def int_configs(draw):
    granularity = draw(st.sampled_from(list(Granularity)))
    # block_size only participates in PER_BLOCK quantisation, so the spec
    # grammar only encodes it there; elsewhere keep the (irrelevant) default.
    block = draw(_BLOCKS) if granularity is Granularity.PER_BLOCK else 32
    return IntQuantConfig(
        bits=draw(st.integers(min_value=2, max_value=16)),
        granularity=granularity,
        block_size=block,
        clip_ratio=draw(_CLIPS),
    )


@st.composite
def minifloat_specs(draw):
    e = draw(st.integers(min_value=2, max_value=8))
    m = draw(st.integers(min_value=1, max_value=10))
    return FloatSpec(f"FP{1 + e + m}_E{e}M{m}", exponent_bits=e, mantissa_bits=m)


@st.composite
def mx_configs(draw):
    return MXConfig(
        element=draw(minifloat_specs()),
        block_size=draw(_BLOCKS),
        scale_bits=draw(_EXP_BITS),
    )


ANY_CONFIG = st.one_of(bbfp_configs(), bfp_configs(), bie_configs(),
                       int_configs(), minifloat_specs(), mx_configs())


@settings(max_examples=200, deadline=None)
@given(config=ANY_CONFIG)
def test_spec_string_round_trip(config):
    assert parse_spec(config.spec) == config


@settings(max_examples=200, deadline=None)
@given(config=ANY_CONFIG)
def test_dict_round_trip_through_json(config):
    payload = json.loads(json.dumps(config.to_dict()))
    assert config_from_dict(payload) == config


@settings(max_examples=100, deadline=None)
@given(
    config=bbfp_configs(),
    strategy=st.sampled_from([s for s in ExponentStrategy if s is not ExponentStrategy.MAX_MINUS_K]),
    rounding=st.sampled_from(list(RoundingMode)),
)
def test_dict_round_trip_keeps_fields_outside_the_grammar(config, strategy, rounding):
    exotic = BBFPConfig(
        config.mantissa_bits, config.overlap_bits, config.block_size,
        config.exponent_bits, exponent_strategy=strategy, rounding=rounding,
    )
    rebuilt = config_from_dict(json.loads(json.dumps(exotic.to_dict())))
    assert rebuilt == exotic
    assert rebuilt.exponent_strategy is strategy
    assert rebuilt.rounding is rounding
