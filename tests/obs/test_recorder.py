"""Flight recorder and the invariant-violation forensics path."""

from __future__ import annotations

import json

import pytest

from repro.obs.recorder import (FlightRecorder, InvariantViolation,
                                invariant_violation)


class TestFlightRecorder:
    def test_ring_is_bounded_and_keeps_the_newest(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.record(float(index), "dispatch", request_id=index)
        assert len(recorder) == 3
        assert recorder.recorded == 5
        assert [event["request_id"] for event in recorder.events()] == [2, 3, 4]

    def test_last_n_oldest_first(self):
        recorder = FlightRecorder()
        for index in range(4):
            recorder.record(float(index), "step")
        assert [e["t"] for e in recorder.last(2)] == [2.0, 3.0]
        assert len(recorder.last(100)) == 4
        with pytest.raises(ValueError):
            recorder.last(-1)

    def test_events_are_copies(self):
        recorder = FlightRecorder()
        recorder.record(0.0, "fault", kind_detail="crash")
        recorder.events()[0]["kind_detail"] = "mutated"
        assert recorder.events()[0]["kind_detail"] == "crash"

    def test_write_dumps_loadable_json(self, tmp_path):
        recorder = FlightRecorder(capacity=2)
        recorder.record(1.0, "reroute", attempt=1)
        path = tmp_path / "recorder.json"
        recorder.write(path)
        doc = json.loads(path.read_text())
        assert doc["capacity"] == 2
        assert doc["events"][0]["kind"] == "reroute"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestInvariantViolation:
    def test_is_a_runtime_error_so_existing_handlers_keep_working(self):
        assert issubclass(InvariantViolation, RuntimeError)

    def test_message_carries_the_recorder_tail(self):
        recorder = FlightRecorder()
        for index in range(8):
            recorder.record(float(index), "dispatch", request_id=index)
        error = invariant_violation("conservation failed: 1 request unaccounted",
                                    recorder)
        message = str(error)
        assert message.startswith("conservation failed")
        assert "8 events retained, last 5" in message
        assert "dispatch request_id=7" in message
        assert len(error.flight_recorder) == 8

    def test_without_recorder_message_is_clean(self):
        error = invariant_violation("kv pages leaked")
        assert str(error) == "kv pages leaked"
        assert error.flight_recorder == []

    def test_write_dump(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record(0.5, "fault:crash", replica_id=1)
        error = invariant_violation("boom", recorder)
        path = tmp_path / "dump.json"
        error.write_dump(path)
        events = json.loads(path.read_text())["events"]
        assert events == [{"t": 0.5, "kind": "fault:crash", "replica_id": 1}]
