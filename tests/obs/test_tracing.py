"""Span tracer: event ordering, JSON export, and the schema validator."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracing import (TRACE_PID, SpanTracer, TraceSchemaError,
                               validate_trace)


def _sample_tracer() -> SpanTracer:
    tracer = SpanTracer()
    tracer.name_track(0, "router")
    tracer.name_track(1, "replica 0")
    tracer.complete("queued", 0.0, 0.001, track=1, args={"request_id": 0})
    tracer.complete("decode", 0.001, 0.004, track=1)
    tracer.instant("fault:crash", 0.002, track=0, args={"replica_id": 1})
    return tracer


class TestSpanTracer:
    def test_events_put_metadata_first_then_sorted_by_ts(self):
        events = _sample_tracer().events()
        assert [e["ph"] for e in events] == ["M", "M", "X", "X", "i"]
        assert events[0]["args"] == {"name": "router"}
        body = events[2:]
        assert [e["ts"] for e in body] == sorted(e["ts"] for e in body)
        assert all("_seq" not in e for e in events)

    def test_timestamps_are_integer_microseconds(self):
        events = _sample_tracer().events()
        span = events[2]
        assert span == {"name": "queued", "ph": "X", "ts": 0, "dur": 1000,
                        "pid": TRACE_PID, "tid": 1, "args": {"request_id": 0}}

    def test_equal_ts_events_keep_emit_order(self):
        tracer = SpanTracer()
        tracer.instant("first", 1.0)
        tracer.instant("second", 1.0)
        names = [e["name"] for e in tracer.events()]
        assert names == ["first", "second"]

    def test_backwards_span_raises(self):
        with pytest.raises(ValueError, match="ends .* before it starts"):
            SpanTracer().complete("bad", 2.0, 1.0)

    def test_to_json_round_trips_and_validates(self):
        doc = json.loads(_sample_tracer().to_json())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        stats = validate_trace(doc)
        assert stats["events"] == 5
        assert stats["tracks"][(1, 1)] == {"spans": 2, "instants": 0,
                                           "first_ts": 0, "last_ts": 4000}
        assert stats["names"]["decode"] == {"count": 1, "total_us": 3000}

    def test_write_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        _sample_tracer().write(path)
        assert validate_trace(json.loads(path.read_text()))["events"] == 5


class TestValidateTrace:
    def test_rejects_document_without_trace_events(self):
        with pytest.raises(TraceSchemaError, match="traceEvents"):
            validate_trace({"foo": []})

    def test_rejects_non_list(self):
        with pytest.raises(TraceSchemaError, match="must be a list"):
            validate_trace("nope")

    def test_rejects_missing_required_keys(self):
        with pytest.raises(TraceSchemaError, match="missing 'tid'"):
            validate_trace([{"name": "x", "ph": "i", "pid": 1, "ts": 0}])

    def test_rejects_unknown_phase(self):
        with pytest.raises(TraceSchemaError, match="unknown phase"):
            validate_trace([{"name": "x", "ph": "B", "pid": 1, "tid": 0,
                             "ts": 0}])

    def test_rejects_float_timestamps(self):
        with pytest.raises(TraceSchemaError, match="integer 'ts'"):
            validate_trace([{"name": "x", "ph": "i", "pid": 1, "tid": 0,
                             "ts": 0.5}])

    def test_rejects_negative_duration(self):
        with pytest.raises(TraceSchemaError, match="non-negative integer 'dur'"):
            validate_trace([{"name": "x", "ph": "X", "pid": 1, "tid": 0,
                             "ts": 0, "dur": -1}])

    def test_rejects_per_track_ts_regression(self):
        events = [
            {"name": "a", "ph": "i", "pid": 1, "tid": 0, "ts": 10},
            {"name": "b", "ph": "i", "pid": 1, "tid": 0, "ts": 5},
        ]
        with pytest.raises(TraceSchemaError, match="monotonicity"):
            validate_trace(events)

    def test_separate_tracks_have_independent_timelines(self):
        events = [
            {"name": "a", "ph": "i", "pid": 1, "tid": 0, "ts": 10},
            {"name": "b", "ph": "i", "pid": 1, "tid": 1, "ts": 5},
        ]
        stats = validate_trace(events)
        assert set(stats["tracks"]) == {(1, 0), (1, 1)}
