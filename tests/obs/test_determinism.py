"""Determinism of telemetry under virtual clocks, and the chaos-trace export.

The contract the docs promise: telemetry derived from virtual-clock
timestamps — metric snapshots and trace exports — is a pure function of the
schedule, so two identical runs serialise byte-identically.  (The phase
profiler is deliberately excluded: it times *real* compute with
``perf_counter`` and is expected to vary run to run.)
"""

from __future__ import annotations

import json

from repro.cluster.chaos_bench import export_chaos_trace
from repro.obs import Observability, validate_trace
from repro.serve.engine import EngineConfig, Request, ServeEngine, VirtualClock
from repro.serve.workload import WorkloadConfig


def _run_engine_schedule():
    obs = Observability.enabled()
    engine = ServeEngine(
        tiny_model(),
        EngineConfig(max_batch_size=2, kv_backend="paged", kv_page_size=4),
        clock=VirtualClock(time_per_token=0.001),
        obs=obs,
    )
    for index in range(6):
        engine.submit(Request(request_id=index,
                              prompt_tokens=[1 + index % 3, 2, 3, 4],
                              max_new_tokens=5, arrival_time=0.002 * index))
    engine.run()
    return obs


_MODEL = None


def tiny_model():
    """One shared tiny model so both runs execute identical weights."""
    global _MODEL
    if _MODEL is None:
        from repro.llm.config import ModelConfig
        from repro.llm.inference import InferenceModel
        from repro.llm.transformer import TransformerLM

        config = ModelConfig(name="det", vocab_size=32, d_model=32, n_heads=4,
                             n_layers=2, d_ff=64, max_seq_len=32, arch="llama",
                             seed=0)
        _MODEL = InferenceModel(config, TransformerLM(config).state_dict())
    return _MODEL


def test_identical_runs_serialise_byte_identically():
    first, second = _run_engine_schedule(), _run_engine_schedule()
    snap_a = json.dumps(first.registry.snapshot(), sort_keys=True)
    snap_b = json.dumps(second.registry.snapshot(), sort_keys=True)
    assert snap_a == snap_b
    assert snap_a != "{}"   # the runs really recorded something
    assert first.tracer.to_json() == second.tracer.to_json()
    assert len(first.tracer.events()) > 0


def test_engine_profiler_times_real_compute_not_virtual_time():
    obs = _run_engine_schedule()
    hot = {row["phase"]: row for row in obs.profiler.hotspots()}
    # virtual seconds per token is 1ms; real decode forward on a tiny model
    # is far from that — nonzero wall time booked per call proves the
    # profiler read perf_counter, not the engine clock
    assert hot["decode_forward"]["calls"] > 0
    assert hot["decode_forward"]["total_s"] > 0.0
    assert "admission" in hot and "release" in hot and "sampling" in hot


def test_chaos_export_is_schema_valid_and_deterministic(tiny_inference_model,
                                                        tmp_path):
    workload = WorkloadConfig(num_requests=10, prompt_tokens=(4, 8),
                              new_tokens=(3, 6), seed=1)

    def export(path):
        report, obs = export_chaos_trace(tiny_inference_model, path,
                                         workload=workload, num_replicas=2,
                                         seed=0)
        return report, obs, json.loads(path.read_text())

    report, obs, doc = export(tmp_path / "a.json")
    stats = validate_trace(doc)
    # the single shared timeline: router instants + every replica's spans
    track_names = {event["tid"]: event["args"]["name"]
                   for event in doc["traceEvents"] if event["ph"] == "M"}
    assert track_names[0] == "router"
    assert any(name.startswith("replica") for name in track_names.values())
    assert stats["names"]["fault:crash"]["count"] >= 1
    assert "queued" in stats["names"] and "decode" in stats["names"]
    router = stats["tracks"][(1, 0)]
    assert router["instants"] >= 1
    # a second identical export must serialise byte-identically
    _report2, _obs2, doc2 = export(tmp_path / "b.json")
    assert (tmp_path / "a.json").read_text() == (tmp_path / "b.json").read_text()
    assert doc == doc2


def test_chaos_export_crash_repair_appears_as_scale_up(tiny_inference_model,
                                                       tmp_path):
    workload = WorkloadConfig(num_requests=10, prompt_tokens=(4, 8),
                              new_tokens=(3, 6), seed=1)
    path = tmp_path / "trace.json"
    report, obs = export_chaos_trace(tiny_inference_model, path,
                                     workload=workload, num_replicas=2, seed=0)
    stats = validate_trace(json.loads(path.read_text()))
    summary = report.summary()
    if summary["faults_injected"] and summary["scale_ups"]:
        # repair replicas get their own named tracks on the shared timeline
        assert "scale:up" in stats["names"]
        assert len(stats["tracks"]) > 2     # router + original fleet + repairs
    # regardless of the schedule drawn, nothing may be lost or leaked
    assert summary["requests_lost"] == 0
    assert summary["kv_leaked_pages"] == 0
