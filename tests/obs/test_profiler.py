"""Decode-path phase profiler: slots, shares, and the ranked table."""

from __future__ import annotations

import pytest

from repro.obs.profiler import (ADMISSION, DECODE_FORWARD, PAGE_GATHER,
                                PHASES, QUANT_APPEND, SAMPLING, PhaseProfiler)


def test_add_accumulates_per_slot():
    prof = PhaseProfiler()
    prof.add(DECODE_FORWARD, 0.2)
    prof.add(DECODE_FORWARD, 0.3)
    prof.add(SAMPLING, 0.1)
    assert prof.total_s[DECODE_FORWARD] == pytest.approx(0.5)
    assert prof.calls[DECODE_FORWARD] == 2
    assert prof.calls[SAMPLING] == 1


def test_nested_phases_are_excluded_from_the_share_basis():
    prof = PhaseProfiler()
    prof.add(DECODE_FORWARD, 0.8)
    prof.add(SAMPLING, 0.2)
    prof.add(PAGE_GATHER, 0.5)      # inside the forward: not extra wall time
    prof.add(QUANT_APPEND, 0.1)
    assert prof.top_level_s == pytest.approx(1.0)
    rows = {row["phase"]: row for row in prof.hotspots()}
    assert rows["decode_forward"]["share"] == pytest.approx(0.8)
    assert rows["sampling"]["share"] == pytest.approx(0.2)
    assert rows["page_gather"]["share"] is None
    assert rows["page_gather"]["within"] == "forward"
    assert rows["decode_forward"]["within"] == "step"


def test_hotspots_ranked_hottest_first_and_omit_unhit_phases():
    prof = PhaseProfiler()
    prof.add(SAMPLING, 0.1)
    prof.add(DECODE_FORWARD, 0.9)
    rows = prof.hotspots()
    assert [row["phase"] for row in rows] == ["decode_forward", "sampling"]
    assert rows[0]["mean_us"] == pytest.approx(0.9e6)
    assert len(rows) == 2   # untouched phases do not appear


def test_merge_folds_fleet_profilers():
    a, b = PhaseProfiler(), PhaseProfiler()
    a.add(ADMISSION, 0.1)
    b.add(ADMISSION, 0.2)
    b.add(SAMPLING, 0.3)
    a.merge(b)
    assert a.total_s[ADMISSION] == pytest.approx(0.3)
    assert a.calls[ADMISSION] == 2
    assert a.calls[SAMPLING] == 1


def test_snapshot_shape():
    prof = PhaseProfiler()
    prof.add(DECODE_FORWARD, 0.4)
    snap = prof.snapshot()
    assert set(snap) == {"phases", "top_level_s", "hotspots"}
    assert snap["phases"] == {"decode_forward": {"calls": 1, "total_s": 0.4}}
    assert snap["top_level_s"] == pytest.approx(0.4)


def test_phase_ids_index_the_display_names():
    assert PHASES[ADMISSION] == "admission"
    assert PHASES[DECODE_FORWARD] == "decode_forward"
    assert PHASES[QUANT_APPEND] == "quantize_append"
    assert len(PHASES) == 7
