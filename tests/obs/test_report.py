"""The obs-report renderer over trace exports and profiler snapshots."""

from __future__ import annotations

import json

import pytest

from repro.obs.profiler import DECODE_FORWARD, QUANT_APPEND, SAMPLING, PhaseProfiler
from repro.obs.report import (load_report_file, render_hotspot_report,
                              render_report, render_trace_report)
from repro.obs.tracing import SpanTracer


def _trace_doc():
    tracer = SpanTracer()
    tracer.name_track(0, "router")
    tracer.name_track(1, "replica 0")
    tracer.complete("decode", 0.0, 0.002, track=1)
    tracer.instant("reroute", 0.001, track=0)
    return json.loads(tracer.to_json())


class TestLoadReportFile:
    def test_recognises_trace_documents(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(_trace_doc()))
        assert load_report_file(path)["kind"] == "trace"

    def test_recognises_bare_event_lists(self, tmp_path):
        path = tmp_path / "events.json"
        path.write_text(json.dumps(_trace_doc()["traceEvents"]))
        assert load_report_file(path)["kind"] == "trace"

    def test_recognises_profiler_snapshots(self, tmp_path):
        prof = PhaseProfiler()
        prof.add(SAMPLING, 0.1)
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(prof.snapshot()))
        assert load_report_file(path)["kind"] == "profile"

    def test_rejects_unrelated_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"rows": []}))
        with pytest.raises(ValueError, match="not a trace export"):
            load_report_file(path)


class TestRenderers:
    def test_trace_report_names_tracks_and_ranks_spans(self):
        text = render_trace_report(_trace_doc())
        assert "2 tracks" in text
        assert "router" in text
        assert "replica 0" in text
        assert "decode" in text
        assert "reroute" in text

    def test_hotspot_report_ranks_and_marks_nested_phases(self):
        prof = PhaseProfiler()
        prof.add(DECODE_FORWARD, 0.8)
        prof.add(SAMPLING, 0.2)
        prof.add(QUANT_APPEND, 0.3)
        text = render_hotspot_report(prof.snapshot())
        lines = [line for line in text.splitlines() if line]
        assert lines[0].startswith("decode-path profile: 1.0000s")
        body = "\n".join(lines)
        assert body.index("decode_forward") < body.index("sampling")
        assert "80.0%" in body      # decode share of top-level time
        assert "forward" in body    # nested marker column

    def test_hotspot_report_handles_nested_profile_key(self):
        prof = PhaseProfiler()
        prof.add(SAMPLING, 0.1)
        text = render_hotspot_report({"profile": prof.snapshot()})
        assert "sampling" in text

    def test_empty_profile(self):
        assert "no phases recorded" in render_hotspot_report(PhaseProfiler().snapshot())

    def test_render_report_dispatches(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        trace_path.write_text(json.dumps(_trace_doc()))
        assert "tracks" in render_report(trace_path)
        prof = PhaseProfiler()
        prof.add(SAMPLING, 0.1)
        profile_path = tmp_path / "profile.json"
        profile_path.write_text(json.dumps(prof.snapshot()))
        assert "decode-path profile" in render_report(profile_path)
