"""The Observability bundle: enabled/disabled wiring and per-track views."""

from __future__ import annotations

from repro.obs import (NULL_REGISTRY, FlightRecorder, MetricsRegistry,
                       Observability, PhaseProfiler, SpanTracer)


def test_disabled_bundle_is_inert_but_safe_to_instrument():
    obs = Observability.disabled()
    assert obs.registry is NULL_REGISTRY
    assert obs.tracer is None
    assert obs.profiler is None
    assert obs.recorder is None
    assert not obs.is_enabled
    # setup code resolves metrics unconditionally; updates are no-ops
    obs.registry.counter("tokens_total").inc(100)
    assert obs.registry.snapshot() == {}


def test_enabled_bundle_has_all_instruments():
    obs = Observability.enabled()
    assert isinstance(obs.registry, MetricsRegistry)
    assert isinstance(obs.tracer, SpanTracer)
    assert isinstance(obs.profiler, PhaseProfiler)
    assert isinstance(obs.recorder, FlightRecorder)
    assert obs.is_enabled


def test_enabled_extras_are_individually_optional():
    obs = Observability.enabled(trace=False, profile=False, record=False)
    assert obs.tracer is None and obs.profiler is None and obs.recorder is None
    assert obs.is_enabled    # the live registry alone makes it enabled


def test_for_track_shares_instruments_but_not_identity():
    fleet = Observability.enabled(labels={"cluster": "a"})
    replica = fleet.for_track(3, replica="r2")
    assert replica.registry is fleet.registry
    assert replica.tracer is fleet.tracer
    assert replica.profiler is fleet.profiler
    assert replica.recorder is fleet.recorder
    assert replica.track == 3
    assert replica.labels == {"cluster": "a", "replica": "r2"}
    assert fleet.labels == {"cluster": "a"}     # parent labels untouched
    assert fleet.track == 0


def test_for_track_coerces_label_values_to_strings():
    obs = Observability.enabled().for_track(1, replica=0)
    assert obs.labels == {"replica": "0"}
