"""Metrics registry: series identity, snapshots, and Prometheus exposition."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge,
                               Histogram, MetricsRegistry, NULL_REGISTRY,
                               NullMetric)


class TestMetricTypes:
    def test_counter_accumulates_and_rejects_negative(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 12

    def test_histogram_buckets_on_insert_cumulative_on_read(self):
        hist = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.cumulative() == [(0.1, 1), (1.0, 3), (10.0, 4),
                                     (float("inf"), 5)]
        assert hist.count == 5
        assert hist.sum == pytest.approx(56.05)

    def test_histogram_boundary_value_goes_to_its_le_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)   # le="1.0" is an inclusive upper bound
        assert hist.cumulative()[0] == (1.0, 1)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", buckets=())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(1.0, 1.0))


class TestRegistry:
    def test_lookups_are_memoized_per_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_total", "help", {"replica": "r0"})
        b = registry.counter("requests_total", "help", {"replica": "r0"})
        c = registry.counter("requests_total", "help", {"replica": "r1"})
        assert a is b
        assert a is not c
        assert len(registry) == 2

    def test_type_conflict_is_an_error_not_a_split_series(self):
        registry = MetricsRegistry()
        registry.counter("latency")
        with pytest.raises(ValueError, match="already registered as a Counter"):
            registry.gauge("latency")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("latency", labels={"replica": "r0"})

    def test_invalid_names_and_labels_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_name", labels={"bad-label": "x"})

    def test_snapshot_is_sorted_and_registration_order_independent(self):
        def build(order):
            registry = MetricsRegistry()
            for name, labels in order:
                registry.counter(name, labels=labels).inc()
            return json.dumps(registry.snapshot())

        order = [("b_total", None), ("a_total", {"replica": "r1"}),
                 ("a_total", {"replica": "r0"})]
        assert build(order) == build(list(reversed(order)))

    def test_snapshot_expands_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("ttft", buckets=(0.5, 1.0)).observe(0.7)
        snap = registry.snapshot()
        assert snap["ttft"] == {"buckets": [[0.5, 0], [1.0, 1], ["+Inf", 1]],
                                "sum": 0.7, "count": 1}


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests seen",
                         {"replica": "r0"}).inc(3)
        registry.gauge("queue_depth", "Waiting requests").set(2)
        text = registry.to_prometheus()
        assert "# HELP requests_total Requests seen\n" in text
        assert "# TYPE requests_total counter\n" in text
        assert 'requests_total{replica="r0"} 3\n' in text
        assert "# TYPE queue_depth gauge\n" in text
        assert "queue_depth 2\n" in text
        assert text.endswith("\n")

    def test_histogram_expands_to_bucket_sum_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", "Latency",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = registry.to_prometheus()
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 2' in text
        assert "latency_seconds_sum 0.55" in text
        assert "latency_seconds_count 2" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"path": 'a"b\\c\nd'}).inc()
        line = [l for l in registry.to_prometheus().splitlines()
                if l.startswith("c_total{")][0]
        assert line == 'c_total{path="a\\"b\\\\c\\nd"} 1'

    def test_empty_registry_renders_empty_document(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestNullRegistry:
    def test_every_lookup_is_the_shared_noop(self):
        metric = NULL_REGISTRY.counter("anything")
        assert metric is NULL_REGISTRY.gauge("other")
        assert metric is NULL_REGISTRY.histogram("third")
        assert isinstance(metric, NullMetric)
        # the whole point: updates are free and nothing is recorded
        metric.inc()
        metric.set(5)
        metric.observe(1.0)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.to_prometheus() == ""


def test_default_latency_buckets_cover_sub_ms_to_minutes():
    assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
    assert DEFAULT_LATENCY_BUCKETS[-1] >= 60.0
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
