"""Tests for the mixed-precision search (repro.search.mixed_precision)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import EvalConfig
from repro.search.mixed_precision import (
    greedy_mixed_precision_search,
    layer_kind_parameter_counts,
    sensitivity_profile,
)

_EVAL = EvalConfig(batch_size=2, seq_len=24, max_batches=1)
_CANDIDATES = [BBFPConfig(6, 3), BBFPConfig(4, 2), BBFPConfig(3, 1)]


class TestParameterCounts:
    def test_counts_cover_all_linear_kinds(self, tiny_inference_model):
        counts = layer_kind_parameter_counts(tiny_inference_model)
        config = tiny_inference_model.config
        assert counts["q_proj"] == config.n_layers * config.d_model * config.d_model
        assert counts["gate_proj"] == config.n_layers * config.d_model * config.d_ff
        assert "lm_head" in counts
        assert "token_embedding" not in counts

    def test_counts_are_positive(self, tiny_inference_model):
        assert all(v > 0 for v in layer_kind_parameter_counts(tiny_inference_model).values())


class TestSensitivityProfile:
    def test_profile_shape_and_reference(self, tiny_inference_model, small_corpus):
        profile = sensitivity_profile(
            tiny_inference_model, small_corpus, _CANDIDATES[:2],
            kinds=["q_proj", "down_proj"], eval_config=_EVAL,
        )
        assert set(profile) == {"__reference__", "q_proj", "down_proj"}
        assert np.isfinite(profile["__reference__"])
        for kind in ("q_proj", "down_proj"):
            assert set(profile[kind]) == {"BBFP(6,3)", "BBFP(4,2)"}
            for ppl in profile[kind].values():
                assert np.isfinite(ppl)

    def test_single_kind_quantisation_close_to_reference(self, tiny_inference_model, small_corpus):
        profile = sensitivity_profile(
            tiny_inference_model, small_corpus, [BBFPConfig(6, 3)],
            kinds=["q_proj"], eval_config=_EVAL,
        )
        reference = profile["__reference__"]
        assert profile["q_proj"]["BBFP(6,3)"] <= reference * 1.1

    def test_model_scheme_is_restored(self, tiny_inference_model, small_corpus):
        original = QuantizationScheme.fp16()
        tiny_inference_model.set_scheme(original)
        sensitivity_profile(tiny_inference_model, small_corpus, [BBFPConfig(4, 2)],
                            kinds=["q_proj"], eval_config=_EVAL)
        assert tiny_inference_model.scheme is original
        tiny_inference_model.set_scheme(QuantizationScheme.fp_reference())


class TestGreedySearch:
    def test_result_respects_budget_and_saves_footprint(self, tiny_inference_model, small_corpus):
        result = greedy_mixed_precision_search(
            tiny_inference_model, small_corpus, _CANDIDATES,
            ppl_budget_ratio=1.10, eval_config=_EVAL,
        )
        assert result.perplexity <= result.reference_perplexity * 1.10 + 1e-9
        assert result.footprint_bits <= result.uniform_footprint_bits
        assert set(result.assignment) == set(layer_kind_parameter_counts(tiny_inference_model))
        for fmt in result.assignment.values():
            assert fmt in _CANDIDATES

    def test_tight_budget_keeps_widest_format(self, tiny_inference_model, small_corpus):
        result = greedy_mixed_precision_search(
            tiny_inference_model, small_corpus, _CANDIDATES,
            ppl_budget_ratio=1.0, eval_config=_EVAL,
        )
        assert all(fmt == _CANDIDATES[0] for fmt in result.assignment.values())
        assert result.footprint_saving == pytest.approx(0.0)

    def test_loose_budget_downgrades_at_least_one_kind(self, tiny_inference_model, small_corpus):
        result = greedy_mixed_precision_search(
            tiny_inference_model, small_corpus, _CANDIDATES,
            ppl_budget_ratio=2.0, eval_config=_EVAL,
        )
        assert any(fmt != _CANDIDATES[0] for fmt in result.assignment.values())
        assert result.footprint_saving > 0.0

    def test_invalid_arguments_rejected(self, tiny_inference_model, small_corpus):
        with pytest.raises(ValueError, match="candidate"):
            greedy_mixed_precision_search(tiny_inference_model, small_corpus, [],
                                          eval_config=_EVAL)
        with pytest.raises(ValueError, match="ppl_budget_ratio"):
            greedy_mixed_precision_search(tiny_inference_model, small_corpus, _CANDIDATES,
                                          ppl_budget_ratio=0.9, eval_config=_EVAL)

    def test_rows_report_bits_per_kind(self, tiny_inference_model, small_corpus):
        result = greedy_mixed_precision_search(
            tiny_inference_model, small_corpus, _CANDIDATES[:2],
            ppl_budget_ratio=1.2, kinds=["q_proj", "down_proj"], eval_config=_EVAL,
        )
        rows = result.as_rows()
        assert {row["kind"] for row in rows} == {"q_proj", "down_proj"}
        for row in rows:
            assert row["bits_per_element"] > 0
