"""Tests for the layer-kind-wise quantisation scheme (repro.search.layerwise)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig, bbfp_quantize_dequantize
from repro.core.blockfp import BFPConfig, bfp_quantize_dequantize
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import EvalConfig, evaluate_perplexity
from repro.search.layerwise import build_layerwise_scheme, layer_kind_of

_EVAL = EvalConfig(batch_size=2, seq_len=24, max_batches=2)


class TestLayerKindOf:
    @pytest.mark.parametrize(
        "name, kind",
        [
            ("blocks.0.attention.q_proj", "q_proj"),
            ("blocks.11.mlp.down_proj", "down_proj"),
            ("lm_head", "lm_head"),
        ],
    )
    def test_extraction(self, name, kind):
        assert layer_kind_of(name) == kind


class TestBuildLayerwiseScheme:
    def test_assigned_kind_uses_its_format(self, rng):
        scheme = build_layerwise_scheme({"q_proj": BBFPConfig(4, 2)}, default=BFPConfig(6))
        w = rng.standard_normal((64, 32))
        assigned = scheme.weight_fn("blocks.0.attention.q_proj", w)
        np.testing.assert_allclose(assigned, bbfp_quantize_dequantize(w, BBFPConfig(4, 2), axis=0))

    def test_unassigned_kind_uses_default(self, rng):
        scheme = build_layerwise_scheme({"q_proj": BBFPConfig(4, 2)}, default=BFPConfig(6))
        w = rng.standard_normal((64, 32))
        fallback = scheme.weight_fn("blocks.0.mlp.up_proj", w)
        np.testing.assert_allclose(fallback, bfp_quantize_dequantize(w, BFPConfig(6), axis=0))

    def test_none_default_keeps_fp(self, rng):
        scheme = build_layerwise_scheme({"q_proj": BBFPConfig(4, 2)})
        w = rng.standard_normal((64, 32))
        np.testing.assert_array_equal(scheme.weight_fn("blocks.0.mlp.up_proj", w), w)

    def test_activation_dispatch_matches_weight_dispatch(self, rng):
        scheme = build_layerwise_scheme({"fc1": BBFPConfig(3, 1)})
        x = rng.standard_normal((4, 64))
        np.testing.assert_allclose(
            scheme.activation_fn("blocks.0.mlp.fc1", x),
            bbfp_quantize_dequantize(x, BBFPConfig(3, 1), axis=-1),
        )
        np.testing.assert_array_equal(scheme.activation_fn("blocks.0.mlp.fc2", x), x)

    def test_accepts_prebuilt_schemes(self, rng):
        inner = QuantizationScheme.from_format(BFPConfig(4))
        scheme = build_layerwise_scheme({"v_proj": inner})
        w = rng.standard_normal((32, 32))
        np.testing.assert_allclose(
            scheme.weight_fn("blocks.0.attention.v_proj", w),
            bfp_quantize_dequantize(w, BFPConfig(4), axis=0),
        )

    def test_default_name_lists_assignments(self):
        scheme = build_layerwise_scheme({"q_proj": BBFPConfig(4, 2), "fc1": BFPConfig(6)})
        assert "q_proj=BBFP(4,2)" in scheme.name
        assert "fc1=BFP6" in scheme.name

    def test_explicit_name_wins(self):
        scheme = build_layerwise_scheme({"q_proj": BBFPConfig(4, 2)}, name="my-mix")
        assert scheme.name == "my-mix"

    def test_end_to_end_partial_quantisation_between_fp_and_full(self, tiny_inference_model,
                                                                  small_corpus):
        """Quantising only the attention projections should hurt no more than
        quantising every linear layer with the same narrow format."""
        model = tiny_inference_model
        narrow = BBFPConfig(3, 1)

        model.set_scheme(QuantizationScheme.fp_reference())
        reference = evaluate_perplexity(model, small_corpus, _EVAL)

        model.set_scheme(QuantizationScheme.from_format(narrow))
        full = evaluate_perplexity(model, small_corpus, _EVAL)

        partial_scheme = build_layerwise_scheme(
            {"q_proj": narrow, "k_proj": narrow, "v_proj": narrow}, default=None
        )
        model.set_scheme(partial_scheme)
        partial = evaluate_perplexity(model, small_corpus, _EVAL)
        model.set_scheme(QuantizationScheme.fp_reference())

        assert reference <= partial * 1.02
        assert partial <= full * 1.02
