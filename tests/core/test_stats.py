"""The shared percentile/imbalance helpers behind the serve and cluster reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stats import load_imbalance, percentile_summary


class TestPercentileSummary:
    def test_names_scale_and_values(self):
        summary = percentile_summary([0.010, 0.020, 0.030, 0.040], "ttft",
                                     scale=1e3, unit="ms")
        assert set(summary) == {"ttft_p50_ms", "ttft_p95_ms"}
        assert summary["ttft_p50_ms"] == pytest.approx(25.0)
        assert summary["ttft_p95_ms"] == pytest.approx(
            float(np.percentile([10.0, 20.0, 30.0, 40.0], 95)))

    def test_no_unit_omits_the_suffix(self):
        assert set(percentile_summary([1.0], "latency")) == {"latency_p50", "latency_p95"}

    def test_custom_percentiles(self):
        summary = percentile_summary(range(101), "x", percentiles=(10, 50, 99))
        assert summary == {"x_p10": 10.0, "x_p50": 50.0, "x_p99": 99.0}

    def test_empty_sample_keeps_the_row_shape_with_nans(self):
        summary = percentile_summary([], "ttft", scale=1e3, unit="ms")
        assert set(summary) == {"ttft_p50_ms", "ttft_p95_ms"}
        assert all(np.isnan(v) for v in summary.values())

    def test_accepts_generators(self):
        assert percentile_summary((x for x in (2.0, 2.0)), "v")["v_p50"] == 2.0

    def test_matches_the_serve_report_shape(self, tiny_inference_model):
        """ServeReport.summary must keep its historical key names and values."""
        from repro.serve import EngineConfig, Request, ServeEngine, VirtualClock

        engine = ServeEngine(tiny_inference_model, EngineConfig(max_batch_size=2),
                             clock=VirtualClock())
        engine.submit(Request(request_id=0, prompt_tokens=(1, 2, 3), max_new_tokens=4))
        summary = engine.run().summary()
        for key in ("ttft_p50_ms", "ttft_p95_ms", "latency_p50_ms", "latency_p95_ms"):
            assert np.isfinite(summary[key])


class TestLoadImbalance:
    def test_balanced_fleet_is_one(self):
        assert load_imbalance([10, 10, 10]) == 1.0

    def test_max_over_mean(self):
        assert load_imbalance([30, 10, 20]) == pytest.approx(30 / 20)

    def test_idle_fleet_is_balanced(self):
        assert load_imbalance([0, 0]) == 1.0

    def test_empty_fleet_is_nan(self):
        assert np.isnan(load_imbalance([]))
