"""Tests for the microscaling (MX) block formats (repro.core.microscaling)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.blockfp import BFPConfig, bfp_quantize_dequantize
from repro.core.floatspec import FP8_E4M3
from repro.core.microscaling import (
    MXFP4,
    MXFP6_E2M3,
    MXFP6_E3M2,
    MXFP8,
    MXConfig,
    mx_quantize_dequantize,
    quantize_mx,
)
from repro.llm.inference import QuantizationScheme


class TestMXConfig:
    def test_element_bits(self):
        assert MXFP4.element_bits == 4
        assert MXFP6_E2M3.element_bits == 6
        assert MXFP6_E3M2.element_bits == 6
        assert MXFP8.element_bits == 8

    def test_equivalent_bit_width_includes_amortised_scale(self):
        # 4 element bits + 8 scale bits / 32 elements = 4.25 bits.
        assert MXFP4.equivalent_bit_width() == pytest.approx(4.25)
        assert MXFP8.equivalent_bit_width() == pytest.approx(8.25)

    def test_memory_efficiency_relative_to_fp16(self):
        assert MXFP4.memory_efficiency() == pytest.approx(16.0 / 4.25)

    def test_default_name_derived_from_element(self):
        config = MXConfig(FP8_E4M3)
        assert "FP8_E4M3" in config.name

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError, match="block_size"):
            MXConfig(FP8_E4M3, block_size=0)

    def test_invalid_scale_bits_rejected(self):
        with pytest.raises(ValueError, match="scale_bits"):
            MXConfig(FP8_E4M3, scale_bits=1)


class TestQuantizeMX:
    def test_roundtrip_shape_preserved(self, rng):
        x = rng.standard_normal((7, 100))
        assert mx_quantize_dequantize(x, MXFP8).shape == x.shape

    def test_zero_tensor_maps_to_zero(self):
        x = np.zeros(64)
        np.testing.assert_array_equal(mx_quantize_dequantize(x, MXFP4), x)

    def test_signs_preserved(self, rng):
        x = rng.standard_normal(256)
        x_hat = mx_quantize_dequantize(x, MXFP8)
        nonzero = x_hat != 0
        assert np.all(np.sign(x_hat[nonzero]) == np.sign(x[nonzero]))

    def test_power_of_two_inputs_exact_under_mxfp8(self):
        x = np.array([1.0, 2.0, 0.5, 4.0, -8.0, 0.25, 16.0, -0.125] * 4)
        np.testing.assert_allclose(mx_quantize_dequantize(x, MXFP8), x)

    def test_block_maximum_never_overflows_element_format(self, rng):
        x = rng.standard_normal(320) * 1000.0
        quantised = quantize_mx(x, MXFP4)
        # The per-block scaled elements must lie within the element format range.
        assert np.max(np.abs(quantised.elements)) <= MXFP4.element.max_value + 1e-12

    def test_relative_error_bounded_for_mxfp8(self, rng):
        x = rng.standard_normal(1024) * 10.0
        x_hat = mx_quantize_dequantize(x, MXFP8)
        # E4M3 keeps ~3 mantissa bits after block scaling -> relative error of the
        # block maximum below 2**-4; moderate values may be coarser but bounded
        # by the block dynamic-range handling.
        max_abs = np.abs(x).max()
        assert np.max(np.abs(x - x_hat)) <= max_abs * 2.0**-4

    def test_memory_bits_accounting(self, rng):
        x = rng.standard_normal(64)
        quantised = quantize_mx(x, MXFP4)
        # 64 elements * 4 bits + 2 blocks * 8 scale bits.
        assert quantised.memory_bits() == 64 * 4 + 2 * 8

    def test_wider_elements_reduce_error(self, outlier_tensor):
        errors = [
            float(np.mean((outlier_tensor - mx_quantize_dequantize(outlier_tensor, cfg)) ** 2))
            for cfg in (MXFP4, MXFP6_E3M2, MXFP8)
        ]
        assert errors[0] >= errors[1] >= errors[2]

    def test_mxfp4_trades_accuracy_for_density_against_bfp4(self, outlier_tensor):
        """MXFP4 stores ~18 % fewer bits per element than BFP4 at a bounded accuracy cost.

        BFP4 keeps a 4-bit fixed point magnitude (plus sign), so at the block
        maximum it is finer than MXFP4's E2M1 element; MXFP4 spends its bits on
        a private micro-exponent instead.  The test pins the trade-off rather
        than declaring a winner: the density advantage is exact, and the MSE
        penalty stays within one order of magnitude on an outlier-heavy tensor.
        """
        assert MXFP4.equivalent_bit_width() < BFPConfig(4).equivalent_bit_width()
        mx_err = float(np.mean((outlier_tensor - mx_quantize_dequantize(outlier_tensor, MXFP4)) ** 2))
        bfp_err = float(
            np.mean((outlier_tensor - bfp_quantize_dequantize(outlier_tensor, BFPConfig(4))) ** 2)
        )
        assert mx_err <= bfp_err * 10.0

    def test_scale_clipping_handles_huge_values(self):
        x = np.full(32, 1e30)
        x_hat = mx_quantize_dequantize(x, MXFP4)
        assert np.all(np.isfinite(x_hat))

    @settings(max_examples=40, deadline=None)
    @given(
        x=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=120),
            elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
        )
    )
    def test_idempotent(self, x):
        once = mx_quantize_dequantize(x, MXFP8)
        twice = mx_quantize_dequantize(once, MXFP8)
        np.testing.assert_allclose(once, twice, rtol=1e-12, atol=1e-12)


class TestSchemeIntegration:
    def test_from_format_accepts_mx_config(self, rng):
        scheme = QuantizationScheme.from_format(MXFP8)
        assert scheme.name == "MXFP8"
        w = rng.standard_normal((64, 8))
        w_hat = scheme.weight_fn("blocks.0.attention.q_proj", w)
        assert w_hat.shape == w.shape
        assert not np.array_equal(w_hat, w)
