"""Tests for the block reshaping helpers."""

import numpy as np
import pytest

from repro.core.blocking import from_blocks, to_blocks


class TestToBlocks:
    def test_exact_multiple(self, rng):
        x = rng.standard_normal((4, 64))
        blocks, layout = to_blocks(x, 32)
        assert blocks.shape == (4, 2, 32)
        assert layout.padded_length == 64

    def test_padding(self, rng):
        x = rng.standard_normal((3, 40))
        blocks, layout = to_blocks(x, 32)
        assert blocks.shape == (3, 2, 32)
        assert layout.padded_length == 64
        # Padded tail is zero.
        assert np.all(blocks[:, 1, 8:] == 0)

    def test_axis_zero(self, rng):
        x = rng.standard_normal((40, 3))
        blocks, layout = to_blocks(x, 16, axis=0)
        assert blocks.shape == (3, 3, 16)
        assert layout.axis == 0

    def test_negative_axis_normalised(self, rng):
        x = rng.standard_normal((2, 3, 48))
        _, layout = to_blocks(x, 16, axis=-1)
        assert layout.axis == 2

    def test_scalar_promoted(self):
        blocks, layout = to_blocks(5.0, 4)
        assert blocks.shape == (1, 4)
        assert layout.original_shape == (1,)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            to_blocks(np.ones(8), 0)

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            to_blocks(np.ones((2, 8)), 4, axis=5)


class TestRoundTrip:
    @pytest.mark.parametrize("shape,axis", [((64,), -1), ((5, 40), -1), ((7, 33), 0),
                                            ((2, 3, 50), 1), ((1, 1), -1)])
    def test_roundtrip_preserves_values(self, rng, shape, axis):
        x = rng.standard_normal(shape)
        blocks, layout = to_blocks(x, 16, axis=axis)
        assert np.array_equal(from_blocks(blocks, layout), x)

    def test_roundtrip_with_block_larger_than_axis(self, rng):
        x = rng.standard_normal((3, 5))
        blocks, layout = to_blocks(x, 32)
        assert blocks.shape == (3, 1, 32)
        assert np.array_equal(from_blocks(blocks, layout), x)
