"""Tests for the BBFP quantiser — the paper's core contribution."""

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig, bbfp_quantize_dequantize, parse_bbfp_name, quantize_bbfp
from repro.core.blockfp import BFPConfig, bfp_quantize_dequantize
from repro.core.exponent_selection import ExponentStrategy


class TestBBFPConfig:
    def test_name(self):
        assert BBFPConfig(4, 2).name == "BBFP(4,2)"

    def test_high_group_factor(self):
        # Eq. 6: f = 2**(m - o).
        assert BBFPConfig(4, 2).high_group_factor == 4
        assert BBFPConfig(6, 3).high_group_factor == 8
        assert BBFPConfig(10, 5).high_group_factor == 32

    def test_mantissa_range_bbfp42(self):
        # Fig. 2(b): BBFP(4,2) mantissas span +/-7.5 (4x the BFP4 range).
        _, high = BBFPConfig(4, 2).mantissa_range()
        assert high == pytest.approx(7.5)

    def test_equivalent_bit_width_matches_paper(self):
        # Table I: BBFP(8,4) -> 10.16 bits, BBFP(6,3) -> 8.16 bits.
        assert BBFPConfig(8, 4).equivalent_bit_width() == pytest.approx(10.16, abs=0.01)
        assert BBFPConfig(6, 3).equivalent_bit_width() == pytest.approx(8.16, abs=0.01)

    def test_memory_efficiency_matches_paper(self):
        assert BBFPConfig(8, 4).memory_efficiency() == pytest.approx(1.58, abs=0.01)
        assert BBFPConfig(6, 3).memory_efficiency() == pytest.approx(1.96, abs=0.01)

    def test_invalid_overlap(self):
        with pytest.raises(ValueError):
            BBFPConfig(4, 4)
        with pytest.raises(ValueError):
            BBFPConfig(4, -1)

    def test_parse_name(self):
        config = parse_bbfp_name("BBFP(6,3)")
        assert config.mantissa_bits == 6 and config.overlap_bits == 3
        config = parse_bbfp_name("bbfp(10, 5, 5)")
        assert config.exponent_bits == 5

    def test_parse_name_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_bbfp_name("BFP4")


class TestQuantizeBBFP:
    def test_zero_tensor(self):
        x = np.zeros(64)
        assert np.array_equal(bbfp_quantize_dequantize(x, BBFPConfig(4, 2)), x)

    def test_flags_mark_large_elements(self, rng):
        x = rng.standard_normal(32) * 0.1
        x[5] = 50.0  # an outlier well above the shared exponent
        quantised = quantize_bbfp(x, BBFPConfig(4, 2))
        flags = quantised.flags.reshape(-1)
        assert flags[5] == 1
        assert flags.sum() >= 1

    def test_default_shared_exponent_is_max_minus_m_minus_o(self, rng):
        x = rng.standard_normal((4, 64))
        config = BBFPConfig(4, 2)
        quantised = quantize_bbfp(x, config)
        from repro.core.blocking import to_blocks
        from repro.core.floatspec import exponent_of

        blocks, _ = to_blocks(x, 32)
        expected = exponent_of(blocks).max(axis=-1) - 2
        assert np.array_equal(quantised.shared_exponents, expected)

    def test_outlier_still_captured(self, outlier_tensor):
        config = BBFPConfig(4, 2)
        x_hat = bbfp_quantize_dequantize(outlier_tensor, config)
        idx = np.argmax(np.abs(outlier_tensor))
        assert np.abs(x_hat[idx] - outlier_tensor[idx]) / np.abs(outlier_tensor[idx]) < 0.2

    def test_small_values_get_finer_steps_than_bfp(self, rng):
        """The defining property: small/moderate values quantise better than BFP."""
        x = rng.standard_normal(1024) * 0.5
        x[::32] *= 60.0  # outliers force BFP's shared exponent up
        bbfp_err = np.mean((x - bbfp_quantize_dequantize(x, BBFPConfig(4, 2))) ** 2)
        bfp_err = np.mean((x - bfp_quantize_dequantize(x, BFPConfig(4))) ** 2)
        assert bbfp_err < bfp_err

    @pytest.mark.parametrize("m,o", [(3, 1), (4, 2), (4, 3), (6, 3), (6, 4), (8, 4), (10, 5)])
    def test_bbfp_never_worse_than_bfp_same_mantissa(self, outlier_tensor, m, o):
        bbfp_err = np.mean((outlier_tensor - bbfp_quantize_dequantize(outlier_tensor, BBFPConfig(m, o))) ** 2)
        bfp_err = np.mean((outlier_tensor - bfp_quantize_dequantize(outlier_tensor, BFPConfig(m))) ** 2)
        assert bbfp_err <= bfp_err * 1.0001

    def test_mantissa_codes_within_range(self, rng):
        x = rng.standard_normal(512) * 100
        quantised = quantize_bbfp(x, BBFPConfig(4, 2))
        assert quantised.mantissas.min() >= 0
        assert quantised.mantissas.max() <= 15

    def test_memory_bits_include_flag(self, rng):
        x = rng.standard_normal(64)
        quantised = quantize_bbfp(x, BBFPConfig(4, 2, block_size=32))
        # 64 elements * (4 + sign + flag) + 2 blocks * 5 exponent bits.
        assert quantised.memory_bits() == 64 * 6 + 2 * 5

    def test_high_fraction_between_zero_and_one(self, outlier_tensor):
        quantised = quantize_bbfp(outlier_tensor, BBFPConfig(4, 2))
        assert 0.0 <= quantised.high_fraction() <= 1.0

    def test_max_strategy_reduces_to_bfp_like_alignment(self, outlier_tensor):
        """With the MAX strategy and no flags set... flags never trigger, matching BFP."""
        config = BBFPConfig(4, 2, exponent_strategy=ExponentStrategy.MAX)
        quantised = quantize_bbfp(outlier_tensor, config)
        assert quantised.flags.sum() == 0
        bfp_hat = bfp_quantize_dequantize(outlier_tensor, BFPConfig(4))
        assert np.allclose(quantised.dequantize(), bfp_hat)

    def test_idempotence(self, outlier_tensor):
        config = BBFPConfig(6, 3)
        once = bbfp_quantize_dequantize(outlier_tensor, config)
        twice = bbfp_quantize_dequantize(once, config)
        assert np.allclose(once, twice)

    def test_shape_preserved_nd(self, rng):
        x = rng.standard_normal((3, 5, 70))
        assert bbfp_quantize_dequantize(x, BBFPConfig(4, 2)).shape == x.shape
