"""Tests for the integer-exact BFP/BBFP dot product (the MAC datapath semantics)."""

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig, quantize_bbfp
from repro.core.blockfp import BFPConfig, quantize_bfp
from repro.core.dotproduct import (
    bbfp_block_dot,
    bbfp_dot,
    bbfp_matmul,
    bbfp_product_shift,
    bfp_block_dot,
    bfp_dot,
    bfp_matmul,
)


class TestProductShift:
    def test_shift_values_eq10(self):
        """Eq. 10: shift 0 / (m-o) / 2(m-o) depending on the two flags."""
        config = BBFPConfig(4, 2)
        flags_a = np.array([0, 1, 0, 1])
        flags_b = np.array([0, 0, 1, 1])
        shifts = bbfp_product_shift(flags_a, flags_b, config, config)
        assert list(shifts) == [0, 2, 2, 4]

    def test_mixed_configs(self):
        a = BBFPConfig(4, 2)
        b = BBFPConfig(6, 3)
        shifts = bbfp_product_shift(np.array([1]), np.array([1]), a, b)
        assert shifts[0] == 2 + 3


class TestDotEquivalence:
    """The integer datapath must agree exactly with dequantise-then-multiply."""

    @pytest.mark.parametrize("m,o", [(3, 1), (4, 2), (6, 3), (8, 4)])
    def test_bbfp_integer_path_matches_math_path(self, rng, m, o):
        config = BBFPConfig(m, o)
        x = rng.standard_normal(256)
        y = rng.standard_normal(256)
        x[::50] *= 30
        integer_result = bbfp_dot(x, y, config)
        math_result = float(
            np.dot(quantize_bbfp(x, config).dequantize(), quantize_bbfp(y, config).dequantize())
        )
        assert integer_result == pytest.approx(math_result, rel=1e-12, abs=1e-9)

    @pytest.mark.parametrize("m", [4, 6, 8])
    def test_bfp_integer_path_matches_math_path(self, rng, m):
        config = BFPConfig(m)
        x = rng.standard_normal(256)
        y = rng.standard_normal(256)
        integer_result = bfp_dot(x, y, config)
        math_result = float(
            np.dot(quantize_bfp(x, config).dequantize(), quantize_bfp(y, config).dequantize())
        )
        assert integer_result == pytest.approx(math_result, rel=1e-12, abs=1e-9)

    def test_dot_approximates_fp_for_wide_mantissa(self, rng):
        x = rng.standard_normal(512)
        y = rng.standard_normal(512)
        exact = float(np.dot(x, y))
        approx = bbfp_dot(x, y, BBFPConfig(10, 5))
        assert approx == pytest.approx(exact, abs=0.05 * max(1.0, abs(exact)))

    def test_block_dot_shape(self, rng):
        config = BBFPConfig(4, 2)
        a = quantize_bbfp(rng.standard_normal((3, 64)), config)
        b = quantize_bbfp(rng.standard_normal((3, 64)), config)
        partial = bbfp_block_dot(a, b)
        assert partial.shape == (3, 2)

    def test_block_dot_requires_matching_blocking(self, rng):
        config = BBFPConfig(4, 2)
        a = quantize_bbfp(rng.standard_normal(64), config)
        b = quantize_bbfp(rng.standard_normal(32), config)
        with pytest.raises(ValueError):
            bbfp_block_dot(a, b)

    def test_bfp_block_dot_shape(self, rng):
        config = BFPConfig(4)
        a = quantize_bfp(rng.standard_normal(64), config)
        b = quantize_bfp(rng.standard_normal(64), config)
        assert bfp_block_dot(a, b).shape == (2,)


class TestMatmul:
    def test_bbfp_matmul_matches_fake_quant_reference(self, rng):
        config = BBFPConfig(6, 3)
        x = rng.standard_normal((5, 64))
        w = rng.standard_normal((64, 7))
        result = bbfp_matmul(x, w, config)
        reference = quantize_bbfp(x, config).dequantize() @ quantize_bbfp(w.T, config).dequantize().T
        assert np.allclose(result, reference)

    def test_bfp_matmul_shapes(self, rng):
        result = bfp_matmul(rng.standard_normal((2, 3, 32)), rng.standard_normal((32, 5)),
                            BFPConfig(6))
        assert result.shape == (2, 3, 5)

    def test_matmul_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            bbfp_matmul(rng.standard_normal((2, 8)), rng.standard_normal((9, 3)), BBFPConfig(4, 2))

    def test_matmul_close_to_fp_with_wide_mantissa(self, rng):
        x = rng.standard_normal((4, 96))
        w = rng.standard_normal((96, 4))
        exact = x @ w
        approx = bbfp_matmul(x, w, BBFPConfig(10, 5))
        assert np.max(np.abs(exact - approx)) < 0.05
