"""Tests for the mantissa rounding modes (repro.core.rounding)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bbfp import BBFPConfig, bbfp_quantize_dequantize, quantize_bbfp
from repro.core.blockfp import BFPConfig, bfp_quantize_dequantize, quantize_bfp
from repro.core.rounding import RoundingMode, round_magnitudes, rounding_from_name


class TestRoundingFromName:
    def test_accepts_enum(self):
        assert rounding_from_name(RoundingMode.TRUNCATE) is RoundingMode.TRUNCATE

    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("nearest", RoundingMode.NEAREST),
            ("RNE", RoundingMode.NEAREST),
            ("truncate", RoundingMode.TRUNCATE),
            ("floor", RoundingMode.TRUNCATE),
            ("stochastic", RoundingMode.STOCHASTIC),
            ("sr", RoundingMode.STOCHASTIC),
        ],
    )
    def test_aliases(self, alias, expected):
        assert rounding_from_name(alias) is expected

    def test_unknown_alias_raises(self):
        with pytest.raises(ValueError, match="unknown rounding mode"):
            rounding_from_name("banker")


class TestRoundMagnitudes:
    def test_nearest_matches_rint(self, rng):
        mags = rng.random(256) * 15.0
        np.testing.assert_array_equal(
            round_magnitudes(mags, RoundingMode.NEAREST), np.rint(mags)
        )

    def test_truncate_matches_floor(self, rng):
        mags = rng.random(256) * 15.0
        np.testing.assert_array_equal(
            round_magnitudes(mags, RoundingMode.TRUNCATE), np.floor(mags)
        )

    def test_truncate_never_exceeds_nearest(self, rng):
        mags = rng.random(512) * 7.0
        trunc = round_magnitudes(mags, RoundingMode.TRUNCATE)
        near = round_magnitudes(mags, RoundingMode.NEAREST)
        assert np.all(trunc <= near)

    def test_stochastic_brackets_value(self, rng):
        mags = rng.random(512) * 7.0
        out = round_magnitudes(mags, RoundingMode.STOCHASTIC, rng=np.random.default_rng(3))
        assert np.all(out >= np.floor(mags))
        assert np.all(out <= np.ceil(mags))

    def test_stochastic_is_unbiased_in_expectation(self):
        value = np.full(200_000, 2.3)
        out = round_magnitudes(value, RoundingMode.STOCHASTIC, rng=np.random.default_rng(11))
        assert abs(out.mean() - 2.3) < 0.01

    def test_stochastic_default_rng_is_deterministic(self):
        mags = np.linspace(0.0, 5.0, 97)
        first = round_magnitudes(mags, RoundingMode.STOCHASTIC)
        second = round_magnitudes(mags, RoundingMode.STOCHASTIC)
        np.testing.assert_array_equal(first, second)

    def test_exact_integers_are_preserved_by_all_modes(self):
        mags = np.arange(16, dtype=np.float64)
        for mode in RoundingMode:
            np.testing.assert_array_equal(round_magnitudes(mags, mode), mags)

    def test_negative_magnitudes_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            round_magnitudes(np.array([-0.5, 1.0]))

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    def test_error_bounded_by_one_step(self, value):
        mags = np.array([value])
        for mode in RoundingMode:
            out = round_magnitudes(mags, mode, rng=np.random.default_rng(0))
            assert abs(out[0] - value) < 1.0 or abs(out[0] - value) == pytest.approx(0.5)


class TestQuantiserIntegration:
    def test_default_configs_use_nearest(self):
        assert BFPConfig(4).rounding is RoundingMode.NEAREST
        assert BBFPConfig(4, 2).rounding is RoundingMode.NEAREST

    def test_bfp_truncation_error_at_least_nearest(self, outlier_tensor):
        near = bfp_quantize_dequantize(outlier_tensor, BFPConfig(4))
        trunc = bfp_quantize_dequantize(
            outlier_tensor, BFPConfig(4, rounding=RoundingMode.TRUNCATE)
        )
        mse_near = float(np.mean((outlier_tensor - near) ** 2))
        mse_trunc = float(np.mean((outlier_tensor - trunc) ** 2))
        assert mse_trunc >= mse_near

    def test_bbfp_truncation_error_at_least_nearest(self, outlier_tensor):
        near = bbfp_quantize_dequantize(outlier_tensor, BBFPConfig(4, 2))
        trunc = bbfp_quantize_dequantize(
            outlier_tensor, BBFPConfig(4, 2, rounding=RoundingMode.TRUNCATE)
        )
        mse_near = float(np.mean((outlier_tensor - near) ** 2))
        mse_trunc = float(np.mean((outlier_tensor - trunc) ** 2))
        assert mse_trunc >= mse_near

    def test_truncated_codes_never_exceed_nearest_codes(self, rng):
        x = rng.standard_normal(4 * 32)
        near = quantize_bbfp(x, BBFPConfig(4, 2))
        trunc = quantize_bbfp(x, BBFPConfig(4, 2, rounding=RoundingMode.TRUNCATE))
        assert np.all(trunc.mantissas <= near.mantissas)

    def test_stochastic_bfp_stays_on_grid(self, rng):
        x = rng.standard_normal(8 * 32)
        config = BFPConfig(4, rounding=RoundingMode.STOCHASTIC)
        quantized = quantize_bfp(x, config, rng=np.random.default_rng(5))
        assert quantized.mantissas.max() <= config.max_mantissa_level
        assert quantized.mantissas.min() >= 0

    def test_stochastic_bbfp_expectation_close_to_value(self):
        # Averaging many stochastic quantisations should approach the input.
        x = np.full(32, 0.37)
        config = BBFPConfig(4, 2, rounding=RoundingMode.STOCHASTIC)
        reps = [
            bbfp_quantize_dequantize(x, config, rng=np.random.default_rng(seed))
            for seed in range(200)
        ]
        mean = np.mean(reps, axis=0)
        assert np.allclose(mean, x, rtol=0.05)

    def test_rounding_mode_participates_in_config_equality(self):
        assert BFPConfig(4) != BFPConfig(4, rounding=RoundingMode.TRUNCATE)
        assert BBFPConfig(4, 2) == BBFPConfig(4, 2, rounding=RoundingMode.NEAREST)
