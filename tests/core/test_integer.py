"""Tests for the symmetric integer quantiser."""

import numpy as np
import pytest

from repro.core.integer import Granularity, IntQuantConfig, int_quantize, int_quantize_dequantize


class TestConfig:
    def test_max_code(self):
        assert IntQuantConfig(8).max_code == 127
        assert IntQuantConfig(4).max_code == 7

    def test_name_and_bits(self):
        config = IntQuantConfig(8)
        assert config.name == "INT8"
        assert config.equivalent_bit_width() == 8
        assert config.memory_efficiency() == 2.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            IntQuantConfig(1)
        with pytest.raises(ValueError):
            IntQuantConfig(8, clip_ratio=0.0)


class TestQuantise:
    def test_codes_within_range(self, rng):
        x = rng.standard_normal(512) * 10
        codes, _ = int_quantize(x, IntQuantConfig(4))
        assert codes.max() <= 7 and codes.min() >= -7

    def test_max_value_maps_to_max_code(self):
        x = np.array([-10.0, 5.0, 10.0])
        codes, scale = int_quantize(x, IntQuantConfig(8))
        assert codes[2] == 127
        assert scale == pytest.approx(10.0 / 127)

    def test_int8_error_small_without_outliers(self, rng):
        x = rng.standard_normal(2048)
        x_hat = int_quantize_dequantize(x, IntQuantConfig(8))
        assert np.mean((x - x_hat) ** 2) < 1e-3

    def test_outliers_destroy_int4(self, outlier_tensor):
        """The paper's motivation: INT formats cannot absorb outliers."""
        per_tensor = int_quantize_dequantize(outlier_tensor, IntQuantConfig(4))
        small = np.abs(outlier_tensor) < 1.0
        relative_error = np.mean(np.abs(outlier_tensor[small] - per_tensor[small]))
        assert relative_error > 0.2  # small values are essentially wiped out

    def test_per_channel_beats_per_tensor_on_heterogeneous_channels(self, rng):
        x = rng.standard_normal((128, 8))
        x[:, 0] *= 50.0
        per_tensor = int_quantize_dequantize(x, IntQuantConfig(8, Granularity.PER_TENSOR))
        per_channel = int_quantize_dequantize(x, IntQuantConfig(8, Granularity.PER_CHANNEL))
        err_tensor = np.mean((x[:, 1:] - per_tensor[:, 1:]) ** 2)
        err_channel = np.mean((x[:, 1:] - per_channel[:, 1:]) ** 2)
        assert err_channel < err_tensor

    def test_per_block_granularity(self, rng):
        x = rng.standard_normal(100)
        x_hat = int_quantize_dequantize(x, IntQuantConfig(8, Granularity.PER_BLOCK, block_size=32))
        assert x_hat.shape == x.shape
        assert np.mean((x - x_hat) ** 2) < 1e-3

    def test_clip_ratio_reduces_scale(self, rng):
        x = rng.standard_normal(256)
        _, scale_full = int_quantize(x, IntQuantConfig(8, clip_ratio=1.0))
        _, scale_clip = int_quantize(x, IntQuantConfig(8, clip_ratio=0.5))
        assert scale_clip == pytest.approx(scale_full * 0.5)

    def test_zero_tensor(self):
        x = np.zeros(16)
        assert np.array_equal(int_quantize_dequantize(x, IntQuantConfig(8)), x)
