"""Tests for tensor distribution statistics (Fig. 1(a) machinery)."""

import numpy as np

from repro.core.tensor_stats import (
    absolute_histogram,
    collect_stats,
    kurtosis,
    outlier_magnitude,
    outlier_ratio,
)


class TestOutlierMetrics:
    def test_gaussian_has_negligible_outlier_ratio(self, rng):
        x = rng.standard_normal(20000)
        assert outlier_ratio(x, threshold_sigmas=6.0) < 1e-3

    def test_injected_outliers_detected(self, outlier_tensor):
        assert outlier_ratio(outlier_tensor, threshold_sigmas=4.0) > 0.0

    def test_outlier_magnitude_grows_with_outliers(self, rng):
        base = rng.standard_normal(10000)
        spiky = base.copy()
        spiky[::100] *= 50
        assert outlier_magnitude(spiky) > outlier_magnitude(base)

    def test_zero_tensor_safe(self):
        assert outlier_ratio(np.zeros(10)) == 0.0
        assert outlier_magnitude(np.zeros(10)) == 0.0
        assert kurtosis(np.zeros(10)) == 0.0

    def test_kurtosis_of_gaussian_near_zero(self, rng):
        assert abs(kurtosis(rng.standard_normal(200000))) < 0.2

    def test_kurtosis_heavy_tail_positive(self, rng):
        x = rng.standard_normal(10000)
        x[::50] *= 30
        assert kurtosis(x) > 5


class TestHistogramAndStats:
    def test_histogram_counts_total(self, rng):
        x = rng.standard_normal(1000)
        edges, counts = absolute_histogram(x, bins=32)
        assert counts.sum() == 1000
        assert len(edges) == 33

    def test_collect_stats_fields(self, outlier_tensor):
        stats = collect_stats(outlier_tensor, name="activations")
        payload = stats.as_dict()
        assert payload["name"] == "activations"
        assert payload["max_abs"] >= payload["mean_abs"] > 0
        assert payload["dynamic_range_bits"] > 0

    def test_collect_stats_empty(self):
        stats = collect_stats(np.array([]))
        assert stats.mean_abs == 0.0 and stats.max_abs == 0.0
