"""Tests for float decomposition and minifloat specifications."""

import numpy as np
import pytest

from repro.core.floatspec import (
    BF16,
    FP4_E2M1,
    FP8_E4M3,
    FP16,
    FP32,
    FloatSpec,
    compose_float,
    decompose_float,
    exponent_of,
)


class TestFloatSpec:
    def test_fp16_fields(self):
        assert FP16.bias == 15
        assert FP16.max_exponent == 15
        assert FP16.min_exponent == -14
        assert FP16.total_bits == 16

    def test_fp16_max_value_matches_ieee(self):
        assert FP16.max_value == pytest.approx(65504.0)

    def test_fp32_bias(self):
        assert FP32.bias == 127

    def test_bf16_shares_fp32_exponent_range(self):
        assert BF16.max_exponent == FP32.max_exponent
        assert BF16.min_exponent == FP32.min_exponent

    def test_min_normal_and_subnormal(self):
        assert FP16.min_normal == pytest.approx(2.0**-14)
        assert FP16.min_subnormal == pytest.approx(2.0**-24)

    def test_representable_values_fp4(self):
        values = FP4_E2M1.representable_positive_values()
        assert values[0] > 0
        assert np.all(np.diff(values) > 0)
        assert values[-1] == pytest.approx(FP4_E2M1.max_value)

    def test_representable_values_rejects_wide_formats(self):
        with pytest.raises(ValueError):
            FP16.representable_positive_values()

    def test_custom_spec(self):
        spec = FloatSpec("custom", exponent_bits=3, mantissa_bits=2)
        assert spec.bias == 3
        assert spec.total_bits == 6


class TestExponentOf:
    def test_powers_of_two(self):
        x = np.array([1.0, 2.0, 4.0, 0.5, 0.25])
        assert list(exponent_of(x)) == [0, 1, 2, -1, -2]

    def test_non_powers(self):
        assert exponent_of(np.array([3.0]))[0] == 1
        assert exponent_of(np.array([0.9]))[0] == -1

    def test_negative_values_use_magnitude(self):
        assert exponent_of(np.array([-8.0]))[0] == 3

    def test_zero_gets_sentinel(self):
        assert exponent_of(np.array([0.0]), zero_exponent=-99)[0] == -99

    def test_zero_never_wins_block_max(self):
        x = np.array([0.0, 0.125])
        assert exponent_of(x).max() == -3


class TestDecomposeCompose:
    def test_roundtrip(self, rng):
        x = rng.standard_normal(256) * 10
        sign, exponent, mantissa = decompose_float(x)
        assert np.allclose(compose_float(sign, exponent, mantissa), x)

    def test_mantissa_in_unit_range(self, rng):
        x = rng.standard_normal(256) + 5
        _, _, mantissa = decompose_float(x)
        nonzero = mantissa[mantissa != 0]
        assert np.all(nonzero >= 1.0)
        assert np.all(nonzero < 2.0)

    def test_sign_of_negative(self):
        sign, _, _ = decompose_float(np.array([-3.5]))
        assert sign[0] == -1.0

    def test_zero_decomposition(self):
        sign, _, mantissa = decompose_float(np.array([0.0]))
        assert mantissa[0] == 0.0
        assert sign[0] == 1.0
