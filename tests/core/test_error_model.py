"""Tests for the analytic quantisation-error model (Eq. 8)."""

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.core.error_model import (
    analytic_error_variance,
    block_exponent_pmf,
    compare_formats,
    empirical_error_variance,
    empirical_mse,
    predicted_variance,
)


class TestPMF:
    def test_pmf_sums_to_one(self, rng):
        exps = rng.integers(-3, 4, size=100)
        _, probs = block_exponent_pmf(exps)
        assert probs.sum() == pytest.approx(1.0)

    def test_pmf_levels_sorted_unique(self):
        levels, _ = block_exponent_pmf(np.array([2, 0, 2, -1]))
        assert list(levels) == [-1, 0, 2]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            block_exponent_pmf(np.array([]))


class TestAnalyticVariance:
    def test_single_level_closed_form(self):
        # One exponent level gamma: variance = (2^(gamma - (Lm-1)))^2 / 12.
        variance = analytic_error_variance(4, np.array([0]), np.array([1.0]))
        assert variance == pytest.approx((2.0 ** (0 - 3)) ** 2 / 12.0)

    def test_larger_exponents_increase_variance(self):
        low = analytic_error_variance(4, np.array([0]), np.array([1.0]))
        high = analytic_error_variance(4, np.array([3]), np.array([1.0]))
        assert high > low

    def test_more_mantissa_bits_reduce_variance(self):
        levels, probs = np.array([0, 1]), np.array([0.5, 0.5])
        assert analytic_error_variance(6, levels, probs) < analytic_error_variance(4, levels, probs)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            analytic_error_variance(4, np.array([0, 1]), np.array([0.3, 0.3]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            analytic_error_variance(4, np.array([0, 1]), np.array([1.0]))


class TestPredictedVsEmpirical:
    def test_prediction_within_factor_of_empirical_bfp(self, rng):
        x = rng.standard_normal(4096)
        config = BFPConfig(6)
        predicted = predicted_variance(x, config)
        measured = empirical_error_variance(x, config)
        assert predicted == pytest.approx(measured, rel=1.5)

    def test_prediction_orders_bbfp_below_bfp(self, outlier_tensor):
        bbfp = predicted_variance(outlier_tensor, BBFPConfig(4, 2))
        bfp = predicted_variance(outlier_tensor, BFPConfig(4))
        assert bbfp < bfp

    def test_unsupported_config_type(self):
        with pytest.raises(TypeError):
            predicted_variance(np.ones(8), config="INT8")


class TestHelpers:
    def test_empirical_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            empirical_mse(np.ones(4), np.ones(5))

    def test_compare_formats_rows(self, outlier_tensor):
        reports = compare_formats(outlier_tensor, [BFPConfig(4), BBFPConfig(4, 2)])
        assert [r.format_name for r in reports] == ["BFP4", "BBFP(4,2)"]
        assert reports[1].empirical_mse < reports[0].empirical_mse
        assert set(reports[0].as_dict()) == {"format", "analytic_variance", "empirical_mse",
                                             "relative_mse"}
