"""Property-based tests (hypothesis) of the core quantisation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.bbfp import BBFPConfig, bbfp_quantize_dequantize, quantize_bbfp
from repro.core.blockfp import BFPConfig, bfp_quantize_dequantize, quantize_bfp
from repro.core.blocking import from_blocks, to_blocks
from repro.core.dotproduct import bbfp_dot
from repro.core.integer import IntQuantConfig, int_quantize_dequantize

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False,
                       width=32),
)

bbfp_configs = st.tuples(st.integers(2, 8), st.integers(0, 7)).filter(lambda mo: mo[1] < mo[0])


@settings(max_examples=60, deadline=None)
@given(x=finite_arrays)
def test_blocking_roundtrip(x):
    blocks, layout = to_blocks(x, 32)
    assert np.array_equal(from_blocks(blocks, layout), x)


@settings(max_examples=60, deadline=None)
@given(x=finite_arrays, mo=bbfp_configs)
def test_bbfp_dequantise_bounded_by_input_range(x, mo):
    """Quantised magnitudes never exceed the input range by more than one coarse step."""
    m, o = mo
    config = BBFPConfig(m, o)
    x_hat = bbfp_quantize_dequantize(x, config)
    max_in = np.max(np.abs(x))
    assert np.max(np.abs(x_hat)) <= 2.0 * max_in + 1e-9


@settings(max_examples=60, deadline=None)
@given(x=finite_arrays, mo=bbfp_configs)
def test_bbfp_idempotent(x, mo):
    m, o = mo
    config = BBFPConfig(m, o)
    once = bbfp_quantize_dequantize(x, config)
    twice = bbfp_quantize_dequantize(once, config)
    assert np.allclose(once, twice, rtol=1e-12, atol=1e-12)


@settings(max_examples=60, deadline=None)
@given(x=finite_arrays, mo=bbfp_configs)
def test_bbfp_sign_preserved(x, mo):
    m, o = mo
    x_hat = bbfp_quantize_dequantize(x, BBFPConfig(m, o))
    nonzero = x_hat != 0
    assert np.all(np.sign(x_hat[nonzero]) == np.sign(x[nonzero]))


@settings(max_examples=50, deadline=None)
@given(x=finite_arrays, m=st.integers(2, 8))
def test_bfp_error_bounded_by_block_step(x, m):
    """|x - Q(x)| <= one step at the shared exponent (rounding + max-element clipping)."""
    config = BFPConfig(m)
    quantised = quantize_bfp(x, config)
    step = np.exp2(quantised.shared_exponents.astype(np.float64) - (m - 1))
    blocks, _ = to_blocks(x, config.block_size)
    errors = np.abs(quantised.block_values - blocks)
    assert np.all(errors <= step[..., None] + 1e-9)


@settings(max_examples=50, deadline=None)
@given(x=finite_arrays, mo=bbfp_configs)
def test_bbfp_mse_not_worse_than_bfp(x, mo):
    """The headline claim: at equal mantissa width BBFP's MSE <= BFP's MSE.

    The Eq. 8 argument covers the rounding error of the selected step; it does
    not cover *saturation* of the low (flag = 0) group, which can occur for
    adversarial blocks whose second-largest element sits just below the
    largest one while ``m - o`` is tiny.  Elements clipped by the low group
    are therefore excluded from the comparison — for realistic tensors they
    are vanishingly rare (see the Table II / Fig. 3 experiments for the
    end-to-end statistical comparison).
    """
    m, o = mo
    config = BBFPConfig(m, o)
    quantised = quantize_bbfp(x, config)
    base_step = np.exp2(quantised.shared_exponents[..., None].astype(np.float64) - (m - 1))
    low_limit = config.max_mantissa_level * base_step
    blocks, _ = to_blocks(x, config.block_size)
    saturated = (quantised.flags == 0) & (np.abs(blocks) > low_limit + 1e-12)

    bbfp_sq = (blocks - quantised.block_values) ** 2
    bfp_quantised = quantize_bfp(x, BFPConfig(m))
    bfp_sq = (blocks - bfp_quantised.block_values) ** 2

    keep = ~saturated
    bbfp_err = float(np.mean(bbfp_sq[keep])) if np.any(keep) else 0.0
    bfp_err = float(np.mean(bfp_sq[keep])) if np.any(keep) else 0.0
    assert bbfp_err <= bfp_err + 1e-12 + 1e-6 * bfp_err


@settings(max_examples=50, deadline=None)
@given(x=finite_arrays, mo=bbfp_configs)
def test_bbfp_flags_only_above_shared_exponent(x, mo):
    m, o = mo
    quantised = quantize_bbfp(x, BBFPConfig(m, o))
    from repro.core.floatspec import exponent_of

    blocks, _ = to_blocks(x, 32)
    exponents = exponent_of(blocks)
    above = exponents > quantised.shared_exponents[..., None]
    assert np.array_equal(quantised.flags.astype(bool), above)


@settings(max_examples=40, deadline=None)
@given(x=finite_arrays, bits=st.integers(2, 8))
def test_int_quant_codes_bounded(x, bits):
    config = IntQuantConfig(bits)
    x_hat = int_quantize_dequantize(x, config)
    max_abs = np.max(np.abs(x)) if x.size else 0.0
    assert np.max(np.abs(x_hat)) <= max_abs + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    x=hnp.arrays(np.float64, st.integers(2, 128),
                 elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False, width=32)),
    mo=bbfp_configs,
)
def test_bbfp_dot_matches_dequantised_reference(x, mo):
    """The integer MAC datapath equals the mathematical dot product of the dequantised operands."""
    m, o = mo
    config = BBFPConfig(m, o)
    y = np.roll(x, 3)
    integer_result = bbfp_dot(x, y, config)
    reference = float(np.dot(quantize_bbfp(x, config).dequantize(),
                             quantize_bbfp(y, config).dequantize()))
    assert integer_result == pytest.approx(reference, rel=1e-9, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(mo=bbfp_configs, block=st.sampled_from([8, 16, 32, 64]))
def test_equivalent_bit_width_formula(mo, block):
    m, o = mo
    config = BBFPConfig(m, o, block_size=block)
    assert config.equivalent_bit_width() == pytest.approx(m + 2 + 5 / block)
    assert config.memory_efficiency() == pytest.approx(16.0 / (m + 2 + 5 / block))
