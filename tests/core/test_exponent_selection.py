"""Tests for the shared-exponent selection strategies."""

import numpy as np
import pytest

from repro.core.exponent_selection import (
    ExponentStrategy,
    SharedExponentRule,
    select_shared_exponent,
    shift_for_strategy,
    strategy_from_name,
)


class TestStrategyResolution:
    def test_enum_passthrough(self):
        assert strategy_from_name(ExponentStrategy.MAX) is ExponentStrategy.MAX

    @pytest.mark.parametrize("alias,expected", [
        ("max", ExponentStrategy.MAX),
        ("bfp", ExponentStrategy.MAX),
        ("bbfp_default", ExponentStrategy.BBFP_DEFAULT),
        ("max-2", ExponentStrategy.BBFP_DEFAULT),
        ("max-1", ExponentStrategy.BBFP_PLUS_ONE),
        ("max-3", ExponentStrategy.BBFP_MINUS_ONE),
    ])
    def test_aliases(self, alias, expected):
        assert strategy_from_name(alias) is expected

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            strategy_from_name("align-to-the-moon")


class TestShift:
    def test_max_has_zero_shift(self):
        assert shift_for_strategy(ExponentStrategy.MAX, 4, 2) == 0

    def test_bbfp_default_shift_is_m_minus_o(self):
        assert shift_for_strategy(ExponentStrategy.BBFP_DEFAULT, 4, 2) == 2
        assert shift_for_strategy(ExponentStrategy.BBFP_DEFAULT, 6, 3) == 3

    def test_plus_minus_one(self):
        assert shift_for_strategy(ExponentStrategy.BBFP_PLUS_ONE, 4, 2) == 1
        assert shift_for_strategy(ExponentStrategy.BBFP_MINUS_ONE, 4, 2) == 3

    def test_max_minus_k(self):
        assert shift_for_strategy(ExponentStrategy.MAX_MINUS_K, 4, 2, k=5) == 5

    def test_rule_apply(self):
        rule = SharedExponentRule(ExponentStrategy.BBFP_DEFAULT, 4, 2)
        assert list(rule.apply(np.array([10, 3]))) == [8, 1]


class TestSelectSharedExponent:
    def test_max_strategy(self):
        exps = np.array([[1, 5, 3], [0, -2, -7]])
        shared = select_shared_exponent(exps, "max", mantissa_bits=4)
        assert list(shared) == [5, 0]

    def test_default_strategy_subtracts_shift(self):
        exps = np.array([[1, 5, 3]])
        shared = select_shared_exponent(exps, "bbfp_default", mantissa_bits=4, overlap_bits=2)
        assert shared[0] == 3

    def test_clamping(self):
        exps = np.array([[40, 2]])
        shared = select_shared_exponent(exps, "max", mantissa_bits=4, exponent_max=16)
        assert shared[0] == 16
        exps = np.array([[-40, -50]])
        shared = select_shared_exponent(exps, "max", mantissa_bits=4, exponent_min=-14)
        assert shared[0] == -14

    def test_shape_reduces_last_axis(self, rng):
        exps = rng.integers(-5, 5, size=(3, 4, 8))
        shared = select_shared_exponent(exps, "max", mantissa_bits=4)
        assert shared.shape == (3, 4)
