"""Tests for minifloat rounding."""

import numpy as np
import pytest

from repro.core.floatspec import FP4_E2M1, FP8_E4M3, FP16
from repro.core.fp_formats import fp16_round, minifloat_quantize_dequantize


class TestMinifloatRounding:
    def test_representable_values_are_fixed_points(self):
        values = FP4_E2M1.representable_positive_values()
        rounded = minifloat_quantize_dequantize(values, FP4_E2M1)
        assert np.allclose(rounded, values)

    def test_saturation_to_max(self):
        x = np.array([1e6, -1e6])
        rounded = minifloat_quantize_dequantize(x, FP8_E4M3)
        assert rounded[0] == pytest.approx(FP8_E4M3.max_value)
        assert rounded[1] == pytest.approx(-FP8_E4M3.max_value)

    def test_tiny_values_flush_toward_zero(self):
        x = np.array([FP8_E4M3.min_subnormal / 4.0])
        rounded = minifloat_quantize_dequantize(x, FP8_E4M3)
        assert rounded[0] == pytest.approx(0.0, abs=FP8_E4M3.min_subnormal)

    def test_sign_preserved(self, rng):
        x = rng.standard_normal(256)
        rounded = minifloat_quantize_dequantize(x, FP8_E4M3)
        nonzero = rounded != 0
        assert np.all(np.sign(rounded[nonzero]) == np.sign(x[nonzero]))

    def test_fp16_spec_agrees_with_numpy_half(self, rng):
        x = rng.standard_normal(2048) * 10
        spec_rounded = minifloat_quantize_dequantize(x, FP16)
        numpy_rounded = fp16_round(x)
        # Both are FP16 grids; allow ties to differ by at most one ULP.
        ulp = 2.0 ** (np.floor(np.log2(np.abs(x) + 1e-30)) - 10)
        assert np.all(np.abs(spec_rounded - numpy_rounded) <= ulp + 1e-12)

    def test_error_decreases_with_mantissa_bits(self, rng):
        x = rng.standard_normal(2048)
        err8 = np.mean((x - minifloat_quantize_dequantize(x, FP8_E4M3)) ** 2)
        err16 = np.mean((x - minifloat_quantize_dequantize(x, FP16)) ** 2)
        err4 = np.mean((x - minifloat_quantize_dequantize(x, FP4_E2M1)) ** 2)
        assert err16 < err8 < err4

    def test_fp16_round_idempotent(self, rng):
        x = rng.standard_normal(128)
        once = fp16_round(x)
        assert np.array_equal(fp16_round(once), once)
