"""Tests for the vanilla BFP quantiser."""

import numpy as np
import pytest

from repro.core.blockfp import BFPConfig, bfp_quantize_dequantize, quantize_bfp


class TestBFPConfig:
    def test_name(self):
        assert BFPConfig(4).name == "BFP4"

    def test_equivalent_bit_width_matches_paper(self):
        # Table I: BFP8 -> 9.16 bits, BFP6 -> 7.16 bits with blocks of 32.
        assert BFPConfig(8).equivalent_bit_width() == pytest.approx(9.16, abs=0.01)
        assert BFPConfig(6).equivalent_bit_width() == pytest.approx(7.16, abs=0.01)

    def test_memory_efficiency_matches_paper(self):
        assert BFPConfig(8).memory_efficiency() == pytest.approx(1.75, abs=0.01)
        assert BFPConfig(6).memory_efficiency() == pytest.approx(2.24, abs=0.01)

    def test_mantissa_range_bfp4(self):
        # Fig. 2(b): BFP4 mantissas span +/-1.875.
        low, high = BFPConfig(4).mantissa_range()
        assert high == pytest.approx(1.875)
        assert low == pytest.approx(0.125)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            BFPConfig(0)
        with pytest.raises(ValueError):
            BFPConfig(4, block_size=0)
        with pytest.raises(ValueError):
            BFPConfig(4, exponent_bits=1)


class TestQuantizeBFP:
    def test_exact_representable_values(self):
        # All values share exponent 0 and sit exactly on the grid.
        x = np.array([1.875, 1.0, 0.125, -0.25] + [0.0] * 28)
        config = BFPConfig(4, block_size=32)
        assert np.allclose(bfp_quantize_dequantize(x, config), x)

    def test_max_element_preserved_within_step(self, outlier_tensor):
        config = BFPConfig(6)
        x_hat = bfp_quantize_dequantize(outlier_tensor, config)
        idx = np.argmax(np.abs(outlier_tensor))
        step = 2.0 ** (np.floor(np.log2(np.abs(outlier_tensor[idx]))) - 5)
        assert abs(x_hat[idx] - outlier_tensor[idx]) <= step

    def test_zero_tensor(self):
        x = np.zeros(64)
        assert np.array_equal(bfp_quantize_dequantize(x, BFPConfig(4)), x)

    def test_error_bounded_by_step(self, rng):
        # Rounding error is at most step/2; the block maximum may additionally be
        # clipped by up to one step (mantissa saturates at 2**m - 1).
        x = rng.standard_normal(1024)
        config = BFPConfig(8)
        quantised = quantize_bfp(x, config)
        step = np.exp2(quantised.shared_exponents.astype(float) - 7)
        errors = np.abs(quantised.block_values - x.reshape(quantised.block_values.shape))
        assert np.all(errors <= step[..., None] + 1e-12)

    def test_mantissa_codes_within_range(self, rng):
        x = rng.standard_normal(512) * 100
        quantised = quantize_bfp(x, BFPConfig(4))
        assert quantised.mantissas.min() >= 0
        assert quantised.mantissas.max() <= 15

    def test_shared_exponent_is_block_max(self, rng):
        x = rng.standard_normal((2, 64))
        quantised = quantize_bfp(x, BFPConfig(4))
        from repro.core.blocking import to_blocks
        from repro.core.floatspec import exponent_of

        blocks, _ = to_blocks(x, 32)
        expected = exponent_of(blocks).max(axis=-1)
        assert np.array_equal(quantised.shared_exponents, expected)

    def test_quantisation_along_axis_zero(self, rng):
        x = rng.standard_normal((64, 8))
        x_hat = bfp_quantize_dequantize(x, BFPConfig(6), axis=0)
        assert x_hat.shape == x.shape
        assert np.mean((x - x_hat) ** 2) < 1e-3

    def test_more_mantissa_bits_reduce_error(self, outlier_tensor):
        errors = []
        for bits in (3, 4, 6, 8):
            x_hat = bfp_quantize_dequantize(outlier_tensor, BFPConfig(bits))
            errors.append(np.mean((outlier_tensor - x_hat) ** 2))
        assert errors == sorted(errors, reverse=True)

    def test_memory_bits(self, rng):
        x = rng.standard_normal(64)
        quantised = quantize_bfp(x, BFPConfig(4, block_size=32))
        # 64 elements * (4 + 1 sign) + 2 blocks * 5 exponent bits.
        assert quantised.memory_bits() == 64 * 5 + 2 * 5

    def test_idempotence(self, outlier_tensor):
        config = BFPConfig(6)
        once = bfp_quantize_dequantize(outlier_tensor, config)
        twice = bfp_quantize_dequantize(once, config)
        assert np.allclose(once, twice)
