"""Tests for the shared atomic-write helpers (repro.core.ioutils)."""

from __future__ import annotations

import pytest

from repro.core.ioutils import atomic_write_text, atomic_writer


class TestAtomicWriteText:
    def test_writes_and_returns_path(self, tmp_path):
        target = tmp_path / "out.json"
        assert atomic_write_text(target, '{"a": 1}') == target
        assert target.read_text() == '{"a": 1}'
        assert list(tmp_path.iterdir()) == [target]  # no scratch file left behind

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"


class TestAtomicWriter:
    def test_binary_writes(self, tmp_path):
        target = tmp_path / "blob.bin"
        with atomic_writer(target) as fh:
            fh.write(b"\x00\x01\x02")
        assert target.read_bytes() == b"\x00\x01\x02"

    def test_failure_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("intact")
        with pytest.raises(RuntimeError):
            with atomic_writer(target, "w") as fh:
                fh.write("half-")
                raise RuntimeError("writer died mid-stream")
        assert target.read_text() == "intact"
        assert list(tmp_path.iterdir()) == [target]  # scratch file cleaned up
