"""Tests for Algorithm 1 (overlap-bit-width selection)."""

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig
from repro.core.overlap_search import mse_ppl_proxy, select_overlap_width


def _linear_overhead(config: BBFPConfig) -> float:
    # A simple monotone stand-in for the hardware overhead: fewer overlap bits
    # mean a wider product datapath.
    return 10.0 + 2.0 * (config.mantissa_bits - config.overlap_bits)


class TestSelectOverlapWidth:
    def test_sweeps_all_widths(self):
        result = select_overlap_width(4, lambda c: 1.0, lambda c: 1.0)
        assert [c.overlap_bits for c in result.candidates] == [0, 1, 2, 3]

    def test_pure_accuracy_weight_picks_lowest_ppl(self):
        ppls = {0: 30.0, 1: 12.0, 2: 10.0, 3: 25.0}
        result = select_overlap_width(4, lambda c: ppls[c.overlap_bits], _linear_overhead,
                                      overhead_weight=0.0)
        assert result.best_overlap == 2

    def test_pure_overhead_weight_picks_cheapest(self):
        ppls = {0: 30.0, 1: 12.0, 2: 10.0, 3: 25.0}
        result = select_overlap_width(4, lambda c: ppls[c.overlap_bits], _linear_overhead,
                                      overhead_weight=1.0)
        assert result.best_overlap == 3  # widest overlap = narrowest datapath

    def test_score_is_normalised_weighted_sum(self):
        result = select_overlap_width(3, lambda c: 2.0 * (c.overlap_bits + 1),
                                      lambda c: 4.0 - c.overlap_bits, overhead_weight=0.25)
        for candidate in result.candidates:
            expected = 0.25 * candidate.overhead_norm + 0.75 * candidate.ppl_norm
            assert candidate.score == pytest.approx(expected)

    def test_best_config_property(self):
        result = select_overlap_width(4, lambda c: 1.0, _linear_overhead, overhead_weight=1.0)
        assert isinstance(result.best_config, BBFPConfig)
        assert result.best_config.overlap_bits == result.best_overlap

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            select_overlap_width(4, lambda c: 1.0, lambda c: 1.0, overhead_weight=1.5)

    def test_needs_two_mantissa_bits(self):
        with pytest.raises(ValueError):
            select_overlap_width(1, lambda c: 1.0, lambda c: 1.0)

    def test_rows_export(self):
        result = select_overlap_width(3, lambda c: 1.0, lambda c: 1.0)
        rows = result.as_rows()
        assert len(rows) == 3
        assert {"overlap_bits", "ppl", "overhead", "score"} <= set(rows[0])


class TestMSEProxy:
    def test_proxy_orders_like_real_mse(self, outlier_tensor):
        proxy = mse_ppl_proxy([outlier_tensor])
        # More mantissa bits at fixed overlap ratio -> lower proxy value.
        assert proxy(BBFPConfig(6, 3)) < proxy(BBFPConfig(4, 2)) < proxy(BBFPConfig(3, 1))

    def test_proxy_requires_tensors(self):
        with pytest.raises(ValueError):
            mse_ppl_proxy([])

    def test_algorithm_with_proxy_runs_end_to_end(self, outlier_tensor):
        proxy = mse_ppl_proxy([outlier_tensor])
        result = select_overlap_width(4, proxy, _linear_overhead, overhead_weight=0.3)
        assert 0 <= result.best_overlap < 4
