"""Tests for the bi-exponent BFP comparator format (repro.core.bie)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.bbfp import BBFPConfig, bbfp_quantize_dequantize
from repro.core.bie import BiEConfig, bie_quantize_dequantize, quantize_bie
from repro.core.blockfp import BFPConfig, bfp_quantize_dequantize
from repro.core.blocking import to_blocks
from repro.llm.inference import QuantizationScheme


class TestBiEConfig:
    def test_name_mentions_mantissa_and_outlier_budget(self):
        assert BiEConfig(4, outlier_count=2).name == "BiE4(k=2)"

    def test_equivalent_bit_width(self):
        # m + sign + select + two 5-bit exponents / 32 elements.
        assert BiEConfig(4).equivalent_bit_width() == pytest.approx(4 + 2 + 10 / 32)

    def test_storage_matches_bbfp_element_budget(self):
        """Per-element storage equals BBFP's; only the amortised exponent differs."""
        bie = BiEConfig(6)
        bbfp = BBFPConfig(6, 3)
        assert bie.equivalent_bit_width() == pytest.approx(
            bbfp.equivalent_bit_width() + 5 / 32
        )

    def test_invalid_outlier_count_rejected(self):
        with pytest.raises(ValueError, match="outlier_count"):
            BiEConfig(4, outlier_count=32, block_size=32)
        with pytest.raises(ValueError, match="outlier_count"):
            BiEConfig(4, outlier_count=-1)

    def test_invalid_mantissa_rejected(self):
        with pytest.raises(ValueError, match="mantissa_bits"):
            BiEConfig(0)


class TestQuantizeBiE:
    def test_roundtrip_shape_preserved(self, rng):
        x = rng.standard_normal((3, 100))
        assert bie_quantize_dequantize(x, BiEConfig(4)).shape == x.shape

    def test_outlier_budget_respected(self, outlier_tensor):
        config = BiEConfig(4, outlier_count=2, block_size=32)
        quantised = quantize_bie(outlier_tensor, config)
        per_block_outliers = quantised.selects.sum(axis=-1)
        assert np.all(per_block_outliers <= 2)

    def test_zero_outlier_count_degenerates_to_bfp(self, rng):
        x = rng.standard_normal(128)
        bie = bie_quantize_dequantize(x, BiEConfig(4, outlier_count=0))
        bfp = bfp_quantize_dequantize(x, BFPConfig(4))
        np.testing.assert_allclose(bie, bfp)

    def test_high_group_holds_the_largest_elements(self, outlier_tensor):
        """Selected (high-exponent) elements dominate every unselected one in their block."""
        quantised = quantize_bie(outlier_tensor, BiEConfig(4, outlier_count=2))
        blocks = outlier_tensor.reshape(-1, 32)
        for block_selects, block_values in zip(quantised.selects.reshape(-1, 32), blocks):
            if block_selects.sum() == 0:
                continue
            mags = np.abs(block_values)
            assert mags[block_selects == 1].min() >= mags[block_selects == 0].max()

    def test_low_exponent_never_exceeds_high_exponent(self, rng):
        x = rng.standard_normal(512) * np.exp(rng.standard_normal(512))
        quantised = quantize_bie(x, BiEConfig(4, outlier_count=3))
        assert np.all(quantised.low_exponents <= quantised.high_exponents)

    def test_signs_preserved(self, rng):
        x = rng.standard_normal(256)
        x_hat = bie_quantize_dequantize(x, BiEConfig(6))
        nonzero = x_hat != 0
        assert np.all(np.sign(x_hat[nonzero]) == np.sign(x[nonzero]))

    def test_zero_tensor_is_exact(self):
        x = np.zeros(96)
        np.testing.assert_array_equal(bie_quantize_dequantize(x, BiEConfig(4)), x)

    def test_bie_beats_vanilla_bfp_on_outlier_tensors(self, outlier_tensor):
        """The second exponent protects the bulk of the block, like the ICML paper claims."""
        bie_err = float(
            np.mean((outlier_tensor - bie_quantize_dequantize(outlier_tensor, BiEConfig(4))) ** 2)
        )
        bfp_err = float(
            np.mean((outlier_tensor - bfp_quantize_dequantize(outlier_tensor, BFPConfig(4))) ** 2)
        )
        assert bie_err < bfp_err

    def test_bbfp_and_bie_are_both_outlier_robust(self, outlier_tensor):
        """Both mechanisms bound the damage of outliers; record their relative standing."""
        bie_err = float(
            np.mean((outlier_tensor - bie_quantize_dequantize(outlier_tensor, BiEConfig(4))) ** 2)
        )
        bbfp_err = float(
            np.mean(
                (outlier_tensor - bbfp_quantize_dequantize(outlier_tensor, BBFPConfig(4, 2))) ** 2
            )
        )
        bfp_err = float(
            np.mean((outlier_tensor - bfp_quantize_dequantize(outlier_tensor, BFPConfig(4))) ** 2)
        )
        assert max(bie_err, bbfp_err) < bfp_err

    def test_memory_bits_accounting(self, rng):
        x = rng.standard_normal(64)
        quantised = quantize_bie(x, BiEConfig(4))
        assert quantised.memory_bits() == 64 * (4 + 2) + 2 * 2 * 5

    def test_outlier_fraction_never_exceeds_budget(self, rng):
        x = rng.standard_normal(32 * 8)
        quantised = quantize_bie(x, BiEConfig(4, outlier_count=4))
        assert quantised.outlier_fraction() <= 4 / 32 + 1e-12

    def test_clear_outliers_fill_the_budget(self, rng):
        x = rng.standard_normal((8, 32))
        x[:, :2] = np.array([150.0, -90.0])  # two unmistakable outliers per block
        quantised = quantize_bie(x.ravel(), BiEConfig(4, outlier_count=2))
        assert quantised.outlier_fraction() == pytest.approx(2 / 32)

    def test_idempotent_on_clearly_separated_outliers(self, rng):
        x = rng.standard_normal(32 * 16)
        x[::16] *= 100.0
        config = BiEConfig(4, outlier_count=2)
        once = bie_quantize_dequantize(x, config)
        twice = bie_quantize_dequantize(once, config)
        np.testing.assert_allclose(once, twice, rtol=1e-12, atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        x=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=100),
            elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, width=32),
        ),
        m=st.integers(2, 8),
        k=st.integers(0, 4),
    )
    def test_high_group_error_bounded_by_one_step(self, x, m, k):
        """High-group elements align to the block max, so the error is at most
        one coarse step (half a step from rounding, up to a full step when the
        largest mantissa rounds up into the clip — the same bound the vanilla
        BFP property test uses)."""
        config = BiEConfig(m, outlier_count=k)
        quantised = quantize_bie(x, config)
        blocks, _ = to_blocks(x, config.block_size)
        high_step = np.exp2(quantised.high_exponents[..., None].astype(np.float64) - (m - 1))
        errors = np.abs(quantised.block_values - blocks)
        in_high = quantised.selects == 1
        assert np.all(errors[in_high] <= (high_step * np.ones_like(errors))[in_high] + 1e-9)


class TestSchemeIntegration:
    def test_from_format_accepts_bie_config(self, rng):
        scheme = QuantizationScheme.from_format(BiEConfig(4))
        assert scheme.name.startswith("BiE4")
        x = rng.standard_normal((5, 64))
        x_hat = scheme.activation_fn("blocks.0.mlp.fc1", x)
        assert x_hat.shape == x.shape
