"""Tests for the MAC-unit (Table I) and PE (Table III) cost models."""

import pytest

from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.core.floatspec import FP16, FP8_E4M3
from repro.core.integer import IntQuantConfig
from repro.hardware.mac import bbfp_mac, bfp_mac, fp16_mac, int_mac, mac_table, mac_unit_for_format
from repro.hardware.pe import pe_area_table, pe_for_strategy


class TestMACUnits:
    def test_fp16_much_larger_than_int8(self):
        assert fp16_mac().gate_equivalents() > 3 * int_mac(IntQuantConfig(8)).gate_equivalents()

    def test_bfp8_close_to_int8(self):
        """Table I: BFP8 costs about the same as INT8 (the exponent adder is small)."""
        ratio = bfp_mac(BFPConfig(8)).gate_equivalents() / int_mac(IntQuantConfig(8)).gate_equivalents()
        assert 0.9 < ratio < 1.25

    def test_bbfp_slightly_larger_than_bfp_same_width(self):
        """Table I: BBFP adds a few percent over BFP at equal mantissa width."""
        for m, o in [(8, 4), (6, 3)]:
            bbfp = bbfp_mac(BBFPConfig(m, o)).gate_equivalents()
            bfp = bfp_mac(BFPConfig(m)).gate_equivalents()
            assert 1.0 < bbfp / bfp < 1.35

    def test_bbfp63_cheaper_than_bfp8(self):
        """The paper's punchline: BBFP(6,3) gives more range than BFP8 for less area and memory."""
        bbfp63 = bbfp_mac(BBFPConfig(6, 3))
        bfp8 = bfp_mac(BFPConfig(8))
        assert bbfp63.gate_equivalents() < bfp8.gate_equivalents()
        assert bbfp63.memory_efficiency() > bfp8.memory_efficiency()

    def test_memory_efficiency_values(self):
        assert bbfp_mac(BBFPConfig(6, 3)).memory_efficiency() == pytest.approx(1.96, abs=0.01)
        assert bfp_mac(BFPConfig(6)).memory_efficiency() == pytest.approx(2.24, abs=0.01)

    def test_dispatch(self):
        assert mac_unit_for_format(BBFPConfig(4, 2)).name == "BBFP(4,2)"
        assert mac_unit_for_format(FP16).name == "FP16"
        with pytest.raises(ValueError):
            mac_unit_for_format(FP8_E4M3)
        with pytest.raises(TypeError):
            mac_unit_for_format("INT8")

    def test_mac_table_rows(self):
        rows = mac_table([FP16, IntQuantConfig(8), BBFPConfig(6, 3)])
        assert [r["datatype"] for r in rows] == ["FP16", "INT8", "BBFP(6,3)"]
        assert all(r["area_um2"] > 0 for r in rows)

    def test_energy_per_mac_ordering(self):
        assert fp16_mac().energy_per_mac_j() > bbfp_mac(BBFPConfig(4, 2)).energy_per_mac_j()


class TestPEDesigns:
    def test_multiplier_width_orders_block_formats(self):
        a3 = pe_for_strategy(BBFPConfig(3, 1)).area_um2()
        a4 = pe_for_strategy(BBFPConfig(4, 2)).area_um2()
        a6 = pe_for_strategy(BBFPConfig(6, 3)).area_um2()
        assert a3 < a4 < a6

    def test_wider_overlap_shrinks_pe(self):
        assert pe_for_strategy(BBFPConfig(6, 5)).area_um2() < pe_for_strategy(BBFPConfig(6, 3)).area_um2()

    def test_bbfp3_smaller_than_bfp4(self):
        """The Fig. 8 throughput argument: BBFP(3,x) PEs are smaller than BFP4 PEs."""
        assert pe_for_strategy(BBFPConfig(3, 1)).area_um2() < pe_for_strategy(BFPConfig(4)).area_um2()

    def test_oltron_is_smallest_class(self):
        oltron = pe_for_strategy("Oltron").area_um2()
        assert oltron < pe_for_strategy(BFPConfig(4)).area_um2()

    def test_olive_between_bfp4_and_bfp6(self):
        olive = pe_for_strategy("Olive").area_um2()
        assert pe_for_strategy(BFPConfig(4)).area_um2() < olive < pe_for_strategy(BFPConfig(6)).area_um2()

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            pe_for_strategy("tpu")
        with pytest.raises(TypeError):
            pe_for_strategy(3.14)

    def test_registers_add_area(self):
        design = pe_for_strategy(BBFPConfig(4, 2))
        assert design.area_um2(include_registers=True) > design.area_um2(include_registers=False)

    def test_pe_area_table_normalisation(self):
        rows = pe_area_table(["Oltron", BFPConfig(4), BBFPConfig(6, 3)],
                             normalise_to=BBFPConfig(6, 3))
        by_name = {r["strategy"]: r for r in rows}
        assert by_name["BBFP(6,3)"]["normalised_area"] == pytest.approx(1.0)
        assert by_name["Oltron"]["normalised_area"] < 0.5

    def test_table3_ordering_matches_paper(self):
        """The full Table III ordering: 3-bit designs < 4-bit designs < 6-bit designs."""
        rows = pe_area_table(
            ["Oltron", "Olive", BFPConfig(4), BFPConfig(6), BBFPConfig(3, 1), BBFPConfig(4, 2),
             BBFPConfig(6, 3)],
            normalise_to=BBFPConfig(6, 3),
        )
        norm = {r["strategy"]: r["normalised_area"] for r in rows}
        assert norm["Oltron"] < norm["BFP4"] < norm["Olive"] < norm["BFP6"] < 1.01
        assert norm["BBFP(3,1)"] < norm["BBFP(4,2)"] < norm["BBFP(6,3)"]

    def test_static_power_and_macs_per_cycle(self):
        design = pe_for_strategy(BBFPConfig(4, 2))
        assert design.static_power_w() > 0
        assert design.macs_per_cycle() == 1.0
