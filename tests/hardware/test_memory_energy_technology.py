"""Tests for the SRAM/DRAM models, the energy breakdown container and technology constants."""

import pytest

from repro.hardware.energy import EnergyBreakdown
from repro.hardware.memory import DRAMModel, SRAMBuffer
from repro.hardware.technology import TSMC28_LIKE


class TestTechnology:
    def test_cycle_time(self):
        assert TSMC28_LIKE.cycle_time_s == pytest.approx(1e-9)

    def test_dram_much_more_expensive_than_sram(self):
        assert TSMC28_LIKE.dram_energy_per_byte_pj > 50 * TSMC28_LIKE.sram_read_energy_per_byte_pj

    def test_logic_area_and_energy_helpers(self):
        assert TSMC28_LIKE.logic_area_um2(100) == pytest.approx(49.0)
        assert TSMC28_LIKE.dynamic_energy_j(1000) > 0
        assert TSMC28_LIKE.static_energy_j(1000, 1e-3) > 0


class TestSRAM:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SRAMBuffer("bad", 0)

    def test_area_scales_with_capacity(self):
        small = SRAMBuffer("a", 16 * 1024)
        big = SRAMBuffer("b", 64 * 1024)
        assert big.area_um2() == pytest.approx(4 * small.area_um2())

    def test_energy_per_byte_grows_with_capacity(self):
        small = SRAMBuffer("a", 16 * 1024)
        big = SRAMBuffer("b", 256 * 1024)
        assert big.read_energy_j(1024) > small.read_energy_j(1024)

    def test_write_more_expensive_than_read(self):
        buf = SRAMBuffer("a", 32 * 1024)
        assert buf.write_energy_j(100) > buf.read_energy_j(100)

    def test_leakage_positive(self):
        assert SRAMBuffer("a", 32 * 1024).leakage_power_w() > 0


class TestDRAM:
    def test_linear_in_bytes(self):
        dram = DRAMModel()
        assert dram.access_energy_j(2000) == pytest.approx(2 * dram.access_energy_j(1000))


class TestEnergyBreakdown:
    def test_total(self):
        e = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        assert e.total_j == 10.0

    def test_add_and_scale(self):
        e = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        doubled = e + e
        assert doubled.total_j == 20.0
        assert e.scaled(0.5).total_j == 5.0

    def test_normalised_components_sum_to_total(self):
        e = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        ref = EnergyBreakdown(2.0, 2.0, 3.0, 13.0)
        norm = e.normalised_to(ref)
        assert norm["total"] == pytest.approx(norm["static"] + norm["dram"] + norm["buffer"] + norm["core"])
        assert norm["total"] == pytest.approx(0.5)

    def test_normalise_requires_positive_reference(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(1, 1, 1, 1).normalised_to(EnergyBreakdown(0, 0, 0, 0))

    def test_as_dict(self):
        payload = EnergyBreakdown(1, 2, 3, 4).as_dict()
        assert payload["total_j"] == 10
