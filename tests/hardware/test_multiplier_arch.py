"""Tests for the multiplier micro-architecture ablation models (repro.hardware.multiplier_arch)."""

from __future__ import annotations

import pytest

from repro.hardware.multiplier_arch import (
    MultiplierDesign,
    array_multiplier_design,
    booth_radix4_multiplier,
    carry_save_accumulator,
    multiplier_architecture_table,
    wallace_tree_multiplier,
)
from repro.hardware.multipliers import array_multiplier
from repro.hardware.technology import TSMC28_LIKE


class TestArrayDesign:
    def test_gates_match_the_table1_multiplier(self):
        design = array_multiplier_design(4, 4)
        assert design.gates.as_dict() == array_multiplier(4, 4).as_dict()

    def test_depth_grows_linearly_with_width(self):
        assert array_multiplier_design(16, 16).logic_depth_fa > 2 * array_multiplier_design(
            6, 6
        ).logic_depth_fa


class TestBoothRadix4:
    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            booth_radix4_multiplier(0, 4)

    def test_cheaper_than_array_for_wide_operands(self):
        booth = booth_radix4_multiplier(24, 24)
        array = array_multiplier_design(24, 24)
        assert booth.gate_equivalents() < array.gate_equivalents()

    def test_not_worth_it_for_bbfp_width_mantissas(self):
        """For the 3–6-bit mantissas BBFP uses, the recoders dominate: the
        plain array stays cheaper — the reason the paper's PEs use it."""
        booth = booth_radix4_multiplier(4, 4)
        array = array_multiplier_design(4, 4)
        assert booth.gate_equivalents() > array.gate_equivalents()

    def test_shallower_than_array_for_wide_operands(self):
        assert (
            booth_radix4_multiplier(16, 16).logic_depth_fa
            < array_multiplier_design(16, 16).logic_depth_fa
        )


class TestWallaceTree:
    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            wallace_tree_multiplier(4, -1)

    def test_depth_much_shorter_than_array(self):
        wallace = wallace_tree_multiplier(12, 12)
        array = array_multiplier_design(12, 12)
        assert wallace.logic_depth_fa < array.logic_depth_fa / 2

    def test_area_within_a_small_factor_of_array(self):
        wallace = wallace_tree_multiplier(8, 8)
        array = array_multiplier_design(8, 8)
        ratio = wallace.gate_equivalents() / array.gate_equivalents()
        assert 0.5 < ratio < 1.6

    def test_best_area_delay_product_at_wide_widths(self):
        designs = [
            array_multiplier_design(16, 16),
            booth_radix4_multiplier(16, 16),
            wallace_tree_multiplier(16, 16),
        ]
        best = min(designs, key=lambda d: d.area_delay_product())
        assert best.name in ("wallace", "booth-r4")


class TestMultiplierDesign:
    def test_max_frequency_inverse_of_depth(self):
        shallow = MultiplierDesign("a", (4, 4), array_multiplier(4, 4), logic_depth_fa=2.0)
        deep = MultiplierDesign("b", (4, 4), array_multiplier(4, 4), logic_depth_fa=8.0)
        assert shallow.max_frequency_ghz() == pytest.approx(4 * deep.max_frequency_ghz())

    def test_area_delay_product_units(self):
        design = array_multiplier_design(6, 6)
        expected = design.area_um2(TSMC28_LIKE) * design.logic_depth_fa * 45.0 * 1e-3
        assert design.area_delay_product() == pytest.approx(expected)


class TestCarrySaveAccumulator:
    def test_scales_with_terms(self):
        few = carry_save_accumulator(12, terms=4).gate_equivalents()
        many = carry_save_accumulator(12, terms=32).gate_equivalents()
        assert many > few

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            carry_save_accumulator(0, 4)
        with pytest.raises(ValueError):
            carry_save_accumulator(8, 0)


class TestArchitectureTable:
    def test_rows_cover_all_architectures_and_widths(self):
        rows = multiplier_architecture_table([4, 8])
        assert len(rows) == 6
        assert {row["architecture"] for row in rows} == {"array", "booth-r4", "wallace"}
        assert {row["bits"] for row in rows} == {4, 8}

    def test_rows_contain_positive_metrics(self):
        for row in multiplier_architecture_table([6]):
            assert row["area_um2"] > 0
            assert row["logic_depth_fa"] > 0
            assert row["max_frequency_ghz"] > 0
            assert row["area_delay_product"] > 0
