"""Tests for the gate-level primitives: gate counts, adders, carry chains, multipliers."""

import pytest

from repro.hardware.adders import (
    CARRY_CHAIN_CELL,
    adder_savings_ratio,
    carry_chain,
    ripple_carry_adder,
    sparse_partial_sum_adder,
)
from repro.hardware.gates import FULL_ADDER, GATE_EQUIVALENT_WEIGHTS, GateCounts, HALF_ADDER
from repro.hardware.multipliers import (
    array_multiplier,
    barrel_shifter,
    comparator,
    divider,
    exponent_adder,
)
from repro.hardware.technology import TSMC28_LIKE


class TestGateCounts:
    def test_of_rejects_unknown_gate(self):
        with pytest.raises(ValueError):
            GateCounts.of(nand3=1)

    def test_addition_merges_counts(self):
        total = GateCounts.of(and2=2) + GateCounts.of(and2=1, xor2=3)
        assert total.count("and2") == 3
        assert total.count("xor2") == 3

    def test_scaling(self):
        doubled = GateCounts.of(xor2=2) * 2
        assert doubled.count("xor2") == 4

    def test_gate_equivalents_weighting(self):
        ge = GateCounts.of(xor2=1, and2=1).gate_equivalents()
        assert ge == GATE_EQUIVALENT_WEIGHTS["xor2"] + GATE_EQUIVALENT_WEIGHTS["and2"]

    def test_area_conversion(self):
        gates = GateCounts.of(nand2=10)
        assert gates.area_um2(TSMC28_LIKE) == pytest.approx(10 * TSMC28_LIKE.nand2_area_um2)

    def test_energy_and_power_positive(self):
        gates = GateCounts.of(flipflop=8, xor2=4)
        assert gates.dynamic_energy_j(TSMC28_LIKE) > 0
        assert gates.static_power_w(TSMC28_LIKE) > 0

    def test_full_adder_structure(self):
        assert FULL_ADDER.count("xor2") == 2
        assert FULL_ADDER.count("and2") == 2
        assert FULL_ADDER.count("or2") == 1
        assert HALF_ADDER.count("xor2") == 1


class TestAdders:
    def test_ripple_adder_scales_linearly(self):
        assert ripple_carry_adder(8).gate_equivalents() == pytest.approx(
            2 * ripple_carry_adder(4).gate_equivalents()
        )

    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)
        with pytest.raises(ValueError):
            carry_chain(-1)
        with pytest.raises(ValueError):
            sparse_partial_sum_adder(8, 9)

    def test_carry_chain_cell_saves_one_and_two_xor(self):
        """Eq. 13/14 vs Eq. 11/12: the carry-chain cell drops 1 AND, 1 OR and 1 XOR... precisely
        it keeps one XOR and one AND of the full adder's 2 XOR + 2 AND + 1 OR."""
        assert CARRY_CHAIN_CELL.count("xor2") == FULL_ADDER.count("xor2") - 1
        assert CARRY_CHAIN_CELL.count("and2") == FULL_ADDER.count("and2") - 1
        assert CARRY_CHAIN_CELL.count("or2") == 0

    def test_sparse_adder_cheaper_than_full(self):
        assert sparse_partial_sum_adder(12, 4).gate_equivalents() < ripple_carry_adder(12).gate_equivalents()

    def test_paper_savings_figure(self):
        """Replacing a 12-bit adder by an 8-bit adder + 4-bit carry chain saves roughly 15%."""
        savings = adder_savings_ratio(12, 4)
        assert 0.10 <= savings <= 0.25

    def test_savings_grow_with_chain_length(self):
        assert adder_savings_ratio(16, 8) > adder_savings_ratio(16, 4)

    def test_zero_chain_is_identity(self):
        assert sparse_partial_sum_adder(10, 0).gate_equivalents() == pytest.approx(
            ripple_carry_adder(10).gate_equivalents()
        )


class TestMultipliersAndFriends:
    def test_multiplier_grows_quadratically(self):
        small = array_multiplier(3, 3).gate_equivalents()
        big = array_multiplier(6, 6).gate_equivalents()
        assert 3.0 < big / small < 6.0

    def test_multiplier_invalid(self):
        with pytest.raises(ValueError):
            array_multiplier(0, 4)

    def test_one_bit_multiplier_is_just_ands(self):
        gates = array_multiplier(1, 4)
        assert gates.count("and2") == 4
        assert gates.count("xor2") == 0

    def test_barrel_shifter_stages(self):
        two_positions = barrel_shifter(8, 2).count("mux2")
        four_positions = barrel_shifter(8, 4).count("mux2")
        assert four_positions == 2 * two_positions

    def test_shifter_single_position_free(self):
        assert barrel_shifter(8, 1).gate_equivalents() == 0

    def test_comparator_and_exponent_adder(self):
        assert comparator(5).gate_equivalents() > 0
        assert exponent_adder(5).gate_equivalents() == pytest.approx(5 * FULL_ADDER.gate_equivalents())

    def test_divider_much_larger_than_adder(self):
        assert divider(16).gate_equivalents() > 10 * ripple_carry_adder(16).gate_equivalents()
