"""Tests for the bit-accurate BBFP MAC datapath (repro.hardware.datapath)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bbfp import BBFPConfig, quantize_bbfp
from repro.core.dotproduct import bbfp_block_dot
from repro.hardware.datapath import (
    MACDatapath,
    bbfp_multiply_codes,
    carry_chain_bit,
    full_adder_bit,
    product_zero_mask,
    ripple_add,
    sparse_ripple_add,
)


class TestBitCells:
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    @pytest.mark.parametrize("cin", [0, 1])
    def test_full_adder_truth_table(self, a, b, cin):
        s, cout = full_adder_bit(a, b, cin)
        assert s + 2 * cout == a + b + cin

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("cin", [0, 1])
    def test_carry_chain_equals_full_adder_with_zero_operand(self, a, cin):
        assert carry_chain_bit(a, cin) == full_adder_bit(a, 0, cin)


class TestRippleAdd:
    @settings(max_examples=100, deadline=None)
    @given(a=st.integers(0, 2**12 - 1), b=st.integers(0, 2**12 - 1))
    def test_matches_integer_addition(self, a, b):
        total, carry = ripple_add(a, b, 12)
        assert total + (carry << 12) == a + b

    def test_rejects_out_of_range_operands(self):
        with pytest.raises(ValueError):
            ripple_add(1 << 8, 0, 8)
        with pytest.raises(ValueError):
            ripple_add(-1, 0, 8)
        with pytest.raises(ValueError):
            ripple_add(1, 1, 0)


class TestSparseRippleAdd:
    @settings(max_examples=100, deadline=None)
    @given(a=st.integers(0, 2**12 - 1), b=st.integers(0, 2**7 - 1))
    def test_equivalent_to_full_adder_when_assumption_holds(self, a, b):
        """Replacing full adders by carry-chain cells never changes the sum
        as long as the masked operand bits really are zero (the Fig. 5(b) claim)."""
        chain_mask = 0b111110000000  # b is confined to the low 7 bits
        sparse = sparse_ripple_add(a, b, 12, chain_mask)
        full = ripple_add(a, b, 12)
        assert sparse == full

    def test_detects_structural_assumption_violation(self):
        with pytest.raises(ValueError, match="carry-chain mask"):
            sparse_ripple_add(0, 0b1000, 8, chain_mask=0b1000)

    def test_zero_mask_degenerates_to_ripple_add(self):
        assert sparse_ripple_add(37, 91, 8, 0) == ripple_add(37, 91, 8)

    def test_carry_propagates_through_the_chain(self):
        # a = all ones in the chain region, +1 from below must ripple through.
        total, carry = sparse_ripple_add(0b11110000, 0b00010000, 8, chain_mask=0b00001111)
        assert total == 0b00000000
        assert carry == 1


class TestProductStructure:
    @pytest.mark.parametrize("flag_a", [0, 1])
    @pytest.mark.parametrize("flag_b", [0, 1])
    def test_products_respect_the_zero_mask(self, flag_a, flag_b, rng):
        config = BBFPConfig(4, 2)
        mask = product_zero_mask(flag_a, flag_b, config)
        for _ in range(50):
            m1 = int(rng.integers(0, config.max_mantissa_level + 1))
            m2 = int(rng.integers(0, config.max_mantissa_level + 1))
            product = bbfp_multiply_codes(m1, flag_a, m2, flag_b, config)
            assert product & mask == 0

    def test_mask_width_matches_product_width(self):
        config = BBFPConfig(4, 2)
        # Product width = 2m + 2(m-o) = 12 bits; flags 0/0 zero the top 4.
        assert product_zero_mask(0, 0, config) == 0b111100000000
        # Flags 1/1 zero the bottom 4.
        assert product_zero_mask(1, 1, config) == 0b000000001111
        # Mixed flags zero the bottom 2 and top 2.
        assert product_zero_mask(1, 0, config) == 0b110000000011

    def test_out_of_range_mantissa_rejected(self):
        config = BBFPConfig(4, 2)
        with pytest.raises(ValueError):
            bbfp_multiply_codes(16, 0, 3, 0, config)
        with pytest.raises(ValueError):
            bbfp_multiply_codes(3, 0, -1, 0, config)

    def test_eq10_shift_amounts(self):
        config = BBFPConfig(4, 2)
        assert bbfp_multiply_codes(3, 0, 5, 0, config) == 15
        assert bbfp_multiply_codes(3, 1, 5, 0, config) == 15 << 2
        assert bbfp_multiply_codes(3, 1, 5, 1, config) == 15 << 4


class TestMACDatapath:
    @pytest.mark.parametrize("m, o", [(4, 2), (3, 1), (6, 3)])
    def test_block_dot_matches_integer_reference(self, m, o, rng):
        config = BBFPConfig(m, o)
        x = rng.standard_normal(64)
        x[::16] *= 20.0
        y = rng.standard_normal(64)
        a = quantize_bbfp(x, config)
        b = quantize_bbfp(y, config)
        datapath = MACDatapath(config)
        np.testing.assert_allclose(datapath.block_dot(a, b), bbfp_block_dot(a, b), rtol=1e-12)

    def test_block_dot_matches_dequantised_dot(self, rng):
        config = BBFPConfig(4, 2)
        x = rng.standard_normal(32)
        y = rng.standard_normal(32)
        a = quantize_bbfp(x, config)
        b = quantize_bbfp(y, config)
        expected = float(np.dot(a.dequantize(), b.dequantize()))
        assert float(MACDatapath(config).block_dot(a, b).sum()) == pytest.approx(expected)

    def test_accumulator_width_defaults_cover_a_full_block(self):
        datapath = MACDatapath(BBFPConfig(4, 2, block_size=32))
        # Product width 12 plus >= 6 guard bits.
        assert datapath.accumulator_bits >= 18

    def test_mismatched_configs_rejected(self, rng):
        a = quantize_bbfp(rng.standard_normal(32), BBFPConfig(4, 2))
        b = quantize_bbfp(rng.standard_normal(32), BBFPConfig(6, 3))
        with pytest.raises(ValueError, match="different BBFP configuration"):
            MACDatapath(BBFPConfig(4, 2)).block_dot(a, b)

    def test_mismatched_blocking_rejected(self, rng):
        config = BBFPConfig(4, 2)
        a = quantize_bbfp(rng.standard_normal(32), config)
        b = quantize_bbfp(rng.standard_normal(64), config)
        with pytest.raises(ValueError, match="share blocking"):
            MACDatapath(config).block_dot(a, b)

    def test_multi_block_shapes(self, rng):
        config = BBFPConfig(4, 2)
        x = rng.standard_normal((3, 64))
        y = rng.standard_normal((3, 64))
        a = quantize_bbfp(x, config)
        b = quantize_bbfp(y, config)
        result = MACDatapath(config).block_dot(a, b)
        assert result.shape == a.shared_exponents.shape
        np.testing.assert_allclose(result, bbfp_block_dot(a, b), rtol=1e-12)
