"""Tests for reporting, distribution analysis and the Fig. 3 MSE sweep."""

import json

import numpy as np
import pytest

from repro.analysis.distributions import (
    distribution_histograms,
    model_activation_samples,
    model_tensor_stats,
    model_weight_tensors,
)
from repro.analysis.mse_sweep import FIG3_STRATEGIES, LAYER_KINDS_FIG3, layer_activation_mse
from repro.analysis.reporting import ExperimentResult, format_table, save_result


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_column_subset(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_experiment_result_to_text(self):
        result = ExperimentResult("T1", "demo", [{"x": 1}], notes="hello")
        text = result.to_text()
        assert "T1" in text and "hello" in text

    def test_save_result_writes_json_and_text(self, tmp_path):
        result = ExperimentResult("Fig X", "demo", [{"x": 1.0}], metadata={"seed": 1})
        path = save_result(result, tmp_path)
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["experiment_id"] == "Fig X"
        assert (tmp_path / "fig_x.txt").exists()


class TestDistributions:
    def test_weight_tensor_selection(self, tiny_inference_model):
        weights = model_weight_tensors(tiny_inference_model)
        assert all(name.endswith(".weight") for name in weights)
        assert not any("embedding" in name for name in weights)
        assert len(weights) >= 7 * tiny_inference_model.config.n_layers

    def test_activation_samples_shapes(self, tiny_inference_model, small_corpus):
        samples = model_activation_samples(tiny_inference_model, small_corpus, num_batches=1)
        for name, activation in samples.items():
            assert activation.ndim == 2
            assert activation.shape[1] in (tiny_inference_model.config.d_model,
                                           tiny_inference_model.config.d_ff)

    def test_model_stats_activation_outliers_heavier(self, tiny_inference_model, small_corpus):
        """The Fig. 1(a) observation reproduced on the zoo: activations have heavier tails."""
        stats = model_tensor_stats(tiny_inference_model, small_corpus)
        assert stats["activation"].kurtosis > stats["weight"].kurtosis * 0.5
        assert stats["activation"].max_abs > stats["weight"].max_abs

    def test_histograms(self, tiny_inference_model, small_corpus):
        histograms = distribution_histograms(tiny_inference_model, small_corpus, bins=16)
        assert histograms["weight"]["counts"].sum() > 0
        assert len(histograms["activation"]["bin_edges"]) == 17


class TestMSESweep:
    def test_rows_cover_layers_and_average(self, tiny_inference_model, small_corpus):
        rows = layer_activation_mse(tiny_inference_model, small_corpus, num_batches=1)
        labels = [row["layer"] for row in rows]
        assert "Avg." in labels
        assert set(labels) - {"Avg."} <= set(LAYER_KINDS_FIG3)
        for row in rows:
            for strategy in FIG3_STRATEGIES:
                assert row[strategy] >= 0

    def test_fig3_ordering(self, tiny_inference_model, small_corpus):
        """Max-2 (Eq. 9) beats Max-1, Max-3 and BFP4 on average."""
        rows = layer_activation_mse(tiny_inference_model, small_corpus, num_batches=1)
        average = next(row for row in rows if row["layer"] == "Avg.")
        assert average["Max-2"] < average["Max-1"]
        assert average["Max-2"] < average["Max-3"]
        assert average["Max-2"] < average["BFP4"]
