"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main, parse_format
from repro.core.bbfp import BBFPConfig
from repro.core.bie import BiEConfig
from repro.core.blockfp import BFPConfig
from repro.core.floatspec import FloatSpec
from repro.core.integer import IntQuantConfig
from repro.core.microscaling import MXConfig
from repro.quant import UnknownFormatError, parse_spec


class TestParseFormat:
    @pytest.mark.parametrize(
        "text, expected_type",
        [
            ("BBFP(4,2)", BBFPConfig),
            ("bbfp(6,3)", BBFPConfig),
            ("BFP6", BFPConfig),
            ("INT8", IntQuantConfig),
            ("BiE4", BiEConfig),
            ("MXFP8", MXConfig),
            ("FP16", FloatSpec),
        ],
    )
    def test_recognised_spellings(self, text, expected_type):
        assert isinstance(parse_format(text), expected_type)

    def test_bbfp_fields(self):
        config = parse_format("BBFP(4,2)")
        assert (config.mantissa_bits, config.overlap_bits) == (4, 2)

    def test_is_a_shim_over_parse_spec(self):
        assert parse_format("BBFP(4,2)") == parse_spec("BBFP(4,2)")

    def test_unknown_format_raises(self):
        # UnknownFormatError is a ValueError, so argparse type= callables turn
        # it into a clean usage error.
        with pytest.raises(UnknownFormatError, match="unknown format"):
            parse_format("FANCY13")

    def test_unknown_format_suggests_close_spec(self):
        with pytest.raises(UnknownFormatError, match="did you mean"):
            parse_format("bffp(4,2)")


class TestListCommand:
    def test_lists_every_registered_experiment(self, capsys):
        assert main(["list"]) == 0
        printed = capsys.readouterr().out.split()
        assert "table2" in printed
        assert "fig8" in printed
        assert "ext_roofline" in printed

    def test_each_experiment_carries_a_description(self, capsys):
        assert main(["list"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) >= 22
        for line in lines:
            name, _, description = line.partition(" ")
            assert description.strip(), f"experiment {name!r} has no description"

    def test_run_dash_dash_list_prints_the_same_catalog(self, capsys):
        assert main(["list"]) == 0
        catalog = capsys.readouterr().out
        assert main(["run", "--list"]) == 0
        assert capsys.readouterr().out == catalog


class TestFormatsCommand:
    def test_default_table_mentions_bbfp_and_fp16(self, capsys):
        assert main(["formats"]) == 0
        out = capsys.readouterr().out
        assert "BBFP(4,2)" in out
        assert "FP16" in out
        assert "memory_efficiency" in out

    def test_explicit_format_selection(self, capsys):
        assert main(["formats", "--formats", "BBFP(6,3)", "BFP8"]) == 0
        out = capsys.readouterr().out
        assert "BBFP(6,3)" in out
        assert "BFP8" in out
        assert "FP16" not in out


class TestQuantizeCommand:
    def test_reports_error_metrics(self, capsys):
        assert main(["quantize", "--format", "BBFP(4,2)", "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "sqnr_db" in out
        assert "BBFP(4,2)" in out

    def test_supports_extension_formats(self, capsys):
        assert main(["quantize", "--format", "MXFP8", "--size", "256"]) == 0
        assert "MXFP8" in capsys.readouterr().out


class TestSimulateCommand:
    def test_simulates_bbfp_prefill(self, capsys):
        assert main(["simulate", "--strategy", "BBFP(4,2)", "--seq-len", "128",
                     "--pe-rows", "16", "--pe-cols", "16"]) == 0
        out = capsys.readouterr().out
        assert "throughput_gmacs" in out
        assert "BBFP(4,2)" in out

    def test_simulates_named_baseline(self, capsys):
        assert main(["simulate", "--strategy", "Oltron", "--seq-len", "128",
                     "--pe-rows", "8", "--pe-cols", "8", "--phase", "decode"]) == 0
        assert "Oltron" in capsys.readouterr().out


class TestRunCommand:
    def test_runs_a_cheap_experiment_and_saves_results(self, capsys, tmp_path):
        assert main(["run", "table1", "--output-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table1" in out or "table1" in out.lower()
        payload = json.loads((tmp_path / "table1.json").read_text())
        assert payload["rows"]

    def test_second_invocation_is_served_from_the_cache(self, capsys, tmp_path):
        assert main(["run", "table1", "--output-dir", str(tmp_path / "a")]) == 0
        capsys.readouterr()
        assert main(["run", "table1", "--output-dir", str(tmp_path / "b")]) == 0
        assert "cached" in capsys.readouterr().out
        a = json.loads((tmp_path / "a" / "table1.json").read_text())
        b = json.loads((tmp_path / "b" / "table1.json").read_text())
        assert a == b

    def test_no_cache_forces_execution(self, capsys, tmp_path):
        assert main(["run", "table1", "--no-cache", "--output-dir", str(tmp_path)]) == 0
        assert "completed" in capsys.readouterr().out
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["experiments"]["table1"]["status"] == "completed"

    def test_parallel_jobs_match_serial_results(self, capsys, tmp_path):
        assert main(["run", "table1", "table3", "--no-cache", "--jobs", "2",
                     "--output-dir", str(tmp_path / "par")]) == 0
        assert main(["run", "table1", "table3", "--no-cache",
                     "--output-dir", str(tmp_path / "ser")]) == 0
        capsys.readouterr()
        for name in ("table1", "table3"):
            par = json.loads((tmp_path / "par" / f"{name}.json").read_text())
            ser = json.loads((tmp_path / "ser" / f"{name}.json").read_text())
            assert par == ser


class TestObsReport:
    def test_renders_a_trace_export(self, capsys, tmp_path):
        from repro.obs import SpanTracer

        tracer = SpanTracer()
        tracer.name_track(0, "router")
        tracer.complete("decode", 0.010, 0.014, track=0)
        path = tmp_path / "trace.json"
        tracer.write(path)
        assert main(["obs-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "router" in out and "decode" in out

    def test_missing_file_is_a_clean_usage_error(self, capsys, tmp_path):
        assert main(["obs-report", str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro obs-report: error:")

    def test_unrecognised_document_is_a_clean_usage_error(self, capsys, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text('{"rows": []}')
        assert main(["obs-report", str(path)]) == 2
        err = capsys.readouterr().err
        assert "not a trace export" in err
