"""Tests for the nonlinear unit hardware model and the Table V comparators."""

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig
from repro.llm.activations import silu, softmax
from repro.nonlinear.reference_designs import (
    HIGH_PRECISION_INT27,
    PSEUDO_SOFTMAX_INT8,
    bbal_nonlinear_reference,
    comparison_table,
)
from repro.nonlinear.unit import NonlinearUnit, NonlinearUnitConfig


class TestNonlinearUnitConfig:
    def test_defaults_match_paper(self):
        config = NonlinearUnitConfig()
        assert config.input_format == BBFPConfig(10, 5)
        assert config.address_bits == 7
        assert config.lanes == 16
        assert config.subtables["softmax"] == 18
        assert config.subtables["silu"] == 24
        assert config.name == "BBFP(10,5,5)"

    def test_invalid(self):
        with pytest.raises(ValueError):
            NonlinearUnitConfig(lanes=0)
        with pytest.raises(ValueError):
            NonlinearUnitConfig(address_bits=0)

    def test_lut_sizes(self):
        config = NonlinearUnitConfig()
        assert config.lut_entries == 128
        assert config.onchip_lut_bits() == 2 * 128 * 16


class TestNonlinearUnit:
    def test_numerics_softmax(self, rng):
        unit = NonlinearUnit()
        scores = rng.normal(0, 4, size=(4, 64))
        assert np.max(np.abs(unit.softmax(scores) - softmax(scores))) < 0.05

    def test_numerics_activation(self, rng):
        unit = NonlinearUnit()
        x = rng.normal(0, 4, size=256)
        assert np.max(np.abs(unit.activation("silu", x) - silu(x))) < 0.2
        assert np.array_equal(unit.activation("relu", x), np.maximum(x, 0))

    def test_scheme_adapters(self, rng):
        unit = NonlinearUnit()
        softmax_fn = unit.softmax_fn()
        nonlinear_fn = unit.nonlinear_fn()
        scores = rng.normal(size=(2, 32))
        assert np.allclose(softmax_fn(scores, axis=-1).sum(axis=-1), 1.0, atol=1e-2)
        assert nonlinear_fn("silu", np.zeros(8)).shape == (8,)

    def test_cost_fields(self):
        cost = NonlinearUnit().cost()
        assert cost.area_um2() > 0
        assert cost.power_w() > 0
        assert cost.lanes == 16
        assert "silu" in ", ".join(cost.compatibility)

    def test_latency_scales_with_vector_length(self):
        cost = NonlinearUnit().cost()
        assert cost.latency_cycles(2048) > cost.latency_cycles(128)
        with pytest.raises(ValueError):
            cost.latency_cycles(0)

    def test_external_table_bits(self):
        unit = NonlinearUnit()
        assert unit.external_table_bits("softmax") == 18 * 128 * 16
        assert unit.external_table_bits("silu") == 24 * 128 * 16
        with pytest.raises(ValueError):
            unit.external_table_bits("tan")

    def test_more_lanes_increase_area_and_throughput(self):
        small = NonlinearUnit(NonlinearUnitConfig(lanes=8)).cost()
        big = NonlinearUnit(NonlinearUnitConfig(lanes=32)).cost()
        assert big.area_um2() > small.area_um2()
        assert big.throughput_elements_per_s() > small.throughput_elements_per_s()


class TestTableVComparison:
    def test_reference_designs_have_distinct_costs(self):
        assert HIGH_PRECISION_INT27.area_um2() > 10 * PSEUDO_SOFTMAX_INT8.area_um2()

    def test_ours_far_more_efficient_than_high_precision(self):
        """The paper's headline: ~30x efficiency over the high-precision design [33]."""
        ours = bbal_nonlinear_reference()
        ratio = ours.efficiency() / HIGH_PRECISION_INT27.efficiency()
        assert ratio > 10

    def test_pseudo_softmax_wins_adp(self):
        """The paper concedes ADP/EDP to the tiny approximate design [32]."""
        ours = bbal_nonlinear_reference()
        assert PSEUDO_SOFTMAX_INT8.adp() < ours.adp()

    def test_only_ours_supports_silu(self):
        rows = comparison_table()
        ours = next(r for r in rows if "ours" in r["design"])
        others = [r for r in rows if "ours" not in r["design"]]
        assert "silu" in ours["compatibility"]
        assert all("silu" not in r["compatibility"] for r in others)

    def test_rows_complete(self):
        rows = comparison_table(vector_length=512)
        assert len(rows) == 3
        for row in rows:
            assert row["adp"] > 0 and row["edp"] > 0 and row["efficiency"] > 0
