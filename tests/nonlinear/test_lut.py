"""Tests for the exponent-segmented LUT and its use as softmax/SiLU replacement."""

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.llm.activations import gelu, sigmoid, silu, softmax
from repro.nonlinear.lut import LUTNonlinear, SegmentedLUT, lut_function, lut_softmax


class TestSegmentedLUT:
    def test_unknown_function(self):
        with pytest.raises(ValueError):
            SegmentedLUT("tan", BBFPConfig(10, 5))

    def test_table_sizes(self):
        lut = SegmentedLUT("exp", BBFPConfig(10, 5), address_bits=7)
        assert lut.entries_per_table == 128
        lut.build_segment(0, 1)
        lut.build_segment(1, -1)
        assert lut.num_subtables == 2
        assert lut.table_bits() == 2 * 128 * 16

    def test_segments_are_cached(self):
        lut = SegmentedLUT("silu", BBFPConfig(10, 5))
        a = lut.build_segment(2, 1)
        b = lut.build_segment(2, 1)
        assert a is b

    def test_lookup_matches_vectorised_path(self, rng):
        """The explicit table walk and the fast vectorised path must agree exactly."""
        config = BBFPConfig(10, 5)
        x = rng.normal(0, 3, size=64)
        table_path = SegmentedLUT("silu", config, address_bits=7).lookup(x)
        fast_path = LUTNonlinear(config, address_bits=7, requantize_output=False).apply("silu", x)
        assert np.allclose(table_path, fast_path)

    def test_lookup_with_bfp_input(self, rng):
        config = BFPConfig(10)
        x = rng.normal(0, 3, size=64)
        out = SegmentedLUT("exp", config).lookup(x)
        assert out.shape == x.shape


class TestLUTNonlinear:
    def test_rejects_non_block_format(self):
        with pytest.raises(TypeError):
            LUTNonlinear("fp16")

    def test_unknown_function(self, rng):
        lut = LUTNonlinear(BBFPConfig(10, 5))
        with pytest.raises(ValueError):
            lut.apply("arctan", rng.standard_normal(8))

    @pytest.mark.parametrize("kind,reference", [("silu", silu), ("gelu", gelu),
                                                ("sigmoid", sigmoid)])
    def test_bbfp105_close_to_reference(self, rng, kind, reference):
        lut = LUTNonlinear(BBFPConfig(10, 5), address_bits=7)
        x = rng.normal(0, 4, size=256)
        assert np.max(np.abs(lut.apply(kind, x) - reference(x))) < 0.2

    def test_bfp10_worse_than_bbfp105_on_outlier_inputs(self, rng):
        """The Table IV mechanism: max-aligned BFP starves moderate inputs of resolution."""
        x = rng.normal(0, 3, size=512)
        x[::64] *= 40.0  # outliers push the shared exponent up
        bbfp_err = np.mean((LUTNonlinear(BBFPConfig(10, 5)).apply("silu", x) - silu(x)) ** 2)
        bfp_err = np.mean((LUTNonlinear(BFPConfig(10)).apply("silu", x) - silu(x)) ** 2)
        assert bfp_err > 3 * bbfp_err

    def test_softmax_normalised(self, rng):
        lut = LUTNonlinear(BBFPConfig(10, 5))
        scores = rng.normal(0, 5, size=(4, 48))
        probs = lut.softmax(scores, axis=-1)
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-2)
        assert np.all(probs >= 0)

    def test_softmax_close_to_reference(self, rng):
        lut = LUTNonlinear(BBFPConfig(10, 5))
        scores = rng.normal(0, 5, size=(8, 64))
        assert np.max(np.abs(lut.softmax(scores) - softmax(scores))) < 0.05

    def test_softmax_respects_causal_mask(self, rng):
        """Masked positions (very large negative scores) must get ~zero probability."""
        lut = LUTNonlinear(BBFPConfig(10, 5))
        scores = rng.normal(0, 3, size=(2, 16))
        scores[:, 8:] = -1e9
        probs = lut.softmax(scores, axis=-1)
        assert np.all(probs[:, 8:] < 1e-4)
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-2)

    def test_requantize_output_flag(self, rng):
        x = rng.normal(0, 2, size=128)
        with_requant = LUTNonlinear(BBFPConfig(10, 5), requantize_output=True).apply("silu", x)
        without = LUTNonlinear(BBFPConfig(10, 5), requantize_output=False).apply("silu", x)
        # Both close to the reference, but not necessarily identical to each other.
        assert np.max(np.abs(with_requant - silu(x))) < 0.2
        assert np.max(np.abs(without - silu(x))) < 0.2

    def test_address_width_controls_fidelity(self, rng):
        x = rng.normal(0, 4, size=512)
        coarse = LUTNonlinear(BBFPConfig(10, 5), address_bits=4).apply("silu", x)
        fine = LUTNonlinear(BBFPConfig(10, 5), address_bits=8).apply("silu", x)
        assert np.mean((fine - silu(x)) ** 2) < np.mean((coarse - silu(x)) ** 2)


class TestSchemeAdapters:
    def test_lut_softmax_factory(self, rng):
        fn = lut_softmax(BBFPConfig(10, 5))
        scores = rng.normal(0, 2, size=(3, 32))
        assert np.allclose(fn(scores, axis=-1).sum(axis=-1), 1.0, atol=1e-2)

    def test_lut_function_factory_relu_passthrough(self, rng):
        fn = lut_function(BBFPConfig(10, 5))
        x = rng.standard_normal(64)
        assert np.array_equal(fn("relu", x), np.maximum(x, 0))
        assert np.max(np.abs(fn("silu", x) - silu(x))) < 0.2
