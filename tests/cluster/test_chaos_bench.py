"""The chaos_bench driver: rows, shared schedules, pipeline and CLI wiring.

Sweeps run over the canonical ``bench_workload`` fixture from the shared
``tests/cluster/conftest.py`` fleet builder, like ``test_cluster_bench``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.chaos_bench import chaos_bench, fault_horizon
from repro.cluster.replica import ReplicaConfig

REPO_ROOT = Path(__file__).resolve().parents[2]

_COLUMNS = ("chaos_profile", "policy", "replicas", "requests", "goodput_rps",
            "slo_attainment", "faults_injected", "requests_orphaned",
            "requests_retried", "requests_lost", "max_recovery_s",
            "kv_leaked_pages", "decode_tokens_per_s", "ttft_p95_ms",
            "latency_p95_ms", "goodput_recovered")


class TestFaultHorizon:
    def test_service_bound_horizon_shrinks_with_fleet_size(self, tiny_model_config,
                                                           bench_workload):
        import dataclasses

        burst = dataclasses.replace(bench_workload, arrival_rate=0.0)
        one = fault_horizon(tiny_model_config, ReplicaConfig(), burst, 1)
        four = fault_horizon(tiny_model_config, ReplicaConfig(), burst, 4)
        assert 0 < four < one
        assert four == pytest.approx(one / 4)
        with pytest.raises(ValueError, match="num_replicas"):
            fault_horizon(tiny_model_config, ReplicaConfig(), burst, 0)

    def test_a_sparse_trace_is_anchored_to_its_arrival_span(self, tiny_model_config,
                                                            bench_workload):
        # at 8 req/s the 10-request span (1.25s) dwarfs the service time and
        # the horizon must cover it whatever the fleet size
        span = bench_workload.num_requests / bench_workload.arrival_rate
        for count in (1, 4):
            assert fault_horizon(tiny_model_config, ReplicaConfig(),
                                 bench_workload, count) == pytest.approx(span)


class TestChaosBenchRows:
    def _rows(self, model, workload, **kwargs):
        kwargs.setdefault("profiles", ("none", "crash"))
        kwargs.setdefault("policies", ("round_robin", "least_loaded"))
        kwargs.setdefault("replica_counts", (2,))
        return chaos_bench(model, workload=workload,
                           replica=ReplicaConfig(max_batch_size=2), **kwargs)

    def test_rows_cover_the_sweep_with_all_columns(self, tiny_inference_model,
                                                   bench_workload):
        rows = self._rows(tiny_inference_model, bench_workload)
        assert {(row["chaos_profile"], row["policy"], row["replicas"])
                for row in rows} == {
            (profile, policy, 2)
            for profile in ("none", "crash")
            for policy in ("round_robin", "least_loaded")
        }
        for row in rows:
            assert set(_COLUMNS) <= set(row)
            assert row["requests"] == 10
            assert np.isfinite(row["goodput_rps"])

    def test_the_fault_free_baseline_anchors_goodput_recovered(
            self, tiny_inference_model, bench_workload):
        rows = self._rows(tiny_inference_model, bench_workload)
        for row in rows:
            if row["chaos_profile"] == "none":
                assert row["faults_injected"] == 0
                assert row["goodput_recovered"] == pytest.approx(1.0)
            else:
                assert row["faults_injected"] >= 1
                assert 0.0 <= row["goodput_recovered"] <= 1.5

    def test_retries_keep_the_crash_rows_lossless(self, tiny_inference_model,
                                                  bench_workload):
        rows = self._rows(tiny_inference_model, bench_workload)
        crash_rows = [r for r in rows if r["chaos_profile"] == "crash"]
        assert crash_rows
        for row in crash_rows:
            assert row["requests_orphaned"] > 0
            assert row["requests_lost"] == 0
            assert row["kv_leaked_pages"] == 0
            assert row["max_recovery_s"] > 0.0

    def test_the_no_retry_baseline_measurably_loses_requests(
            self, tiny_inference_model, bench_workload):
        rows = self._rows(tiny_inference_model, bench_workload,
                          profiles=("crash",), policies=("least_loaded",),
                          max_retries=0)
        (row,) = rows
        assert row["requests_lost"] == row["requests_orphaned"] > 0
        assert row["requests_retried"] == 0

    def test_policies_are_compared_under_the_same_schedule(
            self, tiny_inference_model, bench_workload):
        schedules = {}
        self._rows(tiny_inference_model, bench_workload, replica_counts=(2, 4),
                   schedules=schedules)
        # one schedule per (profile, fleet size), shared across both policies
        assert sorted(schedules) == ["crashx2", "crashx4", "nonex2", "nonex4"]
        assert schedules["nonex2"] == {"events": []}
        assert len(schedules["crashx4"]["events"]) == 1

    def test_rows_are_deterministic(self, tiny_inference_model, bench_workload):
        kwargs = dict(profiles=("crash",), policies=("least_loaded",), seed=3)
        assert self._rows(tiny_inference_model, bench_workload, **kwargs) == \
            self._rows(tiny_inference_model, bench_workload, **kwargs)

    def test_unknown_profile_is_rejected_with_a_suggestion(
            self, tiny_inference_model, bench_workload):
        from repro.cluster.chaos import UnknownProfileError

        with pytest.raises(UnknownProfileError, match="did you mean"):
            self._rows(tiny_inference_model, bench_workload, profiles=("crsh",))


class TestPipelineIntegration:
    def test_chaos_bench_runs_under_the_cached_pipeline(self, tmp_path):
        """`repro run chaos_bench` works: cached, manifest-tracked, resumable."""
        from repro.pipeline.run import run_experiments

        output_dir = tmp_path / "results"
        results = run_experiments(["chaos_bench"], fast=True,
                                  output_dir=str(output_dir), jobs=1, verbose=False)
        result = results["chaos_bench"]
        for column in ("chaos_profile", "policy", "replicas", "requests_lost",
                       "kv_leaked_pages", "goodput_recovered"):
            assert column in result.columns
            assert all(column in row for row in result.rows)
        assert all(row["requests_lost"] == 0 for row in result.rows)
        assert all(row["kv_leaked_pages"] == 0 for row in result.rows)
        assert result.metadata["schedules"], "replay schedules must be saved"
        assert (output_dir / "chaos-bench.json").exists()
        assert (output_dir / "manifest.json").exists()
        # second invocation must be served from the content-addressed cache
        second = run_experiments(["chaos_bench"], fast=True,
                                 output_dir=str(tmp_path / "results2"), jobs=1,
                                 verbose=False)
        assert second["chaos_bench"].rows == result.rows

    def test_model_dependency_is_declared_for_the_scheduler(self):
        from repro.experiments.common import experiment_model_specs

        assert experiment_model_specs("chaos_bench", fast=True) == ("Llama-1B",)
        assert experiment_model_specs("chaos_bench", fast=False) == ("Llama-7B",)

    def test_driver_is_registered_in_the_catalog(self):
        from repro.experiments.runner import EXPERIMENTS, experiment_descriptions

        assert "chaos_bench" in EXPERIMENTS
        assert experiment_descriptions()["chaos_bench"]


class TestCLISmoke:
    def _run_repro(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_FAST"] = "1"
        return subprocess.run([sys.executable, "-m", "repro", *args],
                              capture_output=True, text=True, timeout=300,
                              cwd=REPO_ROOT, env=env)

    def test_chaos_bench_fast_subprocess(self, tmp_path):
        result = self._run_repro("chaos-bench", "--fast", "--num-requests", "8",
                                 "--profiles", "none", "crash",
                                 "--policies", "least-loaded",
                                 "--replicas", "2",
                                 "--output-dir", str(tmp_path / "out"))
        assert result.returncode == 0, result.stderr
        assert "Chaos-Bench" in result.stdout
        assert "chaos_profile" in result.stdout
        assert "requests_lost" in result.stdout
        assert (tmp_path / "out" / "chaos-bench.json").exists()

    def test_unknown_profile_is_a_clean_usage_error(self):
        result = self._run_repro("chaos-bench", "--fast", "--profiles", "crsh")
        assert result.returncode != 0
        assert "unknown chaos profile" in result.stderr
        assert "crash" in result.stderr  # the did-you-mean suggestion
        assert "Traceback" not in result.stderr
