"""Shared deterministic fleet-building fixtures for ``tests/cluster/``.

PRs 4-6 each grew private trace/fleet helpers inside individual test modules
and the copies drifted (different trace shapes, arrival rates and fleet
defaults).  This conftest is now the single source of truth: every module
builds traces through :func:`fleet_trace`, simulations through
:func:`make_fleet`, and driver-level sweeps over :data:`BENCH_WORKLOAD` —
same tiny model (``tiny_inference_model`` from the root conftest), same
shapes, everywhere.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    SLOConfig,
    homogeneous_fleet,
)
from repro.serve.workload import WorkloadConfig, generate_requests

#: Canonical small trace shape every simulation-level cluster test draws from.
TRACE_SHAPE = {"prompt_tokens": (3, 8), "new_tokens": (2, 6)}

#: Canonical small workload for driver-level (cluster_bench / chaos_bench)
#: sweeps: short prompts, a few decode tokens, fixed seed.
BENCH_WORKLOAD = WorkloadConfig(num_requests=10, prompt_tokens=(3, 8),
                                new_tokens=(2, 5), seed=0)

#: A burst arrival rate that saturates even the micro models these tests
#: serve: everything lands within a few virtual microseconds, so queues form
#: and faults strike replicas that actually hold work.
BURST_ARRIVAL_RATE = 5e7


@pytest.fixture
def bench_workload():
    """The canonical driver-sweep workload (one object, shared by value)."""
    return BENCH_WORKLOAD


@pytest.fixture
def fleet_trace(tiny_inference_model):
    """Factory for deterministic traces sized to the tiny model's vocabulary.

    ``fleet_trace(num_requests=..., arrival_rate=..., seed=..., **shape)``
    returns a request list; shape overrides (``prompt_tokens`` /
    ``new_tokens`` / ``temperature`` ...) replace the canonical
    :data:`TRACE_SHAPE` entries.
    """
    def factory(num_requests: int = 12, arrival_rate: float = 50_000.0,
                seed: int = 0, **overrides):
        shape = {**TRACE_SHAPE, **overrides}
        return generate_requests(
            tiny_inference_model.config.vocab_size,
            WorkloadConfig(num_requests=num_requests, arrival_rate=arrival_rate,
                           seed=seed, **shape))
    return factory


@pytest.fixture
def burst_trace(fleet_trace):
    """A :func:`fleet_trace` at :data:`BURST_ARRIVAL_RATE` — the chaos-test
    staple: the whole trace lands while the fleet is busy, so queues form and
    injected faults strike replicas that actually hold work."""
    def factory(num_requests: int = 16, seed: int = 0, **overrides):
        return fleet_trace(num_requests=num_requests,
                           arrival_rate=BURST_ARRIVAL_RATE, seed=seed, **overrides)
    return factory


@pytest.fixture
def make_fleet(tiny_inference_model):
    """Factory for a :class:`ClusterSimulation` over the shared tiny model.

    ``make_fleet(3, policy=..., max_batch_size=...)`` builds a homogeneous
    fleet (extra keywords go to :class:`ReplicaConfig`); pass an explicit
    ``replicas=`` tuple for heterogeneous fleets.  ``slo`` / ``autoscaler`` /
    ``seed`` / ``faults`` / ``max_retries`` forward to
    :class:`ClusterConfig`.
    """
    def factory(num_replicas: int = 2, *, replicas=None, policy: str = "round_robin",
                slo: SLOConfig = None, autoscaler=None, seed: int = 0,
                faults=None, max_retries: int = 2, **replica_kwargs):
        if replicas is None:
            replicas = homogeneous_fleet(num_replicas, **replica_kwargs)
        elif replica_kwargs:
            raise TypeError("pass either an explicit replicas tuple or "
                            "ReplicaConfig keywords, not both")
        config = ClusterConfig(replicas=tuple(replicas), policy=policy,
                               slo=slo if slo is not None else SLOConfig(),
                               autoscaler=autoscaler, seed=seed,
                               faults=faults, max_retries=max_retries)
        return ClusterSimulation(tiny_inference_model, config)
    return factory
