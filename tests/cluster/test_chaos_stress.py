"""2000 seeded randomized chaos runs auditing the conservation invariant.

Every run draws a random fleet, trace, chaos profile and retry budget from
its seed, replays it, and checks the two invariants the chaos layer
promises: every submitted request ends in **exactly one** terminal state
(completed or explicitly lost — never silently dropped, never duplicated),
and every surviving replica passes a clean KV-page audit.
``ClusterSimulation.run`` additionally enforces both internally, so a run
that merely returns is already conservation-clean — the assertions here
re-derive the invariants from the report to keep the enforcement honest.

The model is a deliberately micro untrained transformer: scheduling,
routing and fault handling do not care about output quality, and the tiny
forward pass keeps 2000 full simulations inside a pytest-friendly budget.
The runs are chunked so a failure names a narrow seed range.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ChaosProfile,
    ClusterConfig,
    ClusterSimulation,
    FaultSchedule,
    SLOConfig,
    homogeneous_fleet,
)
from repro.cluster.replica import ReplicaConfig, decode_time_per_token
from repro.llm.config import ModelConfig
from repro.llm.inference import InferenceModel
from repro.llm.transformer import TransformerLM
from repro.serve.workload import WorkloadConfig, generate_requests

SEEDS_PER_CHUNK = 100
NUM_CHUNKS = 20  # x SEEDS_PER_CHUNK = 2000 randomized runs

#: Routing policies rotated through by seed (prefix_affinity is exercised
#: by the bench tests; the stress sweep sticks to load-driven policies).
POLICIES = ("round_robin", "least_loaded", "join_shortest_queue", "power_of_two")

#: Saturating burst: the whole trace lands within microseconds, so faults
#: strike replicas that hold queued and decoding work.
BURST_ARRIVAL_RATE = 5e7


@pytest.fixture(scope="module")
def micro_fleet_model():
    """An untrained micro model plus its roofline decode rate.

    Scheduling-only: the vocabulary is tiny and the weights are random,
    which is irrelevant for fault handling but makes each simulated run a
    few milliseconds.
    """
    config = ModelConfig(name="chaos-micro", vocab_size=32, d_model=16,
                         n_heads=2, n_layers=1, d_ff=32, max_seq_len=64,
                         arch="llama", seed=0)
    model = InferenceModel(config, TransformerLM(config).state_dict())
    time_per_token = decode_time_per_token(config, ReplicaConfig(max_batch_size=2))
    return model, time_per_token


def _chaos_run(model, time_per_token, seed):
    """One seed-derived randomized chaos run; returns everything it drew."""
    rng = np.random.default_rng(seed)
    num_replicas = int(rng.integers(1, 5))
    num_requests = int(rng.integers(6, 13))
    max_retries = int(rng.integers(0, 4))
    profile = ChaosProfile(crashes=int(rng.integers(0, 3)),
                           slowdowns=int(rng.integers(0, 3)),
                           partitions=int(rng.integers(0, 3)))
    horizon = max(num_requests * 10 * time_per_token / num_replicas, 1e-9)
    schedule = FaultSchedule.generate(profile, num_replicas, horizon, seed=seed)
    requests = generate_requests(model.config.vocab_size, WorkloadConfig(
        num_requests=num_requests, prompt_tokens=(3, 8), new_tokens=(2, 6),
        arrival_rate=BURST_ARRIVAL_RATE, seed=seed))
    simulation = ClusterSimulation(model, ClusterConfig(
        replicas=homogeneous_fleet(num_replicas, max_batch_size=2),
        policy=POLICIES[seed % len(POLICIES)], slo=SLOConfig(), seed=seed,
        faults=schedule, max_retries=max_retries))
    return simulation.run(requests), requests, profile, max_retries


def _assert_invariants(report, requests, profile, max_retries, seed):
    context = f"seed {seed}"
    summary = report.summary()
    # conservation: every submitted request in exactly one terminal state
    terminal = sorted([c.request.request_id for _, c in report.completed]
                      + [entry["request_id"] for entry in report.lost])
    assert terminal == sorted(r.request_id for r in requests), context
    # losses are explicit, reasoned, and only possible when a request
    # crashed more often than the retry budget allows (generated schedules
    # always leave a survivor, so "no_replicas" cannot occur here)
    assert {entry["reason"] for entry in report.lost} <= {"retries_exhausted"}, context
    if summary["requests_lost"]:
        assert profile.crashes > max_retries, context
    assert summary["requests_retried"] <= summary["requests_orphaned"], context
    # surviving replicas audit clean; crashed ones are marked unauditable
    assert summary["kv_leaked_pages"] == 0, context
    for row in report.replicas:
        if row["status"] == "crashed":
            assert row["kv_leaked_pages"] is None, context
        else:
            assert row["kv_leaked_pages"] == 0, context


@pytest.mark.parametrize("chunk", range(NUM_CHUNKS))
def test_randomized_chaos_preserves_every_request(micro_fleet_model, chunk):
    model, time_per_token = micro_fleet_model
    injected = orphaned = retried = 0
    for seed in range(chunk * SEEDS_PER_CHUNK, (chunk + 1) * SEEDS_PER_CHUNK):
        report, requests, profile, max_retries = _chaos_run(
            model, time_per_token, seed)
        _assert_invariants(report, requests, profile, max_retries, seed)
        summary = report.summary()
        injected += summary["faults_injected"]
        orphaned += summary["requests_orphaned"]
        retried += summary["requests_retried"]
    # the sweep must actually bite: every 100-seed chunk deterministically
    # applies faults, orphans work and exercises the retry path
    assert injected > 0 and orphaned > 0 and retried > 0


def test_stress_runs_replay_bit_identically(micro_fleet_model):
    model, time_per_token = micro_fleet_model
    first, *_ = _chaos_run(model, time_per_token, seed=17)
    second, *_ = _chaos_run(model, time_per_token, seed=17)
    assert first.to_dict() == second.to_dict()
