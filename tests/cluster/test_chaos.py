"""Fault injection and recovery: schedules, retries, partitions, invariants.

Every simulation here runs over the shared ``burst_trace`` / ``make_fleet``
fixtures from ``tests/cluster/conftest.py`` — a saturating burst, so queues
form and injected faults strike replicas that actually hold work.  The two
chaos invariants (every submitted request reaches exactly one terminal
state; every surviving replica audits clean) are *enforced* by
``ClusterSimulation.run`` itself — a test that merely returns a report has
already passed them.
"""

from __future__ import annotations

import argparse

import pytest

from repro.cluster import (
    CHAOS_PROFILES,
    AutoscalerConfig,
    ChaosProfile,
    ClusterConfig,
    FaultEvent,
    FaultSchedule,
    ReplicaConfig,
    UnknownProfileError,
    get_profile,
    list_profiles,
)


def _elapsed(make_fleet, requests, num_replicas, **kwargs):
    """The fault-free busy period — the anchor for mid-run fault instants."""
    return make_fleet(num_replicas, **kwargs).run(requests).summary()["elapsed_s"]


class TestFaultEvent:
    def test_kinds_validate_their_fields(self):
        FaultEvent(time_s=1.0, kind="crash", replica_id=0)
        FaultEvent(time_s=1.0, kind="slow", replica_id=0, duration_s=0.5, factor=4.0)
        FaultEvent(time_s=1.0, kind="partition", replica_id=0, duration_s=0.5)
        with pytest.raises(ValueError, match="fault kind"):
            FaultEvent(time_s=1.0, kind="gray", replica_id=0)
        with pytest.raises(ValueError, match="finite instant"):
            FaultEvent(time_s=-1.0, kind="crash", replica_id=0)
        with pytest.raises(ValueError, match="replica_id"):
            FaultEvent(time_s=1.0, kind="crash", replica_id=-1)

    def test_crash_is_permanent_and_windowless(self):
        with pytest.raises(ValueError, match="permanent"):
            FaultEvent(time_s=1.0, kind="crash", replica_id=0, duration_s=0.5)
        with pytest.raises(ValueError, match="permanent"):
            FaultEvent(time_s=1.0, kind="crash", replica_id=0, factor=2.0)

    def test_windowed_faults_need_positive_durations(self):
        with pytest.raises(ValueError, match="duration_s"):
            FaultEvent(time_s=1.0, kind="slow", replica_id=0, factor=4.0)
        with pytest.raises(ValueError, match="duration_s"):
            FaultEvent(time_s=1.0, kind="partition", replica_id=0, duration_s=0.0)
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(time_s=1.0, kind="slow", replica_id=0, duration_s=0.5)
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(time_s=1.0, kind="partition", replica_id=0, duration_s=0.5,
                       factor=2.0)

    def test_round_trips_through_its_dict_form(self):
        event = FaultEvent(time_s=0.25, kind="slow", replica_id=3,
                           duration_s=0.1, factor=8.0)
        assert FaultEvent.from_dict(event.to_dict()) == event


class TestFaultSchedule:
    def test_events_sort_identically_whatever_the_listing_order(self):
        events = [
            FaultEvent(time_s=2.0, kind="crash", replica_id=1),
            FaultEvent(time_s=1.0, kind="partition", replica_id=0, duration_s=0.5),
            FaultEvent(time_s=1.0, kind="crash", replica_id=2),
        ]
        assert FaultSchedule(events) == FaultSchedule(reversed(events))
        assert [e.kind for e in FaultSchedule(events)] == \
            ["crash", "partition", "crash"]

    def test_container_protocol(self):
        empty, one = FaultSchedule(), FaultSchedule(
            [FaultEvent(time_s=1.0, kind="crash", replica_id=0)])
        assert len(empty) == 0 and not empty
        assert len(one) == 1 and one
        assert "crash" in repr(one)
        with pytest.raises(TypeError, match="FaultEvent"):
            FaultSchedule([{"kind": "crash"}])

    def test_round_trips_through_its_dict_form(self):
        schedule = FaultSchedule.generate("mixed", num_replicas=4, horizon_s=1.0,
                                          seed=3)
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    def test_generation_is_seed_deterministic(self):
        draw = lambda seed: FaultSchedule.generate("mixed", 4, 1.0, seed=seed)
        assert draw(0) == draw(0)
        assert draw(0) != draw(1)

    def test_generated_crashes_never_take_the_whole_fleet(self):
        greedy = ChaosProfile(crashes=8)
        schedule = FaultSchedule.generate(greedy, num_replicas=3, horizon_s=1.0)
        crashes = [e for e in schedule if e.kind == "crash"]
        assert len(crashes) == 2  # capped at num_replicas - 1
        assert len({e.replica_id for e in crashes}) == 2  # without replacement

    def test_generation_validates_its_anchors(self):
        with pytest.raises(ValueError, match="num_replicas"):
            FaultSchedule.generate("crash", num_replicas=0, horizon_s=1.0)
        with pytest.raises(ValueError, match="horizon_s"):
            FaultSchedule.generate("crash", num_replicas=2, horizon_s=0.0)

    def test_the_none_profile_draws_an_empty_schedule(self):
        assert not FaultSchedule.generate("none", num_replicas=4, horizon_s=1.0)

    def test_events_land_inside_the_profile_window(self):
        profile = ChaosProfile(crashes=1, slowdowns=2, partitions=2,
                               window_start=0.2, window_end=0.6)
        for event in FaultSchedule.generate(profile, 4, horizon_s=10.0, seed=1):
            assert 2.0 <= event.time_s <= 6.0


class TestProfileRegistry:
    def test_instances_pass_through_and_names_resolve_loosely(self):
        custom = ChaosProfile(crashes=2)
        assert get_profile(custom) is custom
        assert get_profile("CRASH") is CHAOS_PROFILES["crash"]
        assert get_profile(" mixed ") is CHAOS_PROFILES["mixed"]

    def test_unknown_profile_suggests_the_closest_name(self):
        with pytest.raises(UnknownProfileError, match="did you mean 'crash'"):
            get_profile("carsh")
        error = pytest.raises(UnknownProfileError, get_profile, "carsh").value
        assert isinstance(error, ValueError)
        assert isinstance(error, argparse.ArgumentTypeError)

    def test_registry_order_and_shapes(self):
        assert list_profiles() == ("none", "crash", "slow", "partition", "mixed")
        assert CHAOS_PROFILES["none"].num_faults == 0
        assert CHAOS_PROFILES["mixed"].num_faults == 3

    def test_profile_validation(self):
        with pytest.raises(ValueError, match="counts"):
            ChaosProfile(crashes=-1)
        with pytest.raises(ValueError, match="slow_factor"):
            ChaosProfile(slow_factor=0.0)
        with pytest.raises(ValueError, match="windows"):
            ChaosProfile(slow_window=0.0)
        with pytest.raises(ValueError, match="window_start"):
            ChaosProfile(window_start=0.8, window_end=0.3)

    def test_profile_round_trips_through_its_dict_form(self):
        profile = ChaosProfile(name="gray", partitions=3, partition_window=0.5)
        assert ChaosProfile.from_dict(profile.to_dict()) == profile


class TestClusterConfigChaos:
    def test_fault_iterables_are_normalised_to_a_schedule(self):
        config = ClusterConfig(
            replicas=(ReplicaConfig(),),
            faults=[FaultEvent(time_s=1.0, kind="crash", replica_id=0)])
        assert isinstance(config.faults, FaultSchedule)

    def test_max_retries_must_be_non_negative(self):
        with pytest.raises(ValueError, match="max_retries"):
            ClusterConfig(replicas=(ReplicaConfig(),), max_retries=-1)


class TestCrashRecovery:
    def test_orphans_are_retried_and_every_request_completes(
            self, burst_trace, make_fleet):
        requests = burst_trace()
        kwargs = dict(policy="least_loaded", max_batch_size=2)
        crash_at = 0.3 * _elapsed(make_fleet, requests, 2, **kwargs)
        report = make_fleet(
            2, faults=[FaultEvent(time_s=crash_at, kind="crash", replica_id=0)],
            **kwargs).run(requests)
        summary = report.summary()
        assert sorted(c.request.request_id for _, c in report.completed) == \
            sorted(r.request_id for r in requests)
        assert summary["requests_lost"] == 0 and not report.lost
        assert summary["requests_orphaned"] > 0
        assert 0 < summary["requests_retried"] <= summary["retries_total"]
        assert summary["max_recovery_s"] > 0.0
        (fault,) = report.fault_events
        assert fault["applied"] and fault["orphaned"] == summary["requests_orphaned"]
        assert fault["recovery_s"] == summary["max_recovery_s"]

    def test_the_crashed_replica_is_reported_and_survivors_audit_clean(
            self, burst_trace, make_fleet):
        requests = burst_trace()
        kwargs = dict(policy="least_loaded", max_batch_size=2)
        crash_at = 0.3 * _elapsed(make_fleet, requests, 2, **kwargs)
        report = make_fleet(
            2, faults=[FaultEvent(time_s=crash_at, kind="crash", replica_id=0)],
            **kwargs).run(requests)
        rows = {row["replica_id"]: row for row in report.replicas}
        assert rows[0]["status"] == "crashed"
        assert rows[0]["kv_leaked_pages"] is None  # the pages died with it
        assert rows[1]["status"] == "active" and rows[1]["kv_leaked_pages"] == 0
        assert report.summary()["kv_leaked_pages"] == 0

    def test_retried_latency_includes_the_crash_penalty(
            self, burst_trace, make_fleet):
        # orphans keep their original arrival_time, so a retried request's
        # latency spans the crash and the re-prefill on the new replica
        requests = burst_trace()
        kwargs = dict(policy="least_loaded", max_batch_size=2)
        clean = make_fleet(2, **kwargs).run(requests)
        crash_at = 0.3 * clean.summary()["elapsed_s"]
        report = make_fleet(
            2, faults=[FaultEvent(time_s=crash_at, kind="crash", replica_id=0)],
            **kwargs).run(requests)
        assert report.summary()["latency_p95_ms"] > clean.summary()["latency_p95_ms"]

    def test_the_no_retry_baseline_loses_orphans_explicitly(
            self, burst_trace, make_fleet):
        requests = burst_trace()
        kwargs = dict(policy="least_loaded", max_batch_size=2)
        crash_at = 0.3 * _elapsed(make_fleet, requests, 2, **kwargs)
        report = make_fleet(
            2, faults=[FaultEvent(time_s=crash_at, kind="crash", replica_id=0)],
            max_retries=0, **kwargs).run(requests)
        summary = report.summary()
        assert summary["requests_lost"] == summary["requests_orphaned"] > 0
        assert summary["requests_retried"] == summary["retries_total"] == 0
        assert {entry["reason"] for entry in report.lost} == {"retries_exhausted"}
        terminal = sorted([c.request.request_id for _, c in report.completed]
                          + [entry["request_id"] for entry in report.lost])
        assert terminal == sorted(r.request_id for r in requests)

    def test_crashing_the_whole_fleet_strands_the_tail_without_hanging(
            self, burst_trace, make_fleet):
        requests = burst_trace()
        crash_at = 0.3 * _elapsed(make_fleet, requests, 1, max_batch_size=2)
        report = make_fleet(
            1, faults=[FaultEvent(time_s=crash_at, kind="crash", replica_id=0)],
            max_batch_size=2).run(requests)
        summary = report.summary()
        assert summary["requests_lost"] > 0
        assert {entry["reason"] for entry in report.lost} == {"no_replicas"}
        assert len(report.completed) + len(report.lost) == len(requests)

    def test_a_fault_aimed_at_a_dead_replica_is_recorded_not_applied(
            self, burst_trace, make_fleet):
        requests = burst_trace()
        crash_at = 0.2 * _elapsed(make_fleet, requests, 2, max_batch_size=2)
        report = make_fleet(
            2, max_batch_size=2,
            faults=[FaultEvent(time_s=crash_at, kind="crash", replica_id=0),
                    FaultEvent(time_s=2 * crash_at, kind="slow", replica_id=0,
                               duration_s=crash_at, factor=4.0)]).run(requests)
        crash_log, slow_log = report.fault_events
        assert crash_log["applied"] is True
        assert slow_log["applied"] is False
        assert report.summary()["faults_injected"] == 1


class TestPartitionSemantics:
    def test_a_partitioned_replica_gets_no_new_work(self, burst_trace, make_fleet):
        requests = burst_trace()
        report = make_fleet(
            2, max_batch_size=2,
            faults=[FaultEvent(time_s=0.0, kind="partition", replica_id=0,
                               duration_s=1.0)]).run(requests)
        rows = {row["replica_id"]: row for row in report.replicas}
        assert rows[0]["requests"] == 0 and rows[0]["decode_tokens"] == 0
        assert rows[1]["requests"] == len(requests)
        assert report.summary()["requests_lost"] == 0

    def test_a_fully_partitioned_fleet_defers_arrivals_to_the_heal(
            self, burst_trace, make_fleet):
        requests = burst_trace()
        heal = 0.5 * _elapsed(make_fleet, requests, 1, max_batch_size=2)
        report = make_fleet(
            1, max_batch_size=2,
            faults=[FaultEvent(time_s=0.0, kind="partition", replica_id=0,
                               duration_s=heal)]).run(requests)
        assert len(report.completed) == len(requests)
        assert report.summary()["requests_lost"] == 0
        assert min(c.admitted_time for _, c in report.completed) >= heal


class TestSlowSemantics:
    def test_a_slow_replica_drags_the_run_without_orphaning(
            self, burst_trace, make_fleet):
        requests = burst_trace()
        nominal = _elapsed(make_fleet, requests, 1, max_batch_size=2)
        report = make_fleet(
            1, max_batch_size=2,
            faults=[FaultEvent(time_s=0.0, kind="slow", replica_id=0,
                               duration_s=10 * nominal, factor=4.0)]).run(requests)
        summary = report.summary()
        assert summary["elapsed_s"] > 2 * nominal
        assert summary["requests_orphaned"] == 0 and summary["requests_lost"] == 0
        assert len(report.completed) == len(requests)

    def test_the_clock_is_restored_when_the_window_closes(
            self, burst_trace, make_fleet):
        requests = burst_trace()
        nominal = _elapsed(make_fleet, requests, 1, max_batch_size=2)
        simulation = make_fleet(
            1, max_batch_size=2,
            faults=[FaultEvent(time_s=0.0, kind="slow", replica_id=0,
                               duration_s=0.3 * nominal, factor=8.0)])
        report = simulation.run(requests)
        (replica,) = simulation.replicas
        assert replica.speed_factor == 1.0
        assert replica.clock.time_per_token == replica.time_per_token
        assert nominal < report.summary()["elapsed_s"] < 8 * nominal


class TestAutoscalerRepair:
    def test_a_crash_below_min_replicas_triggers_replacement(
            self, burst_trace, make_fleet):
        requests = burst_trace(num_requests=24)
        kwargs = dict(policy="least_loaded", max_batch_size=2)
        crash_at = 0.3 * _elapsed(make_fleet, requests, 2, **kwargs)
        report = make_fleet(
            2, autoscaler=AutoscalerConfig(min_replicas=2, max_replicas=3,
                                           target_queue_per_replica=100.0),
            faults=[FaultEvent(time_s=crash_at, kind="crash", replica_id=0)],
            **kwargs).run(requests)
        summary = report.summary()
        ups = [e for e in report.scale_events if e["action"] == "up"]
        assert ups and ups[0]["time_s"] >= crash_at
        assert summary["requests_lost"] == 0
        assert len(report.completed) == len(requests)

    def test_a_crash_mid_drain_neither_hangs_nor_double_counts(
            self, fleet_trace, make_fleet):
        # a burst scales the fleet up; a sparse tail landing late in the
        # drain triggers a scale-down.  Probe the fault-free run for that
        # drain decision, then replay with a crash on the draining victim one
        # instant later: the retire/crash race must orphan the victim's
        # admitted work and still leave every request in exactly one
        # terminal state.
        import dataclasses

        kwargs = dict(policy="least_loaded", max_batch_size=2,
                      autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=3,
                                                  target_queue_per_replica=2.0))
        burst = fleet_trace(num_requests=16, arrival_rate=0.0)
        elapsed = make_fleet(1, **kwargs).run(burst).summary()["elapsed_s"]
        tail = [dataclasses.replace(r, request_id=100 + i,
                                    arrival_time=(0.8 + 0.02 * i) * elapsed)
                for i, r in enumerate(fleet_trace(num_requests=3, seed=9))]
        requests = burst + tail
        probe = make_fleet(1, **kwargs).run(requests)
        downs = [e for e in probe.scale_events if e["action"] == "down"]
        assert downs, "the probe run must drain a replica"
        victim = downs[0]
        report = make_fleet(
            1, faults=[FaultEvent(time_s=victim["time_s"] * (1 + 1e-6),
                                  kind="crash", replica_id=victim["replica_id"])],
            **kwargs).run(requests)
        summary = report.summary()
        (fault,) = report.fault_events
        assert fault["applied"] and fault["orphaned"] >= 1
        assert sorted(c.request.request_id for _, c in report.completed) == \
            sorted(r.request_id for r in requests)
        assert summary["requests_lost"] == 0
        assert summary["kv_leaked_pages"] == 0


class TestChaosDeterminism:
    def test_same_seed_chaos_runs_are_bit_identical(self, burst_trace, make_fleet):
        requests = burst_trace()
        kwargs = dict(policy="least_loaded", max_batch_size=2)
        horizon = _elapsed(make_fleet, requests, 3, **kwargs)
        schedule = FaultSchedule.generate("mixed", 3, horizon, seed=7)
        dumps = [make_fleet(3, faults=schedule, **kwargs).run(requests).to_dict()
                 for _ in range(2)]
        assert dumps[0] == dumps[1]

    def test_different_fault_seeds_produce_different_runs(
            self, burst_trace, make_fleet):
        requests = burst_trace()
        kwargs = dict(policy="least_loaded", max_batch_size=2)
        horizon = _elapsed(make_fleet, requests, 3, **kwargs)
        dumps = [make_fleet(
            3, faults=FaultSchedule.generate("mixed", 3, horizon, seed=seed),
            **kwargs).run(requests).to_dict() for seed in (0, 1)]
        assert dumps[0]["fault_events"] != dumps[1]["fault_events"]

    def test_a_schedule_replayed_from_its_dict_form_matches(
            self, burst_trace, make_fleet):
        requests = burst_trace()
        kwargs = dict(policy="least_loaded", max_batch_size=2)
        horizon = _elapsed(make_fleet, requests, 2, **kwargs)
        schedule = FaultSchedule.generate("mixed", 2, horizon, seed=5)
        replayed = FaultSchedule.from_dict(schedule.to_dict())
        assert make_fleet(2, faults=schedule, **kwargs).run(requests).to_dict() == \
            make_fleet(2, faults=replayed, **kwargs).run(requests).to_dict()
