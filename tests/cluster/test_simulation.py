"""The fleet co-simulation: conservation, determinism, scaling, autoscaling."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster import (
    AutoscalerConfig,
    ClusterConfig,
    ClusterSimulation,
    ReplicaConfig,
    SLOConfig,
    homogeneous_fleet,
)
from repro.serve.engine import Request
from repro.serve.workload import WorkloadConfig, generate_requests


def trace(vocab_size, num_requests=12, arrival_rate=50_000.0, seed=0):
    return generate_requests(vocab_size, WorkloadConfig(
        num_requests=num_requests, arrival_rate=arrival_rate,
        prompt_tokens=(3, 8), new_tokens=(2, 6), seed=seed))


class TestConservation:
    def test_every_request_completes_exactly_once(self, tiny_inference_model):
        requests = trace(tiny_inference_model.config.vocab_size)
        simulation = ClusterSimulation(
            tiny_inference_model,
            ClusterConfig(replicas=homogeneous_fleet(3, max_batch_size=2),
                          policy="round_robin"))
        report = simulation.run(requests)
        completed_ids = sorted(c.request.request_id for _, c in report.completed)
        assert completed_ids == [r.request_id for r in requests]
        assert report.summary()["requests"] == len(requests)

    def test_per_replica_token_counts_add_up(self, tiny_inference_model):
        requests = trace(tiny_inference_model.config.vocab_size)
        report = ClusterSimulation(
            tiny_inference_model,
            ClusterConfig(replicas=homogeneous_fleet(2), policy="least_loaded"),
        ).run(requests)
        assert sum(r["prefill_tokens"] for r in report.replicas) == \
            sum(len(c.request.prompt_tokens) for _, c in report.completed)
        assert sum(r["decode_tokens"] for r in report.replicas) >= \
            sum(len(c.generated_tokens) for _, c in report.completed) - len(requests)

    def test_empty_trace_yields_an_empty_report(self, tiny_inference_model):
        report = ClusterSimulation(
            tiny_inference_model,
            ClusterConfig(replicas=homogeneous_fleet(2))).run([])
        summary = report.summary()
        assert summary["requests"] == 0 and summary["elapsed_s"] == 0.0
        assert np.isnan(summary["slo_attainment"])
        assert summary["load_imbalance"] == 1.0

    def test_max_steps_guard(self, tiny_inference_model):
        requests = trace(tiny_inference_model.config.vocab_size, num_requests=8)
        simulation = ClusterSimulation(
            tiny_inference_model, ClusterConfig(replicas=homogeneous_fleet(1)))
        with pytest.raises(RuntimeError, match="did not drain"):
            simulation.run(requests, max_steps=2)


class TestDeterminism:
    @pytest.mark.parametrize("policy", ["round_robin", "least_loaded",
                                        "join_shortest_queue", "power_of_two",
                                        "prefix_affinity"])
    def test_same_seed_and_trace_reproduce_the_report_exactly(
            self, tiny_inference_model, policy):
        requests = trace(tiny_inference_model.config.vocab_size, seed=3)
        dumps = []
        for _ in range(2):
            simulation = ClusterSimulation(
                tiny_inference_model,
                ClusterConfig(replicas=homogeneous_fleet(3, max_batch_size=2),
                              policy=policy,
                              slo=SLOConfig(ttft_s=1e-4, latency_s=1e-3),
                              seed=11))
            dumps.append(simulation.run(requests).to_dict())
        assert dumps[0] == dumps[1]

    def test_sampled_decoding_is_reproducible_too(self, tiny_inference_model):
        requests = generate_requests(tiny_inference_model.config.vocab_size,
                                     WorkloadConfig(num_requests=8, arrival_rate=10_000.0,
                                                    prompt_tokens=(3, 6), new_tokens=(2, 5),
                                                    temperature=0.9, top_k=12, seed=5))
        dumps = [ClusterSimulation(
            tiny_inference_model,
            ClusterConfig(replicas=homogeneous_fleet(2), policy="power_of_two", seed=2),
        ).run(requests).to_dict() for _ in range(2)]
        assert dumps[0] == dumps[1]


class TestFleetBehaviour:
    def test_more_replicas_drain_a_saturating_burst_faster(self, tiny_inference_model):
        requests = trace(tiny_inference_model.config.vocab_size,
                         num_requests=16, arrival_rate=0.0)
        elapsed = {}
        for count in (1, 4):
            report = ClusterSimulation(
                tiny_inference_model,
                ClusterConfig(replicas=homogeneous_fleet(count, max_batch_size=2),
                              policy="least_loaded")).run(requests)
            elapsed[count] = report.summary()["elapsed_s"]
        assert elapsed[4] < elapsed[1] / 2

    def test_heterogeneous_fleet_faster_replica_serves_more(self, tiny_inference_model):
        # int4 weights + KV make replica 1 ~4x faster on the roofline clock;
        # least_loaded drains it faster, so it ends up with more of the work
        fleet = (ReplicaConfig(max_batch_size=2),
                 ReplicaConfig(max_batch_size=2, weight_spec="int4", kv_spec="int4"))
        requests = trace(tiny_inference_model.config.vocab_size,
                         num_requests=24, arrival_rate=0.0)
        report = ClusterSimulation(
            tiny_inference_model,
            ClusterConfig(replicas=fleet, policy="least_loaded")).run(requests)
        by_id = {r["replica_id"]: r for r in report.replicas}
        assert by_id[1]["time_per_token_s"] < by_id[0]["time_per_token_s"]
        assert by_id[1]["decode_tokens"] > by_id[0]["decode_tokens"]

    def test_slo_attainment_degrades_under_overload(self, tiny_inference_model):
        requests = trace(tiny_inference_model.config.vocab_size,
                         num_requests=16, arrival_rate=0.0)
        slo = SLOConfig(ttft_s=1e-4)
        attainment = {}
        for count in (1, 4):
            report = ClusterSimulation(
                tiny_inference_model,
                ClusterConfig(replicas=homogeneous_fleet(count, max_batch_size=2),
                              policy="least_loaded", slo=slo)).run(requests)
            attainment[count] = report.summary()["slo_attainment"]
        assert attainment[4] >= attainment[1]
        assert 0.0 <= attainment[1] <= 1.0

    def test_imbalance_is_bounded_by_the_fleet_size(self, tiny_inference_model):
        requests = trace(tiny_inference_model.config.vocab_size, num_requests=16)
        report = ClusterSimulation(
            tiny_inference_model,
            ClusterConfig(replicas=homogeneous_fleet(4), policy="round_robin"),
        ).run(requests)
        assert 1.0 <= report.summary()["load_imbalance"] <= 4.0

    def test_report_round_trips_through_json(self, tiny_inference_model):
        import json

        requests = trace(tiny_inference_model.config.vocab_size, num_requests=6)
        report = ClusterSimulation(
            tiny_inference_model,
            ClusterConfig(replicas=homogeneous_fleet(2))).run(requests)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["summary"]["requests"] == 6
        assert len(payload["replicas"]) == 2


class TestAutoscaling:
    def test_burst_scales_the_fleet_up(self, tiny_inference_model):
        requests = trace(tiny_inference_model.config.vocab_size,
                         num_requests=20, arrival_rate=0.0)
        config = ClusterConfig(
            replicas=homogeneous_fleet(1, max_batch_size=2),
            policy="least_loaded",
            autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=4,
                                        target_queue_per_replica=2.0))
        report = ClusterSimulation(tiny_inference_model, config).run(requests)
        summary = report.summary()
        assert summary["scale_ups"] >= 1
        assert len(report.replicas) > 1
        assert summary["requests"] == 20  # nothing lost while scaling
        assert all(e["action"] in ("up", "down") for e in report.scale_events)

    def test_scale_up_respects_max_replicas(self, tiny_inference_model):
        requests = trace(tiny_inference_model.config.vocab_size,
                         num_requests=24, arrival_rate=0.0)
        config = ClusterConfig(
            replicas=homogeneous_fleet(1, max_batch_size=2),
            policy="least_loaded",
            autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=2,
                                        target_queue_per_replica=1.0))
        report = ClusterSimulation(tiny_inference_model, config).run(requests)
        assert len(report.replicas) <= 2

    def test_scale_down_drains_without_dropping_requests(self, tiny_inference_model):
        # a sparse tail after a burst: the fleet scales up, then drains down
        vocab = tiny_inference_model.config.vocab_size
        burst = trace(vocab, num_requests=16, arrival_rate=0.0)
        tail = [dataclasses.replace(r, request_id=100 + i, arrival_time=0.01 + i * 0.01)
                for i, r in enumerate(trace(vocab, num_requests=4, seed=9))]
        config = ClusterConfig(
            replicas=homogeneous_fleet(1, max_batch_size=2),
            policy="least_loaded",
            autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=3,
                                        target_queue_per_replica=2.0))
        report = ClusterSimulation(tiny_inference_model, config).run(burst + tail)
        summary = report.summary()
        assert summary["requests"] == 20
        assert summary["scale_downs"] >= 1
        retired = [r for r in report.replicas if r["status"] == "retired"]
        assert retired, "a drained replica should have been retired"

    def test_autoscaled_report_is_deterministic(self, tiny_inference_model):
        requests = trace(tiny_inference_model.config.vocab_size,
                         num_requests=16, arrival_rate=0.0)
        config = ClusterConfig(
            replicas=homogeneous_fleet(1, max_batch_size=2),
            policy="power_of_two",
            autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=4,
                                        target_queue_per_replica=2.0),
            seed=4)
        dumps = [ClusterSimulation(tiny_inference_model, config).run(requests).to_dict()
                 for _ in range(2)]
        assert dumps[0] == dumps[1]
