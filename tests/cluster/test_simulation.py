"""The fleet co-simulation: conservation, determinism, scaling, autoscaling.

Traces and fleets come from the shared ``tests/cluster/conftest.py``
fixtures (``fleet_trace`` / ``make_fleet``) — one deterministic builder for
every module in this package.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster import AutoscalerConfig, ReplicaConfig, SLOConfig


class TestConservation:
    def test_every_request_completes_exactly_once(self, fleet_trace, make_fleet):
        requests = fleet_trace()
        report = make_fleet(3, max_batch_size=2).run(requests)
        completed_ids = sorted(c.request.request_id for _, c in report.completed)
        assert completed_ids == [r.request_id for r in requests]
        assert report.summary()["requests"] == len(requests)

    def test_per_replica_token_counts_add_up(self, fleet_trace, make_fleet):
        requests = fleet_trace()
        report = make_fleet(2, policy="least_loaded").run(requests)
        assert sum(r["prefill_tokens"] for r in report.replicas) == \
            sum(len(c.request.prompt_tokens) for _, c in report.completed)
        assert sum(r["decode_tokens"] for r in report.replicas) >= \
            sum(len(c.generated_tokens) for _, c in report.completed) - len(requests)

    def test_empty_trace_yields_an_empty_report(self, make_fleet):
        report = make_fleet(2).run([])
        summary = report.summary()
        assert summary["requests"] == 0 and summary["elapsed_s"] == 0.0
        assert np.isnan(summary["slo_attainment"])
        assert summary["load_imbalance"] == 1.0

    def test_max_steps_guard(self, fleet_trace, make_fleet):
        requests = fleet_trace(num_requests=8)
        with pytest.raises(RuntimeError, match="did not drain"):
            make_fleet(1).run(requests, max_steps=2)


class TestDeterminism:
    @pytest.mark.parametrize("policy", ["round_robin", "least_loaded",
                                        "join_shortest_queue", "power_of_two",
                                        "prefix_affinity"])
    def test_same_seed_and_trace_reproduce_the_report_exactly(
            self, fleet_trace, make_fleet, policy):
        requests = fleet_trace(seed=3)
        dumps = [make_fleet(3, max_batch_size=2, policy=policy,
                            slo=SLOConfig(ttft_s=1e-4, latency_s=1e-3),
                            seed=11).run(requests).to_dict()
                 for _ in range(2)]
        assert dumps[0] == dumps[1]

    def test_sampled_decoding_is_reproducible_too(self, fleet_trace, make_fleet):
        requests = fleet_trace(num_requests=8, arrival_rate=10_000.0,
                               prompt_tokens=(3, 6), new_tokens=(2, 5),
                               temperature=0.9, top_k=12, seed=5)
        dumps = [make_fleet(2, policy="power_of_two", seed=2).run(requests).to_dict()
                 for _ in range(2)]
        assert dumps[0] == dumps[1]


class TestFleetBehaviour:
    def test_more_replicas_drain_a_saturating_burst_faster(self, fleet_trace, make_fleet):
        requests = fleet_trace(num_requests=16, arrival_rate=0.0)
        elapsed = {
            count: make_fleet(count, max_batch_size=2, policy="least_loaded")
            .run(requests).summary()["elapsed_s"]
            for count in (1, 4)
        }
        assert elapsed[4] < elapsed[1] / 2

    def test_heterogeneous_fleet_faster_replica_serves_more(self, fleet_trace, make_fleet):
        # int4 weights + KV make replica 1 ~4x faster on the roofline clock;
        # least_loaded drains it faster, so it ends up with more of the work
        fleet = (ReplicaConfig(max_batch_size=2),
                 ReplicaConfig(max_batch_size=2, weight_spec="int4", kv_spec="int4"))
        requests = fleet_trace(num_requests=24, arrival_rate=0.0)
        report = make_fleet(replicas=fleet, policy="least_loaded").run(requests)
        by_id = {r["replica_id"]: r for r in report.replicas}
        assert by_id[1]["time_per_token_s"] < by_id[0]["time_per_token_s"]
        assert by_id[1]["decode_tokens"] > by_id[0]["decode_tokens"]

    def test_slo_attainment_degrades_under_overload(self, fleet_trace, make_fleet):
        requests = fleet_trace(num_requests=16, arrival_rate=0.0)
        slo = SLOConfig(ttft_s=1e-4)
        attainment = {
            count: make_fleet(count, max_batch_size=2, policy="least_loaded",
                              slo=slo).run(requests).summary()["slo_attainment"]
            for count in (1, 4)
        }
        assert attainment[4] >= attainment[1]
        assert 0.0 <= attainment[1] <= 1.0

    def test_imbalance_is_bounded_by_the_fleet_size(self, fleet_trace, make_fleet):
        requests = fleet_trace(num_requests=16)
        report = make_fleet(4).run(requests)
        assert 1.0 <= report.summary()["load_imbalance"] <= 4.0

    def test_report_round_trips_through_json(self, fleet_trace, make_fleet):
        import json

        requests = fleet_trace(num_requests=6)
        report = make_fleet(2).run(requests)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["summary"]["requests"] == 6
        assert len(payload["replicas"]) == 2


class TestAutoscaling:
    def test_burst_scales_the_fleet_up(self, fleet_trace, make_fleet):
        requests = fleet_trace(num_requests=20, arrival_rate=0.0)
        report = make_fleet(
            1, max_batch_size=2, policy="least_loaded",
            autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=4,
                                        target_queue_per_replica=2.0)).run(requests)
        summary = report.summary()
        assert summary["scale_ups"] >= 1
        assert len(report.replicas) > 1
        assert summary["requests"] == 20  # nothing lost while scaling
        assert all(e["action"] in ("up", "down") for e in report.scale_events)

    def test_scale_up_respects_max_replicas(self, fleet_trace, make_fleet):
        requests = fleet_trace(num_requests=24, arrival_rate=0.0)
        report = make_fleet(
            1, max_batch_size=2, policy="least_loaded",
            autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=2,
                                        target_queue_per_replica=1.0)).run(requests)
        assert len(report.replicas) <= 2

    def test_scale_down_drains_without_dropping_requests(self, fleet_trace, make_fleet):
        # a sparse tail after a burst: the fleet scales up, then drains down
        burst = fleet_trace(num_requests=16, arrival_rate=0.0)
        tail = [dataclasses.replace(r, request_id=100 + i, arrival_time=0.01 + i * 0.01)
                for i, r in enumerate(fleet_trace(num_requests=4, seed=9))]
        report = make_fleet(
            1, max_batch_size=2, policy="least_loaded",
            autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=3,
                                        target_queue_per_replica=2.0)).run(burst + tail)
        summary = report.summary()
        assert summary["requests"] == 20
        assert summary["scale_downs"] >= 1
        retired = [r for r in report.replicas if r["status"] == "retired"]
        assert retired, "a drained replica should have been retired"

    def test_autoscaled_report_is_deterministic(self, fleet_trace, make_fleet):
        requests = fleet_trace(num_requests=16, arrival_rate=0.0)
        dumps = [make_fleet(
            1, max_batch_size=2, policy="power_of_two",
            autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=4,
                                        target_queue_per_replica=2.0),
            seed=4).run(requests).to_dict() for _ in range(2)]
        assert dumps[0] == dumps[1]
