"""Routing-policy registry and the behaviour of every built-in policy."""

from __future__ import annotations

import pytest

from repro.cluster.router import (
    RoutingPolicy,
    UnknownPolicyError,
    get_policy,
    list_policies,
    register_policy,
)


class FakeReplica:
    """Just the load surface policies read, no engine underneath."""

    def __init__(self, replica_id, projected_load=0, queue_depth=0, num_active=0):
        self.replica_id = replica_id
        self.projected_load = projected_load
        self.queue_depth = queue_depth
        self.num_active = num_active


class FakeRequest:
    def __init__(self, prompt_tokens=(1, 2, 3)):
        self.prompt_tokens = tuple(prompt_tokens)


class TestRegistry:
    def test_all_policies_are_registered(self):
        assert list_policies() == ("round_robin", "least_loaded", "join_shortest_queue",
                                   "power_of_two", "prefix_affinity")

    def test_get_policy_normalises_names(self):
        assert get_policy("Least-Loaded").name == "least_loaded"
        assert get_policy(" ROUND_ROBIN ").name == "round_robin"

    def test_get_policy_passes_instances_through(self):
        policy = get_policy("round_robin")
        assert get_policy(policy) is policy

    def test_unknown_policy_has_a_did_you_mean_suggestion(self):
        with pytest.raises(UnknownPolicyError, match="least_loaded"):
            get_policy("least_loded")

    def test_unknown_policy_is_a_value_error(self):
        with pytest.raises(ValueError):
            get_policy("definitely_not_a_policy")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("round_robin")(type("P", (RoutingPolicy,), {}))

    def test_non_policy_class_rejected(self):
        with pytest.raises(TypeError):
            register_policy("not_a_policy")(object)

    def test_fresh_instance_per_lookup(self):
        assert get_policy("round_robin") is not get_policy("round_robin")


class TestPolicies:
    def test_round_robin_cycles_in_order(self):
        policy = get_policy("round_robin")
        replicas = [FakeReplica(i) for i in range(3)]
        picks = [policy.choose(FakeRequest(), replicas).replica_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_survives_fleet_resizes(self):
        policy = get_policy("round_robin")
        policy.choose(FakeRequest(), [FakeReplica(i) for i in range(4)])
        # fleet shrank under the rotation counter: modulo keeps it in range
        assert policy.choose(FakeRequest(), [FakeReplica(0)]).replica_id == 0

    def test_least_loaded_weighs_projected_tokens(self):
        policy = get_policy("least_loaded")
        replicas = [FakeReplica(0, projected_load=500, queue_depth=1),
                    FakeReplica(1, projected_load=20, queue_depth=3)]
        # more queued requests but far fewer projected tokens: 1 wins
        assert policy.choose(FakeRequest(), replicas).replica_id == 1

    def test_join_shortest_queue_counts_requests(self):
        policy = get_policy("join_shortest_queue")
        replicas = [FakeReplica(0, projected_load=20, queue_depth=1, num_active=3),
                    FakeReplica(1, projected_load=500, queue_depth=0, num_active=1)]
        assert policy.choose(FakeRequest(), replicas).replica_id == 1

    def test_ties_break_by_replica_id(self):
        for name in ("least_loaded", "join_shortest_queue"):
            replicas = [FakeReplica(2), FakeReplica(0), FakeReplica(1)]
            assert get_policy(name).choose(FakeRequest(), replicas).replica_id == 0

    def test_power_of_two_prefers_the_less_loaded_sample(self):
        policy = get_policy("power_of_two", seed=0)
        replicas = [FakeReplica(0, projected_load=100), FakeReplica(1, projected_load=0)]
        # with two replicas both are always sampled: the idle one always wins
        picks = {policy.choose(FakeRequest(), replicas).replica_id for _ in range(8)}
        assert picks == {1}

    def test_power_of_two_is_deterministic_under_a_seed(self):
        replicas = [FakeReplica(i, projected_load=i) for i in range(8)]
        runs = []
        for _ in range(2):
            policy = get_policy("power_of_two", seed=7)
            runs.append([policy.choose(FakeRequest(), replicas).replica_id
                         for _ in range(16)])
        assert runs[0] == runs[1]

    def test_power_of_two_single_replica_shortcut(self):
        replica = FakeReplica(0)
        assert get_policy("power_of_two").choose(FakeRequest(), [replica]) is replica

    def test_prefix_affinity_is_sticky_per_prefix(self):
        policy = get_policy("prefix_affinity")
        replicas = [FakeReplica(i) for i in range(4)]
        shared = tuple(range(8))
        picks = {policy.choose(FakeRequest(shared + (tail,)), replicas).replica_id
                 for tail in range(10)}
        assert len(picks) == 1  # same prefix -> same replica, whatever follows

    def test_prefix_affinity_spreads_distinct_prefixes(self):
        policy = get_policy("prefix_affinity")
        replicas = [FakeReplica(i) for i in range(4)]
        picks = {policy.choose(FakeRequest((p, p + 1, p + 2)), replicas).replica_id
                 for p in range(32)}
        assert len(picks) > 1

    def test_prefix_affinity_is_stable_across_instances(self):
        replicas = [FakeReplica(i) for i in range(5)]
        request = FakeRequest((3, 1, 4, 1, 5))
        first = get_policy("prefix_affinity", seed=2).choose(FakeRequest((3, 1, 4, 1, 5)), replicas)
        second = get_policy("prefix_affinity", seed=2).choose(request, replicas)
        assert first.replica_id == second.replica_id


class CachingFakeReplica(FakeReplica):
    """A replica whose cache reports a fixed measured prefix hit."""

    def __init__(self, replica_id, cached=0, **kwargs):
        super().__init__(replica_id, **kwargs)
        self._cached = cached
        self.probed = 0

    def cached_prefix_tokens(self, request):
        self.probed += 1
        return self._cached


class TestPrefixAffinityMeasuredReuse:
    def test_routes_to_the_replica_with_the_longest_cached_prefix(self):
        policy = get_policy("prefix_affinity")
        replicas = [CachingFakeReplica(0, cached=4), CachingFakeReplica(1, cached=16),
                    CachingFakeReplica(2, cached=8)]
        assert policy.choose(FakeRequest(tuple(range(20))), replicas).replica_id == 1
        assert all(replica.probed == 1 for replica in replicas)

    def test_ties_break_by_replica_id(self):
        policy = get_policy("prefix_affinity")
        replicas = [CachingFakeReplica(i, cached=8) for i in range(3)]
        assert policy.choose(FakeRequest(), replicas).replica_id == 0

    def test_cold_caches_fall_back_to_the_stable_hash(self):
        request = FakeRequest((3, 1, 4, 1, 5))
        cold = [CachingFakeReplica(i, cached=0) for i in range(5)]
        plain = [FakeReplica(i) for i in range(5)]
        chosen_cold = get_policy("prefix_affinity", seed=2).choose(request, cold)
        chosen_plain = get_policy("prefix_affinity", seed=2).choose(request, plain)
        assert chosen_cold.replica_id == chosen_plain.replica_id

    def test_measured_reuse_on_real_replicas(self, tiny_inference_model):
        """After one replica serves a prompt, its followers route to it."""
        from repro.cluster.replica import Replica, ReplicaConfig
        from repro.serve.engine import Request

        config = ReplicaConfig(kv_page_size=4)
        replicas = [Replica(i, tiny_inference_model, config) for i in range(3)]
        prefix = tuple(range(1, 17))
        first = Request(request_id=0, prompt_tokens=prefix + (30, 31), max_new_tokens=3)
        policy = get_policy("prefix_affinity")
        seeded = policy.choose(first, replicas)
        seeded.submit(first)
        while seeded.has_work:
            seeded.step()
        assert seeded.prefix_hit_rate == 0.0  # the seeding request itself missed
        follower = Request(request_id=1, prompt_tokens=prefix + (40, 41),
                           max_new_tokens=3)
        assert replicas[seeded.replica_id].cached_prefix_tokens(follower) == 16
        assert policy.choose(follower, replicas) is seeded
