"""Autoscaler decisions: backlog and SLO triggers, guardrails, cooldown."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig


class FakeCompletion:
    def __init__(self, ttft_s):
        self.time_to_first_token_s = ttft_s


def observe(autoscaler, *ttfts):
    for ttft in ttfts:
        autoscaler.observe(FakeCompletion(ttft))


class TestTriggers:
    def test_scales_up_on_backlog(self):
        scaler = Autoscaler(AutoscalerConfig(target_queue_per_replica=2.0))
        assert scaler.decide(0.0, queue_depth=9, num_replicas=4) == "up"

    def test_holds_when_backlog_is_at_target(self):
        scaler = Autoscaler(AutoscalerConfig(target_queue_per_replica=2.0, min_replicas=2))
        assert scaler.decide(0.0, queue_depth=8, num_replicas=4) is None

    def test_scales_up_on_ttft_slo_breach(self):
        scaler = Autoscaler(AutoscalerConfig(ttft_slo_s=0.1))
        observe(scaler, 0.2, 0.3, 0.25)
        assert scaler.decide(0.0, queue_depth=0, num_replicas=2) == "up"

    def test_inherits_the_cluster_slo_when_config_has_none(self):
        scaler = Autoscaler(AutoscalerConfig(), ttft_slo_s=0.1)
        observe(scaler, 0.5)
        assert scaler.ttft_slo_s == 0.1
        assert scaler.decide(0.0, queue_depth=0, num_replicas=2) == "up"

    def test_scales_down_when_idle_and_comfortable(self):
        scaler = Autoscaler(AutoscalerConfig(ttft_slo_s=0.1, downscale_margin=0.5))
        observe(scaler, 0.01, 0.02)
        assert scaler.decide(0.0, queue_depth=0, num_replicas=3) == "down"

    def test_no_downscale_while_p95_is_near_the_slo(self):
        scaler = Autoscaler(AutoscalerConfig(ttft_slo_s=0.1, downscale_margin=0.5))
        observe(scaler, 0.08, 0.09)
        assert scaler.decide(0.0, queue_depth=0, num_replicas=3) is None

    def test_no_downscale_before_any_completion_when_slo_set(self):
        scaler = Autoscaler(AutoscalerConfig(ttft_slo_s=0.1))
        assert np.isnan(scaler.rolling_ttft_p95_s())
        assert scaler.decide(0.0, queue_depth=0, num_replicas=3) is None

    def test_downscale_without_slo_needs_only_empty_queues(self):
        scaler = Autoscaler(AutoscalerConfig())
        assert scaler.decide(0.0, queue_depth=0, num_replicas=2) == "down"


class TestGuardrails:
    def test_never_exceeds_max_replicas(self):
        scaler = Autoscaler(AutoscalerConfig(max_replicas=4, target_queue_per_replica=1.0))
        assert scaler.decide(0.0, queue_depth=100, num_replicas=4) is None

    def test_never_drops_below_min_replicas(self):
        scaler = Autoscaler(AutoscalerConfig(min_replicas=2))
        assert scaler.decide(0.0, queue_depth=0, num_replicas=2) is None

    def test_cooldown_suppresses_consecutive_actions(self):
        scaler = Autoscaler(AutoscalerConfig(target_queue_per_replica=1.0, cooldown_s=1.0))
        assert scaler.decide(0.0, queue_depth=10, num_replicas=1) == "up"
        assert scaler.decide(0.5, queue_depth=10, num_replicas=2) is None
        assert scaler.decide(1.5, queue_depth=10, num_replicas=2) == "up"

    def test_rolling_window_forgets_old_samples(self):
        scaler = Autoscaler(AutoscalerConfig(ttft_slo_s=0.1, window=4))
        observe(scaler, 5.0, 5.0, 5.0, 5.0)   # terrible early TTFTs
        observe(scaler, 0.01, 0.01, 0.01, 0.01)  # window now holds only these
        assert scaler.rolling_ttft_p95_s() == pytest.approx(0.01)

    def test_config_validation(self):
        for kwargs in ({"min_replicas": 0}, {"max_replicas": 0},
                       {"target_queue_per_replica": 0.0}, {"ttft_slo_s": -1.0},
                       {"downscale_margin": 0.0}, {"window": 0}, {"cooldown_s": -1.0}):
            with pytest.raises(ValueError):
                AutoscalerConfig(**kwargs)
