"""The cluster_bench driver: rows, derived load/SLO, pipeline and CLI wiring.

Sweeps run over the canonical ``bench_workload`` fixture from the shared
``tests/cluster/conftest.py`` fleet builder.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.bench import (
    cluster_bench,
    derived_slo,
    saturating_arrival_rate,
)
from repro.cluster.replica import ReplicaConfig

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestDerivedLoadAndSLO:
    def test_arrival_rate_scales_with_utilization(self, tiny_model_config, bench_workload):
        one = saturating_arrival_rate(tiny_model_config, ReplicaConfig(), bench_workload,
                                      utilization=1.0)
        three = saturating_arrival_rate(tiny_model_config, ReplicaConfig(), bench_workload,
                                        utilization=3.0)
        assert three == pytest.approx(3 * one)
        with pytest.raises(ValueError):
            saturating_arrival_rate(tiny_model_config, ReplicaConfig(), bench_workload,
                                    utilization=0)

    def test_slo_tracks_the_roofline_service_time(self, tiny_model_config, bench_workload):
        slo = derived_slo(tiny_model_config, ReplicaConfig(), bench_workload, slo_slack=4.0)
        assert 0 < slo.ttft_s < slo.latency_s
        tighter = derived_slo(tiny_model_config, ReplicaConfig(), bench_workload,
                              slo_slack=2.0)
        assert tighter.ttft_s == pytest.approx(slo.ttft_s / 2)
        with pytest.raises(ValueError):
            derived_slo(tiny_model_config, ReplicaConfig(), bench_workload, slo_slack=0)


class TestClusterBenchRows:
    def test_rows_cover_the_sweep_with_all_metrics(self, tiny_inference_model,
                                                   bench_workload):
        rows = cluster_bench(
            tiny_inference_model,
            policies=("round_robin", "least_loaded"),
            replica_counts=(1, 2),
            kv_specs=(None, "int8"),
            workload=bench_workload,
            replica=ReplicaConfig(max_batch_size=2),
        )
        assert len(rows) == 8
        assert {(row["policy"], row["replicas"], row["kv_cache"]) for row in rows} == {
            (policy, count, spec)
            for policy in ("round_robin", "least_loaded")
            for count in (1, 2)
            for spec in ("fp16", "INT8")
        }
        for row in rows:
            assert row["requests"] == 10
            assert 0.0 <= row["slo_attainment"] <= 1.0
            assert row["load_imbalance"] >= 1.0
            for key in ("goodput_rps", "decode_tokens_per_s", "total_tokens_per_s",
                        "ttft_p50_ms", "ttft_p95_ms", "latency_p50_ms", "latency_p95_ms"):
                assert np.isfinite(row[key]), key

    def test_single_replica_is_overloaded_and_fleets_recover(self, tiny_inference_model,
                                                             bench_workload):
        rows = cluster_bench(
            tiny_inference_model,
            policies=("least_loaded",),
            replica_counts=(1, 4),
            kv_specs=(None,),
            workload=bench_workload,
            replica=ReplicaConfig(max_batch_size=2),
            utilization=3.0,
        )
        single, fleet = rows
        assert single["slo_attainment"] < fleet["slo_attainment"]
        assert single["ttft_p95_ms"] > fleet["ttft_p95_ms"]
        assert fleet["decode_tokens_per_s"] > single["decode_tokens_per_s"]

    def test_rows_are_deterministic(self, tiny_inference_model, bench_workload):
        kwargs = dict(policies=("power_of_two",), replica_counts=(2,),
                      kv_specs=("int8",), workload=bench_workload,
                      replica=ReplicaConfig(max_batch_size=2), seed=5)
        assert cluster_bench(tiny_inference_model, **kwargs) == \
            cluster_bench(tiny_inference_model, **kwargs)

    def test_explicit_arrival_rate_overrides_the_derivation(self, tiny_inference_model,
                                                            bench_workload):
        rows = cluster_bench(tiny_inference_model, policies=("round_robin",),
                             replica_counts=(1,), kv_specs=(None,),
                             workload=bench_workload, arrival_rate=1e6)
        assert rows[0]["requests"] == 10


class TestPipelineIntegration:
    def test_cluster_bench_runs_under_the_cached_pipeline(self, tmp_path):
        """`repro run cluster_bench` works: cached, manifest-tracked, resumable."""
        from repro.pipeline.run import run_experiments

        output_dir = tmp_path / "results"
        results = run_experiments(["cluster_bench"], fast=True, output_dir=str(output_dir),
                                  jobs=1, verbose=False)
        result = results["cluster_bench"]
        for column in ("policy", "replicas", "kv_cache", "goodput_rps",
                       "slo_attainment", "load_imbalance"):
            assert column in result.columns
            assert all(column in row for row in result.rows)
        assert (output_dir / "cluster-bench.json").exists()
        assert (output_dir / "manifest.json").exists()
        # second invocation must be served from the content-addressed cache
        second = run_experiments(["cluster_bench"], fast=True,
                                 output_dir=str(tmp_path / "results2"), jobs=1,
                                 verbose=False)
        assert second["cluster_bench"].rows == result.rows

    def test_model_dependency_is_declared_for_the_scheduler(self):
        from repro.experiments.common import experiment_model_specs

        assert experiment_model_specs("cluster_bench", fast=True) == ("Llama-1B",)
        assert experiment_model_specs("cluster_bench", fast=False) == ("Llama-7B",)

    def test_driver_is_registered_in_the_catalog(self):
        from repro.experiments.runner import EXPERIMENTS, experiment_descriptions

        assert "cluster_bench" in EXPERIMENTS
        assert experiment_descriptions()["cluster_bench"]


class TestCLISmoke:
    def _run_repro(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_FAST"] = "1"
        return subprocess.run([sys.executable, "-m", "repro", *args],
                              capture_output=True, text=True, timeout=300,
                              cwd=REPO_ROOT, env=env)

    def test_cluster_bench_fast_subprocess(self, tmp_path):
        result = self._run_repro("cluster-bench", "--fast", "--num-requests", "8",
                                 "--policies", "round_robin", "least-loaded",
                                 "--replicas", "1", "2", "--kv-specs", "fp16", "int8",
                                 "--output-dir", str(tmp_path / "out"))
        assert result.returncode == 0, result.stderr
        assert "Cluster-Bench" in result.stdout
        assert "slo_attainment" in result.stdout
        assert "load_imbalance" in result.stdout
        assert "least_loaded" in result.stdout
        assert (tmp_path / "out" / "cluster-bench.json").exists()

    def test_unknown_policy_is_a_clean_usage_error(self):
        result = self._run_repro("cluster-bench", "--fast", "--policies", "least_loded")
        assert result.returncode != 0
        assert "unknown routing policy" in result.stderr
        assert "least_loaded" in result.stderr  # the did-you-mean suggestion
        assert "Traceback" not in result.stderr


class TestSharedPrefixScenario:
    """The prefix-sharing sweep: hit-rate columns and measured-reuse routing."""

    def _rows(self, model, policies):
        from repro.cluster.bench import default_workload

        return cluster_bench(
            model,
            policies=policies,
            replica_counts=(4,),
            kv_specs=(None,),
            workload=default_workload(True, "shared_prefix"),
            replica=ReplicaConfig(max_batch_size=2, kv_page_size=4),
        )

    def test_rows_carry_hit_rate_and_paging_columns(self, tiny_inference_model):
        rows = self._rows(tiny_inference_model, ("round_robin",))
        for row in rows:
            assert 0.0 <= row["prefix_hit_rate"] <= 1.0
            assert row["peak_pages_in_use"] > 0

    def test_prefix_affinity_beats_round_robin_on_hit_rate(self, tiny_inference_model):
        rows = {row["policy"]: row
                for row in self._rows(tiny_inference_model,
                                      ("round_robin", "prefix_affinity"))}
        assert rows["prefix_affinity"]["prefix_hit_rate"] > \
            rows["round_robin"]["prefix_hit_rate"]

    def test_shared_prefix_rows_are_deterministic(self, tiny_inference_model):
        first = self._rows(tiny_inference_model, ("prefix_affinity",))
        second = self._rows(tiny_inference_model, ("prefix_affinity",))
        assert first == second

    def test_unknown_workload_kind_rejected(self):
        from repro.cluster.bench import default_workload

        with pytest.raises(ValueError, match="workload kind"):
            default_workload(True, "fractal")

    def test_default_workload_kinds_have_the_documented_shape(self):
        from repro.cluster.bench import default_workload
        from repro.serve.workload import SharedPrefixConfig, WorkloadConfig

        assert isinstance(default_workload(True, "poisson"), WorkloadConfig)
        shared = default_workload(False, "shared_prefix")
        assert isinstance(shared, SharedPrefixConfig)
        assert shared.shared_fraction == pytest.approx(0.8)


class TestMultiTurnWorkload:
    def test_cluster_bench_accepts_a_multi_turn_trace(self, tiny_inference_model):
        from repro.serve.workload import MultiTurnConfig

        rows = cluster_bench(
            tiny_inference_model,
            policies=("prefix_affinity",),
            replica_counts=(2,),
            kv_specs=(None,),
            workload=MultiTurnConfig(num_conversations=3, turns=(2, 3),
                                     system_tokens=8, user_tokens=(2, 4),
                                     new_tokens=(2, 3), seed=0),
            replica=ReplicaConfig(max_batch_size=2, kv_page_size=4),
        )
        (row,) = rows
        assert row["requests"] >= 6  # >= 2 turns per conversation
        assert row["prefix_hit_rate"] > 0  # later turns reuse the history
        assert np.isfinite(row["goodput_rps"])
