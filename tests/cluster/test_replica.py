"""Replica construction: roofline token pricing, quant specs, engine facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.replica import Replica, ReplicaConfig, decode_time_per_token
from repro.serve.engine import Request, VirtualClock


class TestDecodeTimePerToken:
    def test_denser_weights_make_a_faster_replica(self, tiny_model_config):
        fp16 = decode_time_per_token(tiny_model_config, ReplicaConfig())
        int8 = decode_time_per_token(tiny_model_config, ReplicaConfig(weight_spec="int8"))
        int4 = decode_time_per_token(tiny_model_config, ReplicaConfig(weight_spec="int4"))
        assert int4 < int8 < fp16

    def test_kv_spec_prices_the_attention_gemms(self, tiny_model_config):
        fp16 = decode_time_per_token(tiny_model_config, ReplicaConfig())
        kv_int8 = decode_time_per_token(tiny_model_config, ReplicaConfig(kv_spec="int8"))
        # KV quantisation speeds up the cache-reading ops only: faster, but
        # less than quantising the (much larger) weight-resident GEMMs too
        both = decode_time_per_token(tiny_model_config,
                                     ReplicaConfig(kv_spec="int8", weight_spec="int8"))
        assert both < kv_int8 < fp16

    def test_memory_bound_decode_scales_with_bandwidth(self, tiny_model_config):
        slow = decode_time_per_token(tiny_model_config,
                                     ReplicaConfig(dram_gbytes_per_s=10.0))
        fast = decode_time_per_token(tiny_model_config,
                                     ReplicaConfig(dram_gbytes_per_s=40.0))
        assert fast == pytest.approx(slow / 4.0, rel=1e-6)

    def test_longer_context_costs_more(self, tiny_model_config):
        short = decode_time_per_token(tiny_model_config, ReplicaConfig(decode_context=16))
        long = decode_time_per_token(tiny_model_config, ReplicaConfig(decode_context=64))
        assert long > short

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReplicaConfig(pe_rows=0)
        with pytest.raises(ValueError):
            ReplicaConfig(dram_gbytes_per_s=0)
        with pytest.raises(ValueError):
            ReplicaConfig(decode_context=0)


class TestReplica:
    def test_runs_on_a_virtual_clock_at_the_roofline_rate(self, tiny_inference_model):
        replica = Replica(0, tiny_inference_model, ReplicaConfig(max_batch_size=2))
        assert isinstance(replica.clock, VirtualClock)
        assert replica.clock.time_per_token == replica.time_per_token
        assert replica.time_per_token == decode_time_per_token(
            tiny_inference_model.config, replica.config)

    def test_kv_spec_reaches_the_engine_cache(self, tiny_inference_model):
        replica = Replica(0, tiny_inference_model, ReplicaConfig(kv_spec="int8"))
        assert replica.kv_spec == "INT8"
        assert Replica(1, tiny_inference_model).kv_spec == "fp16"

    def test_weight_spec_rewraps_the_model(self, tiny_inference_model):
        replica = Replica(0, tiny_inference_model, ReplicaConfig(weight_spec="int8"))
        assert replica.model is not tiny_inference_model
        assert replica.model.scheme.name == "INT8"
        assert replica.weight_spec == "int8"
        # unquantised replicas share the caller's model object
        assert Replica(1, tiny_inference_model).model is tiny_inference_model

    def test_start_time_offsets_the_clock(self, tiny_inference_model):
        replica = Replica(3, tiny_inference_model, start_time=1.5)
        assert replica.now == 1.5

    def test_serves_requests_and_describes_itself(self, tiny_inference_model):
        replica = Replica(2, tiny_inference_model, ReplicaConfig(max_batch_size=2))
        replica.submit(Request(request_id=0, prompt_tokens=(1, 2, 3), max_new_tokens=4))
        assert replica.has_work and replica.queue_depth == 1
        assert replica.projected_load == 7
        while replica.has_work:
            replica.step()
        row = replica.describe()
        assert row["replica_id"] == 2
        assert row["requests"] == 1
        assert row["prefill_tokens"] == 3 and row["decode_tokens"] == 3
        assert row["status"] == "active"
        assert row["finish_time_s"] == pytest.approx(replica.now)
        assert np.isfinite(row["time_per_token_s"]) and row["time_per_token_s"] > 0

    def test_next_event_time_tracks_the_engine(self, tiny_inference_model):
        replica = Replica(0, tiny_inference_model)
        assert replica.next_event_time == float("inf")
        replica.submit(Request(request_id=0, prompt_tokens=(1, 2), max_new_tokens=1,
                               arrival_time=0.25))
        assert replica.next_event_time == 0.25  # idle engine: head-of-queue arrival


class TestPagedReplicaSurface:
    def test_describe_carries_prefix_and_paging_columns(self, tiny_inference_model):
        replica = Replica(0, tiny_inference_model, ReplicaConfig(kv_page_size=4))
        prefix = tuple(range(1, 13))
        for index, tail in enumerate(((21, 22), (23, 24))):
            replica.submit(Request(request_id=index, prompt_tokens=prefix + tail,
                                   max_new_tokens=3))
        while replica.has_work:
            replica.step()
        row = replica.describe()
        assert row["reused_prefix_tokens"] == 12  # the second request hit 3 pages
        assert 0 < row["prefix_hit_rate"] < 1
        assert row["peak_pages_in_use"] > 0
        assert row["kv_peak_memory_mib"] > 0
        assert row["prefix_hit_rate"] == pytest.approx(replica.prefix_hit_rate)

    def test_contiguous_backend_reports_zero_reuse(self, tiny_inference_model):
        replica = Replica(0, tiny_inference_model,
                          ReplicaConfig(kv_backend="contiguous"))
        replica.submit(Request(request_id=0, prompt_tokens=(1, 2, 3), max_new_tokens=2))
        while replica.has_work:
            replica.step()
        row = replica.describe()
        assert row["reused_prefix_tokens"] == 0 and row["prefix_hit_rate"] == 0.0
        assert row["peak_pages_in_use"] == 0
        assert replica.cached_prefix_tokens(
            Request(request_id=1, prompt_tokens=(1, 2, 3), max_new_tokens=2)) == 0
