"""Tests for the attention block, MLPs and the full transformer (training path)."""

import numpy as np
import pytest

from repro.llm.attention import CausalSelfAttention, causal_mask
from repro.llm.autograd import Tensor
from repro.llm.config import ModelConfig
from repro.llm.mlp import FeedForwardMLP, SwiGLUMLP, build_mlp
from repro.llm.transformer import TransformerLM


@pytest.fixture
def llama_config(small_corpus):
    return ModelConfig(name="t", vocab_size=small_corpus.vocab_size, d_model=32, n_heads=4,
                       n_layers=2, d_ff=48, max_seq_len=32, arch="llama", seed=0)


@pytest.fixture
def opt_config(small_corpus):
    return ModelConfig(name="t", vocab_size=small_corpus.vocab_size, d_model=32, n_heads=4,
                       n_layers=2, d_ff=48, max_seq_len=32, arch="opt", seed=0)


class TestAttention:
    def test_causal_mask_shape_and_values(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert mask[0, 1] < -1e8
        assert mask[3, 0] == 0.0

    def test_attention_output_shape(self, llama_config, rng):
        attn = CausalSelfAttention(llama_config, rng=np.random.default_rng(0))
        x = Tensor(rng.standard_normal((2, 8, 32)))
        assert attn(x).shape == (2, 8, 32)

    def test_causality(self, llama_config, rng):
        """Changing a future token must not change earlier outputs."""
        attn = CausalSelfAttention(llama_config, rng=np.random.default_rng(0))
        x = rng.standard_normal((1, 8, 32))
        base = attn(Tensor(x)).data.copy()
        perturbed = x.copy()
        perturbed[0, 7] += 5.0
        out = attn(Tensor(perturbed)).data
        assert np.allclose(out[0, :7], base[0, :7])
        assert not np.allclose(out[0, 7], base[0, 7])


class TestMLP:
    def test_build_mlp_dispatch(self, llama_config, opt_config):
        assert isinstance(build_mlp(llama_config), SwiGLUMLP)
        assert isinstance(build_mlp(opt_config), FeedForwardMLP)

    def test_swiglu_shape(self, llama_config, rng):
        mlp = SwiGLUMLP(llama_config, rng=np.random.default_rng(0))
        assert mlp(Tensor(rng.standard_normal((2, 4, 32)))).shape == (2, 4, 32)

    def test_feedforward_shape(self, opt_config, rng):
        mlp = FeedForwardMLP(opt_config, rng=np.random.default_rng(0))
        assert mlp(Tensor(rng.standard_normal((2, 4, 32)))).shape == (2, 4, 32)


class TestTransformerLM:
    def test_logit_shape(self, llama_config, rng):
        model = TransformerLM(llama_config)
        tokens = rng.integers(0, llama_config.vocab_size, size=(2, 16))
        assert model.forward(tokens).shape == (2, 16, llama_config.vocab_size)

    def test_1d_tokens_promoted(self, llama_config, rng):
        model = TransformerLM(llama_config)
        tokens = rng.integers(0, llama_config.vocab_size, size=16)
        assert model.forward(tokens).shape == (1, 16, llama_config.vocab_size)

    def test_sequence_length_guard(self, llama_config, rng):
        model = TransformerLM(llama_config)
        tokens = rng.integers(0, llama_config.vocab_size, size=(1, 64))
        with pytest.raises(ValueError):
            model.forward(tokens)

    def test_loss_is_finite_scalar(self, llama_config, rng):
        model = TransformerLM(llama_config)
        tokens = rng.integers(0, llama_config.vocab_size, size=(2, 17))
        loss = model.loss(tokens)
        assert loss.size == 1
        assert np.isfinite(loss.data)

    def test_loss_near_uniform_at_init(self, llama_config, rng):
        model = TransformerLM(llama_config)
        tokens = rng.integers(0, llama_config.vocab_size, size=(4, 17))
        loss = float(model.loss(tokens).data)
        assert abs(loss - np.log(llama_config.vocab_size)) < 1.0

    def test_backward_populates_all_gradients(self, llama_config, rng):
        model = TransformerLM(llama_config)
        tokens = rng.integers(0, llama_config.vocab_size, size=(2, 9))
        model.loss(tokens).backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_opt_architecture_runs(self, opt_config, rng):
        model = TransformerLM(opt_config)
        tokens = rng.integers(0, opt_config.vocab_size, size=(1, 9))
        assert np.isfinite(float(model.loss(tokens).data))

    def test_state_dict_roundtrip_preserves_outputs(self, llama_config, rng):
        model = TransformerLM(llama_config)
        clone = TransformerLM(llama_config)
        tokens = rng.integers(0, llama_config.vocab_size, size=(1, 8))
        clone.load_state_dict(model.state_dict())
        assert np.allclose(model.forward(tokens).data, clone.forward(tokens).data)
