"""Tests for perplexity evaluation, outlier injection and the model zoo."""

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.llm.inference import InferenceModel, QuantizationScheme
from repro.llm.outliers import LLAMA_PROFILE, OPT_PROFILE, OutlierProfile, inject_outliers
from repro.llm.perplexity import EvalConfig, evaluate_perplexity, perplexity_table
from repro.llm.zoo import (
    ALL_SPECS,
    LLAMA_FAMILY,
    OPT_FAMILY,
    get_spec,
    load_inference_model,
    load_state_dict,
)
from repro.llm.training import TrainingConfig

_EVAL = EvalConfig(batch_size=2, seq_len=24, max_batches=2)


class TestPerplexity:
    def test_trained_model_beats_uniform(self, tiny_inference_model, small_corpus):
        ppl = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        assert 1.0 < ppl < small_corpus.vocab_size

    def test_perplexity_deterministic(self, tiny_inference_model, small_corpus):
        a = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        b = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        assert a == pytest.approx(b)

    def test_quantisation_ordering(self, tiny_inference_model, small_corpus):
        """FP16 <= BBFP(6,3) <= BBFP(4,2) and BBFP(m,o) <= BFP(m) on the same model."""
        schemes = [
            QuantizationScheme.fp16(),
            QuantizationScheme.from_format(BBFPConfig(6, 3)),
            QuantizationScheme.from_format(BBFPConfig(4, 2)),
            QuantizationScheme.from_format(BFPConfig(4)),
        ]
        results = perplexity_table(tiny_inference_model, small_corpus, schemes, _EVAL)
        assert results["BBFP(6,3)"] <= results["BBFP(4,2)"] * 1.05
        assert results["BBFP(4,2)"] <= results["BFP4"] * 1.05
        assert results["FP16"] <= results["BBFP(6,3)"] * 1.02

    def test_perplexity_table_restores_scheme(self, tiny_inference_model, small_corpus):
        original = tiny_inference_model.scheme
        perplexity_table(tiny_inference_model, small_corpus, [QuantizationScheme.fp16()], _EVAL)
        assert tiny_inference_model.scheme is original

    def test_perplexity_table_type_check(self, tiny_inference_model, small_corpus):
        with pytest.raises(TypeError):
            perplexity_table(tiny_inference_model, small_corpus, ["FP16"], _EVAL)


class TestOutliers:
    def test_profiles_ordering(self):
        assert LLAMA_PROFILE.channel_fraction > OPT_PROFILE.channel_fraction
        assert LLAMA_PROFILE.scale_max > OPT_PROFILE.scale_max

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            OutlierProfile(channel_fraction=0.9, scale_min=2, scale_max=3)
        with pytest.raises(ValueError):
            OutlierProfile(channel_fraction=0.1, scale_min=5, scale_max=2)

    def test_injection_scales_norm_gains(self, tiny_model_config, tiny_training_result):
        state = inject_outliers(tiny_model_config, tiny_training_result.state_dict, LLAMA_PROFILE)
        original = tiny_training_result.state_dict["blocks.0.attn_norm.gain"]
        injected = state["blocks.0.attn_norm.gain"]
        assert np.max(injected / np.maximum(original, 1e-9)) > LLAMA_PROFILE.scale_min * 0.9

    def test_injection_makes_activation_quantisation_harder(self, tiny_model_config,
                                                            tiny_training_result, small_corpus):
        plain = InferenceModel(tiny_model_config, tiny_training_result.state_dict)
        injected = InferenceModel(
            tiny_model_config,
            inject_outliers(tiny_model_config, tiny_training_result.state_dict, LLAMA_PROFILE),
        )
        scheme = QuantizationScheme.from_format(BFPConfig(4))
        plain.set_scheme(scheme)
        injected.set_scheme(scheme)
        assert evaluate_perplexity(injected, small_corpus, _EVAL) >= evaluate_perplexity(
            plain, small_corpus, _EVAL
        ) * 0.99

    def test_injection_does_not_mutate_input(self, tiny_model_config, tiny_training_result):
        before = {k: v.copy() for k, v in tiny_training_result.state_dict.items()}
        inject_outliers(tiny_model_config, tiny_training_result.state_dict, LLAMA_PROFILE)
        for key, value in before.items():
            assert np.array_equal(value, tiny_training_result.state_dict[key])


class TestZoo:
    def test_family_sizes(self):
        assert len(LLAMA_FAMILY) == 6
        assert len(OPT_FAMILY) == 6
        assert len(ALL_SPECS) == 14  # 12 Table II models + Llama2/Llama3 for Table IV

    def test_capacity_grows_with_tier(self):
        for family in (LLAMA_FAMILY, OPT_FAMILY):
            dims = [spec.d_model * spec.n_layers for spec in family]
            assert dims == sorted(dims)

    def test_get_spec(self):
        assert get_spec("llama-7b").paper_name == "Llama-7B"
        with pytest.raises(KeyError):
            get_spec("GPT-4")

    def test_load_state_dict_caches(self, small_corpus, tmp_path):
        spec = LLAMA_FAMILY[0]
        fast_training = TrainingConfig(steps=5, batch_size=2, seq_len=24, eval_every=0)
        config, state = load_state_dict(spec, corpus=small_corpus, cache_dir=tmp_path,
                                        training=fast_training)
        assert config.vocab_size == small_corpus.vocab_size
        cache_files = list(tmp_path.glob("*.npz"))
        assert len(cache_files) == 1
        # Second load must reuse the cache and produce identical outlier-injected weights.
        _, state2 = load_state_dict(spec, corpus=small_corpus, cache_dir=tmp_path,
                                    training=fast_training)
        assert all(np.array_equal(state[k], state2[k]) for k in state)

    def test_load_inference_model(self, small_corpus, tmp_path):
        spec = OPT_FAMILY[0]
        fast_training = TrainingConfig(steps=5, batch_size=2, seq_len=24, eval_every=0)
        model = load_inference_model(spec, corpus=small_corpus, cache_dir=tmp_path,
                                     training=fast_training)
        assert isinstance(model, InferenceModel)
        assert model.config.arch == "opt"
