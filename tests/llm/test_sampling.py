"""The shared log-softmax helper and the next-token sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm.activations import log_softmax, softmax
from repro.llm.sampling import sample_token


class TestLogSoftmax:
    def test_matches_hand_computed_reference_values(self):
        # log_softmax([0, 1, 2]) = x - log(1 + e + e^2); constants computed by
        # hand so a regression cannot hide behind the implementation itself
        out = log_softmax(np.array([0.0, 1.0, 2.0]))
        expected = np.array([-2.4076059644443806, -1.4076059644443806, -0.4076059644443804])
        np.testing.assert_allclose(out, expected, rtol=0, atol=1e-15)

    def test_uniform_logits_give_log_of_one_over_n(self):
        out = log_softmax(np.full(8, 3.5))
        np.testing.assert_allclose(out, np.full(8, -np.log(8.0)), atol=1e-15)

    def test_stable_for_huge_logits(self):
        out = log_softmax(np.array([1e9, 1e9 - 1.0]))
        assert np.all(np.isfinite(out))
        expected = np.array([-0.3132616875182228, -1.3132616875182228])  # -log(1+e^-1), -1-log(1+e^-1)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_masked_minus_inf_entries_stay_minus_inf(self):
        out = log_softmax(np.array([0.0, -np.inf, 0.0]))
        assert out[1] == -np.inf
        np.testing.assert_allclose(out[[0, 2]], np.log([0.5, 0.5]), atol=1e-15)

    def test_exp_recovers_softmax_along_any_axis(self, rng):
        x = rng.standard_normal((4, 5, 6)) * 10
        for axis in (-1, 0, 1):
            np.testing.assert_allclose(np.exp(log_softmax(x, axis=axis)),
                                       softmax(x, axis=axis), atol=1e-14)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal(32)
        np.testing.assert_allclose(log_softmax(x), log_softmax(x + 1234.5), atol=1e-10)


class TestSampleToken:
    def test_greedy_is_argmax(self):
        logits = np.array([0.1, 2.0, -1.0, 1.9])
        assert sample_token(logits) == 1

    def test_greedy_needs_no_rng(self):
        assert sample_token(np.array([0.0, 1.0])) == 1

    def test_sampling_without_rng_raises(self):
        with pytest.raises(ValueError, match="rng"):
            sample_token(np.array([0.0, 1.0]), temperature=1.0)

    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError, match="temperature"):
            sample_token(np.array([0.0, 1.0]), temperature=-0.5)

    def test_top_k_restricts_the_support(self):
        logits = np.array([10.0, 9.0, -50.0, -60.0])
        rng = np.random.default_rng(0)
        draws = {sample_token(logits, temperature=5.0, top_k=2, rng=rng) for _ in range(200)}
        assert draws <= {0, 1}
        assert len(draws) == 2  # high temperature: both survivors get sampled

    def test_seeded_sampling_is_reproducible(self):
        logits = np.linspace(-1, 1, 16)
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        first = [sample_token(logits, temperature=1.0, rng=rng_a) for _ in range(8)]
        second = [sample_token(logits, temperature=1.0, rng=rng_b) for _ in range(8)]
        assert first == second
        assert len(set(first)) > 1  # a real draw sequence, not a constant
