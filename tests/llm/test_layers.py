"""Tests for the trainable module system and layers."""

import numpy as np
import pytest

from repro.llm.autograd import Tensor
from repro.llm.layers import Embedding, LayerNorm, Linear, Module, ModuleList, RMSNorm


class TestModuleSystem:
    def test_named_parameters_recurse(self):
        class Block(Module):
            def __init__(self):
                self.linear = Linear(4, 4, rng=np.random.default_rng(0))
                self.norm = RMSNorm(4)

        class Net(Module):
            def __init__(self):
                self.blocks = ModuleList(Block() for _ in range(2))
                self.head = Linear(4, 2, rng=np.random.default_rng(1))

        net = Net()
        names = dict(net.named_parameters())
        assert "blocks.0.linear.weight" in names
        assert "blocks.1.norm.gain" in names
        assert "head.bias" in names

    def test_num_parameters(self):
        linear = Linear(4, 3, rng=np.random.default_rng(0))
        assert linear.num_parameters() == 4 * 3 + 3

    def test_state_dict_roundtrip(self):
        a = Linear(4, 3, rng=np.random.default_rng(0))
        b = Linear(4, 3, rng=np.random.default_rng(1))
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_rejects_mismatch(self):
        a = Linear(4, 3, rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": a.weight.data})
        bad = a.state_dict()
        bad["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            a.load_state_dict(bad)

    def test_zero_grad(self):
        linear = Linear(3, 3, rng=np.random.default_rng(0))
        out = linear(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert linear.weight.grad is not None
        linear.zero_grad()
        assert linear.weight.grad is None


class TestLayers:
    def test_linear_matches_numpy(self, rng):
        linear = Linear(5, 3, rng=np.random.default_rng(0))
        x = rng.standard_normal((2, 5))
        out = linear(Tensor(x))
        assert np.allclose(out.data, x @ linear.weight.data + linear.bias.data)

    def test_linear_without_bias(self, rng):
        linear = Linear(5, 3, bias=False, rng=np.random.default_rng(0))
        assert linear.bias is None
        assert linear(Tensor(rng.standard_normal((2, 5)))).shape == (2, 3)

    def test_embedding_lookup(self):
        emb = Embedding(7, 3, rng=np.random.default_rng(0))
        out = emb(np.array([0, 6, 2]))
        assert out.shape == (3, 3)

    def test_layernorm_output_statistics(self, rng):
        norm = LayerNorm(16)
        x = rng.standard_normal((4, 16)) * 5 + 2
        out = norm(Tensor(x)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_rmsnorm_scale_invariance_direction(self, rng):
        norm = RMSNorm(8)
        x = rng.standard_normal((3, 8))
        out1 = norm(Tensor(x)).data
        out2 = norm(Tensor(x * 10)).data
        assert np.allclose(out1, out2, atol=1e-3)

    def test_norm_gain_scales_output(self, rng):
        norm = RMSNorm(8)
        x = rng.standard_normal((2, 8))
        base = norm(Tensor(x)).data.copy()
        norm.gain.data = norm.gain.data * 2.0
        assert np.allclose(norm(Tensor(x)).data, base * 2.0)
