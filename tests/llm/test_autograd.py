"""Tests for the reverse-mode autodiff engine, including numeric gradient checks."""

import numpy as np
import pytest

from repro.llm.autograd import Parameter, Tensor, embedding_lookup, no_grad, softmax_cross_entropy


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function of an array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss, shape, rng, atol=1e-5):
    """Compare autodiff gradients with numeric gradients for one input tensor."""
    x0 = rng.standard_normal(shape)
    param = Parameter(x0.copy())
    loss = build_loss(param)
    loss.backward()
    numeric = numeric_gradient(lambda arr: float(build_loss(Tensor(arr)).data), x0.copy())
    assert np.allclose(param.grad, numeric, atol=atol), (
        f"max diff {np.max(np.abs(param.grad - numeric))}"
    )


class TestBasicOps:
    def test_add_mul_forward(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        assert np.allclose((a + b * 2.0).data, [7.0, 10.0])

    def test_backward_requires_scalar(self):
        p = Parameter(np.ones(3))
        with pytest.raises(ValueError):
            (p * 2.0).backward()

    def test_grad_accumulates_over_reuse(self):
        p = Parameter(np.array([2.0]))
        loss = (p * p).sum()  # d/dp p^2 = 2p
        loss.backward()
        assert p.grad[0] == pytest.approx(4.0)

    def test_no_grad_blocks_graph(self):
        p = Parameter(np.ones(4))
        with no_grad():
            out = (p * 3.0).sum()
        assert out._backward is None
        out2 = (p * 3.0).sum()
        out2.backward()
        assert p.grad is not None

    def test_detach(self):
        p = Parameter(np.ones(4))
        d = p.detach()
        assert not d.requires_grad
        assert d.data is p.data


class TestGradients:
    def test_add_broadcast(self, rng):
        bias = rng.standard_normal(4)
        check_gradient(lambda p: (p + Tensor(bias)).sum(), (3, 4), rng)

    def test_mul_broadcast_gradient_for_small_operand(self, rng):
        big = rng.standard_normal((3, 4))
        check_gradient(lambda p: (Tensor(big) * p).sum(), (4,), rng)

    def test_matmul(self, rng):
        w = rng.standard_normal((4, 5))
        check_gradient(lambda p: (p @ Tensor(w)).sum(), (3, 4), rng)

    def test_batched_matmul(self, rng):
        other = rng.standard_normal((2, 5, 3))
        check_gradient(lambda p: (p @ Tensor(other)).sum(), (2, 4, 5), rng)

    def test_power_and_div(self, rng):
        check_gradient(lambda p: ((p * p + 1.0) ** -0.5).sum(), (6,), rng)

    def test_exp_log(self, rng):
        check_gradient(lambda p: ((p * 0.3).exp() + 2.0).log().sum(), (5,), rng)

    def test_tanh_sigmoid_relu(self, rng):
        check_gradient(lambda p: p.tanh().sum(), (7,), rng)
        check_gradient(lambda p: p.sigmoid().sum(), (7,), rng)

    def test_silu_gelu(self, rng):
        check_gradient(lambda p: p.silu().sum(), (9,), rng)
        check_gradient(lambda p: p.gelu().sum(), (9,), rng, atol=1e-4)

    def test_sum_axis_keepdims(self, rng):
        check_gradient(lambda p: (p.sum(axis=1, keepdims=True) * 2.0).sum(), (3, 4), rng)

    def test_mean(self, rng):
        check_gradient(lambda p: p.mean(axis=-1).sum(), (3, 4), rng)

    def test_reshape_transpose(self, rng):
        check_gradient(lambda p: (p.reshape(2, 6).transpose(1, 0) * 3.0).sum(), (3, 4), rng)

    def test_swapaxes(self, rng):
        check_gradient(lambda p: p.swapaxes(0, 1).sum(), (2, 3), rng)

    def test_composite_softmax_like_expression(self, rng):
        def loss(p):
            shifted = p - Tensor(p.data.max(axis=-1, keepdims=True))
            exps = shifted.exp()
            probs = exps * exps.sum(axis=-1, keepdims=True) ** -1.0
            return (probs * probs).sum()

        check_gradient(loss, (3, 5), rng)


class TestEmbeddingAndCrossEntropy:
    def test_embedding_forward(self, rng):
        table = Parameter(rng.standard_normal((10, 4)))
        out = embedding_lookup(table, np.array([[1, 2], [3, 1]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[0, 0], table.data[1])

    def test_embedding_gradient_accumulates_repeats(self, rng):
        table = Parameter(rng.standard_normal((6, 3)))
        out = embedding_lookup(table, np.array([2, 2, 4]))
        out.sum().backward()
        assert np.allclose(table.grad[2], 2.0)
        assert np.allclose(table.grad[4], 1.0)
        assert np.allclose(table.grad[0], 0.0)

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.standard_normal((2, 3, 5))
        targets = rng.integers(0, 5, size=(2, 3))
        loss = softmax_cross_entropy(Tensor(logits), targets)
        probs = np.exp(logits - logits.max(-1, keepdims=True))
        probs /= probs.sum(-1, keepdims=True)
        expected = -np.mean(np.log(probs[np.arange(2)[:, None], np.arange(3)[None, :], targets]))
        assert float(loss.data) == pytest.approx(expected)

    def test_cross_entropy_gradient(self, rng):
        targets = rng.integers(0, 4, size=(6,))
        check_gradient(lambda p: softmax_cross_entropy(p, targets), (6, 4), rng)

    def test_cross_entropy_decreases_when_correct_logit_grows(self, rng):
        logits = np.zeros((1, 4))
        base = float(softmax_cross_entropy(Tensor(logits), np.array([2])).data)
        logits[0, 2] = 3.0
        better = float(softmax_cross_entropy(Tensor(logits), np.array([2])).data)
        assert better < base
