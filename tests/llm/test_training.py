"""Tests for the Adam optimiser and the training loop."""

import numpy as np
import pytest

from repro.llm.autograd import Parameter
from repro.llm.training import Adam, TrainingConfig, evaluate_loss, train_model
from repro.llm.transformer import TransformerLM


class TestAdam:
    def test_minimises_quadratic(self):
        target = np.array([3.0, -2.0])
        p = Parameter(np.zeros(2))
        optimiser = Adam([p], lr=0.1)
        for _ in range(300):
            optimiser.zero_grad()
            loss = ((p - target) * (p - target)).sum()
            loss.backward()
            optimiser.step()
        assert np.allclose(p.data, target, atol=1e-2)

    def test_gradient_clipping(self):
        p = Parameter(np.zeros(4))
        optimiser = Adam([p], lr=0.1, grad_clip=1.0)
        p.grad = np.full(4, 100.0)
        optimiser._clip_gradients()
        assert np.linalg.norm(p.grad) <= 1.0 + 1e-9

    def test_weight_decay_shrinks_parameters(self):
        p = Parameter(np.full(3, 5.0))
        optimiser = Adam([p], lr=0.05, weight_decay=0.5)
        for _ in range(50):
            optimiser.zero_grad()
            p.grad = np.zeros(3)
            optimiser.step()
        assert np.all(np.abs(p.data) < 5.0)

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.ones(2))
        optimiser = Adam([p], lr=0.1)
        optimiser.step()  # no gradient -> no change, no crash
        assert np.allclose(p.data, 1.0)


class TestTrainModel:
    def test_training_reduces_loss(self, tiny_model_config, small_corpus, tiny_training_result):
        result = tiny_training_result
        first = np.mean(result.train_losses[:10])
        last = np.mean(result.train_losses[-10:])
        assert last < first
        assert last < np.log(small_corpus.vocab_size)  # better than uniform

    def test_result_contains_state_dict(self, tiny_training_result, tiny_model_config):
        model = TransformerLM(tiny_model_config)
        model.load_state_dict(tiny_training_result.state_dict)  # should not raise

    def test_valid_loss_recorded(self, tiny_training_result):
        assert len(tiny_training_result.valid_losses) >= 1
        assert np.isfinite(tiny_training_result.final_valid_loss)

    def test_vocab_mismatch_rejected(self, small_corpus, tiny_model_config):
        from repro.llm.config import ModelConfig

        bad = ModelConfig(name="bad", vocab_size=small_corpus.vocab_size + 1, d_model=32,
                          n_heads=4, n_layers=1, d_ff=32, max_seq_len=32)
        with pytest.raises(ValueError):
            train_model(bad, small_corpus, TrainingConfig(steps=1))

    def test_evaluate_loss_deterministic(self, tiny_model_config, tiny_training_result,
                                         small_corpus):
        model = TransformerLM(tiny_model_config)
        model.load_state_dict(tiny_training_result.state_dict)
        a = evaluate_loss(model, small_corpus, batch_size=2, seq_len=24, max_batches=2)
        b = evaluate_loss(model, small_corpus, batch_size=2, seq_len=24, max_batches=2)
        assert a == pytest.approx(b)
