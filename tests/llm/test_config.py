"""Tests for the model configuration."""

import pytest

from repro.llm.config import ModelConfig


def _make(**kwargs):
    defaults = dict(name="m", vocab_size=50, d_model=32, n_heads=4, n_layers=2, d_ff=64)
    defaults.update(kwargs)
    return ModelConfig(**defaults)


class TestModelConfig:
    def test_llama_defaults(self):
        config = _make(arch="llama")
        assert config.norm == "rmsnorm"
        assert config.activation == "silu"
        assert config.use_bias is False
        assert config.uses_gated_mlp

    def test_opt_defaults(self):
        config = _make(arch="opt")
        assert config.norm == "layernorm"
        assert config.activation == "gelu"
        assert config.use_bias is True
        assert not config.uses_gated_mlp

    def test_head_dim(self):
        assert _make(d_model=48, n_heads=4).head_dim == 12

    def test_invalid_arch(self):
        with pytest.raises(ValueError):
            _make(arch="gpt")

    def test_invalid_head_split(self):
        with pytest.raises(ValueError):
            _make(d_model=30, n_heads=4)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            _make(n_layers=0)

    def test_parameter_count_grows_with_width(self):
        assert _make(d_model=64, n_heads=4).parameter_count() > _make().parameter_count()

    def test_gated_mlp_has_more_parameters(self):
        llama = _make(arch="llama").parameter_count()
        opt = _make(arch="opt").parameter_count()
        assert llama > opt

    def test_as_dict(self):
        payload = _make().as_dict()
        assert payload["d_model"] == 32 and payload["arch"] == "llama"
