"""Tests for the tokenizer and the synthetic corpus."""

import numpy as np
import pytest

from repro.llm.dataset import CorpusConfig, SyntheticCorpus, generate_text
from repro.llm.tokenizer import CharTokenizer


class TestTokenizer:
    def test_roundtrip(self):
        tok = CharTokenizer("hello world")
        assert tok.decode(tok.encode("hello world")) == "hello world"

    def test_unknown_maps_to_zero(self):
        tok = CharTokenizer("abc")
        assert tok.encode("z")[0] == 0

    def test_vocab_size_includes_unk(self):
        tok = CharTokenizer("ab")
        assert tok.vocab_size == 3
        assert len(tok) == 3

    def test_decode_out_of_range(self):
        tok = CharTokenizer("ab")
        with pytest.raises(ValueError):
            tok.decode([99])


class TestCorpus:
    def test_deterministic_generation(self):
        a = generate_text(CorpusConfig(num_sentences=50, seed=5))
        b = generate_text(CorpusConfig(num_sentences=50, seed=5))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_text(CorpusConfig(num_sentences=50, seed=5))
        b = generate_text(CorpusConfig(num_sentences=50, seed=6))
        assert a != b

    def test_train_valid_split(self, small_corpus):
        total = len(small_corpus.train_tokens) + len(small_corpus.valid_tokens)
        ratio = len(small_corpus.valid_tokens) / total
        assert 0.05 < ratio < 0.15

    def test_sample_batch_shape(self, small_corpus, rng):
        batch = small_corpus.sample_batch("train", batch_size=4, seq_len=16, rng=rng)
        assert batch.shape == (4, 17)
        assert batch.max() < small_corpus.vocab_size

    def test_sample_batch_invalid_split(self, small_corpus):
        with pytest.raises(ValueError):
            small_corpus.sample_batch("test", 2, 8)

    def test_sequential_batches_deterministic(self, small_corpus):
        first = list(small_corpus.sequential_batches("valid", 2, 16, max_batches=3))
        second = list(small_corpus.sequential_batches("valid", 2, 16, max_batches=3))
        assert len(first) == 3
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_sequential_batches_non_overlapping(self, small_corpus):
        batches = list(small_corpus.sequential_batches("valid", 1, 16, max_batches=2))
        assert not np.array_equal(batches[0], batches[1])

    def test_zipfian_structure(self, small_corpus):
        """A few characters should dominate the corpus (Zipf-like frequencies)."""
        counts = np.bincount(small_corpus.train_tokens)
        top_share = np.sort(counts)[::-1][:5].sum() / counts.sum()
        assert top_share > 0.3

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CorpusConfig(valid_fraction=1.5)
        with pytest.raises(ValueError):
            CorpusConfig(vocabulary_size=2)
