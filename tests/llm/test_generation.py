"""Tests for auto-regressive generation (repro.llm.generation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig
from repro.llm.generation import (
    GenerationConfig,
    generate_text,
    generate_tokens,
    sequence_log_likelihood,
)
from repro.llm.inference import QuantizationScheme


class TestGenerationConfig:
    def test_defaults_are_greedy(self):
        config = GenerationConfig()
        assert config.temperature == 0.0
        assert config.top_k == 0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            GenerationConfig(max_new_tokens=-1)
        with pytest.raises(ValueError):
            GenerationConfig(temperature=-0.1)
        with pytest.raises(ValueError):
            GenerationConfig(top_k=-2)


class TestGenerateTokens:
    def test_output_contains_prompt_plus_new_tokens(self, tiny_inference_model):
        prompt = np.array([1, 2, 3, 4], dtype=np.int64)
        out = generate_tokens(tiny_inference_model, prompt, GenerationConfig(max_new_tokens=8))
        assert out.shape == (12,)
        np.testing.assert_array_equal(out[:4], prompt)

    def test_all_tokens_within_vocabulary(self, tiny_inference_model):
        out = generate_tokens(tiny_inference_model, [1, 2], GenerationConfig(max_new_tokens=16))
        assert out.min() >= 0
        assert out.max() < tiny_inference_model.config.vocab_size

    def test_greedy_decoding_is_deterministic(self, tiny_inference_model):
        config = GenerationConfig(max_new_tokens=10)
        first = generate_tokens(tiny_inference_model, [3, 5, 7], config)
        second = generate_tokens(tiny_inference_model, [3, 5, 7], config)
        np.testing.assert_array_equal(first, second)

    def test_sampling_is_seed_reproducible(self, tiny_inference_model):
        config = GenerationConfig(max_new_tokens=10, temperature=1.0, top_k=8, seed=42)
        first = generate_tokens(tiny_inference_model, [3, 5, 7], config)
        second = generate_tokens(tiny_inference_model, [3, 5, 7], config)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_usually_differ(self, tiny_inference_model):
        prompt = [3, 5, 7]
        a = generate_tokens(tiny_inference_model, prompt,
                            GenerationConfig(max_new_tokens=20, temperature=1.5, seed=1))
        b = generate_tokens(tiny_inference_model, prompt,
                            GenerationConfig(max_new_tokens=20, temperature=1.5, seed=2))
        assert not np.array_equal(a, b)

    def test_generation_can_exceed_max_seq_len(self, tiny_inference_model):
        max_len = tiny_inference_model.config.max_seq_len
        out = generate_tokens(tiny_inference_model, [1, 2, 3],
                              GenerationConfig(max_new_tokens=max_len + 10))
        assert out.size == 3 + max_len + 10

    def test_zero_new_tokens_returns_prompt(self, tiny_inference_model):
        prompt = np.array([4, 4, 4])
        out = generate_tokens(tiny_inference_model, prompt, GenerationConfig(max_new_tokens=0))
        np.testing.assert_array_equal(out, prompt)

    def test_invalid_prompt_rejected(self, tiny_inference_model):
        with pytest.raises(ValueError, match="at least one token"):
            generate_tokens(tiny_inference_model, [])
        with pytest.raises(ValueError, match="vocabulary"):
            generate_tokens(tiny_inference_model, [10_000])

    def test_quantised_scheme_changes_generation_but_stays_valid(self, tiny_inference_model):
        config = GenerationConfig(max_new_tokens=12)
        reference = generate_tokens(tiny_inference_model, [1, 2, 3], config)
        tiny_inference_model.set_scheme(QuantizationScheme.from_format(BBFPConfig(3, 1)))
        quantised = generate_tokens(tiny_inference_model, [1, 2, 3], config)
        tiny_inference_model.set_scheme(QuantizationScheme.fp_reference())
        assert quantised.min() >= 0
        assert quantised.max() < tiny_inference_model.config.vocab_size
        assert quantised.shape == reference.shape


class TestGenerateText:
    def test_continuation_starts_with_prompt(self, tiny_inference_model, small_corpus):
        # Use a prompt made of characters the corpus tokenizer actually knows,
        # so encode/decode round-trips exactly.
        prompt = small_corpus.tokenizer.decode(small_corpus.valid_tokens[:12])
        text = generate_text(tiny_inference_model, small_corpus, prompt,
                             GenerationConfig(max_new_tokens=20))
        assert text.startswith(prompt)
        assert len(text) == len(prompt) + 20


class TestSequenceLogLikelihood:
    def test_loglikelihood_is_finite_and_negative(self, tiny_inference_model, small_corpus):
        tokens = small_corpus.valid_tokens[:40]
        score = sequence_log_likelihood(tiny_inference_model, tokens)
        assert np.isfinite(score)
        assert score < 0

    def test_reference_scores_its_own_greedy_output_at_least_as_well_as_noise(
        self, tiny_inference_model, rng
    ):
        generated = generate_tokens(tiny_inference_model, [1, 2, 3],
                                    GenerationConfig(max_new_tokens=24))
        noise = rng.integers(0, tiny_inference_model.config.vocab_size, size=generated.size)
        assert sequence_log_likelihood(tiny_inference_model, generated) > \
            sequence_log_likelihood(tiny_inference_model, noise)

    def test_too_short_sequence_rejected(self, tiny_inference_model):
        with pytest.raises(ValueError, match="two tokens"):
            sequence_log_likelihood(tiny_inference_model, [1])
