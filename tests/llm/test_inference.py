"""Tests for the quantisation-aware inference path."""

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.core.integer import IntQuantConfig
from repro.llm.inference import InferenceModel, QuantizationScheme
from repro.llm.transformer import TransformerLM


class TestSchemeFactories:
    def test_fp_reference_is_identity(self, rng):
        scheme = QuantizationScheme.fp_reference()
        x = rng.standard_normal((3, 4))
        assert np.array_equal(scheme.weight_fn("any", x), x)
        assert np.array_equal(scheme.activation_fn("any", x), x)

    def test_fp16_rounds(self):
        scheme = QuantizationScheme.fp16()
        x = np.array([1.0 + 2**-13])
        assert scheme.weight_fn("w", x)[0] != x[0]

    @pytest.mark.parametrize("config", [BBFPConfig(4, 2), BFPConfig(6), IntQuantConfig(8)])
    def test_from_format_names(self, config):
        assert QuantizationScheme.from_format(config).name == config.name

    def test_from_format_accepts_spec_strings(self):
        scheme = QuantizationScheme.from_format("int8")
        assert scheme.name == "INT8"

    def test_from_format_rejects_unknown(self):
        from repro.quant import UnknownFormatError

        # Bad spec strings keep the registry's rich error (did-you-mean);
        # unregistered objects without a quantize_dequantize hook are a
        # TypeError as before.
        with pytest.raises(UnknownFormatError, match="unknown format"):
            QuantizationScheme.from_format("FANCY13")
        with pytest.raises(TypeError):
            QuantizationScheme.from_format(object())

    def test_with_nonlinear_override(self):
        calls = []

        def softmax_stub(x, axis=-1):
            calls.append(x.shape)
            exps = np.exp(x - x.max(axis=axis, keepdims=True))
            return exps / exps.sum(axis=axis, keepdims=True)

        scheme = QuantizationScheme.fp_reference().with_nonlinear(softmax_fn=softmax_stub)
        assert scheme.softmax_fn is softmax_stub


class TestInferenceModel:
    def test_matches_training_model_logits(self, tiny_model_config, tiny_training_result, rng):
        """The numpy inference path must reproduce the autograd forward exactly (FP reference)."""
        train_model = TransformerLM(tiny_model_config)
        train_model.load_state_dict(tiny_training_result.state_dict)
        infer_model = InferenceModel(tiny_model_config, tiny_training_result.state_dict)
        tokens = rng.integers(0, tiny_model_config.vocab_size, size=(2, 12))
        assert np.allclose(train_model.forward(tokens).data, infer_model.forward(tokens),
                           atol=1e-8)

    def test_outlier_injection_preserves_logits(self, tiny_model_config, tiny_training_result,
                                                tiny_state_dict, rng):
        plain = InferenceModel(tiny_model_config, tiny_training_result.state_dict)
        injected = InferenceModel(tiny_model_config, tiny_state_dict)
        tokens = rng.integers(0, tiny_model_config.vocab_size, size=(1, 16))
        assert np.allclose(plain.forward(tokens), injected.forward(tokens), atol=1e-6)

    def test_missing_state_rejected(self, tiny_model_config):
        with pytest.raises(KeyError):
            InferenceModel(tiny_model_config, {"token_embedding.weight": np.zeros((5, 4))})

    def test_sequence_length_guard(self, tiny_inference_model, rng):
        tokens = rng.integers(0, 10, size=(1, tiny_inference_model.config.max_seq_len + 1))
        with pytest.raises(ValueError):
            tiny_inference_model.forward(tokens)

    def test_quantised_scheme_changes_logits(self, tiny_inference_model, rng):
        tokens = rng.integers(0, tiny_inference_model.config.vocab_size, size=(1, 12))
        reference = tiny_inference_model.forward(tokens).copy()
        tiny_inference_model.set_scheme(QuantizationScheme.from_format(BFPConfig(4)))
        quantised = tiny_inference_model.forward(tokens)
        assert not np.allclose(reference, quantised)

    def test_weight_cache_cleared_on_scheme_change(self, tiny_inference_model, rng):
        tokens = rng.integers(0, tiny_inference_model.config.vocab_size, size=(1, 8))
        tiny_inference_model.set_scheme(QuantizationScheme.from_format(BFPConfig(4)))
        tiny_inference_model.forward(tokens)
        assert tiny_inference_model._weight_cache
        tiny_inference_model.set_scheme(QuantizationScheme.fp_reference())
        assert not tiny_inference_model._weight_cache

    def test_nll_reasonable(self, tiny_inference_model, small_corpus):
        batch = next(small_corpus.sequential_batches("valid", 2, 24, max_batches=1))
        nll = tiny_inference_model.negative_log_likelihood(batch)
        assert 0 < nll < np.log(small_corpus.vocab_size) + 0.5

    def test_record_activations(self, tiny_inference_model, rng):
        tokens = rng.integers(0, tiny_inference_model.config.vocab_size, size=(1, 8))
        with tiny_inference_model.record_activations(("q_proj", "gate_proj")) as records:
            tiny_inference_model.forward(tokens)
        assert any(name.endswith("q_proj") for name in records)
        assert any(name.endswith("gate_proj") for name in records)
        sample = next(iter(records.values()))[0]
        assert sample.shape[-1] == tiny_inference_model.config.d_model

    def test_recorder_detached_after_context(self, tiny_inference_model):
        with tiny_inference_model.record_activations():
            pass
        assert tiny_inference_model._recorder is None

    def test_nonlinear_fn_dispatch(self, tiny_inference_model, rng):
        seen = []

        def spy(kind, x):
            seen.append(kind)
            return np.maximum(x, 0.0)

        tiny_inference_model.set_scheme(
            QuantizationScheme.fp_reference().with_nonlinear(nonlinear_fn=spy)
        )
        tokens = rng.integers(0, tiny_inference_model.config.vocab_size, size=(1, 8))
        tiny_inference_model.forward(tokens)
        assert "silu" in seen  # llama-style MLP uses SiLU
