"""Smoke tests of the extension experiment drivers (repro.experiments.extensions)."""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.experiments import extensions
from repro.experiments.runner import EXPERIMENTS


class TestRegistry:
    def test_extension_drivers_are_registered(self):
        for name in ("ext_rounding", "ext_multiplier", "ext_format_family",
                     "ext_format_ppl", "ext_roofline", "ext_dataflow",
                     "ext_generation", "ext_mixed_precision"):
            assert name in EXPERIMENTS


class TestCheapExtensionDrivers:
    def test_rounding_mode_ablation(self):
        result = extensions.rounding_mode_ablation()
        assert isinstance(result, ExperimentResult)
        assert {row["format"] for row in result.rows} == {"BFP4", "BBFP(4,2)", "BBFP(6,3)"}
        for row in result.rows:
            assert row["nearest_relative_mse"] <= row["truncate_relative_mse"]

    def test_multiplier_architecture_ablation(self):
        result = extensions.multiplier_architecture_ablation()
        architectures = {row["architecture"] for row in result.rows}
        assert architectures == {"array", "booth-r4", "wallace"}
        assert all(np.isfinite(row["area_delay_product"]) for row in result.rows)

    def test_format_family_ablation_covers_all_families(self):
        result = extensions.format_family_ablation()
        formats = {row["format"] for row in result.rows}
        assert {"BFP4", "BBFP(4,2)", "BiE4(k=2)", "MXFP8", "INT4"} <= formats
        for row in result.rows:
            assert row["relative_mse"] > 0
            assert row["equivalent_bits"] > 0

    def test_roofline_extension_has_both_phases(self):
        result = extensions.roofline_extension()
        phases = {row["phase"] for row in result.rows}
        assert phases == {"prefill", "decode"}

    def test_generation_extension_iso_area_pe_counts_differ(self):
        result = extensions.generation_latency_extension(fast=True)
        pe_counts = {row["strategy"]: row["iso_area_pes"] for row in result.rows}
        assert pe_counts["BBFP(3,1)"] > pe_counts["BFP6"]
        for row in result.rows:
            assert row["tokens_per_second"] > 0
