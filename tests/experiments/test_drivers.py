"""Smoke tests of the experiment drivers (cheap drivers run fully; model-backed ones are patched)."""

import pytest

from repro.analysis.reporting import ExperimentResult
from repro.experiments import (
    ablations,
    fig1_distribution,
    fig1_runtime,
    fig3_shared_exponent,
    table1_mac,
    table3_pe_area,
    table5_nonlinear_eff,
)
from repro.experiments.common import (
    FIG8_STRATEGIES,
    TABLE2_LINEAR_FORMATS,
    eval_config,
    is_fast_mode,
    table2_model_specs,
    table4_model_specs,
)
from repro.experiments.runner import EXPERIMENTS, run_all


class TestCommon:
    def test_fast_mode_flag(self):
        assert is_fast_mode(True) is True
        assert is_fast_mode(False) is False

    def test_eval_config_smaller_in_fast_mode(self):
        assert eval_config(True).max_batches < eval_config(False).max_batches

    def test_model_subsets(self):
        assert len(table2_model_specs(fast=True)) == 4
        assert len(table2_model_specs(fast=False)) == 12
        assert len(table4_model_specs(fast=True)) == 1
        assert len(table4_model_specs(fast=False)) == 3

    def test_format_lists(self):
        assert len(TABLE2_LINEAR_FORMATS) == 7
        assert len(FIG8_STRATEGIES) == 11


class TestCheapDrivers:
    def test_table1(self):
        result = table1_mac.run()
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 6
        names = [row["datatype"] for row in result.rows]
        assert names[0] == "FP16" and "BBFP(6,3)" in names

    def test_table3(self):
        result = table3_pe_area.run()
        assert len(result.rows) == 11
        bbfp63 = next(r for r in result.rows if r["strategy"] == "BBFP(6,3)")
        assert bbfp63["normalised_area"] == pytest.approx(1.0)
        assert all(r["paper_normalised"] is not None for r in result.rows)

    def test_table5(self):
        result = table5_nonlinear_eff.run(vector_length=256)
        assert len(result.rows) == 3
        ours = next(r for r in result.rows if "ours" in r["design"])
        assert ours["efficiency"] > 0

    def test_fig1b_shares_grow(self):
        result = fig1_runtime.run(seq_lengths=(128, 512, 1024))
        shares = [row["nonlinear_share_fp32"] for row in result.rows]
        assert shares == sorted(shares)
        assert all(row["nonlinear_share_bbal"] < row["nonlinear_share_fp32"]
                   for row in result.rows)

    def test_ablation_drivers(self):
        assert len(ablations.carry_chain_ablation().rows) == 4
        block_rows = ablations.block_size_ablation(block_sizes=(16, 32)).rows
        assert len(block_rows) == 2
        assert all(r["bbfp_relative_mse"] <= r["bfp_relative_mse"] for r in block_rows)
        lut_rows = ablations.lut_address_ablation(address_bits=(5, 7)).rows
        assert lut_rows[0]["mean_kl_divergence"] > lut_rows[1]["mean_kl_divergence"]


class TestModelBackedDrivers:
    """Drivers needing a trained checkpoint run against the tiny session model."""

    @pytest.fixture(autouse=True)
    def _patch_zoo(self, monkeypatch, tiny_inference_model, small_corpus):
        def fake_load(*args, **kwargs):
            scheme = kwargs.get("scheme")
            if scheme is not None:
                tiny_inference_model.set_scheme(scheme)
            return tiny_inference_model

        for module in (fig1_distribution, fig3_shared_exponent):
            monkeypatch.setattr(module, "load_inference_model", fake_load)
            monkeypatch.setattr(module, "default_corpus", lambda *a, **k: small_corpus)

    def test_fig1a(self):
        result = fig1_distribution.run(model_name="patched")
        assert {row["name"] for row in result.rows} == {"weight", "activation"}
        assert "activation_histogram_counts" in result.metadata

    def test_fig3(self):
        result = fig3_shared_exponent.run(model_name="patched")
        average = next(row for row in result.rows if row["layer"] == "Avg.")
        assert average["Max-2"] < average["BFP4"]


class TestRunner:
    def test_registry_covers_all_paper_artifacts(self):
        expected = {"fig1a", "fig1b", "fig3", "fig4", "table1", "table2", "table3", "table4",
                    "table5", "fig8", "fig9"}
        assert expected <= set(EXPERIMENTS)

    def test_run_all_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_all(["table99"], output_dir=None, verbose=False)

    def test_run_all_saves_results(self, tmp_path):
        results = run_all(["table1"], output_dir=tmp_path, verbose=False)
        assert "table1" in results
        assert (tmp_path / "table1.json").exists()
