"""Tests for the GEMM tiling scheduler (repro.accelerator.scheduling)."""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.scheduling import (
    best_tiling,
    candidate_tile_sizes,
    traffic_for_tiling,
)
from repro.accelerator.workloads import MatmulOp
from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig


@pytest.fixture
def bbal_config():
    return AcceleratorConfig(
        strategy=BBFPConfig(4, 2), pe_rows=16, pe_cols=16,
        input_buffer_bytes=16 * 1024, weight_buffer_bytes=32 * 1024,
        output_buffer_bytes=16 * 1024,
    )


class TestCandidateTileSizes:
    def test_powers_of_two_plus_full_dimension(self):
        assert candidate_tile_sizes(12) == [1, 2, 4, 8, 12]
        assert candidate_tile_sizes(8) == [1, 2, 4, 8]
        assert candidate_tile_sizes(1) == [1]

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            candidate_tile_sizes(0)


class TestTrafficModel:
    def test_single_tile_moves_each_tensor_once(self):
        op = MatmulOp("gemm", 64, 64, 64)
        traffic = traffic_for_tiling(op, 64, 64, 64, bits_per_element=8.0)
        expected = (op.input_elements + op.weight_elements + op.output_elements) * 1.0
        assert traffic == pytest.approx(expected)

    def test_narrow_column_tiles_reread_inputs(self):
        op = MatmulOp("gemm", 64, 64, 64)
        one_pass = traffic_for_tiling(op, 64, 64, 64, 8.0)
        four_passes = traffic_for_tiling(op, 64, 64, 16, 8.0)
        assert four_passes > one_pass

    def test_split_reduction_spills_partial_sums(self):
        op = MatmulOp("gemm", 64, 64, 64)
        assert traffic_for_tiling(op, 64, 16, 64, 8.0) > traffic_for_tiling(op, 64, 64, 64, 8.0)

    def test_fewer_bits_move_fewer_bytes(self):
        op = MatmulOp("gemm", 128, 128, 128)
        assert traffic_for_tiling(op, 64, 64, 64, 4.0) < traffic_for_tiling(op, 64, 64, 64, 8.0)


class TestBestTiling:
    def test_tiles_fit_the_buffers(self, bbal_config):
        op = MatmulOp("fc1", 512, 1024, 4096)
        choice = best_tiling(op, bbal_config)
        assert choice.input_buffer_bytes <= bbal_config.input_buffer_bytes / 2
        assert choice.weight_buffer_bytes <= bbal_config.weight_buffer_bytes / 2
        assert choice.output_buffer_bytes <= bbal_config.output_buffer_bytes / 2

    def test_small_gemm_needs_a_single_tile(self, bbal_config):
        op = MatmulOp("tiny", 16, 32, 16)
        choice = best_tiling(op, bbal_config)
        assert choice.tiles == 1
        assert choice.dram_bytes == pytest.approx(
            (op.input_elements + op.weight_elements + op.output_elements)
            * bbal_config.element_bits() / 8.0
        )

    def test_traffic_never_below_compulsory_minimum(self, bbal_config):
        op = MatmulOp("fc2", 256, 4096, 1024)
        choice = best_tiling(op, bbal_config)
        compulsory = (
            op.input_elements + op.weight_elements + op.output_elements
        ) * bbal_config.element_bits() / 8.0
        assert choice.dram_bytes >= compulsory

    def test_larger_buffers_never_increase_traffic(self):
        op = MatmulOp("fc1", 512, 1024, 4096)
        small = AcceleratorConfig(
            strategy=BBFPConfig(4, 2), input_buffer_bytes=8 * 1024,
            weight_buffer_bytes=16 * 1024, output_buffer_bytes=8 * 1024,
        )
        large = AcceleratorConfig(
            strategy=BBFPConfig(4, 2), input_buffer_bytes=64 * 1024,
            weight_buffer_bytes=128 * 1024, output_buffer_bytes=64 * 1024,
        )
        assert best_tiling(op, large).dram_bytes <= best_tiling(op, small).dram_bytes

    def test_denser_format_fits_bigger_tiles(self):
        op = MatmulOp("fc1", 512, 1024, 4096)
        dense = AcceleratorConfig(strategy=BBFPConfig(3, 1), input_buffer_bytes=8 * 1024,
                                  weight_buffer_bytes=16 * 1024, output_buffer_bytes=8 * 1024)
        wide = AcceleratorConfig(strategy=BFPConfig(8), input_buffer_bytes=8 * 1024,
                                 weight_buffer_bytes=16 * 1024, output_buffer_bytes=8 * 1024)
        dense_choice = best_tiling(op, dense)
        wide_choice = best_tiling(op, wide)
        assert dense_choice.tile_k * dense_choice.tile_n >= wide_choice.tile_k * wide_choice.tile_n

    def test_single_buffering_allows_larger_tiles(self, bbal_config):
        op = MatmulOp("fc1", 512, 1024, 4096)
        double = best_tiling(op, bbal_config, double_buffered=True)
        single = best_tiling(op, bbal_config, double_buffered=False)
        assert single.dram_bytes <= double.dram_bytes

    def test_impossible_tiling_raises(self):
        config = AcceleratorConfig(
            strategy=BFPConfig(8), input_buffer_bytes=1, weight_buffer_bytes=1,
            output_buffer_bytes=1,
        )
        with pytest.raises(ValueError, match="no legal tiling"):
            best_tiling(MatmulOp("huge", 1024, 1024, 1024), config)

    def test_as_dict_round_trip(self, bbal_config):
        choice = best_tiling(MatmulOp("fc1", 64, 128, 256), bbal_config)
        row = choice.as_dict()
        assert row["op"] == "fc1"
        assert row["tiles"] == choice.tiles
