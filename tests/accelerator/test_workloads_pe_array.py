"""Tests for workload construction and the PE-array timing model."""

import pytest

from repro.accelerator.pe_array import PEArray, matmul_cycles
from repro.accelerator.workloads import LayerWorkload, MatmulOp, NonlinearOp, decoder_workload
from repro.llm.config import ModelConfig


@pytest.fixture
def llama_dims():
    return ModelConfig(name="llama", vocab_size=1000, d_model=256, n_heads=8, n_layers=4,
                       d_ff=704, max_seq_len=4096, arch="llama")


@pytest.fixture
def opt_dims():
    return ModelConfig(name="opt", vocab_size=1000, d_model=256, n_heads=8, n_layers=4,
                       d_ff=1024, max_seq_len=4096, arch="opt")


class TestOps:
    def test_matmul_counts(self):
        op = MatmulOp("q", 4, 8, 16)
        assert op.macs == 4 * 8 * 16
        assert op.input_elements == 32
        assert op.weight_elements == 128
        assert op.output_elements == 64

    def test_matmul_validation(self):
        with pytest.raises(ValueError):
            MatmulOp("bad", 0, 8, 8)

    def test_nonlinear_validation(self):
        with pytest.raises(ValueError):
            NonlinearOp("s", "softplus", 1, 8)
        with pytest.raises(ValueError):
            NonlinearOp("s", "softmax", 0, 8)

    def test_nonlinear_elements(self):
        assert NonlinearOp("s", "softmax", 4, 128).elements == 512


class TestDecoderWorkload:
    def test_llama_has_gate_up_down_and_silu(self, llama_dims):
        workload = decoder_workload(llama_dims, 128, phase="prefill")
        names = [op.name for op in workload.matmuls]
        assert {"query", "key", "value", "out_proj", "gate", "up", "down"} <= set(names)
        assert any(op.kind == "silu" for op in workload.nonlinears)
        assert workload.repeat == llama_dims.n_layers

    def test_opt_has_fc1_fc2_and_gelu(self, opt_dims):
        workload = decoder_workload(opt_dims, 128, phase="prefill")
        names = [op.name for op in workload.matmuls]
        assert {"fc1", "fc2"} <= set(names)
        assert any(op.kind == "gelu" for op in workload.nonlinears)

    def test_decode_has_single_query(self, llama_dims):
        workload = decoder_workload(llama_dims, 1024, phase="decode")
        query = next(op for op in workload.matmuls if op.name == "query")
        assert query.m == 1
        scores = next(op for op in workload.matmuls if op.name == "attn_scores")
        assert scores.n == 1024

    def test_softmax_work_scales_quadratically_in_prefill(self, llama_dims):
        short = decoder_workload(llama_dims, 128, phase="prefill")
        long = decoder_workload(llama_dims, 512, phase="prefill")
        short_elems = sum(op.elements for op in short.nonlinears if op.kind == "softmax")
        long_elems = sum(op.elements for op in long.nonlinears if op.kind == "softmax")
        assert long_elems == pytest.approx(16 * short_elems)

    def test_invalid_phase(self, llama_dims):
        with pytest.raises(ValueError):
            decoder_workload(llama_dims, 128, phase="training")

    def test_total_macs_positive_and_scaled(self, llama_dims):
        workload = decoder_workload(llama_dims, 64, phase="prefill")
        assert workload.total_macs > 0
        assert workload.scaled(1).total_macs == workload.total_macs // llama_dims.n_layers


class TestPEArrayTiming:
    def test_cycles_at_least_ideal(self):
        op = MatmulOp("g", 256, 256, 256)
        stats = matmul_cycles(op, 32, 32)
        ideal = op.macs / (32 * 32)
        assert stats.cycles >= ideal
        assert 0 < stats.utilisation <= 1.0

    def test_large_prefill_gemm_is_well_utilised(self):
        op = MatmulOp("g", 2048, 512, 512)
        stats = matmul_cycles(op, 32, 32)
        assert stats.utilisation > 0.8

    def test_decode_gemv_is_poorly_utilised(self):
        op = MatmulOp("g", 1, 512, 512)
        stats = matmul_cycles(op, 32, 32)
        assert stats.utilisation < 0.1

    def test_weight_tiles_count(self):
        stats = matmul_cycles(MatmulOp("g", 8, 64, 96), 32, 32)
        assert stats.weight_tiles == 2 * 3

    def test_invalid_array(self):
        with pytest.raises(ValueError):
            matmul_cycles(MatmulOp("g", 1, 1, 1), 0, 4)
        with pytest.raises(ValueError):
            PEArray(0, 4)

    def test_pe_array_helpers(self):
        array = PEArray(16, 8)
        assert array.num_pes == 128
        assert array.peak_macs_per_cycle() == 128
        assert array.gemm(MatmulOp("g", 4, 16, 8)).cycles > 0
