"""Tests for the end-to-end generation latency model (repro.accelerator.generation)."""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.generation import GenerationLatencyModel
from repro.core.bbfp import BBFPConfig
from repro.llm.config import ModelConfig


@pytest.fixture(scope="module")
def model_config():
    return ModelConfig(
        name="gen-llama", vocab_size=256, d_model=256, n_heads=4, n_layers=2,
        d_ff=688, max_seq_len=2048, arch="llama",
    )


@pytest.fixture(scope="module")
def accel_config():
    return AcceleratorConfig(strategy=BBFPConfig(4, 2), pe_rows=16, pe_cols=16)


class TestGenerationLatencyModel:
    def test_report_structure(self, accel_config, model_config):
        model = GenerationLatencyModel(accel_config, model_config)
        report = model.estimate(prompt_tokens=64, generated_tokens=32)
        assert report.prompt_tokens == 64
        assert report.generated_tokens == 32
        assert report.prefill.cycles > 0
        assert report.decode.cycles > 0
        assert report.time_to_first_token_s > 0
        assert report.tokens_per_second > 0
        assert report.total_energy_j > 0

    def test_zero_generation_has_empty_decode_phase(self, accel_config, model_config):
        report = GenerationLatencyModel(accel_config, model_config).estimate(64, 0)
        assert report.decode.cycles == 0
        assert report.decode_latency_per_token_s == 0.0
        assert report.energy_per_token_j == 0.0

    def test_longer_prompt_increases_time_to_first_token(self, accel_config, model_config):
        model = GenerationLatencyModel(accel_config, model_config)
        short = model.estimate(32, 8)
        long = model.estimate(512, 8)
        assert long.time_to_first_token_s > short.time_to_first_token_s

    def test_decode_cost_scales_roughly_linearly_with_tokens(self, accel_config, model_config):
        model = GenerationLatencyModel(accel_config, model_config, decode_step_stride=8)
        few = model.estimate(64, 16)
        many = model.estimate(64, 64)
        ratio = many.decode.cycles / few.decode.cycles
        assert 3.0 < ratio < 6.0

    def test_stride_one_matches_stride_many_within_tolerance(self, accel_config, model_config):
        exact = GenerationLatencyModel(accel_config, model_config, decode_step_stride=1)
        coarse = GenerationLatencyModel(accel_config, model_config, decode_step_stride=16)
        exact_report = exact.estimate(64, 32)
        coarse_report = coarse.estimate(64, 32)
        assert coarse_report.decode.cycles == pytest.approx(exact_report.decode.cycles, rel=0.1)

    def test_denser_format_spends_less_energy_per_generation(self, model_config):
        from repro.core.blockfp import BFPConfig

        dense = AcceleratorConfig(strategy=BBFPConfig(3, 1), pe_rows=16, pe_cols=16)
        wide = AcceleratorConfig(strategy=BFPConfig(8), pe_rows=16, pe_cols=16)
        dense_report = GenerationLatencyModel(dense, model_config).estimate(128, 32)
        wide_report = GenerationLatencyModel(wide, model_config).estimate(128, 32)
        assert dense_report.total_energy_j < wide_report.total_energy_j

    def test_bbal_nonlinear_unit_keeps_nonlinear_share_low(self, accel_config, model_config):
        bbal = GenerationLatencyModel(accel_config, model_config, nonlinear_style="bbal")
        fp32 = GenerationLatencyModel(accel_config, model_config, nonlinear_style="fp32")
        bbal_report = bbal.estimate(512, 16)
        fp32_report = fp32.estimate(512, 16)
        assert bbal_report.prefill.nonlinear_share < fp32_report.prefill.nonlinear_share

    def test_invalid_arguments_rejected(self, accel_config, model_config):
        model = GenerationLatencyModel(accel_config, model_config)
        with pytest.raises(ValueError):
            model.estimate(0, 4)
        with pytest.raises(ValueError):
            model.estimate(4, -1)
        with pytest.raises(ValueError):
            GenerationLatencyModel(accel_config, model_config, decode_step_stride=0)

    def test_as_dict_contains_phase_breakdown(self, accel_config, model_config):
        report = GenerationLatencyModel(accel_config, model_config).estimate(64, 8)
        payload = report.as_dict()
        assert payload["prefill"]["phase"] == "prefill"
        assert payload["decode"]["phase"] == "decode"
        assert payload["tokens_per_second"] == pytest.approx(report.tokens_per_second)
