"""Tests for the dataflow comparison models (repro.accelerator.dataflow)."""

from __future__ import annotations

import pytest

from repro.accelerator.dataflow import DATAFLOWS, compare_dataflows, dataflow_stats
from repro.accelerator.pe_array import matmul_cycles
from repro.accelerator.workloads import MatmulOp


@pytest.fixture
def prefill_gemm():
    return MatmulOp("fc1", 512, 1024, 4096)


@pytest.fixture
def decode_gemv():
    return MatmulOp("fc1", 1, 4096, 4096)


class TestDataflowStats:
    def test_weight_stationary_matches_pe_array_timing(self, prefill_gemm):
        stats = dataflow_stats(prefill_gemm, 32, 32, "weight_stationary")
        assert stats.cycles == matmul_cycles(prefill_gemm, 32, 32).cycles

    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    def test_macs_are_dataflow_invariant(self, prefill_gemm, dataflow):
        assert dataflow_stats(prefill_gemm, 32, 32, dataflow).macs == prefill_gemm.macs

    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    def test_utilisation_bounded(self, prefill_gemm, dataflow):
        stats = dataflow_stats(prefill_gemm, 32, 32, dataflow)
        assert 0.0 < stats.utilisation <= 1.0

    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    def test_compulsory_operand_reads_never_undercounted(self, prefill_gemm, dataflow):
        stats = dataflow_stats(prefill_gemm, 32, 32, dataflow)
        assert stats.input_reads >= prefill_gemm.input_elements
        assert stats.weight_reads >= prefill_gemm.weight_elements
        assert stats.partial_sum_transfers >= prefill_gemm.output_elements

    def test_output_stationary_never_moves_partial_sums(self, prefill_gemm):
        stats = dataflow_stats(prefill_gemm, 32, 32, "output_stationary")
        assert stats.partial_sum_transfers == prefill_gemm.output_elements

    def test_weight_stationary_reads_weights_exactly_once(self, prefill_gemm):
        stats = dataflow_stats(prefill_gemm, 32, 32, "weight_stationary")
        assert stats.weight_reads == prefill_gemm.weight_elements

    def test_input_stationary_reads_inputs_exactly_once(self, prefill_gemm):
        stats = dataflow_stats(prefill_gemm, 32, 32, "input_stationary")
        assert stats.input_reads == prefill_gemm.input_elements

    def test_decode_weight_reads_favour_weight_stationary(self, decode_gemv):
        """With one query token the weight matrix dominates traffic; the
        weight-stationary array reads it once, output stationary as well (one
        output tile row), but input stationary re-reads it per output tile."""
        ws = dataflow_stats(decode_gemv, 32, 32, "weight_stationary")
        inp = dataflow_stats(decode_gemv, 32, 32, "input_stationary")
        assert ws.weight_reads <= inp.weight_reads

    def test_unknown_dataflow_rejected(self, prefill_gemm):
        with pytest.raises(ValueError, match="unknown dataflow"):
            dataflow_stats(prefill_gemm, 32, 32, "systolic-magic")

    def test_invalid_array_rejected(self, prefill_gemm):
        with pytest.raises(ValueError, match="positive"):
            dataflow_stats(prefill_gemm, 0, 32, "weight_stationary")


class TestCompareDataflows:
    def test_one_row_per_dataflow(self, prefill_gemm):
        rows = compare_dataflows(prefill_gemm)
        assert [row["dataflow"] for row in rows] == list(DATAFLOWS)

    def test_traffic_scales_with_bits(self, prefill_gemm):
        narrow = compare_dataflows(prefill_gemm, bits_per_element=4.0)
        wide = compare_dataflows(prefill_gemm, bits_per_element=8.0)
        for narrow_row, wide_row in zip(narrow, wide):
            assert wide_row["operand_bytes"] == pytest.approx(2.0 * narrow_row["operand_bytes"])

    def test_prefill_cycles_comparable_across_dataflows(self, prefill_gemm):
        rows = {row["dataflow"]: row for row in compare_dataflows(prefill_gemm)}
        cycles = [row["cycles"] for row in rows.values()]
        assert max(cycles) <= 5 * min(cycles)
