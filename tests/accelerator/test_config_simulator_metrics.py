"""Tests for the accelerator configuration, cycle-level simulator and iso-area metrics."""

import pytest

from repro.accelerator.config import AcceleratorConfig, bits_per_element
from repro.accelerator.metrics import efficiency_metric, iso_area_design_points
from repro.accelerator.simulator import AcceleratorSimulator
from repro.accelerator.workloads import decoder_workload
from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.llm.config import ModelConfig


@pytest.fixture
def dims():
    return ModelConfig(name="m", vocab_size=1000, d_model=256, n_heads=8, n_layers=2,
                       d_ff=704, max_seq_len=2048, arch="llama")


@pytest.fixture
def workload(dims):
    return decoder_workload(dims, 256, phase="prefill")


class TestConfig:
    def test_bits_per_element(self):
        assert bits_per_element(BBFPConfig(4, 2)) == pytest.approx(6.15625)
        assert bits_per_element(BFPConfig(4)) == pytest.approx(5.15625)
        assert bits_per_element("Oltron") == pytest.approx(4.25)
        assert bits_per_element("fp16") == 16.0
        with pytest.raises(ValueError):
            bits_per_element("mystery")
        with pytest.raises(TypeError):
            bits_per_element(3.0)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(strategy=BBFPConfig(4, 2), pe_rows=0)

    def test_areas_positive_and_additive(self):
        config = AcceleratorConfig(strategy=BBFPConfig(4, 2))
        assert config.num_pes == 1024
        assert config.total_area_um2() > config.pe_array_area_um2()
        assert config.buffer_area_um2() > 0

    def test_strategy_name(self):
        assert AcceleratorConfig(strategy="Oltron").strategy_name == "Oltron"
        assert AcceleratorConfig(strategy=BBFPConfig(4, 2)).strategy_name == "BBFP(4,2)"


class TestSimulator:
    def test_report_structure(self, workload):
        config = AcceleratorConfig(strategy=BBFPConfig(4, 2))
        report = AcceleratorSimulator(config).run(workload)
        assert report.total_macs == workload.total_macs
        assert report.linear_cycles > 0 and report.nonlinear_cycles > 0
        assert report.runtime_s > 0
        assert report.throughput_gmacs > 0
        assert report.energy.total_j > 0
        assert len(report.per_op) == len(workload.matmuls) + len(workload.nonlinears)
        assert set(report.as_dict()) >= {"config", "total_cycles", "energy"}

    def test_invalid_nonlinear_style(self):
        config = AcceleratorConfig(strategy=BBFPConfig(4, 2))
        with pytest.raises(ValueError):
            AcceleratorSimulator(config, nonlinear_style="gpu")

    def test_fp32_nonlinear_slower_than_bbal(self, workload):
        config = AcceleratorConfig(strategy=BBFPConfig(4, 2))
        fp32 = AcceleratorSimulator(config, nonlinear_style="fp32").run(workload)
        bbal = AcceleratorSimulator(config, nonlinear_style="bbal").run(workload)
        assert fp32.nonlinear_cycles > bbal.nonlinear_cycles
        assert fp32.linear_cycles == bbal.linear_cycles

    def test_nonlinear_share_grows_with_sequence_length(self, dims):
        config = AcceleratorConfig(strategy=BBFPConfig(4, 2))
        sim = AcceleratorSimulator(config, nonlinear_style="fp32")
        short = sim.run(decoder_workload(dims, 128, phase="prefill"))
        long = sim.run(decoder_workload(dims, 1024, phase="prefill"))
        assert (long.nonlinear_runtime_s / long.runtime_s) > (
            short.nonlinear_runtime_s / short.runtime_s
        )

    def test_wider_format_costs_more_energy(self, workload):
        narrow = AcceleratorSimulator(AcceleratorConfig(strategy=BBFPConfig(3, 1))).run(workload)
        wide = AcceleratorSimulator(AcceleratorConfig(strategy=BBFPConfig(6, 3))).run(workload)
        assert wide.energy.total_j > narrow.energy.total_j
        assert wide.energy.dram_j > narrow.energy.dram_j

    def test_bbfp3_energy_below_bfp4(self, workload):
        """The Fig. 9 claim: BBFP with a 3-bit mantissa undercuts BFP4."""
        bbfp = AcceleratorSimulator(AcceleratorConfig(strategy=BBFPConfig(3, 1))).run(workload)
        bfp4 = AcceleratorSimulator(AcceleratorConfig(strategy=BFPConfig(4))).run(workload)
        assert bbfp.energy.total_j < bfp4.energy.total_j


class TestIsoArea:
    def test_points_share_budget(self):
        points = iso_area_design_points([BBFPConfig(3, 1), BFPConfig(4), BBFPConfig(6, 3)])
        by_name = {p.strategy_name: p for p in points}
        assert by_name["BBFP(3,1)"].num_pes > by_name["BFP4"].num_pes > by_name["BBFP(6,3)"].num_pes
        assert max(p.relative_throughput for p in points) == 1.0

    def test_bbfp3_throughput_advantage_over_bfp4(self):
        """Fig. 8: BBFP(3,x) should get meaningfully more PEs than BFP4 at equal area."""
        points = {p.strategy_name: p for p in iso_area_design_points([BBFPConfig(3, 1), BFPConfig(4)])}
        assert points["BBFP(3,1)"].num_pes > 1.1 * points["BFP4"].num_pes

    def test_explicit_budget_and_errors(self):
        points = iso_area_design_points([BBFPConfig(4, 2)], area_budget_um2=1e6)
        assert points[0].num_pes > 0
        with pytest.raises(ValueError):
            iso_area_design_points([])
        with pytest.raises(ValueError):
            iso_area_design_points([BBFPConfig(4, 2)], area_budget_um2=0)

    def test_point_as_dict(self):
        point = iso_area_design_points([BBFPConfig(4, 2)])[0]
        assert set(point.as_dict()) == {"strategy", "pe_area_um2", "num_pes",
                                        "peak_macs_per_cycle", "relative_throughput"}

    def test_efficiency_metric(self):
        assert efficiency_metric(100.0, 2.0, 5.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            efficiency_metric(1.0, 0.0, 1.0)
