"""Tests for the roofline analysis (repro.accelerator.roofline)."""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.roofline import (
    RooflineModel,
    analyze_workload,
    matmul_arithmetic_intensity,
    roofline_for_config,
)
from repro.accelerator.workloads import MatmulOp, decoder_workload
from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.llm.config import ModelConfig


@pytest.fixture(scope="module")
def llama_like_config():
    return ModelConfig(
        name="roofline-llama", vocab_size=256, d_model=512, n_heads=8, n_layers=4,
        d_ff=1376, max_seq_len=4096, arch="llama",
    )


@pytest.fixture
def bbal_config():
    return AcceleratorConfig(strategy=BBFPConfig(4, 2), pe_rows=32, pe_cols=32)


class TestRooflineModel:
    def test_ridge_point(self):
        roofline = RooflineModel(peak_macs_per_s=1e12, dram_bandwidth_bytes_per_s=1e11)
        assert roofline.ridge_intensity == pytest.approx(10.0)

    def test_attainable_clamps_to_peak(self):
        roofline = RooflineModel(peak_macs_per_s=1e12, dram_bandwidth_bytes_per_s=1e11)
        assert roofline.attainable_macs_per_s(100.0) == pytest.approx(1e12)
        assert roofline.attainable_macs_per_s(1.0) == pytest.approx(1e11)
        assert roofline.attainable_macs_per_s(0.0) == 0.0

    def test_bound_classification(self):
        roofline = RooflineModel(peak_macs_per_s=1e12, dram_bandwidth_bytes_per_s=1e11)
        assert roofline.is_compute_bound(20.0)
        assert not roofline.is_compute_bound(5.0)

    def test_invalid_ceilings_rejected(self):
        with pytest.raises(ValueError):
            RooflineModel(0.0, 1e9)
        with pytest.raises(ValueError):
            RooflineModel(1e9, -1.0)


class TestArithmeticIntensity:
    def test_square_gemm_intensity_grows_with_size(self):
        small = matmul_arithmetic_intensity(MatmulOp("a", 64, 64, 64), 8.0)
        large = matmul_arithmetic_intensity(MatmulOp("b", 512, 512, 512), 8.0)
        assert large > small

    def test_lower_bits_raise_intensity(self):
        op = MatmulOp("a", 128, 128, 128)
        assert matmul_arithmetic_intensity(op, 4.0) == pytest.approx(
            2.0 * matmul_arithmetic_intensity(op, 8.0)
        )

    def test_matvec_intensity_is_below_one_mac_per_weight_byte(self):
        # Decode-phase matrix-vector product: one MAC per weight element.
        op = MatmulOp("decode", 1, 4096, 4096)
        intensity = matmul_arithmetic_intensity(op, 8.0)
        assert intensity < 1.05


class TestRooflineForConfig:
    def test_peak_scales_with_pe_count(self, bbal_config):
        roofline = roofline_for_config(bbal_config)
        assert roofline.peak_macs_per_s == pytest.approx(
            bbal_config.num_pes * bbal_config.technology.clock_frequency_hz
        )

    def test_bandwidth_parameter_respected(self, bbal_config):
        roofline = roofline_for_config(bbal_config, dram_bandwidth_gbytes_per_s=100.0)
        assert roofline.dram_bandwidth_bytes_per_s == pytest.approx(1e11)


class TestAnalyzeWorkload:
    def test_prefill_projections_are_compute_bound(self, bbal_config, llama_like_config):
        workload = decoder_workload(llama_like_config, seq_len=1024, phase="prefill")
        analyses = {a.name: a for a in analyze_workload(bbal_config, workload)}
        assert analyses["query"].bound == "compute"
        assert analyses["down"].bound == "compute"

    def test_decode_projections_are_memory_bound(self, bbal_config, llama_like_config):
        workload = decoder_workload(llama_like_config, seq_len=1024, phase="decode")
        analyses = {a.name: a for a in analyze_workload(bbal_config, workload)}
        assert analyses["query"].bound == "memory"
        assert analyses["down"].bound == "memory"

    def test_denser_format_never_slower(self, llama_like_config):
        """Fewer bits per element can only raise the memory roof."""
        workload = decoder_workload(llama_like_config, seq_len=256, phase="decode")
        dense = AcceleratorConfig(strategy=BBFPConfig(3, 1), pe_rows=32, pe_cols=32)
        wide = AcceleratorConfig(strategy=BFPConfig(8), pe_rows=32, pe_cols=32)
        dense_runtime = sum(a.runtime_s for a in analyze_workload(dense, workload))
        wide_runtime = sum(a.runtime_s for a in analyze_workload(wide, workload))
        assert dense_runtime <= wide_runtime

    def test_repeat_scales_macs_and_bytes(self, bbal_config, llama_like_config):
        workload = decoder_workload(llama_like_config, seq_len=128, phase="prefill")
        single = analyze_workload(bbal_config, workload.scaled(1))
        double = analyze_workload(bbal_config, workload.scaled(2))
        assert double[0].macs == 2 * single[0].macs
        assert double[0].dram_bytes == pytest.approx(2 * single[0].dram_bytes)

    def test_rows_expose_dict_interface(self, bbal_config, llama_like_config):
        workload = decoder_workload(llama_like_config, seq_len=128, phase="prefill")
        row = analyze_workload(bbal_config, workload)[0].as_dict()
        assert {"op", "macs", "arithmetic_intensity", "bound", "attainable_gmacs"} <= set(row)
