"""Tests for the comparator quantisation schemes (SmoothQuant, OmniQuant, Olive, Oltron)."""

import numpy as np
import pytest

from repro.baselines.calibration import collect_linear_input_stats
from repro.baselines.olive import OliveConfig, build_olive_scheme, olive_quantize_dequantize
from repro.baselines.oltron import OltronConfig, build_oltron_scheme, oltron_quantize_dequantize
from repro.baselines.omniquant import OmniQuantConfig, build_omniquant_scheme, search_clip_ratio
from repro.baselines.smoothquant import (
    SmoothQuantConfig,
    build_smoothquant_scheme,
    compute_smoothing_scales,
)
from repro.core.integer import IntQuantConfig, int_quantize_dequantize
from repro.llm.perplexity import EvalConfig, evaluate_perplexity


_EVAL = EvalConfig(batch_size=2, seq_len=24, max_batches=2)


class TestCalibration:
    def test_stats_cover_all_linears(self, tiny_inference_model, small_corpus):
        stats = collect_linear_input_stats(tiny_inference_model, small_corpus, num_batches=1)
        assert any(name.endswith("q_proj") for name in stats)
        assert any(name.endswith("down_proj") for name in stats)
        for name, per_channel in stats.items():
            weight = tiny_inference_model.state[f"{name}.weight"]
            assert per_channel.shape == (weight.shape[0],)
            assert np.all(per_channel >= 0)


class TestSmoothQuant:
    def test_scale_formula(self):
        act_max = np.array([8.0, 2.0])
        weight = np.array([[0.5, 0.5], [2.0, 2.0]])
        scales = compute_smoothing_scales(act_max, weight, alpha=0.5)
        assert scales[0] == pytest.approx(np.sqrt(8.0) / np.sqrt(0.5))
        assert scales[1] == pytest.approx(np.sqrt(2.0) / np.sqrt(2.0))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SmoothQuantConfig(alpha=2.0)

    def test_smoothing_reduces_int8_error_on_outlier_channels(self, rng):
        """The core SmoothQuant property, isolated from the model."""
        x = rng.standard_normal((256, 16))
        x[:, 3] *= 40.0  # outlier channel
        w = rng.standard_normal((16, 8)) * 0.1
        act_max = np.abs(x).max(axis=0)
        scales = compute_smoothing_scales(act_max, w, alpha=0.5)
        config = IntQuantConfig(8)
        plain = int_quantize_dequantize(x, config) @ int_quantize_dequantize(w, config)
        smooth = (int_quantize_dequantize(x / scales, config) * scales) @ (
            int_quantize_dequantize(w * scales[:, None], config) / scales[:, None]
        )
        exact = x @ w
        assert np.mean((smooth - exact) ** 2) < np.mean((plain - exact) ** 2)

    def test_scheme_recovers_most_accuracy_at_8bit(self, tiny_inference_model, small_corpus):
        fp_ppl = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        scheme = build_smoothquant_scheme(tiny_inference_model, small_corpus)
        tiny_inference_model.set_scheme(scheme)
        sq_ppl = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        assert sq_ppl < fp_ppl * 1.2


class TestOmniQuant:
    def test_clip_search_prefers_clipping_with_outlier_weights(self, rng):
        # Many well-behaved values plus one extreme outlier per channel: clipping
        # the outlier buys a much finer step for everything else.
        w = rng.uniform(-1.0, 1.0, size=(1024, 4))
        w[0, :] = 4.0
        ratio = search_clip_ratio(w, bits=4, candidates=(1.0, 0.8, 0.6))
        assert ratio < 1.0

    def test_clip_search_keeps_full_range_for_uniform_weights(self, rng):
        w = rng.uniform(-1.0, 1.0, size=(256, 4))
        assert search_clip_ratio(w, bits=8, candidates=(1.0, 0.8, 0.6)) == 1.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            OmniQuantConfig(weight_bits=1)
        with pytest.raises(ValueError):
            OmniQuantConfig(clip_candidates=())

    def test_scheme_beats_plain_int4(self, tiny_inference_model, small_corpus):
        scheme = build_omniquant_scheme(tiny_inference_model, small_corpus)
        tiny_inference_model.set_scheme(scheme)
        omni_ppl = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        from repro.llm.inference import QuantizationScheme

        tiny_inference_model.set_scheme(QuantizationScheme.from_format(IntQuantConfig(4)))
        int4_ppl = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        assert omni_ppl <= int4_ppl * 1.05


class TestOlive:
    def test_normal_values_quantised_like_int(self, rng):
        x = rng.standard_normal(512)
        x_hat = olive_quantize_dequantize(x, OliveConfig())
        assert np.mean((x - x_hat) ** 2) < 0.1 * np.mean(x**2)

    def test_outlier_prunes_victim(self, rng):
        x = rng.standard_normal(128)
        x[10] = 10.0  # outlier, ~5x the robust group maximum
        x[11] = 0.1  # its victim
        config = OliveConfig()
        x_hat = olive_quantize_dequantize(x, config)
        assert x_hat[11] == 0.0  # victim pruned
        assert abs(x_hat[10] - 10.0) < 2.0  # outlier retained through the extended range

    def test_adjacent_outliers_clash(self, rng):
        x = rng.standard_normal(128) * 0.5
        x[10] = 12.0
        x[11] = 11.0
        x_hat = olive_quantize_dequantize(x, OliveConfig())
        # The second outlier of the pair cannot use the extension and collapses
        # to the normal clipped range.
        assert abs(x_hat[11]) < abs(x_hat[10])
        assert abs(x_hat[11]) < 4.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            OliveConfig(bits=1)

    def test_empty_input(self):
        assert olive_quantize_dequantize(np.array([])).size == 0

    def test_scheme_name(self):
        assert build_olive_scheme().name == "Olive"


class TestOltron:
    def test_outlier_budget_respected(self, outlier_tensor):
        config = OltronConfig(outlier_ratio=0.01)
        x_hat = oltron_quantize_dequantize(outlier_tensor, config)
        # The top-magnitude values survive almost exactly (FP16 side path).
        top = np.argsort(np.abs(outlier_tensor))[-5:]
        assert np.allclose(x_hat[top], outlier_tensor[top], rtol=1e-2)

    def test_inliers_quantised_coarsely(self, rng):
        x = rng.standard_normal(4096)
        x_hat = oltron_quantize_dequantize(x, OltronConfig(outlier_ratio=0.01))
        distinct = np.unique(np.round(x_hat[np.abs(x) < 1.0], 6))
        assert len(distinct) <= 2 * OltronConfig().max_code + 1

    def test_zero_budget_is_plain_int(self, rng):
        x = rng.standard_normal(128)
        x_hat = oltron_quantize_dequantize(x, OltronConfig(outlier_ratio=0.0))
        assert np.max(np.abs(x_hat)) <= np.max(np.abs(x)) + 1e-9

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            OltronConfig(outlier_ratio=0.7)

    def test_fixed_budget_fails_when_outliers_exceed_it(self, rng):
        """The Fig. 8 narrative: more outliers than the budget -> large error."""
        few = rng.standard_normal(4096)
        few[::512] *= 50.0  # ~0.2% outliers, inside the 1% budget
        many = rng.standard_normal(4096)
        many[::16] *= 50.0  # ~6% outliers, beyond the budget
        config = OltronConfig(outlier_ratio=0.01)

        def relative_error(x):
            x_hat = oltron_quantize_dequantize(x, config)
            return np.mean((x - x_hat) ** 2) / np.mean(x**2)

        assert relative_error(many) > 2 * relative_error(few)

    def test_scheme_name(self):
        assert build_oltron_scheme().name == "Oltron"
