"""Tests for the GPTQ baseline (repro.baselines.gptq)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.calibration import collect_linear_input_hessians
from repro.baselines.gptq import GPTQConfig, build_gptq_scheme, gptq_quantize_weight
from repro.core.integer import Granularity, IntQuantConfig, int_quantize_dequantize
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import EvalConfig, evaluate_perplexity

_EVAL = EvalConfig(batch_size=2, seq_len=24, max_batches=2)


def _rtn(weight: np.ndarray, bits: int) -> np.ndarray:
    """Plain round-to-nearest on the per-output-channel grid (the GPTQ reference point)."""
    return int_quantize_dequantize(weight, IntQuantConfig(bits, Granularity.PER_CHANNEL))


class TestGPTQConfig:
    def test_defaults_are_weight_only(self):
        config = GPTQConfig()
        assert config.weight_bits == 4
        assert config.activation_bits is None

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError, match="weight_bits"):
            GPTQConfig(weight_bits=1)
        with pytest.raises(ValueError, match="activation_bits"):
            GPTQConfig(activation_bits=1)

    def test_invalid_damping_rejected(self):
        with pytest.raises(ValueError, match="percdamp"):
            GPTQConfig(percdamp=0.0)


class TestHessianCalibration:
    def test_hessians_are_square_and_psd(self, tiny_inference_model, small_corpus):
        hessians = collect_linear_input_hessians(tiny_inference_model, small_corpus, num_batches=1)
        assert any(name.endswith("q_proj") for name in hessians)
        for name, hessian in hessians.items():
            in_features = tiny_inference_model.state[f"{name}.weight"].shape[0]
            assert hessian.shape == (in_features, in_features)
            np.testing.assert_allclose(hessian, hessian.T, atol=1e-9)
            eigenvalues = np.linalg.eigvalsh(hessian)
            assert eigenvalues.min() >= -1e-8


class TestGPTQQuantizeWeight:
    def test_output_stays_on_per_channel_grid(self, rng):
        weight = rng.standard_normal((32, 16))
        hessian = np.eye(32)
        quantised = gptq_quantize_weight(weight, hessian, GPTQConfig(weight_bits=4))
        max_code = 7
        scales = np.abs(weight).max(axis=0) / max_code
        codes = quantised / scales
        np.testing.assert_allclose(codes, np.rint(codes), atol=1e-9)
        assert np.max(np.abs(codes)) <= max_code + 1e-9

    def test_identity_hessian_reduces_to_rtn(self, rng):
        """With no cross-feature correlation there is nothing to compensate."""
        weight = rng.standard_normal((24, 12))
        quantised = gptq_quantize_weight(weight, np.eye(24), GPTQConfig(weight_bits=4))
        np.testing.assert_allclose(quantised, _rtn(weight, 4), atol=1e-9)

    def test_compensation_reduces_layer_output_error(self, rng):
        """The GPTQ objective: ||X W - X W_hat||_F drops versus round-to-nearest."""
        x = rng.standard_normal((512, 48))
        # Correlated input features make compensation matter.
        mixing = rng.standard_normal((48, 48)) * 0.3 + np.eye(48)
        x = x @ mixing
        weight = rng.standard_normal((48, 24))
        hessian = x.T @ x
        config = GPTQConfig(weight_bits=3)
        gptq_w = gptq_quantize_weight(weight, hessian, config)
        rtn_w = _rtn(weight, 3)
        gptq_err = float(np.linalg.norm(x @ (weight - gptq_w)))
        rtn_err = float(np.linalg.norm(x @ (weight - rtn_w)))
        assert gptq_err < rtn_err

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="hessian shape"):
            gptq_quantize_weight(rng.standard_normal((8, 4)), np.eye(6))

    def test_dead_features_are_zeroed(self, rng):
        weight = rng.standard_normal((16, 8))
        x = rng.standard_normal((64, 16))
        x[:, 5] = 0.0  # feature 5 never activates
        hessian = x.T @ x
        quantised = gptq_quantize_weight(weight, hessian, GPTQConfig(weight_bits=4))
        np.testing.assert_array_equal(quantised[5, :], 0.0)

    def test_high_bit_quantisation_is_nearly_lossless(self, rng):
        weight = rng.standard_normal((32, 16))
        x = rng.standard_normal((256, 32))
        quantised = gptq_quantize_weight(weight, x.T @ x, GPTQConfig(weight_bits=8))
        rel = np.abs(weight - quantised) / np.abs(weight).max()
        assert rel.max() < 0.02


class TestBuildGPTQScheme:
    def test_scheme_quantises_calibrated_layers(self, tiny_inference_model, small_corpus):
        scheme = build_gptq_scheme(tiny_inference_model, small_corpus, GPTQConfig(weight_bits=4))
        assert scheme.name == "GPTQ"
        name = "blocks.0.attention.q_proj"
        weight = tiny_inference_model.state[f"{name}.weight"]
        quantised = scheme.weight_fn(name, weight)
        assert quantised.shape == weight.shape
        assert not np.array_equal(quantised, weight)

    def test_uncalibrated_layer_falls_back_to_rtn(self, tiny_inference_model, small_corpus, rng):
        scheme = build_gptq_scheme(tiny_inference_model, small_corpus, GPTQConfig(weight_bits=4))
        weight = rng.standard_normal((16, 8))
        np.testing.assert_allclose(
            scheme.weight_fn("made.up.layer", weight), _rtn(weight, 4), atol=1e-12
        )

    def test_restores_original_scheme_after_calibration(self, tiny_inference_model, small_corpus):
        original = QuantizationScheme.fp16()
        tiny_inference_model.set_scheme(original)
        build_gptq_scheme(tiny_inference_model, small_corpus)
        assert tiny_inference_model.scheme is original

    def test_weight_only_gptq_tracks_fp_reference_perplexity(
        self, tiny_inference_model, small_corpus
    ):
        tiny_inference_model.set_scheme(QuantizationScheme.fp_reference())
        reference = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        scheme = build_gptq_scheme(tiny_inference_model, small_corpus, GPTQConfig(weight_bits=4))
        tiny_inference_model.set_scheme(scheme)
        quantised = evaluate_perplexity(tiny_inference_model, small_corpus, _EVAL)
        tiny_inference_model.set_scheme(QuantizationScheme.fp_reference())
        assert np.isfinite(quantised)
        assert quantised <= reference * 1.5

    def test_activation_bits_enable_activation_quantisation(
        self, tiny_inference_model, small_corpus, rng
    ):
        scheme = build_gptq_scheme(
            tiny_inference_model, small_corpus, GPTQConfig(weight_bits=4, activation_bits=8)
        )
        x = rng.standard_normal((4, 32))
        x_hat = scheme.activation_fn("blocks.0.attention.q_proj", x)
        assert not np.array_equal(x_hat, x)
