"""End-to-end generation latency on BBAL: prefill + auto-regressive decode.

Run with::

    python examples/generation_latency.py [--prompt 512] [--generate 128]

The script estimates time-to-first-token, tokens/s and energy/token for a
Llama-7B-sized model on the BBAL accelerator under several number formats,
using the cycle-level simulator for both phases.  It extends the paper's
Fig. 1(b) (which sweeps the decoder-stage sequence length) to the serving
metric a deployment actually optimises.
"""

import argparse
import math

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.generation import GenerationLatencyModel
from repro.accelerator.metrics import iso_area_design_points
from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.experiments.fig1_runtime import LLAMA_7B_DIMENSIONS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--prompt", type=int, default=512, help="prompt length in tokens")
    parser.add_argument("--generate", type=int, default=128, help="tokens to generate")
    parser.add_argument("--nonlinear", choices=("bbal", "fp32"), default="bbal",
                        help="nonlinear unit style (the paper's LUT unit or an FP32 vector unit)")
    args = parser.parse_args()

    strategies = ("Oltron", BFPConfig(6), BBFPConfig(4, 2), BBFPConfig(3, 1))
    # Every format gets the same PE-area budget (the Fig. 8 comparison): cheaper
    # PEs buy a larger array.
    points = {p.strategy_name: p for p in iso_area_design_points(strategies, reference_pes=1024)}

    print(f"Llama-7B dimensions, prompt={args.prompt}, generate={args.generate}, "
          f"nonlinear unit = {args.nonlinear}, equal PE-area budget\n")
    print(f"{'strategy':12s} {'PEs':>6s} {'TTFT (ms)':>10s} {'tokens/s':>10s} {'mJ/token':>10s}")
    for strategy in strategies:
        name = strategy if isinstance(strategy, str) else strategy.name
        side = max(4, int(math.sqrt(points[name].num_pes)))
        config = AcceleratorConfig(strategy=strategy, pe_rows=side, pe_cols=side)
        model = GenerationLatencyModel(config, LLAMA_7B_DIMENSIONS,
                                       nonlinear_style=args.nonlinear, decode_step_stride=16)
        report = model.estimate(prompt_tokens=args.prompt, generated_tokens=args.generate)
        print(f"{config.strategy_name:12s} {side * side:6d} {report.time_to_first_token_s * 1e3:10.2f} "
              f"{report.tokens_per_second:10.1f} {report.energy_per_token_j * 1e3:10.3f}")

    print(
        "\nReading: under the shared area budget the denser BBFP configurations fit more PEs, "
        "which shortens the compute-bound prefill and the per-token decode work, while their "
        "lower bits-per-element cuts the DRAM energy of every generated token."
    )


if __name__ == "__main__":
    main()
