"""Roofline analysis of a Llama-7B decoder layer on the BBAL accelerator.

Run with::

    python examples/roofline_analysis.py [--seq-len 1024] [--bandwidth 25.6]

The script classifies every GEMM of one decoder layer as compute or memory
bound, once for the prefill phase and once for the decode (KV-cache) phase,
and shows how the answer changes with the number format: the cheaper the PE
(Table III) the higher the compute roof under an iso-area budget, and the
fewer the bits per element (Table I) the higher the memory roof — the two
mechanisms behind the paper's Fig. 8 comparison.
"""

import argparse

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.roofline import analyze_workload, roofline_for_config
from repro.accelerator.workloads import decoder_workload
from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.experiments.fig1_runtime import LLAMA_7B_DIMENSIONS


def describe(config: AcceleratorConfig, seq_len: int, phase: str, bandwidth: float) -> None:
    roofline = roofline_for_config(config, dram_bandwidth_gbytes_per_s=bandwidth)
    workload = decoder_workload(LLAMA_7B_DIMENSIONS, seq_len, phase=phase)
    print(f"\n== {config.strategy_name}, {phase}, seq_len={seq_len} ==")
    print(f"  peak {roofline.peak_macs_per_s / 1e12:.2f} TMAC/s, "
          f"DRAM {roofline.dram_bandwidth_bytes_per_s / 1e9:.1f} GB/s, "
          f"ridge at {roofline.ridge_intensity:.1f} MAC/byte")
    for analysis in analyze_workload(config, workload, dram_bandwidth_gbytes_per_s=bandwidth):
        print(f"  {analysis.name:12s} intensity={analysis.arithmetic_intensity:8.1f} MAC/B  "
              f"attainable={analysis.attainable_macs_per_s / 1e9:9.1f} GMAC/s  "
              f"[{analysis.bound} bound]")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seq-len", type=int, default=1024)
    parser.add_argument("--bandwidth", type=float, default=25.6,
                        help="DRAM bandwidth in GB/s shared by every design")
    args = parser.parse_args()

    for strategy in (BBFPConfig(4, 2), BFPConfig(8)):
        config = AcceleratorConfig(strategy=strategy, pe_rows=32, pe_cols=32)
        describe(config, args.seq_len, "prefill", args.bandwidth)
        describe(config, args.seq_len, "decode", args.bandwidth)

    print(
        "\nReading: prefill GEMMs sit right of the ridge (compute bound), so the cheaper "
        "BBFP PEs translate into throughput; decode matrix-vector products sit far left "
        "(memory bound), so the lower bits-per-element of BBFP translates into tokens/s."
    )


if __name__ == "__main__":
    main()
