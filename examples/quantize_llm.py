"""Quantise a (simulated) LLM end to end and measure perplexity — the Table II workflow.

Run with::

    python examples/quantize_llm.py [--model Llama-7B] [--fast]

The script trains (or loads from cache) one model of the simulated Llama/OPT
zoo, then evaluates held-out perplexity under several weight–activation
quantisation schemes: FP16, vanilla BFP, BBFP at several configurations, and
the outlier-aware Oltron baseline.  The orderings mirror the paper's Table II.
"""

import argparse

from repro.baselines import build_oltron_scheme
from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import EvalConfig, evaluate_perplexity
from repro.llm.zoo import default_corpus, load_inference_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="Llama-7B",
                        help="zoo model name (Llama-1B...65B, OPT-1.3B...66B)")
    parser.add_argument("--fast", action="store_true", help="smaller corpus and evaluation")
    args = parser.parse_args()

    corpus = default_corpus(fast=args.fast)
    print(f"Loading {args.model} (training on first use, cached afterwards)...")
    model = load_inference_model(args.model, corpus=corpus)
    evaluation = EvalConfig(max_batches=2 if args.fast else 4)

    schemes = [
        QuantizationScheme.fp16(),
        build_oltron_scheme(),
        QuantizationScheme.from_format(BFPConfig(6)),
        QuantizationScheme.from_format(BFPConfig(4)),
        QuantizationScheme.from_format(BBFPConfig(3, 1)),
        QuantizationScheme.from_format(BBFPConfig(4, 2)),
        QuantizationScheme.from_format(BBFPConfig(6, 3)),
    ]

    print(f"\nPerplexity of {args.model} on the held-out synthetic corpus (lower is better):")
    baseline = None
    for scheme in schemes:
        model.set_scheme(scheme)
        ppl = evaluate_perplexity(model, corpus, evaluation)
        if baseline is None:
            baseline = ppl
        print(f"  {scheme.name:12s} ppl = {ppl:8.3f}   (+{100 * (ppl / baseline - 1):5.1f}% vs FP16)")

    print(
        "\nExpected shape (Table II): BBFP(6,3) ~ FP16, BBFP(4,2) ~ BFP6, "
        "BBFP(3,1) well below BFP4's degradation, and Oltron hurt by the "
        "Llama-style outlier profile."
    )


if __name__ == "__main__":
    main()
