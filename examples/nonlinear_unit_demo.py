"""Run Softmax/SiLU on the BBFP segmented-LUT nonlinear unit — the Table IV / V workflow.

Run with::

    python examples/nonlinear_unit_demo.py

The script shows the three faces of the nonlinear unit:

1. *numerics*: softmax and SiLU evaluated through the exponent-segmented LUT
   in BBFP(10,5) stay close to FP32, while the same LUT driven by BFP10 loses
   the moderate inputs (the Table IV failure mode);
2. *model impact*: the perplexity of a zoo model with its nonlinear layers on
   the unit;
3. *hardware*: the unit's area/power/latency and its ADP/EDP/efficiency
   against the two published comparator designs (Table V).
"""

import numpy as np

from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.llm.activations import silu, softmax
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import EvalConfig, evaluate_perplexity
from repro.llm.zoo import default_corpus, load_inference_model
from repro.nonlinear import NonlinearUnit, comparison_table
from repro.nonlinear.lut import LUTNonlinear, lut_function, lut_softmax


def main() -> None:
    rng = np.random.default_rng(0)

    print("== 1. LUT numerics ==")
    scores = rng.normal(0.0, 4.0, size=(8, 128))
    gate = rng.normal(0.0, 3.0, size=2048)
    gate[::64] *= 30.0  # activation outliers, as in real FC1/gate outputs
    for name, fmt in (("BBFP(10,5)", BBFPConfig(10, 5)), ("BFP10", BFPConfig(10))):
        lut = LUTNonlinear(fmt, address_bits=7)
        softmax_err = np.max(np.abs(lut.softmax(scores) - softmax(scores)))
        silu_err = np.sqrt(np.mean((lut.apply("silu", gate) - silu(gate)) ** 2))
        print(f"  {name:11s} softmax max error = {softmax_err:.4f}   SiLU RMS error = {silu_err:.4f}")

    print("\n== 2. Model impact (Table IV style) ==")
    corpus = default_corpus()
    model = load_inference_model("Llama-7B", corpus=corpus)
    evaluation = EvalConfig(max_batches=3)
    rows = {
        "FP32 nonlinear": QuantizationScheme.fp_reference(),
        "BBFP(10,5) LUT": QuantizationScheme.fp_reference().with_nonlinear(
            softmax_fn=lut_softmax(BBFPConfig(10, 5)), nonlinear_fn=lut_function(BBFPConfig(10, 5))
        ),
        "BFP10 LUT": QuantizationScheme.fp_reference().with_nonlinear(
            softmax_fn=lut_softmax(BFPConfig(10)), nonlinear_fn=lut_function(BFPConfig(10))
        ),
    }
    for label, scheme in rows.items():
        model.set_scheme(scheme)
        print(f"  {label:15s} perplexity = {evaluate_perplexity(model, corpus, evaluation):.3f}")

    print("\n== 3. Hardware cost (Table V style) ==")
    unit = NonlinearUnit()
    cost = unit.cost()
    print(f"  proposed unit: area = {cost.area_mm2() * 1e3:.1f} x 10^-3 mm^2, "
          f"power = {cost.power_w() * 1e3:.1f} mW, "
          f"latency(1024 elements) = {cost.latency_cycles(1024)} cycles")
    print(f"  softmax sub-tables in external memory: "
          f"{unit.external_table_bits('softmax') // 8} bytes")
    for row in comparison_table():
        print(f"  {row['design']:30s} ADP={row['adp']:.4f}  EDP={row['edp']:.3f}  "
              f"efficiency={row['efficiency']:.1f}  supports: {row['compatibility']}")


if __name__ == "__main__":
    main()
