"""Quickstart: quantise tensors with BBFP and compare against BFP.

Run with::

    python examples/quickstart.py

This walks through the paper's core idea on a synthetic activation tensor:

1. quantise with vanilla BFP4 (align to the maximum exponent) and with
   BBFP(4,2) (the bidirectional format, Eq. 9 alignment);
2. compare the quantisation error — BBFP keeps the outliers *and* the
   small/moderate values;
3. show that the integer MAC datapath (what the BBAL PE array executes)
   produces exactly the same dot product as the dequantised math;
4. cost the two MAC units with the gate-level hardware model (Table I);
5. do the same comparison through the unified ``repro.quant`` registry,
   where every format is one spec string away.
"""

import numpy as np

from repro.core.bbfp import BBFPConfig, bbfp_quantize_dequantize, quantize_bbfp
from repro.core.blockfp import BFPConfig, bfp_quantize_dequantize
from repro.core.dotproduct import bbfp_dot
from repro.hardware.mac import mac_table
from repro.quant import get_quantizer


def main() -> None:
    rng = np.random.default_rng(0)

    # A typical LLM activation slice: mostly small values plus rare outliers.
    activation = rng.standard_normal(4096)
    activation[::128] *= 30.0

    bfp4 = BFPConfig(mantissa_bits=4, block_size=32)
    bbfp42 = BBFPConfig(mantissa_bits=4, overlap_bits=2, block_size=32)

    bfp_error = np.mean((activation - bfp_quantize_dequantize(activation, bfp4)) ** 2)
    bbfp_error = np.mean((activation - bbfp_quantize_dequantize(activation, bbfp42)) ** 2)

    print("== Quantisation error (mean squared error) ==")
    print(f"  BFP4      : {bfp_error:.5f}")
    print(f"  BBFP(4,2) : {bbfp_error:.5f}   ({bfp_error / bbfp_error:.1f}x lower)")

    quantised = quantize_bbfp(activation, bbfp42)
    print("\n== BBFP(4,2) encoding of the first block ==")
    print(f"  shared exponent : {quantised.shared_exponents.ravel()[0]}")
    print(f"  flags (high mantissa markers): {quantised.flags.reshape(-1, 32)[0].tolist()}")
    print(f"  fraction of elements in the high group: {quantised.high_fraction():.3f}")

    other = rng.standard_normal(4096)
    integer_dot = bbfp_dot(activation, other, bbfp42)
    math_dot = float(
        np.dot(quantize_bbfp(activation, bbfp42).dequantize(),
               quantize_bbfp(other, bbfp42).dequantize())
    )
    print("\n== Integer MAC datapath vs dequantised math ==")
    print(f"  integer datapath : {integer_dot:.6f}")
    print(f"  dequantised math : {math_dot:.6f}   (identical by construction)")

    print("\n== MAC unit cost (Table I excerpt) ==")
    for row in mac_table([bfp4, bbfp42, BBFPConfig(6, 3), BFPConfig(8)]):
        print(
            f"  {row['datatype']:10s} area={row['area_um2']:8.1f} um^2  "
            f"equivalent bits={row['equivalent_bit_width']:5.2f}  "
            f"memory efficiency={row['memory_efficiency']:.2f}x"
        )

    # The same sweep through the unified registry: any registered format —
    # BBFP, BFP, INT, minifloat, microscaling, BiE — is one spec string away.
    print("\n== Spec-string sweep via repro.quant ==")
    for spec in ("bfp4", "BBFP(4,2)", "int4", "fp8_e4m3", "mxfp4", "bie4"):
        quantizer = get_quantizer(spec)
        error = np.mean((activation - quantizer.quantize_dequantize(activation)) ** 2)
        print(
            f"  {quantizer.name:12s} spec={quantizer.spec:10s} "
            f"bits/elem={quantizer.bits_per_element():5.2f}  mse={error:.5f}"
        )


if __name__ == "__main__":
    main()
