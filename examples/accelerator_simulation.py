"""Simulate the BBAL accelerator on Llama-7B decoder layers — the Fig. 1(b)/8/9 workflow.

Run with::

    python examples/accelerator_simulation.py

The script uses the cycle-level simulator to:

1. sweep the sequence length and show the linear vs nonlinear runtime split
   with an FP32-style nonlinear unit and with the BBFP unit (Fig. 1(b));
2. compare quantisation strategies under an equal PE-area budget (the
   hardware half of Fig. 8);
3. report the static / DRAM / buffer / core energy breakdown per strategy
   (Fig. 9).
"""

from repro.accelerator import (
    AcceleratorConfig,
    AcceleratorSimulator,
    decoder_workload,
    iso_area_design_points,
)
from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.experiments.fig1_runtime import LLAMA_7B_DIMENSIONS


def main() -> None:
    strategies = ["Oltron", "Olive", BFPConfig(4), BFPConfig(6),
                  BBFPConfig(3, 1), BBFPConfig(4, 2), BBFPConfig(6, 3)]

    print("== 1. Runtime breakdown of one Llama-7B prefill pass (Fig. 1(b)) ==")
    config = AcceleratorConfig(strategy=BBFPConfig(4, 2), pe_rows=32, pe_cols=32)
    fp32_sim = AcceleratorSimulator(config, nonlinear_style="fp32")
    bbal_sim = AcceleratorSimulator(config, nonlinear_style="bbal")
    for seq_len in (128, 512, 2048, 4096):
        workload = decoder_workload(LLAMA_7B_DIMENSIONS, seq_len, phase="prefill")
        fp32 = fp32_sim.run(workload)
        bbal = bbal_sim.run(workload)
        print(
            f"  seq={seq_len:5d}  linear={fp32.linear_runtime_s * 1e3:9.1f} ms  "
            f"nonlinear(FP32 unit)={fp32.nonlinear_runtime_s * 1e3:8.1f} ms "
            f"({100 * fp32.nonlinear_runtime_s / fp32.runtime_s:4.1f}%)   "
            f"nonlinear(BBFP unit)={bbal.nonlinear_runtime_s * 1e3:7.1f} ms "
            f"({100 * bbal.nonlinear_runtime_s / bbal.runtime_s:4.1f}%)"
        )

    print("\n== 2. Iso-area design points (hardware half of Fig. 8) ==")
    for point in iso_area_design_points(strategies):
        print(f"  {point.strategy_name:10s} PE area = {point.pe_area_um2:7.1f} um^2  "
              f"PEs in budget = {point.num_pes:5d}  relative throughput = "
              f"{point.relative_throughput:.2f}")

    print("\n== 3. Energy breakdown at equal PE count (Fig. 9) ==")
    workload = decoder_workload(LLAMA_7B_DIMENSIONS, 512, phase="prefill")
    reports = [AcceleratorSimulator(AcceleratorConfig(strategy=s)).run(workload)
               for s in strategies]
    reference = max(reports, key=lambda r: r.energy.total_j)
    for report in reports:
        norm = report.energy.normalised_to(reference.energy)
        print(f"  {report.config_name:10s} static={norm['static']:.3f}  dram={norm['dram']:.3f}  "
              f"buffer={norm['buffer']:.3f}  core={norm['core']:.3f}  total={norm['total']:.3f}")


if __name__ == "__main__":
    main()
