"""Mixed-precision BBFP assignment: a different configuration per layer kind.

Run with::

    python examples/mixed_precision_search.py [--model Llama-1B] [--budget 1.05]

The script loads (or trains, on first use) one model of the simulated zoo,
profiles how sensitive each linear-layer kind is to BBFP(6,3) / BBFP(4,2) /
BBFP(3,1), then greedily assigns the cheapest format each kind tolerates while
keeping the measured perplexity within the requested budget.  This is the
natural extension of the paper's global-format sweeps (Table II) and of its
overlap-width selection algorithm (Algorithm 1).
"""

import argparse

from repro.core.bbfp import BBFPConfig
from repro.llm.perplexity import EvalConfig
from repro.llm.zoo import default_corpus, load_inference_model
from repro.search.mixed_precision import greedy_mixed_precision_search


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="Llama-1B",
                        help="zoo model name (Llama-1B...65B, OPT-1.3B...66B)")
    parser.add_argument("--budget", type=float, default=1.05,
                        help="allowed perplexity ratio over the FP reference")
    parser.add_argument("--fast", action="store_true", help="smaller corpus and evaluation")
    args = parser.parse_args()

    corpus = default_corpus(fast=args.fast)
    print(f"Loading {args.model} (training on first use, cached afterwards)...")
    model = load_inference_model(args.model, corpus=corpus)

    candidates = [BBFPConfig(6, 3), BBFPConfig(4, 2), BBFPConfig(3, 1)]
    evaluation = EvalConfig(max_batches=2 if args.fast else 4)
    result = greedy_mixed_precision_search(
        model, corpus, candidates, ppl_budget_ratio=args.budget, eval_config=evaluation
    )

    print(f"\nPer-layer-kind assignment (budget: {args.budget:.2f}x the FP perplexity):")
    for row in result.as_rows():
        print(f"  {row['kind']:12s} -> {row['format']:10s} ({row['bits_per_element']:.2f} bits/elem)")

    print(f"\n  FP reference perplexity : {result.reference_perplexity:8.3f}")
    print(f"  mixed-precision ppl     : {result.perplexity:8.3f} "
          f"(+{100 * result.perplexity_overhead:.1f}%)")
    print(f"  weight footprint saved  : {100 * result.footprint_saving:.1f}% "
          f"vs uniform {candidates[0].name}")
    print(
        "\nReading: the attention projections usually tolerate BBFP(3,1)/(4,2) while the "
        "down-projection and lm_head want the wider configuration — the same per-layer "
        "sensitivity pattern the paper's Fig. 3 MSE study shows."
    )


if __name__ == "__main__":
    main()
