"""Run Algorithm 1 (overlap-bit-width selection) on a zoo model — the Fig. 4 workflow.

Run with::

    python examples/overlap_search_demo.py [--mantissa-bits 6] [--overhead-weight 0.5]

Algorithm 1 sweeps every overlap width ``o`` for a fixed mantissa width ``m``,
evaluates model perplexity and hardware overhead for each candidate BBFP(m, o),
normalises both and picks the width with the best weighted score.  The demo
wires the search to the real perplexity evaluator and the gate-level PE cost
model, and prints the full sweep so the accuracy/efficiency trade-off of
Fig. 4 is visible.
"""

import argparse

from repro.core.overlap_search import select_overlap_width
from repro.hardware.pe import pe_for_strategy
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import EvalConfig, evaluate_perplexity
from repro.llm.zoo import default_corpus, load_inference_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="Llama-7B")
    parser.add_argument("--mantissa-bits", type=int, default=6)
    parser.add_argument("--overhead-weight", type=float, default=0.5,
                        help="w in Algorithm 1: 0 = accuracy only, 1 = hardware only")
    args = parser.parse_args()

    corpus = default_corpus()
    model = load_inference_model(args.model, corpus=corpus)
    evaluation = EvalConfig(max_batches=3)

    def ppl_fn(config):
        model.set_scheme(QuantizationScheme.from_format(config))
        return evaluate_perplexity(model, corpus, evaluation)

    def overhead_fn(config):
        return pe_for_strategy(config).area_um2()

    result = select_overlap_width(
        mantissa_bits=args.mantissa_bits,
        ppl_fn=ppl_fn,
        overhead_fn=overhead_fn,
        overhead_weight=args.overhead_weight,
    )

    print(f"Algorithm 1 sweep for BBFP({args.mantissa_bits}, o) on {args.model} "
          f"(overhead weight w = {args.overhead_weight}):")
    print(f"  {'o':>2s}  {'PPL':>9s}  {'PE area':>9s}  {'score':>7s}")
    for candidate in result.candidates:
        marker = "  <== selected" if candidate.overlap_bits == result.best_overlap else ""
        print(f"  {candidate.overlap_bits:2d}  {candidate.ppl:9.3f}  {candidate.overhead:9.1f}"
              f"  {candidate.score:7.3f}{marker}")
    print(f"\nSelected configuration: {result.best_config.name}")


if __name__ == "__main__":
    main()
