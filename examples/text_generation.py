"""Generate text from a quantised (simulated) LLM — the qualitative check.

Run with::

    python examples/text_generation.py [--model Llama-1B] [--tokens 120]

Perplexity (Table II) quantifies quantisation damage; this script shows it.
It loads one zoo model, takes a prompt from the held-out corpus and generates
a continuation under several schemes: the FP reference, BBFP(6,3) and
BBFP(3,1), vanilla BFP4 and INT4.  Coarse formats that destroy small and
moderate values (the paper's argument against max-exponent alignment) produce
visibly degenerate text long before the perplexity table makes the damage
obvious.
"""

import argparse

from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.core.integer import IntQuantConfig
from repro.llm.generation import GenerationConfig, generate_text, sequence_log_likelihood
from repro.llm.inference import QuantizationScheme
from repro.llm.zoo import default_corpus, load_inference_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="Llama-1B",
                        help="zoo model name (Llama-1B...65B, OPT-1.3B...66B)")
    parser.add_argument("--tokens", type=int, default=120, help="characters to generate")
    parser.add_argument("--temperature", type=float, default=0.8)
    parser.add_argument("--fast", action="store_true", help="smaller corpus")
    args = parser.parse_args()

    corpus = default_corpus(fast=args.fast)
    print(f"Loading {args.model} (training on first use, cached afterwards)...")
    model = load_inference_model(args.model, corpus=corpus)

    prompt = corpus.tokenizer.decode(corpus.valid_tokens[:48])
    config = GenerationConfig(max_new_tokens=args.tokens, temperature=args.temperature,
                              top_k=12, seed=7)
    schemes = [
        QuantizationScheme.fp_reference(),
        QuantizationScheme.from_format(BBFPConfig(6, 3)),
        QuantizationScheme.from_format(BBFPConfig(3, 1)),
        QuantizationScheme.from_format(BFPConfig(4)),
        QuantizationScheme.from_format(IntQuantConfig(4)),
    ]

    print(f'\nPrompt: "{prompt}"\n')
    reference_tokens = None
    for scheme in schemes:
        model.set_scheme(scheme)
        text = generate_text(model, corpus, prompt, config)
        continuation = text[len(prompt):]
        print(f"--- {scheme.name} ---")
        print(f'  "{continuation}"')
        if reference_tokens is None:
            reference_tokens = corpus.tokenizer.encode(text)
        else:
            score = sequence_log_likelihood(model, reference_tokens)
            print(f"  (log-likelihood this scheme assigns to the FP continuation: {score:.1f})")
        print()
    model.set_scheme(QuantizationScheme.fp_reference())

    print(
        "Reading: BBFP(6,3) continues essentially like the FP reference, BBFP(3,1) stays "
        "coherent, while BFP4 and INT4 drift because the max-exponent alignment (or the "
        "integer clipping) erases the moderate values that carry most of the signal."
    )


if __name__ == "__main__":
    main()
