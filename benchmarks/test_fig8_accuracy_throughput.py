"""Benchmark + regeneration of Fig. 8 (iso-area accuracy vs throughput)."""

from conftest import emit

from repro.accelerator.metrics import iso_area_design_points
from repro.experiments import fig8_accuracy_throughput
from repro.experiments.common import FIG8_STRATEGIES


def test_fig8_iso_area_kernel(benchmark):
    """Times the iso-area design-point computation across all eleven strategies."""
    points = benchmark(lambda: iso_area_design_points(FIG8_STRATEGIES))
    assert len(points) == len(FIG8_STRATEGIES)


def test_fig8_full_sweep(benchmark, fast_mode):
    """Regenerates Fig. 8 (timed once) and checks the paper's two headline comparisons."""
    result = benchmark.pedantic(
        lambda: fig8_accuracy_throughput.run(fast=fast_mode), rounds=1, iterations=1
    )
    emit(result)
    rows = {row["strategy"]: row for row in result.rows}

    # BBFP(3,x) matches Oltron's throughput class (both 3-bit multipliers)...
    assert rows["BBFP(3,1)"]["relative_throughput"] > 0.7 * rows["Oltron"]["relative_throughput"]
    # ...while being clearly more accurate on the outlier-heavy Llama family
    # (the paper reports a 22% average accuracy improvement).
    assert rows["BBFP(3,1)"]["avg_llama_ppl"] < rows["Oltron"]["avg_llama_ppl"]

    # BBFP(3,x) beats BFP4's throughput at comparable (or better) accuracy
    # (the paper reports ~40% higher throughput at similar accuracy).
    assert rows["BBFP(3,1)"]["relative_throughput"] > rows["BFP4"]["relative_throughput"]
    assert rows["BBFP(3,1)"]["avg_llama_ppl"] <= rows["BFP4"]["avg_llama_ppl"] * 1.1

    # Oltron-style fixed outlier budgets work better on the OPT-like family.
    assert rows["Oltron"]["avg_opt_ppl"] < rows["Oltron"]["avg_llama_ppl"]

    # Wider BBFP formats trade throughput for accuracy monotonically.
    assert rows["BBFP(6,3)"]["avg_llama_ppl"] <= rows["BBFP(4,2)"]["avg_llama_ppl"] * 1.02
    assert rows["BBFP(6,3)"]["relative_throughput"] < rows["BBFP(4,2)"]["relative_throughput"]
