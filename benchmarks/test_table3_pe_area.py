"""Benchmark + regeneration of Table III (PE area per quantisation strategy)."""

from conftest import emit

from repro.core.bbfp import BBFPConfig
from repro.experiments import table3_pe_area
from repro.hardware.pe import pe_for_strategy


def test_table3_pe_area(benchmark):
    """Times PE costing and regenerates the normalised Table III comparison."""
    benchmark(lambda: pe_for_strategy(BBFPConfig(6, 3)).area_um2())
    result = emit(table3_pe_area.run())
    norm = {row["strategy"]: row["normalised_area"] for row in result.rows}
    assert norm["BBFP(6,3)"] == 1.0
    assert norm["Oltron"] < norm["BFP4"] < norm["BFP6"]
    assert norm["BBFP(3,1)"] < norm["BBFP(4,2)"] < norm["BBFP(6,3)"]
    # Every BBFP/BFP entry lands within 0.1 of the paper's normalised value.
    for row in result.rows:
        assert abs(row["normalised_area"] - row["paper_normalised"]) < 0.11
