"""Fleet scaling under the virtual clock (the repro.cluster acceptance bar).

A single engine's throughput is bounded by its roofline-priced token rate;
a fleet multiplies it.  This suite replays one identical saturating Poisson
trace through a 1-replica and a 4-replica ``least_loaded`` cluster on
virtual clocks and asserts (a) the fleet achieves >= 3x the single
replica's decode tokens/s — near-linear scaling, the cluster layer being a
real capacity multiplier rather than bookkeeping — and (b) re-running the
4-replica simulation with the same seed reproduces the ``ClusterReport``
exactly, bit for bit: the co-simulation is deterministic.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import ExperimentResult
from repro.cluster import ClusterConfig, ClusterSimulation, ReplicaConfig, homogeneous_fleet
from repro.cluster.bench import derived_slo, saturating_arrival_rate
from repro.llm.config import ModelConfig
from repro.llm.inference import InferenceModel
from repro.llm.transformer import TransformerLM
from repro.serve.workload import WorkloadConfig, generate_requests

from conftest import emit

NUM_REQUESTS = 32
REPLICA = ReplicaConfig(max_batch_size=4)


@pytest.fixture(scope="module")
def fleet_model():
    """A fast-model-sized random-weight checkpoint (scheduling only, untrained)."""
    config = ModelConfig(name="cluster-bench", vocab_size=64, d_model=64, n_heads=4,
                         n_layers=2, d_ff=192, max_seq_len=64, arch="llama", seed=0)
    return InferenceModel(config, TransformerLM(config).state_dict())


@pytest.fixture(scope="module")
def saturating_trace(fleet_model):
    """One Poisson trace offered at 16x a single replica's roofline capacity."""
    shape = WorkloadConfig(num_requests=NUM_REQUESTS, prompt_tokens=(4, 12),
                           new_tokens=(3, 10), seed=0)
    rate = saturating_arrival_rate(fleet_model.config, REPLICA, shape, utilization=16.0)
    import dataclasses

    workload = dataclasses.replace(shape, arrival_rate=rate)
    return workload, generate_requests(fleet_model.config.vocab_size, workload)


def run_fleet(model, workload, requests, num_replicas, seed=0):
    slo = derived_slo(model.config, REPLICA, workload)
    config = ClusterConfig(replicas=homogeneous_fleet(
        num_replicas, max_batch_size=REPLICA.max_batch_size),
        policy="least_loaded", slo=slo, seed=seed)
    return ClusterSimulation(model, config).run(requests)


def test_four_replicas_scale_decode_throughput_3x(fleet_model, saturating_trace):
    workload, requests = saturating_trace
    single = run_fleet(fleet_model, workload, requests, 1).summary()
    fleet = run_fleet(fleet_model, workload, requests, 4).summary()
    speedup = fleet["decode_tokens_per_s"] / single["decode_tokens_per_s"]
    emit(ExperimentResult(
        experiment_id="Cluster-Scaling",
        title="Decode tokens/s: one replica vs a 4-replica least_loaded fleet",
        rows=[{
            "replicas": n,
            "decode_tokens_per_s": s["decode_tokens_per_s"],
            "goodput_rps": s["goodput_rps"],
            "slo_attainment": s["slo_attainment"],
            "load_imbalance": s["load_imbalance"],
            "elapsed_s": s["elapsed_s"],
        } for n, s in ((1, single), (4, fleet))],
        notes=(
            "Identical saturating Poisson trace (16x one replica's roofline capacity), "
            "virtual clocks.  The fleet divides the work nearly evenly (load_imbalance "
            "close to 1.0), so decode throughput scales close to the replica count — the "
            "acceptance bar for the cluster layer is >= 3x at 4 replicas."
        ),
    ))
    assert single["requests"] == fleet["requests"] == NUM_REQUESTS
    assert speedup >= 3.0, f"4-replica fleet only {speedup:.2f}x one replica"


def test_same_seed_reproduces_the_cluster_report_exactly(fleet_model, saturating_trace):
    workload, requests = saturating_trace
    first = run_fleet(fleet_model, workload, requests, 4, seed=7)
    second = run_fleet(fleet_model, workload, requests, 4, seed=7)
    assert first.to_dict() == second.to_dict()


def test_simulation_step_throughput(benchmark, fleet_model, saturating_trace):
    """pytest-benchmark timing of one full 4-replica co-simulation run."""
    workload, requests = saturating_trace

    def simulate():
        return run_fleet(fleet_model, workload, requests, 4)

    report = benchmark(simulate)
    assert report.summary()["requests"] == NUM_REQUESTS
