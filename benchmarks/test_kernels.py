"""Micro-benchmarks of the core kernels (quantisation, block matmul, LUT softmax).

These are not tied to a specific paper table; they document the throughput of
the Python implementation so users can size their own experiments.
"""

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig, bbfp_quantize_dequantize, quantize_bbfp
from repro.core.blockfp import BFPConfig, bfp_quantize_dequantize
from repro.core.dotproduct import bbfp_matmul
from repro.nonlinear.lut import LUTNonlinear
from repro.quant import get_quantizer

_RNG = np.random.default_rng(0)
_ACTIVATION = _RNG.standard_normal((256, 512))
_WEIGHT = _RNG.standard_normal((512, 256))
#: Small enough that per-call dispatch overhead would dominate if the
#: registry path re-parsed specs or re-built quantizers per call.
_SMALL_BLOCK = _RNG.standard_normal(256)


@pytest.mark.parametrize("config", [BBFPConfig(3, 1), BBFPConfig(4, 2), BBFPConfig(6, 3)],
                         ids=lambda c: c.name)
def test_bbfp_quantisation_throughput(benchmark, config):
    benchmark(lambda: bbfp_quantize_dequantize(_ACTIVATION, config, axis=-1))


def test_bfp_quantisation_throughput(benchmark):
    benchmark(lambda: bfp_quantize_dequantize(_ACTIVATION, BFPConfig(4), axis=-1))


def test_bbfp_encode_only_throughput(benchmark):
    benchmark(lambda: quantize_bbfp(_ACTIVATION, BBFPConfig(4, 2), axis=-1))


def test_bbfp_matmul_throughput(benchmark):
    benchmark(lambda: bbfp_matmul(_ACTIVATION, _WEIGHT, BBFPConfig(4, 2)))


def test_lut_softmax_throughput(benchmark):
    lut = LUTNonlinear(BBFPConfig(10, 5), address_bits=7)
    scores = _RNG.normal(0, 4, size=(64, 256))
    benchmark(lambda: lut.softmax(scores, axis=-1))


# --------------------------------------------------------------------------
# Registry dispatch vs direct free-function calls.  The three pairs below
# share the same workload; compare their numbers to read off the overhead of
# the memoized repro.quant path (spec parse + instance lookup per call).  On
# the hot-loop-sized block the direct and registry rows should be within
# noise of each other — the registry resolves "BBFP(4,2)" to a cached
# quantizer, so per-call work is one dict lookup.

_DIRECT_CONFIG = BBFPConfig(4, 2)


def test_dispatch_direct_call_small_block(benchmark):
    benchmark(lambda: bbfp_quantize_dequantize(_SMALL_BLOCK, _DIRECT_CONFIG, axis=-1))


def test_dispatch_registry_by_spec_small_block(benchmark):
    benchmark(lambda: get_quantizer("BBFP(4,2)").quantize_dequantize(_SMALL_BLOCK, axis=-1))


def test_dispatch_registry_by_config_small_block(benchmark):
    benchmark(lambda: get_quantizer(_DIRECT_CONFIG).quantize_dequantize(_SMALL_BLOCK, axis=-1))


def test_dispatch_registry_large_tensor(benchmark):
    quantizer = get_quantizer("BBFP(4,2)")
    benchmark(lambda: quantizer.quantize_dequantize(_ACTIVATION, axis=-1))
