"""Micro-benchmarks of the core kernels (quantisation, block matmul, LUT softmax).

These are not tied to a specific paper table; they document the throughput of
the Python implementation so users can size their own experiments.
"""

import numpy as np
import pytest

from repro.core.bbfp import BBFPConfig, bbfp_quantize_dequantize, quantize_bbfp
from repro.core.blockfp import BFPConfig, bfp_quantize_dequantize
from repro.core.dotproduct import bbfp_matmul
from repro.nonlinear.lut import LUTNonlinear

_RNG = np.random.default_rng(0)
_ACTIVATION = _RNG.standard_normal((256, 512))
_WEIGHT = _RNG.standard_normal((512, 256))


@pytest.mark.parametrize("config", [BBFPConfig(3, 1), BBFPConfig(4, 2), BBFPConfig(6, 3)],
                         ids=lambda c: c.name)
def test_bbfp_quantisation_throughput(benchmark, config):
    benchmark(lambda: bbfp_quantize_dequantize(_ACTIVATION, config, axis=-1))


def test_bfp_quantisation_throughput(benchmark):
    benchmark(lambda: bfp_quantize_dequantize(_ACTIVATION, BFPConfig(4), axis=-1))


def test_bbfp_encode_only_throughput(benchmark):
    benchmark(lambda: quantize_bbfp(_ACTIVATION, BBFPConfig(4, 2), axis=-1))


def test_bbfp_matmul_throughput(benchmark):
    benchmark(lambda: bbfp_matmul(_ACTIVATION, _WEIGHT, BBFPConfig(4, 2)))


def test_lut_softmax_throughput(benchmark):
    lut = LUTNonlinear(BBFPConfig(10, 5), address_bits=7)
    scores = _RNG.normal(0, 4, size=(64, 256))
    benchmark(lambda: lut.softmax(scores, axis=-1))
