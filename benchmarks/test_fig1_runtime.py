"""Benchmark + regeneration of Fig. 1(b) (linear vs nonlinear runtime breakdown)."""

from conftest import emit

from repro.accelerator import AcceleratorConfig, AcceleratorSimulator, decoder_workload
from repro.core.bbfp import BBFPConfig
from repro.experiments import fig1_runtime


def test_fig1b_runtime_breakdown(benchmark):
    """Times one simulator run and regenerates the sequence-length sweep."""
    config = AcceleratorConfig(strategy=BBFPConfig(4, 2))
    simulator = AcceleratorSimulator(config, nonlinear_style="fp32")
    workload = decoder_workload(fig1_runtime.LLAMA_7B_DIMENSIONS, 512, phase="prefill")
    benchmark(lambda: simulator.run(workload))

    result = emit(fig1_runtime.run())
    shares = [row["nonlinear_share_fp32"] for row in result.rows]
    # Paper shape: the nonlinear share grows monotonically with sequence length
    # under an FP32-style unit and stays small under the BBFP unit.
    assert shares == sorted(shares)
    assert shares[-1] > 3 * shares[0]
    assert all(row["nonlinear_share_bbal"] < row["nonlinear_share_fp32"] for row in result.rows)
