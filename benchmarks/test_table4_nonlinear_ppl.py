"""Benchmark + regeneration of Table IV (nonlinear layers on the segmented-LUT unit)."""

from conftest import emit

from repro.core.bbfp import BBFPConfig
from repro.experiments import table4_nonlinear_ppl
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import EvalConfig, evaluate_perplexity
from repro.nonlinear.lut import lut_function, lut_softmax


def test_table4_lut_inference_kernel(benchmark, llama7b_model, corpus):
    """Times one perplexity evaluation with both nonlinear operators on the BBFP LUT unit."""
    scheme = QuantizationScheme.fp_reference().with_nonlinear(
        softmax_fn=lut_softmax(BBFPConfig(10, 5)),
        nonlinear_fn=lut_function(BBFPConfig(10, 5)),
    )

    def evaluate():
        llama7b_model.set_scheme(scheme)
        return evaluate_perplexity(llama7b_model, corpus, EvalConfig(max_batches=1))

    assert benchmark(evaluate) > 1.0
    llama7b_model.set_scheme(QuantizationScheme.fp_reference())


def test_table4_full_sweep(benchmark, fast_mode):
    """Regenerates Table IV (timed once): BBFP(10,5) tracks FP32; BFP10 is strictly worse."""
    result = benchmark.pedantic(
        lambda: table4_nonlinear_ppl.run(fast=fast_mode), rounds=1, iterations=1
    )
    emit(result)

    rows = {(row["data_format"], row["nonlinear_operation"]): row for row in result.rows}
    model_columns = [k for k in result.rows[0] if k not in ("data_format", "nonlinear_operation")]
    fp32 = rows[("FP32", "Altogether")]
    for model in model_columns:
        for operation in ("Softmax only", "SILU only", "Altogether"):
            bbfp = rows[("BBFP(10,5)", operation)][model]
            bfp = rows[("BFP10", operation)][model]
            assert bbfp <= fp32[model] * 1.15, (model, operation)
            # BFP10 is never better than BBFP(10,5); ties (within evaluation
            # noise) happen for the mild SiLU-only configuration.
            assert bfp >= bbfp * 0.999, (model, operation)
        # The combined BFP10 configuration shows a visible degradation.
        assert rows[("BFP10", "Altogether")][model] > fp32[model]
