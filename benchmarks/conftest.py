"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper table/figure through its experiment
driver, saves the rows under ``results/`` and times a representative kernel
with pytest-benchmark.  Model-backed benchmarks reuse the trained zoo cache
(``.cache/models``); the first run therefore trains the zoo, subsequent runs
are fast.  Set ``REPRO_FAST=1`` to run on the reduced model set.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.reporting import ExperimentResult, save_result

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"


def emit(result: ExperimentResult) -> ExperimentResult:
    """Persist an experiment result and echo it to stdout (visible with ``-s``)."""
    save_result(result, RESULTS_DIR)
    print()
    print(result.to_text())
    return result


@pytest.fixture(scope="session")
def fast_mode() -> bool:
    return os.environ.get("REPRO_FAST", "0") == "1"


@pytest.fixture(scope="session")
def corpus():
    from repro.llm.zoo import default_corpus

    return default_corpus()


@pytest.fixture(scope="session")
def llama7b_model(corpus):
    from repro.llm.zoo import load_inference_model

    return load_inference_model("Llama-7B", corpus=corpus)
