"""Observability overhead on the serve decode path (the pay-for-what-you-use bar).

The telemetry layer is only allowed on the hot path because it is cheap:
metric handles are resolved once at engine construction, phase timers are
``perf_counter`` brackets guarded by a single ``is not None`` test, spans are
emitted once per request at terminal time from timestamps the engine already
tracks, and a disabled registry is a null object whose ``inc``/``observe``
are empty methods.  This suite prices that claim: the identical serve
schedule runs on an uninstrumented engine, an engine with telemetry
explicitly disabled, and an engine with everything enabled (metrics, tracer,
profiler, flight recorder).  Acceptance: enabled keeps >= 95% of bare decode
throughput, disabled stays within noise (>= 97%).

Repeats alternate between the three modes (rather than timing each mode in a
block) so CPU frequency drift penalises all modes equally; each mode keeps
its best repeat.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.llm.config import ModelConfig
from repro.llm.inference import InferenceModel
from repro.llm.transformer import TransformerLM
from repro.obs import Observability
from repro.serve.engine import EngineConfig, Request, ServeEngine, VirtualClock

import pytest

from conftest import emit

PROMPT_LEN = 48
DECODE_TOKENS = 24
NUM_REQUESTS = 12
REPEATS = 4

ENABLED_FLOOR = 0.95    # full telemetry may cost at most 5% decode throughput
DISABLED_FLOOR = 0.97   # disabled telemetry must be within measurement noise


@pytest.fixture(scope="module")
def bench_model():
    """A fast-model-sized random-weight checkpoint (throughput only, untrained)."""
    config = ModelConfig(name="obs-bench", vocab_size=64, d_model=128, n_heads=4,
                         n_layers=3, d_ff=384, max_seq_len=PROMPT_LEN + DECODE_TOKENS + 8,
                         arch="llama", seed=0)
    return InferenceModel(config, TransformerLM(config).state_dict())


def _prompts():
    rng = np.random.default_rng(7)
    return [rng.integers(0, 64, size=PROMPT_LEN).tolist()
            for _ in range(NUM_REQUESTS)]


def _decode_tokens_per_second(model, prompts, obs) -> float:
    """Wall seconds to drain one fixed schedule; returns decode tokens/s.

    The virtual clock makes the schedule itself deterministic (all arrivals
    at t=0, identical admission order across modes); the measurement is the
    real time the run took.
    """
    engine = ServeEngine(
        model,
        EngineConfig(max_batch_size=4, kv_backend="paged", kv_page_size=8),
        clock=VirtualClock(time_per_token=1e-4),
        obs=obs,
    )
    for index, prompt in enumerate(prompts):
        engine.submit(Request(request_id=index, prompt_tokens=prompt,
                              max_new_tokens=DECODE_TOKENS, arrival_time=0.0))
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    report = engine.report()
    # first token of each request is sampled at prefill, the rest by decode
    assert report.decode_tokens == NUM_REQUESTS * (DECODE_TOKENS - 1)
    return report.decode_tokens / elapsed


def test_observability_overhead_within_budget(bench_model):
    prompts = _prompts()
    modes = {
        "bare": lambda: None,                       # engine's internal null default
        "disabled": Observability.disabled,         # explicit no-op bundle
        "enabled": lambda: Observability.enabled(), # metrics + spans + profiler + recorder
    }
    best = dict.fromkeys(modes, 0.0)
    for _ in range(REPEATS):
        for name, factory in modes.items():
            best[name] = max(best[name],
                             _decode_tokens_per_second(bench_model, prompts, factory()))
    enabled_ratio = best["enabled"] / best["bare"]
    disabled_ratio = best["disabled"] / best["bare"]
    emit(ExperimentResult(
        experiment_id="Serve-Obs-Overhead",
        title="Decode throughput with full observability vs uninstrumented",
        rows=[{
            "bare_decode_tokens_per_s": best["bare"],
            "disabled_decode_tokens_per_s": best["disabled"],
            "enabled_decode_tokens_per_s": best["enabled"],
            "disabled_over_bare": disabled_ratio,
            "enabled_over_bare": enabled_ratio,
        }],
        notes=(
            "All three runs drain the identical virtual-clock serve schedule; the wall "
            "time of the run is the measurement.  'enabled' books phase timers, "
            "per-request spans, counters/histograms and a flight recorder; 'disabled' "
            "pays only one is-not-None test per instrumentation site.  Acceptance: "
            f"enabled >= {ENABLED_FLOOR:.0%} of bare decode throughput, disabled >= "
            f"{DISABLED_FLOOR:.0%} (within noise).  Best-of-{REPEATS} alternating repeats."
        ),
    ))
    assert enabled_ratio >= ENABLED_FLOOR, (
        f"full telemetry costs {1 - enabled_ratio:.1%} of decode throughput "
        f"(budget {1 - ENABLED_FLOOR:.0%})")
    assert disabled_ratio >= DISABLED_FLOOR, (
        f"disabled telemetry is not free: {1 - disabled_ratio:.1%} below bare "
        f"(noise bar {1 - DISABLED_FLOOR:.0%})")


def test_enabled_run_actually_observed(bench_model):
    """Guard the guard: the 'enabled' leg must really exercise the telemetry.

    If a refactor silently stopped wiring the registry/tracer/profiler into
    the engine, the overhead benchmark would pass vacuously — this test
    pins the instrumented run to non-empty telemetry on the same schedule.
    """
    obs = Observability.enabled()
    _decode_tokens_per_second(bench_model, _prompts(), obs)
    snapshot = obs.registry.snapshot()
    assert snapshot["engine_decode_tokens_total"] == NUM_REQUESTS * (DECODE_TOKENS - 1)
    spans = [e for e in obs.tracer.events() if e.get("ph") == "X"]
    assert len(spans) == 3 * NUM_REQUESTS  # queued + prefill + decode per request
    hot = obs.profiler.hotspots()
    assert any(row["phase"] == "decode_forward" and row["calls"] > 0 for row in hot)
