"""End-to-end throughput of radix prefix sharing (the paged-KV speedup).

The dense cache prefills every request's whole prompt, even when 80 % of the
trace's prompt tokens are one of two shared prefixes; the paged cache serves
every full page of a cached prefix from the radix index and prefills only
the unique suffix.  This suite replays one 80 %-shared-prefix trace through
both backends at the *same* KV memory budget and asserts the paged engine
reaches at least 2x the dense decode tokens/s — the acceptance bar for
prefix sharing being a real optimisation rather than bookkeeping — and that
with pages at least as large as ``max_seq_len`` (one page per slot, nothing
shareable) the paged engine reproduces the dense report bit-for-bit.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.reporting import ExperimentResult
from repro.llm.config import ModelConfig
from repro.llm.inference import InferenceModel
from repro.llm.transformer import TransformerLM
from repro.serve.engine import EngineConfig, ServeEngine, VirtualClock
from repro.serve.workload import SharedPrefixConfig, generate_shared_prefix_requests

from conftest import emit

PAGE_SIZE = 8
MAX_SEQ_LEN = 160
SPEEDUP_BAR = 2.0

#: Every request draws one of two 96-token shared prefixes plus a unique
#: suffix: 80 % of the trace's prompt tokens are shared prefix.
WORKLOAD = SharedPrefixConfig(num_requests=48, arrival_rate=0.0, num_prefixes=2,
                              prefix_tokens=96, unique_tokens=(16, 32),
                              new_tokens=(2, 3), shared_fraction=1.0, seed=0)


@pytest.fixture(scope="module")
def bench_model():
    """A fast-model-sized random-weight checkpoint (throughput only, untrained)."""
    config = ModelConfig(name="prefix-bench", vocab_size=64, d_model=128, n_heads=4,
                         n_layers=3, d_ff=384, max_seq_len=MAX_SEQ_LEN,
                         arch="llama", seed=0)
    return InferenceModel(config, TransformerLM(config).state_dict())


@pytest.fixture(scope="module")
def trace(bench_model):
    requests = generate_shared_prefix_requests(bench_model.config.vocab_size, WORKLOAD)
    shared = WORKLOAD.prefix_tokens * WORKLOAD.num_requests
    total = sum(len(r.prompt_tokens) for r in requests)
    assert 0.78 <= shared / total <= 0.82  # the trace is really ~80 % shared prefix
    return requests


def _engine_config(backend, page_size=PAGE_SIZE):
    # equal memory budget: the paged pool defaults to max_batch_size *
    # ceil(max_seq_len / page_size) pages — exactly the dense pre-allocation
    return EngineConfig(max_batch_size=4, kv_backend=backend, kv_page_size=page_size)


def _timed_run(model, trace, backend, clock=None, repeats=1):
    """Best-of-``repeats`` wall time (one fresh engine each), plus one report."""
    report, best = None, float("inf")
    for _ in range(repeats):
        engine = ServeEngine(model, _engine_config(backend), clock=clock)
        start = time.perf_counter()
        report = engine.run(trace)
        best = min(best, time.perf_counter() - start)
    return report, best


def test_shared_prefix_trace_doubles_decode_throughput(bench_model, trace):
    # alternate backends across repeats so both see the same machine state,
    # then keep the best of each — robust to scheduling noise on a loaded
    # CI box, like the best-of measurement in test_serve_throughput.py
    dense_s = paged_s = float("inf")
    for _ in range(3):
        dense_report, elapsed = _timed_run(bench_model, trace, "contiguous")
        dense_s = min(dense_s, elapsed)
        paged_report, elapsed = _timed_run(bench_model, trace, "paged")
        paged_s = min(paged_s, elapsed)
    dense, paged = dense_report.summary(), paged_report.summary()

    # both backends complete the identical trace with identical greedy tokens
    tokens = lambda report: {c.request.request_id: c.generated_tokens
                             for c in report.completed}
    assert tokens(paged_report) == tokens(dense_report)
    assert paged_report.decode_tokens == dense_report.decode_tokens

    # identical decode-token counts over best-of wall times: the end-to-end
    # throughput ratio, insulated from one-off scheduling hiccups
    dense_tps = dense_report.decode_tokens / dense_s
    paged_tps = paged_report.decode_tokens / paged_s
    speedup = paged_tps / dense_tps
    emit(ExperimentResult(
        experiment_id="Bench-Prefix-Sharing",
        title="Paged KV prefix sharing vs dense prefill on an 80%-shared-prefix trace",
        rows=[
            {"kv_cache_layout": "contiguous", "kv_hit_rate": dense["kv_hit_rate"],
             "decode_tokens_per_s": dense_tps,
             "prefill_tokens": dense_report.prefill_tokens,
             "wall_time_s": dense_s, "speedup": 1.0},
            {"kv_cache_layout": f"paged (page={PAGE_SIZE})",
             "kv_hit_rate": paged["kv_hit_rate"],
             "decode_tokens_per_s": paged_tps,
             "prefill_tokens": paged_report.prefill_tokens,
             "wall_time_s": paged_s, "speedup": speedup},
        ],
        columns=["kv_cache_layout", "kv_hit_rate", "decode_tokens_per_s",
                 "prefill_tokens", "wall_time_s", "speedup"],
        notes=(
            "Identical trace, identical greedy tokens, equal KV memory budget; the "
            "only difference is that the paged engine serves cached prefix pages "
            "from the radix index instead of re-prefilling them.  decode_tokens_per_s "
            "divides the same decode-token count by the best-of-3 wall time of the "
            "whole run, so skipped prefill shows up directly as end-to-end speedup."
        ),
        metadata={"workload": {"num_requests": WORKLOAD.num_requests,
                               "num_prefixes": WORKLOAD.num_prefixes,
                               "prefix_tokens": WORKLOAD.prefix_tokens,
                               "shared_fraction": WORKLOAD.shared_fraction},
                  "page_size": PAGE_SIZE, "speedup_bar": SPEEDUP_BAR},
    ))
    assert paged_report.reused_tokens > 0
    assert speedup >= SPEEDUP_BAR, (
        f"prefix sharing speedup {speedup:.2f}x below the {SPEEDUP_BAR}x bar "
        f"(dense {dense_tps:.1f} tok/s, paged {paged_tps:.1f} tok/s)"
    )


def test_page_size_of_max_seq_len_reproduces_the_dense_report(bench_model, trace):
    """One page per slot leaves nothing shareable: paged == dense, bit for bit."""
    dense_report, _ = _timed_run(bench_model, trace, "contiguous",
                                 clock=VirtualClock(), repeats=1)
    engine = ServeEngine(bench_model, _engine_config("paged", page_size=MAX_SEQ_LEN),
                         clock=VirtualClock())
    paged_report = engine.run(trace)
    assert paged_report.reused_tokens == 0
    paging_keys = ("peak_pages_in_use", "kv_peak_memory_mib")
    dense = {k: v for k, v in dense_report.summary().items() if k not in paging_keys}
    paged = {k: v for k, v in paged_report.summary().items() if k not in paging_keys}
    assert paged == dense
    for d, p in zip(dense_report.completed, paged_report.completed):
        assert d.request.request_id == p.request.request_id
        assert d.generated_tokens == p.generated_tokens
        assert (d.arrival_time, d.admitted_time, d.first_token_time, d.finish_time) == \
            (p.arrival_time, p.admitted_time, p.first_token_time, p.finish_time)
