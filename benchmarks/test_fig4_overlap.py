"""Benchmark + regeneration of Fig. 4 (overlap-width selection via Algorithm 1)."""

from conftest import emit

from repro.core.bbfp import BBFPConfig
from repro.experiments import fig4_overlap
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import EvalConfig, evaluate_perplexity


def test_fig4_overlap_width_selection(benchmark, llama7b_model, corpus, fast_mode):
    """Times one candidate evaluation and runs the full Algorithm 1 sweep."""
    scheme = QuantizationScheme.from_format(BBFPConfig(6, 2))
    evaluation = EvalConfig(max_batches=1)

    def evaluate_candidate():
        llama7b_model.set_scheme(scheme)
        return evaluate_perplexity(llama7b_model, corpus, evaluation)

    benchmark(evaluate_candidate)
    llama7b_model.set_scheme(QuantizationScheme.fp_reference())

    result = emit(fig4_overlap.run(fast=fast_mode))
    overheads = [row["overhead"] for row in result.rows]
    ppls = [row["ppl"] for row in result.rows]
    # Paper shape: overhead falls monotonically with wider overlap while the
    # best PPL sits at an intermediate overlap width; Algorithm 1 picks one
    # candidate as selected.
    assert overheads == sorted(overheads, reverse=True)
    assert min(ppls) <= ppls[0]
    assert sum(row["selected"] for row in result.rows) == 1
