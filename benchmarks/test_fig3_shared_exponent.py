"""Benchmark + regeneration of Fig. 3 (shared-exponent selection vs activation MSE)."""

import numpy as np
from conftest import emit

from repro.core.bbfp import BBFPConfig, bbfp_quantize_dequantize
from repro.experiments import fig3_shared_exponent


def test_fig3_shared_exponent_sweep(benchmark, rng=np.random.default_rng(0)):
    """Times one activation quantisation pass and regenerates the per-layer MSE table."""
    activation = rng.standard_normal((512, 64))
    activation[:, ::16] *= 20.0
    benchmark(lambda: bbfp_quantize_dequantize(activation, BBFPConfig(4, 2), axis=-1))

    result = emit(fig3_shared_exponent.run())
    average = next(row for row in result.rows if row["layer"] == "Avg.")
    # Paper shape: Max-2 (Eq. 9) < Max-1 < BFP4, and Max-3 is the worst BBFP alignment.
    assert average["Max-2"] < average["Max-1"]
    assert average["Max-2"] < average["BFP4"]
    assert average["Max-3"] > average["Max-1"]
