"""Benchmark + regeneration of Fig. 1(a) (weight/activation distributions)."""

from conftest import emit

from repro.analysis.distributions import model_tensor_stats
from repro.experiments import fig1_distribution


def test_fig1a_distribution(benchmark, corpus):
    """Times the statistics collection and regenerates the Fig. 1(a) summary."""
    from repro.llm.zoo import load_inference_model

    model = load_inference_model("OPT-6.7B", corpus=corpus)
    benchmark(lambda: model_tensor_stats(model, corpus))
    result = emit(fig1_distribution.run())
    stats = {row["name"]: row for row in result.rows}
    # Paper shape: activations are far heavier-tailed than weights.
    assert stats["activation"]["outlier_magnitude"] > stats["weight"]["outlier_magnitude"] * 0.8
    assert stats["activation"]["kurtosis"] > 3.0
    assert stats["activation"]["max_abs"] > stats["weight"]["max_abs"]
