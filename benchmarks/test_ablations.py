"""Benchmarks for the DESIGN.md ablations (carry chain, block size, LUT address width)."""

import numpy as np
from conftest import emit

from repro.core.bbfp import BBFPConfig
from repro.experiments import ablations
from repro.hardware.adders import sparse_partial_sum_adder
from repro.nonlinear.lut import LUTNonlinear


def test_ablation_carry_chain(benchmark):
    benchmark(lambda: sparse_partial_sum_adder(17, 4).gate_equivalents())
    result = emit(ablations.carry_chain_ablation())
    for row in result.rows:
        assert 0.05 < row["savings"] < 0.30
    savings = {row["format"]: row["savings"] for row in result.rows}
    assert savings["BBFP(8,4)"] > savings["BBFP(4,2)"]


def test_ablation_block_size(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(4096)
    benchmark(lambda: ablations.block_size_ablation(block_sizes=(32,)))
    result = emit(ablations.block_size_ablation())
    errors = [row["bbfp_relative_mse"] for row in result.rows]
    assert errors == sorted(errors)  # error grows with block size
    for row in result.rows:
        assert row["bbfp_relative_mse"] <= row["bfp_relative_mse"]


def test_ablation_lut_address_width(benchmark):
    rng = np.random.default_rng(0)
    scores = rng.normal(0, 4, size=(32, 64))
    lut = LUTNonlinear(BBFPConfig(10, 5), address_bits=7)
    benchmark(lambda: lut.softmax(scores, axis=-1))
    result = emit(ablations.lut_address_ablation())
    kls = [row["mean_kl_divergence"] for row in result.rows]
    assert kls == sorted(kls, reverse=True)  # fidelity improves with address width
