"""Benchmark + regeneration of Table V (nonlinear unit ADP / EDP / efficiency)."""

from conftest import emit

from repro.experiments import table5_nonlinear_eff
from repro.nonlinear.unit import NonlinearUnit


def test_table5_nonlinear_unit_comparison(benchmark):
    """Times the unit costing and regenerates the three-design comparison."""
    unit = NonlinearUnit()
    benchmark(lambda: unit.cost().efficiency())
    result = emit(table5_nonlinear_eff.run())
    by_name = {row["design"]: row for row in result.rows}
    ours = by_name["BBAL nonlinear unit (ours)"]
    high_precision = by_name["High-precision softmax [33]"]
    pseudo = by_name["Pseudo-softmax [32]"]
    # Paper shape: ours ~30x more efficient than [33]; [32] wins ADP but only
    # approximates softmax; ours is the only design covering SiLU/GELU.
    assert ours["efficiency"] > 10 * high_precision["efficiency"]
    assert pseudo["adp"] < ours["adp"]
    assert "silu" in ours["compatibility"]
