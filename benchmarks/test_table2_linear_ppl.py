"""Benchmark + regeneration of Table II (linear-layer quantisation perplexity)."""

from conftest import emit

from repro.core.bbfp import BBFPConfig
from repro.experiments import table2_linear_ppl
from repro.experiments.common import eval_config
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import evaluate_perplexity


def test_table2_single_model_evaluation_kernel(benchmark, llama7b_model, corpus):
    """Times the per-(model, scheme) perplexity evaluation that Table II repeats 12 x 11 times."""
    scheme = QuantizationScheme.from_format(BBFPConfig(4, 2))

    def evaluate():
        llama7b_model.set_scheme(scheme)
        return evaluate_perplexity(llama7b_model, corpus, eval_config())

    ppl = benchmark(evaluate)
    llama7b_model.set_scheme(QuantizationScheme.fp_reference())
    assert ppl > 1.0


def test_table2_full_sweep(benchmark, fast_mode):
    """Regenerates the full Table II (timed once) and checks the paper's orderings."""
    result = benchmark.pedantic(
        lambda: table2_linear_ppl.run(fast=fast_mode), rounds=1, iterations=1
    )
    emit(result)

    model_rows = [row for row in result.rows if row["model"] != "Average"]
    assert len(model_rows) in (4, 12)
    for row in model_rows:
        # BBFP never worse than the BFP of the same mantissa width (small tolerance
        # for evaluation noise).
        assert row["BBFP(4,2)"] <= row["BFP4"] * 1.10
        assert row["BBFP(6,3)"] <= row["BFP6"] * 1.05
        # BBFP(6,x) reaches FP16-level accuracy.
        assert row["BBFP(6,3)"] <= row["FP16"] * 1.10
        # The low-bit BBFP stays in a sane range (no Olive-style blow-up).
        assert row["BBFP(3,1)"] <= row["FP16"] * 2.0

    average = next(row for row in result.rows if row["model"] == "Average")
    # Outlier-aware baselines degrade more than BBFP(4,2) on average (the Llama
    # family drives this, mirroring the paper's 22%/30% accuracy claims).
    assert average["BBFP(4,2)"] <= average["Oltron"]
    assert average["BBFP(4,2)"] <= average["Olive"]

    # Oltron-style fixed outlier budgets suffer more on the Llama-like family
    # than on the OPT-like one (Fig. 8 discussion).
    llama_rows = [row for row in model_rows if row["model"].startswith("Llama")]
    opt_rows = [row for row in model_rows if row["model"].startswith("OPT")]
    if llama_rows and opt_rows:
        llama_oltron = sum(r["Oltron"] / r["FP16"] for r in llama_rows) / len(llama_rows)
        opt_oltron = sum(r["Oltron"] / r["FP16"] for r in opt_rows) / len(opt_rows)
        assert llama_oltron > opt_oltron
