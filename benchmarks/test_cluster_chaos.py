"""Chaos recovery in a 4-replica fleet (the repro.cluster.chaos acceptance bar).

One identical saturating Poisson trace is replayed through a 4-replica
``least_loaded`` fleet three ways: fault-free, with a single mid-run replica
crash recovered by retry-with-reroute, and with the same crash but retries
disabled.  The acceptance bars: (a) retry-with-reroute holds on to >= 70% of
the fault-free goodput — a crash costs capacity and re-prefills, not
correctness; (b) the no-retry baseline *measurably* loses requests — the
orphans really do die with the machine when nobody reroutes them; and
(c) with retries enabled, a sweep across every registered chaos profile ends
with zero lost requests and zero leaked KV pages on every surviving replica.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import ExperimentResult
from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    FaultEvent,
    ReplicaConfig,
    homogeneous_fleet,
    list_profiles,
)
from repro.cluster.bench import derived_slo, saturating_arrival_rate
from repro.cluster.chaos_bench import chaos_bench
from repro.llm.config import ModelConfig
from repro.llm.inference import InferenceModel
from repro.llm.transformer import TransformerLM
from repro.serve.workload import WorkloadConfig, generate_requests

from conftest import emit

NUM_REQUESTS = 32
NUM_REPLICAS = 4
REPLICA = ReplicaConfig(max_batch_size=4)


@pytest.fixture(scope="module")
def fleet_model():
    """A fast-model-sized random-weight checkpoint (scheduling only, untrained)."""
    config = ModelConfig(name="cluster-chaos", vocab_size=64, d_model=64, n_heads=4,
                         n_layers=2, d_ff=192, max_seq_len=64, arch="llama", seed=0)
    return InferenceModel(config, TransformerLM(config).state_dict())


@pytest.fixture(scope="module")
def saturating_trace(fleet_model):
    """One Poisson trace offered at 16x a single replica's roofline capacity."""
    shape = WorkloadConfig(num_requests=NUM_REQUESTS, prompt_tokens=(4, 12),
                           new_tokens=(3, 10), seed=0)
    rate = saturating_arrival_rate(fleet_model.config, REPLICA, shape, utilization=16.0)
    import dataclasses

    workload = dataclasses.replace(shape, arrival_rate=rate)
    return workload, generate_requests(fleet_model.config.vocab_size, workload)


def run_fleet(model, workload, requests, faults=None, max_retries=2, seed=0):
    # generous slack: the bar measures recovered *capacity*, not SLO grading
    slo = derived_slo(model.config, REPLICA, workload, slo_slack=16.0)
    config = ClusterConfig(replicas=homogeneous_fleet(
        NUM_REPLICAS, max_batch_size=REPLICA.max_batch_size),
        policy="least_loaded", slo=slo, seed=seed,
        faults=faults, max_retries=max_retries)
    return ClusterSimulation(model, config).run(requests)


@pytest.fixture(scope="module")
def crash_schedule(fleet_model, saturating_trace):
    """One replica crash landing mid-drain of the fault-free run."""
    workload, requests = saturating_trace
    elapsed = run_fleet(fleet_model, workload, requests).summary()["elapsed_s"]
    return [FaultEvent(time_s=0.35 * elapsed, kind="crash", replica_id=0)]


def test_retry_with_reroute_recovers_goodput(fleet_model, saturating_trace,
                                             crash_schedule):
    workload, requests = saturating_trace
    clean = run_fleet(fleet_model, workload, requests)
    crashed = run_fleet(fleet_model, workload, requests, faults=crash_schedule)
    no_retry = run_fleet(fleet_model, workload, requests, faults=crash_schedule,
                         max_retries=0)
    summaries = {"no_fault": clean.summary(), "crash_retry": crashed.summary(),
                 "crash_no_retry": no_retry.summary()}
    recovered = (summaries["crash_retry"]["goodput_rps"]
                 / summaries["no_fault"]["goodput_rps"])
    emit(ExperimentResult(
        experiment_id="Cluster-Chaos",
        title="Goodput through a mid-run replica crash: retry-with-reroute vs none",
        rows=[{
            "scenario": name,
            "goodput_rps": s["goodput_rps"],
            "slo_attainment": s["slo_attainment"],
            "requests_orphaned": s["requests_orphaned"],
            "requests_lost": s["requests_lost"],
            "max_recovery_s": s["max_recovery_s"],
            "kv_leaked_pages": s["kv_leaked_pages"],
        } for name, s in summaries.items()],
        notes=(
            "Identical saturating Poisson trace (16x one replica's roofline capacity) "
            "through a 4-replica least_loaded fleet; one replica crashes at 35% of the "
            "fault-free drain, destroying its KV pages and orphaning its queue.  With "
            "retry-with-reroute the orphans re-prefill on the three survivors and the "
            "fleet keeps >= 70% of its fault-free goodput with zero losses — the "
            "acceptance bar for the chaos layer.  With retries disabled the same crash "
            "measurably loses the orphaned requests (explicitly ledgered, never "
            "silent)."
        ),
    ))
    assert summaries["crash_retry"]["requests_orphaned"] > 0, \
        "the crash must strike a busy replica"
    assert summaries["crash_retry"]["requests_lost"] == 0
    assert summaries["crash_retry"]["kv_leaked_pages"] == 0
    assert recovered >= 0.7, \
        f"retry-with-reroute kept only {recovered:.0%} of fault-free goodput"


def test_no_retry_baseline_measurably_loses_requests(fleet_model, saturating_trace,
                                                     crash_schedule):
    workload, requests = saturating_trace
    report = run_fleet(fleet_model, workload, requests, faults=crash_schedule,
                       max_retries=0)
    summary = report.summary()
    assert summary["requests_lost"] == summary["requests_orphaned"] > 0
    assert {entry["reason"] for entry in report.lost} == {"retries_exhausted"}
    assert len(report.completed) + len(report.lost) == NUM_REQUESTS


def test_full_profile_sweep_with_retries_is_lossless_and_leak_free(
        fleet_model, saturating_trace):
    workload, _ = saturating_trace
    rows = chaos_bench(fleet_model, profiles=list_profiles(),
                       policies=("least_loaded",), replica_counts=(NUM_REPLICAS,),
                       workload=workload, replica=REPLICA, max_retries=2)
    assert len(rows) == len(list_profiles())
    assert any(row["requests_orphaned"] > 0 for row in rows)
    for row in rows:
        assert row["requests_lost"] == 0, row["chaos_profile"]
        assert row["kv_leaked_pages"] == 0, row["chaos_profile"]


def test_chaos_simulation_throughput(benchmark, fleet_model, saturating_trace,
                                     crash_schedule):
    """pytest-benchmark timing of one crash-recovery co-simulation run."""
    workload, requests = saturating_trace

    def simulate():
        return run_fleet(fleet_model, workload, requests, faults=crash_schedule)

    report = benchmark(simulate)
    assert report.summary()["requests_lost"] == 0
