"""Benchmark + regeneration of Table I (MAC area / memory efficiency)."""

from conftest import emit

from repro.core.bbfp import BBFPConfig
from repro.experiments import table1_mac
from repro.hardware.mac import bbfp_mac


def test_table1_mac_costing(benchmark):
    """Times the gate-level MAC costing and regenerates the Table I rows."""
    benchmark(lambda: bbfp_mac(BBFPConfig(6, 3)).gate_equivalents())
    result = emit(table1_mac.run())
    rows = {row["datatype"]: row for row in result.rows}
    # Paper shape: FP16 >> block formats; BBFP slightly above BFP at equal width.
    assert rows["FP16"]["area_um2"] > 3 * rows["INT8"]["area_um2"]
    assert rows["BBFP(6,3)"]["area_um2"] < rows["BFP8"]["area_um2"] * 1.05
    assert abs(rows["BBFP(6,3)"]["memory_efficiency"] - 1.96) < 0.01
