"""Overload behaviour of the async gateway (the load-shedding acceptance bar).

An open-loop client keeps sending at the offered rate no matter how far the
server falls behind, so an unprotected engine would queue without bound past
its capacity.  This suite throttles a tiny random-weight model to a *known*
service rate (a fixed real sleep per ``forward_step``), replays the same
open-loop trace at rates straddling that capacity through the real HTTP
front door, and asserts the properties shedding exists to buy:

- below capacity nothing is shed and everything completes;
- far past the saturation knee the admission gate sheds (429s appear)
  instead of queueing, and goodput holds within 20 % of the pre-knee peak;
- every rate's drain audit reports zero leaked KV pages.

The sleep-throttled model makes the knee machine-independent: capacity is
set by the injected service time, not by how fast this box does matmuls.
"""

from __future__ import annotations

import asyncio
import time

from repro.analysis.reporting import ExperimentResult
from repro.gateway.bench import gateway_sweep
from repro.gateway.driver import GatewayConfig
from repro.llm.config import ModelConfig
from repro.llm.inference import InferenceModel
from repro.llm.transformer import TransformerLM
from repro.serve.engine import EngineConfig
from repro.serve.workload import WorkloadConfig

from conftest import emit

import pytest

STEP_SLEEP_S = 0.004
#: ~1 prefill + a couple of shared decode steps per request at batch 2 puts
#: capacity in the low tens of requests/s; the grid straddles it widely.
RATES = (5.0, 15.0, 400.0)
WORKLOAD = WorkloadConfig(num_requests=14, arrival_rate=5.0,
                          prompt_tokens=(4, 8), new_tokens=(3, 6), seed=0)
GOODPUT_FLOOR = 0.8   # post-knee goodput must hold within 20 % of the peak


class ThrottledModel:
    """Delegate that adds a fixed real service time to every forward step."""

    def __init__(self, model, step_sleep_s: float):
        self._model = model
        self._step_sleep_s = step_sleep_s
        self.config = model.config

    def forward_step(self, tokens, cache, rows):
        time.sleep(self._step_sleep_s)
        return self._model.forward_step(tokens, cache, rows)


@pytest.fixture(scope="module")
def throttled_model():
    config = ModelConfig(name="gateway-bench", vocab_size=64, d_model=32,
                         n_heads=2, n_layers=2, d_ff=64, max_seq_len=48,
                         arch="llama", seed=0)
    model = InferenceModel(config, TransformerLM(config).state_dict())
    return ThrottledModel(model, STEP_SLEEP_S)


@pytest.fixture(scope="module")
def sweep_rows(throttled_model):
    return asyncio.run(gateway_sweep(
        throttled_model,
        rates=RATES,
        workload=WORKLOAD,
        engine_config=EngineConfig(max_batch_size=2, kv_page_size=4),
        gateway_config=GatewayConfig(max_queue_depth=2, shed_policy="reject",
                                     drain_timeout_s=10.0),
    ))


def test_below_capacity_nothing_is_shed(sweep_rows):
    calm = sweep_rows[0]
    assert calm["shed"] == 0
    assert calm["completed"] == WORKLOAD.num_requests
    assert calm["errors"] == 0


def test_overload_sheds_instead_of_queueing_and_goodput_holds(sweep_rows):
    overload = sweep_rows[-1]
    assert overload["shed"] > 0                      # 429s, not unbounded queueing
    assert overload["shed_rate"] > 0.2               # a real slice of the offered load
    assert overload["errors"] == 0
    peak = max(row["goodput_rps"] for row in sweep_rows[:-1])
    assert overload["goodput_rps"] >= GOODPUT_FLOOR * peak, (
        f"goodput collapsed past the knee: {overload['goodput_rps']:.1f} rps "
        f"vs pre-knee peak {peak:.1f} rps"
    )


def test_no_kv_pages_leak_at_any_rate(sweep_rows):
    # gateway_sweep raises on a non-zero drain audit; the column is the receipt
    assert [row["kv_leaked_pages"] for row in sweep_rows] == [0, 0, 0]


def test_emit_saturation_table(sweep_rows):
    emit(ExperimentResult(
        experiment_id="Gateway-Saturation",
        title="Open-loop saturation sweep of a sleep-throttled gateway",
        rows=sweep_rows,
        columns=["arrival_rate", "requests", "completed", "shed", "shed_rate",
                 "goodput_rps", "ttft_p50_ms", "ttft_p95_ms", "kv_leaked_pages"],
        notes=(
            "Each forward step is throttled by a fixed "
            f"{STEP_SLEEP_S * 1e3:.0f} ms sleep, so engine capacity is known and "
            "machine-independent.  Past the knee the admission gate sheds the "
            "excess offered load (shed_rate climbs) while goodput holds near the "
            "pre-knee peak; every rate drains with a clean KV page audit."
        ),
        metadata={"rates": list(RATES), "step_sleep_s": STEP_SLEEP_S,
                  "num_requests": WORKLOAD.num_requests},
    ))
