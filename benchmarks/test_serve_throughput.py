"""Decode throughput with and without the KV cache (the repro.serve speedup).

The seed decode loop re-runs the full forward over the whole context for
every generated token (O(n^2) per sequence); the serve subsystem's
incremental path embeds only the new position and attends over cached K/V.
This suite records decode tokens/s for both paths on a fast-model setting
and asserts the cached path is at least 5x faster at seq_len >= 64 — the
acceptance bar for the serving layer being a real optimisation rather than
bookkeeping.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.reporting import ExperimentResult
from repro.llm.config import ModelConfig
from repro.llm.inference import InferenceModel
from repro.llm.transformer import TransformerLM
from repro.serve.kv_cache import KVCache

from conftest import emit

PROMPT_LEN = 96
DECODE_TOKENS = 32


@pytest.fixture(scope="module")
def bench_model():
    """A fast-model-sized random-weight checkpoint (throughput only, untrained)."""
    config = ModelConfig(name="serve-bench", vocab_size=64, d_model=128, n_heads=4,
                         n_layers=3, d_ff=384, max_seq_len=PROMPT_LEN + DECODE_TOKENS + 8,
                         arch="llama", seed=0)
    return InferenceModel(config, TransformerLM(config).state_dict())


def _decode_uncached(model, prompt, n_tokens):
    tokens = list(prompt)
    for _ in range(n_tokens):
        context = np.array(tokens, dtype=np.int64)
        logits = model.forward(context[None, :])[0, -1]
        tokens.append(int(np.argmax(logits)))
    return tokens


def _decode_cached(model, prompt, n_tokens):
    cache = KVCache(model.config, batch_size=1)
    logits = model.forward_step(np.array(prompt, dtype=np.int64)[None, :], cache)
    tokens = list(prompt) + [int(np.argmax(logits[0, -1]))]
    for _ in range(n_tokens - 1):
        logits = model.forward_step(np.array([[tokens[-1]]], dtype=np.int64), cache)
        tokens.append(int(np.argmax(logits[0, -1])))
    return tokens


def _tokens_per_second(fn, model, prompt, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(model, prompt, DECODE_TOKENS)
        best = min(best, time.perf_counter() - start)
    return DECODE_TOKENS / best


def test_kv_cached_decode_is_at_least_5x_faster(bench_model):
    rng = np.random.default_rng(0)
    prompt = rng.integers(0, bench_model.config.vocab_size, size=PROMPT_LEN)
    # identical tokens first: the speedup must not come from different work
    assert _decode_uncached(bench_model, prompt, DECODE_TOKENS) == \
        _decode_cached(bench_model, prompt, DECODE_TOKENS)
    uncached = _tokens_per_second(_decode_uncached, bench_model, prompt)
    cached = _tokens_per_second(_decode_cached, bench_model, prompt)
    speedup = cached / uncached
    emit(ExperimentResult(
        experiment_id="Serve-Throughput",
        title="Decode tokens/s with and without the KV cache",
        rows=[{
            "prompt_len": PROMPT_LEN,
            "decode_tokens": DECODE_TOKENS,
            "uncached_tokens_per_s": uncached,
            "cached_tokens_per_s": cached,
            "speedup": speedup,
        }],
        notes=(
            "The uncached loop re-runs the full forward over the whole context per token "
            "(the seed generate_tokens behaviour); the cached path embeds one position and "
            "attends over stored K/V.  The gap widens with context length — this row is the "
            "fast-model setting of the serve acceptance bar."
        ),
    ))
    assert speedup >= 5.0, f"KV-cached decode only {speedup:.1f}x faster"


def test_forward_step_throughput(benchmark, bench_model):
    """pytest-benchmark timing of one cached decode step at a warm context."""
    cache = KVCache(bench_model.config, batch_size=1)
    prompt = np.arange(PROMPT_LEN, dtype=np.int64)[None, :] % bench_model.config.vocab_size
    bench_model.forward_step(prompt, cache)
    token = np.array([[1]], dtype=np.int64)

    def step():
        lengths_before = int(cache.lengths[0])
        bench_model.forward_step(token, cache)
        cache.reset()
        cache.advance([0], lengths_before)  # keep the context length constant

    benchmark(step)
