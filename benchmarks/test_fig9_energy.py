"""Benchmark + regeneration of Fig. 9 (normalised energy breakdown)."""

from conftest import emit

from repro.accelerator import AcceleratorConfig, AcceleratorSimulator, decoder_workload
from repro.core.bbfp import BBFPConfig
from repro.experiments import fig9_energy
from repro.experiments.fig1_runtime import LLAMA_7B_DIMENSIONS


def test_fig9_energy_breakdown(benchmark, fast_mode):
    """Times one workload simulation and regenerates the per-strategy energy breakdown."""
    workload = decoder_workload(LLAMA_7B_DIMENSIONS, 256, phase="prefill")
    simulator = AcceleratorSimulator(AcceleratorConfig(strategy=BBFPConfig(4, 2)))
    benchmark(lambda: simulator.run(workload))

    result = emit(fig9_energy.run(fast=fast_mode))
    rows = {row["strategy"]: row for row in result.rows}

    # Paper shape: BBFP with a 3-bit mantissa undercuts BFP4; BBFP costs only a
    # few percent more than BFP at equal mantissa width; the widest format
    # (BBFP(6,3)) is the normalisation reference.
    assert rows["BBFP(3,1)"]["total"] < rows["BFP4"]["total"]
    assert rows["BBFP(4,2)"]["total"] <= rows["BFP6"]["total"]
    assert rows["BBFP(6,3)"]["total"] == max(r["total"] for r in rows.values())
    for row in result.rows:
        components = row["static"] + row["dram"] + row["buffer"] + row["core"]
        assert abs(components - row["total"]) < 1e-9
