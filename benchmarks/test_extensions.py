"""Benchmarks for the extension experiments (beyond the paper's own artefacts).

Each test regenerates one extension study through its driver in
:mod:`repro.experiments.extensions`, saves the rows under ``results/`` and
times a representative kernel.
"""

import numpy as np
from conftest import emit

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.generation import GenerationLatencyModel
from repro.accelerator.roofline import analyze_workload
from repro.accelerator.workloads import decoder_workload
from repro.core.bbfp import BBFPConfig, bbfp_quantize_dequantize
from repro.core.bie import BiEConfig, bie_quantize_dequantize
from repro.core.microscaling import MXFP8, mx_quantize_dequantize
from repro.core.rounding import RoundingMode
from repro.experiments import extensions
from repro.experiments.fig1_runtime import LLAMA_7B_DIMENSIONS
from repro.hardware.multiplier_arch import booth_radix4_multiplier


def test_ext_rounding_modes(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(4096)
    config = BBFPConfig(4, 2, rounding=RoundingMode.STOCHASTIC)
    benchmark(lambda: bbfp_quantize_dequantize(x, config, rng=np.random.default_rng(1)))

    result = emit(extensions.rounding_mode_ablation())
    for row in result.rows:
        # Nearest rounding (the Eq. 8 assumption) never loses to truncation.
        assert row["nearest_relative_mse"] <= row["truncate_relative_mse"]
        assert row["nearest_relative_mse"] <= row["stochastic_relative_mse"] * 1.01


def test_ext_multiplier_architectures(benchmark):
    benchmark(lambda: booth_radix4_multiplier(6, 6).gate_equivalents())

    result = emit(extensions.multiplier_architecture_ablation())
    by_key = {(row["bits"], row["architecture"]): row for row in result.rows}
    # The paper's array multiplier is the cheapest choice at BBFP mantissa widths.
    assert by_key[(4, "array")]["area_um2"] <= by_key[(4, "booth-r4")]["area_um2"]
    # Booth wins area at FP16-class widths, Wallace wins depth everywhere wide.
    assert by_key[(16, "booth-r4")]["area_um2"] <= by_key[(16, "array")]["area_um2"]
    assert by_key[(16, "wallace")]["logic_depth_fa"] < by_key[(16, "array")]["logic_depth_fa"]


def test_ext_format_family(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(4096)
    benchmark(lambda: (mx_quantize_dequantize(x, MXFP8), bie_quantize_dequantize(x, BiEConfig(4))))

    result = emit(extensions.format_family_ablation())
    by_format = {row["format"]: row for row in result.rows}
    # The paper's headline ordering holds inside the wider landscape too.
    assert by_format["BBFP(4,2)"]["relative_mse"] <= by_format["BFP4"]["relative_mse"]
    assert by_format["BBFP(6,3)"]["relative_mse"] <= by_format["BFP6"]["relative_mse"]
    assert by_format["BiE4(k=2)"]["relative_mse"] <= by_format["BFP4"]["relative_mse"]
    # INT4 suffers most from the outliers (the Fig. 1(a) motivation).
    assert by_format["INT4"]["relative_mse"] >= by_format["BBFP(4,2)"]["relative_mse"]


def test_ext_format_ppl(benchmark, fast_mode):
    result = emit(extensions.extended_format_ppl(fast=fast_mode or None))
    for row in result.rows:
        # Weight-only GPTQ stays close to FP16; every scheme stays finite and
        # within a sane factor of the reference on the miniature models.
        assert row["GPTQ-W4"] <= row["FP16"] * 1.10
        for name, value in row.items():
            if name == "model":
                continue
            assert np.isfinite(value)
            assert value <= row["FP16"] * 3.0
        # BiE tracks BBFP at equal mantissa width (both protect the block bulk).
        assert row["BiE6(k=2)"] <= row["BBFP(6,3)"] * 1.05

    # Time one scheme evaluation on the cached model.
    from repro.experiments.common import eval_config
    from repro.llm.inference import QuantizationScheme
    from repro.llm.perplexity import evaluate_perplexity
    from repro.llm.zoo import default_corpus, load_inference_model
    from repro.core.microscaling import MXFP8 as _MXFP8

    corpus = default_corpus(fast=fast_mode or None)
    model = load_inference_model("Llama-1B", corpus=corpus)
    model.set_scheme(QuantizationScheme.from_format(_MXFP8))
    benchmark(lambda: evaluate_perplexity(model, corpus, eval_config(True)))
    model.set_scheme(QuantizationScheme.fp_reference())


def test_ext_roofline(benchmark):
    config = AcceleratorConfig(strategy=BBFPConfig(4, 2), pe_rows=32, pe_cols=32)
    workload = decoder_workload(LLAMA_7B_DIMENSIONS, 512, phase="prefill")
    benchmark(lambda: analyze_workload(config, workload))

    result = emit(extensions.roofline_extension())
    prefill = [row for row in result.rows if row["phase"] == "prefill"]
    decode = [row for row in result.rows if row["phase"] == "decode"]
    # Weight-stationary GEMMs: compute bound in prefill, memory bound in decode.
    assert all(row["bound"] == "compute" for row in prefill if row["op"] in ("query", "down"))
    assert all(row["bound"] == "memory" for row in decode if row["op"] in ("query", "down"))


def test_ext_dataflow(benchmark):
    from repro.accelerator.dataflow import compare_dataflows
    from repro.accelerator.workloads import MatmulOp

    op = MatmulOp("fc1", 512, 4096, 11008)
    benchmark(lambda: compare_dataflows(op, rows=32, cols=32, bits_per_element=6.156))

    result = emit(extensions.dataflow_extension())
    by_key = {(row["gemm"], row["dataflow"]): row for row in result.rows}
    # The BBAL choice reads the quantised weights exactly once on every GEMM ...
    for gemm in ("prefill-fc1", "prefill-qkv", "decode-fc1"):
        ws = by_key[(gemm, "weight_stationary")]
        out_st = by_key[(gemm, "output_stationary")]
        assert ws["operand_bytes"] <= out_st["operand_bytes"] * 1.6
    # ... while output stationary never spills partial sums.
    for gemm in ("prefill-fc1", "prefill-qkv"):
        assert by_key[(gemm, "output_stationary")]["output_bytes"] <= \
            by_key[(gemm, "weight_stationary")]["output_bytes"]


def test_ext_generation_latency(benchmark):
    config = AcceleratorConfig(strategy=BBFPConfig(4, 2), pe_rows=32, pe_cols=32)
    model = GenerationLatencyModel(config, LLAMA_7B_DIMENSIONS, decode_step_stride=32)
    benchmark(lambda: model.estimate(prompt_tokens=128, generated_tokens=32))

    result = emit(extensions.generation_latency_extension())
    by_strategy = {row["strategy"]: row for row in result.rows}
    # Denser formats generate faster and cheaper than BFP6 on the same array.
    assert by_strategy["BBFP(3,1)"]["tokens_per_second"] >= by_strategy["BFP6"]["tokens_per_second"]
    assert by_strategy["BBFP(3,1)"]["energy_per_token_mj"] <= by_strategy["BFP6"]["energy_per_token_mj"]
    for row in result.rows:
        assert row["time_to_first_token_ms"] > 0


def test_ext_mixed_precision(benchmark, fast_mode):
    result = emit(extensions.mixed_precision_extension(fast=fast_mode or None))
    assignment_rows = [row for row in result.rows if row["kind"] != "(total)"]
    assert len(assignment_rows) >= 6
    for row in assignment_rows:
        assert row["format"].startswith("BBFP")

    # Time the underlying sensitivity kernel on the cached model.
    from repro.experiments.common import eval_config
    from repro.llm.zoo import default_corpus, load_inference_model
    from repro.search.mixed_precision import sensitivity_profile

    corpus = default_corpus(fast=fast_mode or None)
    model = load_inference_model("Llama-1B", corpus=corpus)
    benchmark(
        lambda: sensitivity_profile(
            model, corpus, [BBFPConfig(4, 2)], kinds=["q_proj"],
            eval_config=eval_config(True),
        )
    )
