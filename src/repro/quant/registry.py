"""Format registry: one spec-string grammar, one dispatch path, one cache.

The registry maps each format *family* (``bbfp``, ``bfp``, ``int``,
``minifloat``, ``mx``, ``bie``, ...) to its :class:`~repro.quant.api.Quantizer`
subclass and provides the three entry points every call site uses:

``parse_spec(text)``
    Spec string -> configuration dataclass.  This is the single parser behind
    :func:`repro.cli.parse_format`, :meth:`QuantizationScheme.from_format`,
    the mixed-precision search and the experiment drivers.

``get_quantizer(spec_or_config)``
    Spec string, configuration or quantizer -> memoized :class:`Quantizer`
    instance.  Hot loops (perplexity evaluation, overlap search) resolve the
    same spec thousands of times; the cache makes that a dictionary lookup.

``spec_of(config)``
    Configuration -> canonical spec string (the inverse of ``parse_spec``).

Unknown or malformed specs raise :class:`UnknownFormatError` (a
``ValueError``, so ``argparse`` converts it into a clean usage error) with a
did-you-mean suggestion computed over the registered example specs.
"""

from __future__ import annotations

import argparse
import difflib
import importlib
import re
import sys
import threading

from repro.quant.api import Quantizer

__all__ = [
    "UnknownFormatError",
    "register_format",
    "parse_spec",
    "get_quantizer",
    "spec_of",
    "family_of",
    "list_formats",
    "registered_families",
    "clear_cache",
]


class UnknownFormatError(ValueError, argparse.ArgumentTypeError):
    """Raised for a spec string no registered family accepts (or a malformed one).

    Subclasses both :class:`ValueError` and :class:`argparse.ArgumentTypeError`
    so ``argparse`` ``type=`` callables turn it into a clean usage error that
    keeps the did-you-mean suggestion.
    """

    def __init__(self, spec, reason: str = None):
        self.spec = spec
        self.reason = reason
        message = f"unknown format {spec!r}"
        if reason:
            # The family was recognised but the body/modifiers are malformed;
            # a similarity suggestion would only repeat the family name.
            message += f": {reason}"
        else:
            suggestion = _closest_spec(spec) if isinstance(spec, str) else None
            if suggestion:
                message += f" (did you mean {suggestion!r}?)"
        super().__init__(message)


#: family name -> Quantizer subclass, in registration (i.e. parse-priority) order.
_FAMILIES: dict = {}
#: configuration class -> Quantizer subclass.
_BY_CONFIG_TYPE: dict = {}
#: Modules registering additional (non-core) families, imported on first miss.
_LAZY_MODULES = ["repro.quant.baseline_formats"]
_LAZY_LOCK = threading.Lock()

#: normalised spec string -> Quantizer instance.
_SPEC_CACHE: dict = {}
#: configuration -> Quantizer instance.
_CONFIG_CACHE: dict = {}

#: A modifier is a letter key plus an optional numeric value; the value must
#: start with a digit and may use float/scientific notation (``c1e-05``).
_MOD_TOKEN = re.compile(r"^([a-z]+)(\d[0-9.e+-]*)?$")
_INT_VALUE = re.compile(r"^\d+$")


def register_format(family: str, config_type: type, example_specs=()):
    """Class decorator registering a :class:`Quantizer` subclass for a family.

    Registration order is parse priority — register ``bbfp`` before ``bfp``
    so prefix-overlapping grammars resolve deterministically.
    """

    def decorate(cls):
        if not (isinstance(cls, type) and issubclass(cls, Quantizer)):
            raise TypeError(f"@register_format expects a Quantizer subclass, got {cls!r}")
        if family in _FAMILIES:
            raise ValueError(f"format family {family!r} is already registered")
        cls.family = family
        cls.config_type = config_type
        cls.example_specs = tuple(example_specs)
        _FAMILIES[family] = cls
        _BY_CONFIG_TYPE[config_type] = cls
        return cls

    return decorate


def _load_lazy_modules():
    """Import deferred registration modules (baselines) exactly once.

    A module is only dropped from the queue after a *successful* import, so a
    transient import failure surfaces again on the next lookup instead of
    silently degrading into "unknown format" forever.  Registrations made by
    a partially-executed module are rolled back on failure so the retry does
    not trip over "already registered".
    """
    with _LAZY_LOCK:
        while _LAZY_MODULES:
            before = set(_FAMILIES)
            try:
                importlib.import_module(_LAZY_MODULES[0])
            except BaseException:
                for family in set(_FAMILIES) - before:
                    cls = _FAMILIES.pop(family)
                    _BY_CONFIG_TYPE.pop(cls.config_type, None)
                sys.modules.pop(_LAZY_MODULES[0], None)
                raise
            _LAZY_MODULES.pop(0)


def _normalise(spec: str) -> str:
    return spec.strip().lower().replace(" ", "")


def _split_modifiers(text: str, spec: str):
    """Split ``base@mod1@mod2`` into the base spec and a modifier dict.

    Modifiers are single-letter keys with a numeric value (``b32`` block
    size, ``e4`` exponent bits, ``k3`` outlier count, ``s8`` scale bits,
    ``c0.9`` clip ratio, ``g128`` group size) or bare flags (``pc``
    per-channel, ``pt`` per-tensor).
    """
    base, *raw_mods = text.split("@")
    mods = {}
    for token in raw_mods:
        match = _MOD_TOKEN.match(token)
        if not match:
            raise UnknownFormatError(spec, f"bad modifier {token!r}")
        key, value = match.groups()
        if value is None:
            mods[key] = True
        elif _INT_VALUE.match(value):
            mods[key] = int(value)
        else:
            try:
                mods[key] = float(value)
            except ValueError:
                raise UnknownFormatError(spec, f"bad modifier {token!r}") from None
    return base, mods


def _closest_spec(spec: str):
    """Did-you-mean candidate for an unknown spec, or ``None``."""
    candidates = []
    for cls in _FAMILIES.values():
        candidates.extend(cls.example_specs)
        candidates.append(cls.family)
    matches = difflib.get_close_matches(_normalise(spec), candidates, n=1, cutoff=0.5)
    return matches[0] if matches else None


def parse_spec(spec: str):
    """Parse a spec string into the configuration dataclass of its family.

    The grammar (case-insensitive, whitespace-insensitive)::

        BBFP(m,o)  BBFP(m,o,e)      bbfp(4,2)       bidirectional BFP
        BFP<m>                      bfp8@b32        block floating point
        INT<b>                      int8  int8@pc   symmetric integer
        FP<t>[_e<E>m<M>]            fp16  fp8_e4m3  minifloat
        MXFP<t>[_e<E>m<M>]          mxfp4  mxfp6_e3m2  OCP microscaling
        BiE<m>[(k=<K>)]             bie4  bie4@k3   bi-exponent BFP

    with optional ``@`` modifiers: ``@b<N>`` block size, ``@e<N>`` shared
    exponent bits, ``@k<N>`` BiE outlier count, ``@s<N>`` MX scale bits,
    ``@c<R>`` INT clip ratio, ``@pc`` / ``@pt`` INT granularity.
    """
    if isinstance(spec, Quantizer):
        return spec.config
    if not isinstance(spec, str):
        raise UnknownFormatError(spec, "spec must be a string")
    text = _normalise(spec)
    if not text:
        raise UnknownFormatError(spec, "empty spec")
    base, mods = _split_modifiers(text, spec)

    def attempt():
        for cls in _FAMILIES.values():
            try:
                config = cls.try_parse(base, dict(mods))
            except UnknownFormatError as error:
                # Re-attribute malformed-body errors to the user's original
                # spelling (try_parse only sees the stripped base).
                raise UnknownFormatError(spec, error.reason or str(error)) from None
            except (ValueError, TypeError) as error:
                # Config __post_init__ validation (e.g. "mantissa_bits must
                # be >= 1" for "bfp0") funnels into the one error type too.
                raise UnknownFormatError(spec, str(error)) from None
            if config is not None:
                return config
        return None

    config = attempt()
    if config is None:
        _load_lazy_modules()
        config = attempt()
    if config is None:
        raise UnknownFormatError(spec)
    return config


def get_quantizer(spec_or_config) -> Quantizer:
    """Resolve a spec string / configuration / quantizer into a memoized quantizer.

    The same spec string (modulo case and whitespace) and the same (equal)
    configuration always return the *same instance*, so per-block hot loops
    pay one dictionary lookup instead of a parse plus a construction.
    """
    if isinstance(spec_or_config, Quantizer):
        return spec_or_config
    if isinstance(spec_or_config, str):
        key = _normalise(spec_or_config)
        quantizer = _SPEC_CACHE.get(key)
        if quantizer is None:
            quantizer = get_quantizer(parse_spec(spec_or_config))
            _SPEC_CACHE[key] = quantizer
        return quantizer

    config = spec_or_config
    # Display names are excluded from config equality (FloatSpec, MXConfig)
    # but must not be merged by the cache, or the first label seen would win
    # every later lookup's display name; key on (config, label).
    key = (config, getattr(config, "name", None))
    try:
        quantizer = _CONFIG_CACHE.get(key)
    except TypeError:  # unhashable pseudo-config: construct without caching
        return _quantizer_class_for(type(config))(config)
    if quantizer is None:
        quantizer = _quantizer_class_for(type(config))(config)
        _CONFIG_CACHE[key] = quantizer
    return quantizer


def _quantizer_class_for(config_type: type):
    cls = _BY_CONFIG_TYPE.get(config_type)
    if cls is None:
        _load_lazy_modules()
        cls = _BY_CONFIG_TYPE.get(config_type)
    if cls is None:
        for registered_type, registered_cls in _BY_CONFIG_TYPE.items():
            if issubclass(config_type, registered_type):
                return registered_cls
        raise UnknownFormatError(
            config_type.__name__, "no registered quantizer for this configuration type"
        )
    return cls


def spec_of(config) -> str:
    """Canonical spec string of a configuration (inverse of :func:`parse_spec`)."""
    if isinstance(config, Quantizer):
        return config.spec
    return _quantizer_class_for(type(config)).format_spec(config)


def registered_families(include_lazy: bool = True) -> tuple:
    """Names of every registered format family, in parse-priority order."""
    if include_lazy:
        _load_lazy_modules()
    return tuple(_FAMILIES)


def family_of(config_or_spec) -> str:
    """Family name (registry key) of a configuration or spec string."""
    if isinstance(config_or_spec, str):
        config_or_spec = parse_spec(config_or_spec)
    if isinstance(config_or_spec, Quantizer):
        return config_or_spec.family
    return _quantizer_class_for(type(config_or_spec)).family


def list_formats() -> list:
    """One row per registered family: name, config type and example specs."""
    _load_lazy_modules()
    return [
        {
            "family": cls.family,
            "config_type": cls.config_type.__name__,
            "example_specs": list(cls.example_specs),
        }
        for cls in _FAMILIES.values()
    ]


def clear_cache():
    """Drop all memoized quantizer instances (used by tests and benchmarks)."""
    _SPEC_CACHE.clear()
    _CONFIG_CACHE.clear()
