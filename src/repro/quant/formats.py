"""Registrations of the core number-format families.

Importing this module (which :mod:`repro.quant` does eagerly) registers one
:class:`~repro.quant.api.Quantizer` subclass per :mod:`repro.core` family:
BBFP, BFP, INT, minifloat, MX and BiE.  Each subclass wraps the existing free
functions — the numerics are untouched; this layer only provides the
polymorphic protocol, the spec-string grammar and the common result
container.

The *baseline* families (Olive, Oltron) live in
:mod:`repro.quant.baseline_formats` and are registered lazily on the first
spec the core families do not recognise, so importing ``repro.quant`` does
not pull in the LLM inference stack.
"""

from __future__ import annotations

import re

import numpy as np

from repro.core.bbfp import BBFPConfig, quantize_bbfp
from repro.core.bie import BiEConfig, quantize_bie
from repro.core.blockfp import BFPConfig, quantize_bfp
from repro.core.floatspec import BF16, FP4_E2M1, FP8_E4M3, FP8_E5M2, FP16, FP32, FloatSpec
from repro.core.fp_formats import minifloat_quantize_dequantize
from repro.core.integer import Granularity, IntQuantConfig, int_quantize
from repro.core.microscaling import (
    FP6_E2M3,
    FP6_E3M2,
    MXFP4,
    MXFP6_E2M3,
    MXFP6_E3M2,
    MXFP8,
    MXConfig,
    quantize_mx,
)
from repro.quant.api import QuantizedTensor, Quantizer
from repro.quant.registry import UnknownFormatError, register_format

__all__ = [
    "BBFPQuantizer",
    "BFPQuantizer",
    "BiEQuantizer",
    "IntQuantizer",
    "MinifloatQuantizer",
    "MXQuantizer",
]

_BBFP_RE = re.compile(r"^bbfp\((\d+),(\d+)(?:,(\d+))?\)$")
_BFP_RE = re.compile(r"^bfp(\d+)$")
_BIE_RE = re.compile(r"^bie(\d+)(?:\(k=(\d+)\))?$")
_INT_RE = re.compile(r"^int(\d+)$")
_FP_RE = re.compile(r"^(fp(\d+)(?:_e(\d+)m(\d+))?|bf16)$")
_MX_RE = re.compile(r"^mxfp(\d+)(?:_e(\d+)m(\d+))?$")


def _int_mod(mods: dict, key: str, spec_hint: str) -> int:
    """Pop an ``@``-modifier whose value must be a plain integer.

    Rejects bare flags (``@b``) and float values (``@b3.2`` — almost
    certainly a typo for ``@b32``) instead of silently truncating.
    """
    value = mods.pop(key)
    if type(value) is not int:
        raise UnknownFormatError(spec_hint, f"modifier @{key} needs an integer value")
    return value


def _block_kwargs(mods: dict, spec_hint: str) -> dict:
    """Translate the shared ``@b<N>`` / ``@e<N>`` modifiers into config kwargs."""
    kwargs = {}
    if "b" in mods:
        kwargs["block_size"] = _int_mod(mods, "b", spec_hint)
    if "e" in mods:
        kwargs["exponent_bits"] = _int_mod(mods, "e", spec_hint)
    if mods:
        raise UnknownFormatError(spec_hint, f"unsupported modifiers {sorted(mods)}")
    return kwargs


@register_format("bbfp", BBFPConfig, example_specs=("bbfp(4,2)", "bbfp(6,3)", "bbfp(3,1)"))
class BBFPQuantizer(Quantizer):
    """Bidirectional BFP — the paper's format (``BBFP(m,o)``, ``BBFP(m,o,e)``)."""

    @classmethod
    def try_parse(cls, base, mods):
        match = _BBFP_RE.match(base)
        if not match:
            return None if not base.startswith("bbfp") else _malformed(base, "BBFP(m,o)")
        m, o, e = match.groups()
        if e is not None and "e" in mods:
            raise UnknownFormatError(
                base, "exponent bits given both positionally and via @e"
            )
        kwargs = _block_kwargs(mods, base)
        if e is not None:
            kwargs["exponent_bits"] = int(e)
        return BBFPConfig(int(m), int(o), **kwargs)

    @classmethod
    def format_spec(cls, config) -> str:
        body = f"{config.mantissa_bits},{config.overlap_bits}"
        if config.exponent_bits != 5:
            body += f",{config.exponent_bits}"
        return f"BBFP({body})" + _block_suffix(config)

    def quantize(self, x, axis=-1, rng=None):
        x = np.asarray(x, dtype=np.float64)
        return QuantizedTensor(self, quantize_bbfp(x, self.config, axis=axis, rng=rng), x.shape)

    def decode(self, payload):
        return payload.dequantize()


@register_format("bfp", BFPConfig, example_specs=("bfp4", "bfp6", "bfp8", "bfp8@b32"))
class BFPQuantizer(Quantizer):
    """Vanilla block floating point (``BFP<m>``)."""

    @classmethod
    def try_parse(cls, base, mods):
        match = _BFP_RE.match(base)
        if not match:
            return None
        return BFPConfig(int(match.group(1)), **_block_kwargs(mods, base))

    @classmethod
    def format_spec(cls, config) -> str:
        return f"BFP{config.mantissa_bits}" + _exponent_suffix(config) + _block_suffix(config)

    def quantize(self, x, axis=-1, rng=None):
        x = np.asarray(x, dtype=np.float64)
        return QuantizedTensor(self, quantize_bfp(x, self.config, axis=axis, rng=rng), x.shape)

    def decode(self, payload):
        return payload.dequantize()


@register_format("bie", BiEConfig, example_specs=("bie4", "bie6", "bie4@k3"))
class BiEQuantizer(Quantizer):
    """Bi-exponent BFP (``BiE<m>``; outlier budget via ``@k<N>``)."""

    @classmethod
    def try_parse(cls, base, mods):
        match = _BIE_RE.match(base)
        if not match:
            return None
        m, k = match.groups()
        kwargs = {}
        if "k" in mods:
            kwargs["outlier_count"] = _int_mod(mods, "k", base)
        elif k is not None:
            kwargs["outlier_count"] = int(k)
        kwargs.update(_block_kwargs(mods, base))
        return BiEConfig(int(m), **kwargs)

    @classmethod
    def format_spec(cls, config) -> str:
        spec = f"BiE{config.mantissa_bits}"
        if config.outlier_count != 2:
            spec += f"@k{config.outlier_count}"
        return spec + _exponent_suffix(config) + _block_suffix(config)

    def quantize(self, x, axis=-1, rng=None):
        x = np.asarray(x, dtype=np.float64)
        return QuantizedTensor(self, quantize_bie(x, self.config, axis=axis, rng=rng), x.shape)

    def decode(self, payload):
        return payload.dequantize()


@register_format("int", IntQuantConfig, example_specs=("int4", "int8", "int8@pc", "int4@b32"))
class IntQuantizer(Quantizer):
    """Symmetric integer quantisation (``INT<b>``; ``@pc`` / ``@b<N>`` granularity)."""

    @classmethod
    def try_parse(cls, base, mods):
        match = _INT_RE.match(base)
        if not match:
            return None
        granularities = [key for key in ("pc", "pt", "b") if key in mods]
        if len(granularities) > 1:
            raise UnknownFormatError(
                base, f"conflicting granularity modifiers {granularities}"
            )
        kwargs = {}
        if mods.pop("pc", False):
            kwargs["granularity"] = Granularity.PER_CHANNEL
        mods.pop("pt", False)  # per-tensor is the default
        if "b" in mods:
            kwargs["granularity"] = Granularity.PER_BLOCK
            kwargs["block_size"] = _int_mod(mods, "b", base)
        if "c" in mods:
            clip = mods.pop("c")
            if isinstance(clip, bool):
                raise UnknownFormatError(base, "modifier @c needs a numeric value")
            kwargs["clip_ratio"] = float(clip)
        if mods:
            raise UnknownFormatError(base, f"unsupported modifiers {sorted(mods)}")
        return IntQuantConfig(int(match.group(1)), **kwargs)

    @classmethod
    def format_spec(cls, config) -> str:
        spec = f"INT{config.bits}"
        if config.granularity is Granularity.PER_CHANNEL:
            spec += "@pc"
        elif config.granularity is Granularity.PER_BLOCK:
            spec += f"@b{config.block_size}"
        if config.clip_ratio != 1.0:
            # repr() is the shortest exact decimal, so the spec is lossless.
            spec += f"@c{config.clip_ratio!r}"
        return spec

    def _num_scales(self, x) -> int:
        """Distinct scale factors stored for ``x`` (the broadcast is free)."""
        config = self.config
        if config.granularity is Granularity.PER_TENSOR or x.ndim == 0:
            return 1
        length = x.shape[-1]
        if config.granularity is Granularity.PER_CHANNEL:
            return length
        blocks = -(-length // config.block_size)
        return (x.size // length) * blocks if length else 0

    def quantize(self, x, axis=-1, rng=None):
        x = np.asarray(x, dtype=np.float64)
        if self.config.granularity is not Granularity.PER_BLOCK:
            # Per-tensor / per-channel scales are axis-independent conventions.
            codes, scale = int_quantize(x, self.config)
            return QuantizedTensor(
                self, {"codes": codes, "scale": scale, "num_scales": self._num_scales(x)}, x.shape
            )
        # Blocks lie along the reduction axis, mirroring the BFP/BBFP layout.
        moved = np.moveaxis(x, axis, -1)
        codes, scale = int_quantize(moved, self.config)
        num_scales = self._num_scales(moved)
        codes = np.moveaxis(codes, -1, axis)
        if np.ndim(scale) == x.ndim:
            scale = np.moveaxis(scale, -1, axis)
        return QuantizedTensor(
            self, {"codes": codes, "scale": scale, "num_scales": num_scales}, x.shape
        )

    def decode(self, payload):
        return payload["codes"].astype(np.float64) * payload["scale"]

    def payload_memory_bits(self, payload):
        # Codes plus one FP16 scale per shared-scale group (int_quantize
        # returns the scale broadcast to the codes' shape; the stored count
        # is the number of distinct groups, not the broadcast size).
        return int(payload["codes"].size) * self.config.bits + payload["num_scales"] * 16


@register_format(
    "minifloat", FloatSpec,
    example_specs=("fp16", "bf16", "fp8_e4m3", "fp8_e5m2", "fp4_e2m1", "fp32"),
)
class MinifloatQuantizer(Quantizer):
    """Element-wise minifloat rounding (``FP<t>[_e<E>m<M>]``, ``BF16``)."""

    #: Short aliases for the unambiguous widths.
    _NAMED = {
        "fp32": FP32, "fp16": FP16, "bf16": BF16,
        "fp8": FP8_E4M3, "fp8_e4m3": FP8_E4M3, "fp8_e5m2": FP8_E5M2,
        "fp6_e2m3": FP6_E2M3, "fp6_e3m2": FP6_E3M2, "fp6": FP6_E3M2,
        "fp4": FP4_E2M1, "fp4_e2m1": FP4_E2M1,
    }

    @classmethod
    def try_parse(cls, base, mods):
        named = cls._NAMED.get(base)
        match = _FP_RE.match(base)
        if named is None and match is None:
            return None
        if mods:
            # Fail fast with a specific reason instead of falling through to
            # the other families (minifloats are element-wise; no @b etc.).
            raise UnknownFormatError(base, f"unsupported modifiers {sorted(mods)}")
        if named is not None:
            return named
        _, total, e, m = match.groups()
        if e is None:
            return None  # a bare fp<width> with no named default
        e, m, total = int(e), int(m), int(total)
        if 1 + e + m != total:
            raise UnknownFormatError(base, f"fp{total} needs e+m = {total - 1}")
        return FloatSpec(f"FP{total}_E{e}M{m}", exponent_bits=e, mantissa_bits=m)

    @classmethod
    def format_spec(cls, config) -> str:
        # Render from the numeric fields, not the display name, so a spec
        # exists (and parses back) for any FloatSpec however it is labelled.
        # Named formats use their most explicit alias ("fp8_e4m3" over "fp8").
        aliases = [alias for alias, named in cls._NAMED.items() if named == config]
        if aliases:
            return max(aliases, key=len)
        return f"fp{config.total_bits}_e{config.exponent_bits}m{config.mantissa_bits}"

    def bits_per_element(self) -> float:
        return float(self.config.total_bits)

    def quantize(self, x, axis=-1, rng=None):
        x = np.asarray(x, dtype=np.float64)
        return QuantizedTensor(self, minifloat_quantize_dequantize(x, self.config), x.shape)

    def decode(self, payload):
        return payload

    def payload_memory_bits(self, payload):
        return int(payload.size) * self.config.total_bits

    def quantize_dequantize(self, x, axis=-1, rng=None):
        return minifloat_quantize_dequantize(x, self.config)


@register_format("mx", MXConfig, example_specs=("mxfp4", "mxfp6_e2m3", "mxfp6_e3m2", "mxfp8"))
class MXQuantizer(Quantizer):
    """OCP microscaling (``MXFP<t>``; element format via ``_e<E>m<M>``)."""

    _NAMED = {
        "mxfp4": MXFP4, "mxfp4_e2m1": MXFP4,
        "mxfp6_e2m3": MXFP6_E2M3, "mxfp6_e3m2": MXFP6_E3M2, "mxfp6": MXFP6_E3M2,
        "mxfp8": MXFP8, "mxfp8_e4m3": MXFP8,
    }

    @classmethod
    def try_parse(cls, base, mods):
        match = _MX_RE.match(base)
        if not match:
            return None
        kwargs = {}
        if "b" in mods:
            kwargs["block_size"] = _int_mod(mods, "b", base)
        if "s" in mods:
            kwargs["scale_bits"] = _int_mod(mods, "s", base)
        if mods:
            raise UnknownFormatError(base, f"unsupported modifiers {sorted(mods)}")
        named = cls._NAMED.get(base)
        if named is not None:
            return MXConfig(named.element, name=named.name, **kwargs) if kwargs else named
        total, e, m = match.groups()
        if e is None:
            return _malformed(base, "mxfp<t>_e<E>m<M>")
        element = FloatSpec(f"FP{total}_E{e}M{m}", exponent_bits=int(e), mantissa_bits=int(m))
        if element.total_bits != int(total):
            raise UnknownFormatError(base, f"mxfp{total} needs e+m = {int(total) - 1}")
        return MXConfig(element, **kwargs)

    @classmethod
    def format_spec(cls, config) -> str:
        element = config.element
        base = f"mxfp{element.total_bits}"
        # MXFP4/MXFP8 have a single OCP element format, so the short name is
        # unambiguous; MXFP6 (and anything custom) spells the element out.
        if not any(element == named.element for named in (MXFP4, MXFP8)):
            base += f"_e{element.exponent_bits}m{element.mantissa_bits}"
        suffix = ""
        if config.block_size != 32:
            suffix += f"@b{config.block_size}"
        if config.scale_bits != 8:
            suffix += f"@s{config.scale_bits}"
        return base + suffix

    def quantize(self, x, axis=-1, rng=None):
        x = np.asarray(x, dtype=np.float64)
        return QuantizedTensor(self, quantize_mx(x, self.config, axis=axis), x.shape)

    def decode(self, payload):
        return payload.dequantize()


def _malformed(base: str, expected: str):
    raise UnknownFormatError(base, f"expected {expected}")


def _block_suffix(config) -> str:
    return f"@b{config.block_size}" if config.block_size != 32 else ""


def _exponent_suffix(config) -> str:
    return f"@e{config.exponent_bits}" if config.exponent_bits != 5 else ""
