"""JSON-safe ``to_dict`` / ``from_dict`` round-trips for format configurations.

The dictionary form is ``{"family": <registry key>, **dataclass fields}``
with every value JSON-serialisable: enums become their string values and
nested configurations (the :class:`~repro.core.floatspec.FloatSpec` element
of an MX format) become nested dictionaries.  This is what experiment
manifests and reproducible sweep configurations persist — unlike spec
strings, it captures *every* field, including ones outside the spec grammar
(rounding modes, exponent-selection strategies, clip ratios).

The generic implementation walks ``dataclasses.fields`` of the registered
configuration type, so a newly registered format gets serialisation for free
as long as its configuration is a dataclass of JSON-safe / enum / nested-
config fields.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.quant.registry import (
    UnknownFormatError,
    _quantizer_class_for,
    registered_families,
)

__all__ = ["config_to_dict", "config_from_dict"]


def _encode_value(value):
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return config_to_dict(value)
    return value


def config_to_dict(config) -> dict:
    """Serialise a registered configuration into a JSON-safe dictionary."""
    cls = _quantizer_class_for(type(config))
    if not dataclasses.is_dataclass(config):
        raise TypeError(f"{type(config).__name__} is not a dataclass configuration")
    payload = {"family": cls.family}
    for field in dataclasses.fields(config):
        payload[field.name] = _encode_value(getattr(config, field.name))
    return payload


def _decode_value(hint, value):
    if isinstance(value, dict) and "family" in value:
        return config_from_dict(value)
    if isinstance(hint, type) and issubclass(hint, enum.Enum) and isinstance(value, str):
        return hint(value)
    return value


def config_from_dict(payload: dict):
    """Rebuild a configuration from :func:`config_to_dict` output."""
    if not isinstance(payload, dict):
        raise TypeError(f"expected a config dictionary, got {payload!r}")
    family = payload.get("family")
    if family is None:
        raise UnknownFormatError(payload, "missing 'family' key")
    from repro.quant.registry import _FAMILIES

    registered_families()  # force lazy registrations
    cls = _FAMILIES.get(family)
    if cls is None:
        raise UnknownFormatError(family, "no such registered family")
    config_type = cls.config_type
    hints = typing.get_type_hints(config_type)
    field_names = {field.name for field in dataclasses.fields(config_type)}
    kwargs = {}
    for key, value in payload.items():
        if key == "family":
            continue
        if key not in field_names:
            raise UnknownFormatError(family, f"unknown field {key!r} for {config_type.__name__}")
        kwargs[key] = _decode_value(hints.get(key), value)
    return config_type(**kwargs)
