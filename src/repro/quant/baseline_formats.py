"""Registry entries for the calibration-free baseline quantisers (Olive, Oltron).

These live outside :mod:`repro.quant.formats` because the baseline modules
import the LLM inference stack; the registry imports this module lazily on
the first spec (or configuration type) the core families do not recognise,
so ``import repro.quant`` stays lightweight.

SmoothQuant, OmniQuant and GPTQ are *not* registrable: they need a model and
a calibration corpus, so they remain scheme builders
(:func:`repro.baselines.build_smoothquant_scheme` etc.) rather than pure
number formats.
"""

from __future__ import annotations

import re

import numpy as np

from repro.baselines.olive import OliveConfig, olive_quantize_dequantize
from repro.baselines.oltron import OltronConfig, oltron_quantize_dequantize
from repro.quant.api import QuantizedTensor, Quantizer
from repro.quant.formats import _int_mod
from repro.quant.registry import UnknownFormatError, register_format

__all__ = ["OliveQuantizer", "OltronQuantizer"]

_OLIVE_RE = re.compile(r"^olive(\d+)?$")
_OLTRON_RE = re.compile(r"^oltron(\d+)?$")


class _FakeQuantOnly(Quantizer):
    """Shared behaviour for baselines without a hardware-faithful container."""

    def quantize(self, x, axis=-1, rng=None):
        x = np.asarray(x, dtype=np.float64)
        return QuantizedTensor(self, self.quantize_dequantize(x, axis=axis), x.shape)

    def decode(self, payload):
        return payload

    def payload_memory_bits(self, payload):
        # Round the *total*, not bits-per-element, so fractional overheads
        # (Oltron's FP16 outlier side path) are not truncated away.
        return int(round(np.size(payload) * self.bits_per_element()))


@register_format("olive", OliveConfig, example_specs=("olive4", "olive8"))
class OliveQuantizer(_FakeQuantOnly):
    """Olive outlier-victim pairs (``olive<b>``; group size via ``@g<N>``)."""

    @classmethod
    def try_parse(cls, base, mods):
        match = _OLIVE_RE.match(base)
        if not match:
            return None
        kwargs = {}
        if match.group(1) is not None:
            kwargs["bits"] = int(match.group(1))
        if "g" in mods:
            kwargs["group_size"] = _int_mod(mods, "g", base)
        if mods:
            raise UnknownFormatError(base, f"unsupported modifiers {sorted(mods)}")
        return OliveConfig(**kwargs)

    @classmethod
    def format_spec(cls, config) -> str:
        spec = f"olive{config.bits}"
        if config.group_size != 128:
            spec += f"@g{config.group_size}"
        return spec

    def bits_per_element(self) -> float:
        return float(self.config.bits)

    def quantize_dequantize(self, x, axis=-1, rng=None):
        return olive_quantize_dequantize(x, self.config)


@register_format("oltron", OltronConfig, example_specs=("oltron4", "oltron8"))
class OltronQuantizer(_FakeQuantOnly):
    """Oltron fixed-budget outlier splitting (``oltron<b>``)."""

    @classmethod
    def try_parse(cls, base, mods):
        match = _OLTRON_RE.match(base)
        if not match:
            return None
        if mods:
            raise UnknownFormatError(base, f"unsupported modifiers {sorted(mods)}")
        if match.group(1) is not None:
            return OltronConfig(inlier_bits=int(match.group(1)))
        return OltronConfig()

    @classmethod
    def format_spec(cls, config) -> str:
        return f"oltron{config.inlier_bits}"

    def bits_per_element(self) -> float:
        # The dense path plus the FP16 side path weighted by the outlier budget.
        return self.config.inlier_bits + self.config.outlier_ratio * 16.0

    def quantize_dequantize(self, x, axis=-1, rng=None):
        return oltron_quantize_dequantize(x, self.config)
