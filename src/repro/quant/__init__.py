"""Unified quantizer API: registry, spec strings, one dispatch path per format.

Historically every number format in this repository exposed its own
``*Config`` dataclass and ``*_quantize_dequantize`` free function, and each
call site (the CLI, :class:`~repro.llm.inference.QuantizationScheme`, the
mixed-precision search, the experiment drivers) re-implemented format
dispatch with ``isinstance`` or string ladders.  This package collapses all
of that into three entry points:

>>> from repro.quant import parse_spec, get_quantizer
>>> config = parse_spec("BBFP(4,2)")          # spec string -> config dataclass
>>> quantizer = get_quantizer("BBFP(4,2)")    # memoized polymorphic quantizer
>>> x_hat = quantizer.quantize_dequantize(x, axis=-1)   # doctest: +SKIP
>>> encoded = quantizer.quantize(x)           # doctest: +SKIP
>>> encoded.dequantize(); encoded.memory_bits()         # doctest: +SKIP

**The spec-string grammar** (case- and whitespace-insensitive):

=============  =====================================  =========================
family         grammar                                examples
=============  =====================================  =========================
BBFP           ``BBFP(m,o)`` / ``BBFP(m,o,e)``        ``BBFP(4,2)``
BFP            ``BFP<m>``                             ``bfp6``, ``bfp8@b32``
INT            ``INT<b>``                             ``int8``, ``int8@pc``
minifloat      ``FP<t>[_e<E>m<M>]`` / ``BF16``        ``fp16``, ``fp8_e4m3``
microscaling   ``MXFP<t>[_e<E>m<M>]``                 ``mxfp4``, ``mxfp6_e3m2``
BiE            ``BiE<m>[(k=<K>)]``                    ``bie4``, ``bie4@k3``
Olive/Oltron   ``olive<b>`` / ``oltron<b>``           ``olive4``, ``oltron4``
=============  =====================================  =========================

Optional ``@`` modifiers compose after any base spec: ``@b<N>`` block size,
``@e<N>`` shared-exponent bits, ``@k<N>`` BiE outlier count, ``@s<N>`` MX
scale bits, ``@c<R>`` INT clip ratio, ``@pc`` / ``@pt`` INT granularity,
``@g<N>`` Olive group size.

**Registering a new format** costs one class::

    @register_format("myfmt", MyConfig, example_specs=("myfmt8",))
    class MyQuantizer(Quantizer):
        @classmethod
        def try_parse(cls, base, mods): ...
        @classmethod
        def format_spec(cls, config): ...
        def quantize(self, x, axis=-1, rng=None): ...
        def decode(self, payload): ...

after which the CLI, ``QuantizationScheme.from_format``, the mixed-precision
search and every experiment driver accept it — no call-site edits.

Every configuration also round-trips through ``config.to_dict()`` /
``Config.from_dict()`` (JSON-safe, for experiment manifests) and through its
canonical ``config.spec`` string; see :mod:`repro.core.serializable`.
"""

from repro.quant import formats as _formats  # noqa: F401  (registers core families)
from repro.quant.api import QuantizedTensor, Quantizer
from repro.quant.registry import (
    UnknownFormatError,
    clear_cache,
    family_of,
    get_quantizer,
    list_formats,
    parse_spec,
    register_format,
    registered_families,
    spec_of,
)
from repro.quant.serialization import config_from_dict, config_to_dict

__all__ = [
    "Quantizer",
    "QuantizedTensor",
    "UnknownFormatError",
    "register_format",
    "parse_spec",
    "get_quantizer",
    "spec_of",
    "family_of",
    "list_formats",
    "registered_families",
    "clear_cache",
    "config_to_dict",
    "config_from_dict",
]
