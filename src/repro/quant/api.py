"""The :class:`Quantizer` protocol and the :class:`QuantizedTensor` container.

A *quantizer* is the polymorphic face of one number-format configuration: it
knows how to encode a float tensor (``quantize``), decode it back
(``dequantize``), fake-quantise in one step (``quantize_dequantize``), and
report its storage cost (``bits_per_element``).  Concrete quantizers wrap the
free functions of :mod:`repro.core` — they add no numerics of their own, so
the registry dispatch path produces bit-identical results to the legacy
per-family calls.

A *quantized tensor* is the common result container.  Formats with a native
hardware-faithful tensor class (``BBFPTensor``, ``BFPTensor``, ``BiETensor``,
``MXTensor``) carry it as the payload; formats without one (INT, minifloat,
baselines) carry a family-specific payload that the owning quantizer knows
how to decode.  Either way the caller sees the same three methods:
``dequantize()``, ``memory_bits()`` and ``spec``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Quantizer", "QuantizedTensor"]


@dataclass
class QuantizedTensor:
    """Format-agnostic handle on a quantised tensor.

    Attributes
    ----------
    quantizer:
        The :class:`Quantizer` that produced this tensor (and knows how to
        decode the payload).
    payload:
        Format-specific encoded representation; for the block formats this is
        the native tensor object (``BBFPTensor`` etc.).
    shape:
        Shape of the original dense tensor.
    """

    quantizer: "Quantizer"
    payload: Any = field(repr=False)
    shape: tuple

    @property
    def spec(self) -> str:
        """Canonical spec string of the producing format."""
        return self.quantizer.spec

    @property
    def name(self) -> str:
        return self.quantizer.name

    def dequantize(self) -> np.ndarray:
        """Reconstruct the dense float tensor in its original shape."""
        return self.quantizer.decode(self.payload)

    def memory_bits(self) -> int:
        """Total storage footprint of the encoded representation in bits."""
        return self.quantizer.payload_memory_bits(self.payload)


class Quantizer(abc.ABC):
    """One registered number format, bound to a concrete configuration.

    Subclasses are registered with
    :func:`repro.quant.registry.register_format`, which fills in the class
    attributes ``family`` (the registry key, e.g. ``"bbfp"``) and
    ``config_type`` (the configuration dataclass the quantizer wraps).

    Instances are cheap, stateless wrappers; :func:`repro.quant.get_quantizer`
    memoizes them per configuration so hot loops can resolve a spec string on
    every call without re-constructing anything.
    """

    #: Filled in by ``register_format``.
    family: str = ""
    config_type: type = object
    #: Example spec strings, used by ``list_formats`` and the did-you-mean
    #: suggestions of :class:`~repro.quant.registry.UnknownFormatError`.
    example_specs: tuple = ()

    def __init__(self, config):
        if not isinstance(config, self.config_type):
            raise TypeError(
                f"{type(self).__name__} wraps {self.config_type.__name__} configurations, "
                f"got {type(config).__name__}"
            )
        self._config = config

    # ------------------------------------------------------------- identity
    @property
    def config(self):
        """The wrapped configuration dataclass."""
        return self._config

    @property
    def name(self) -> str:
        """Display name used in result tables (e.g. ``"BBFP(4,2)"``)."""
        return getattr(self._config, "name", type(self._config).__name__)

    @property
    def spec(self) -> str:
        """Canonical spec string; ``parse_spec(self.spec)`` rebuilds the config."""
        return type(self).format_spec(self._config)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec!r})"

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other._config == self._config

    def __hash__(self) -> int:
        return hash((type(self), self._config))

    # ----------------------------------------------------- spec-string hooks
    @classmethod
    @abc.abstractmethod
    def try_parse(cls, base: str, mods: dict):
        """Parse a normalised spec body into a configuration.

        ``base`` is the lowercase spec with whitespace and ``@`` modifiers
        stripped; ``mods`` maps modifier keys (``"b"``, ``"e"``, ``"k"``,
        ``"s"``, ``"pc"``...) to their values.  Return ``None`` when ``base``
        does not belong to this family; raise
        :class:`~repro.quant.registry.UnknownFormatError` when it does but is
        malformed.
        """

    @classmethod
    @abc.abstractmethod
    def format_spec(cls, config) -> str:
        """Render ``config`` as its canonical spec string."""

    # ------------------------------------------------------------ quantising
    @abc.abstractmethod
    def quantize(self, x: np.ndarray, axis: int = -1,
                 rng: np.random.Generator = None) -> QuantizedTensor:
        """Encode ``x`` (blocked along ``axis`` where the format blocks)."""

    @abc.abstractmethod
    def decode(self, payload) -> np.ndarray:
        """Decode a :class:`QuantizedTensor` payload back to a dense tensor."""

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1,
                            rng: np.random.Generator = None) -> np.ndarray:
        """Fake quantisation: encode then immediately decode.

        Subclasses override this when the underlying free function fuses the
        two steps more cheaply.
        """
        return self.quantize(x, axis=axis, rng=rng).dequantize()

    # --------------------------------------------------------------- costing
    def bits_per_element(self) -> float:
        """Average storage bits per element (Table I "Equivalent Bit-Width")."""
        return float(self._config.equivalent_bit_width())

    def payload_memory_bits(self, payload) -> int:
        """Storage footprint of an encoded payload; block formats delegate."""
        return int(payload.memory_bits())

    def memory_efficiency(self, reference_bits: float = 16.0) -> float:
        """Memory density improvement relative to FP16."""
        return reference_bits / self.bits_per_element()
