"""Synthetic request traces for the serving benchmarks.

Real serving traffic is bursty: requests arrive as a Poisson process and mix
short chat-style prompts with longer documents and varying continuation
lengths.  :func:`generate_requests` reproduces that shape deterministically —
exponential inter-arrival gaps at a configurable offered load, uniformly
mixed prompt/output lengths, and per-request sampling seeds — so two runs of
the benchmark (or the same run under two KV-quantisation specs) replay the
identical trace.

Two further generators produce the workload classes a prefix-sharing cache
exists for:

* :func:`generate_shared_prefix_requests` — a configurable fraction of
  requests open with one of a few long shared prefixes (the shared system
  prompt / few-shot template shape), so identical leading pages can be
  served from the radix index instead of re-prefilled;
* :func:`generate_multi_turn_requests` — conversations whose every turn
  resubmits the growing dialogue history plus a new user message, the
  canonical chat workload where each turn's prompt is a strict extension of
  the previous one.

:func:`generate_trace` dispatches on the config type so benchmark drivers
accept any of the three shapes through one entry point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serve.engine import Request

__all__ = ["WorkloadConfig", "SharedPrefixConfig", "MultiTurnConfig",
           "generate_requests", "generate_shared_prefix_requests",
           "generate_multi_turn_requests", "generate_trace", "validate_arrival_rate"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a synthetic request trace.

    ``arrival_rate`` is the offered load in requests per second (``0`` makes
    every request available at time 0 — a closed-loop burst); prompt and
    output lengths are drawn uniformly from the inclusive ranges.
    """

    num_requests: int = 32
    arrival_rate: float = 8.0
    prompt_tokens: tuple = (8, 32)
    new_tokens: tuple = (4, 16)
    temperature: float = 0.0
    top_k: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        validate_arrival_rate(self.arrival_rate)
        if self.temperature < 0:
            raise ValueError("temperature must be >= 0 (0 = greedy decoding)")
        if self.top_k < 0:
            raise ValueError("top_k must be >= 0 (0 = no top-k truncation)")
        for name in ("prompt_tokens", "new_tokens"):
            lo, hi = getattr(self, name)
            if lo < 1 or hi < lo:
                raise ValueError(f"{name} must be an increasing range of positive ints")


def generate_requests(vocab_size: int, config: WorkloadConfig = None) -> list:
    """Build a deterministic Poisson-arrival request trace.

    Returns :class:`~repro.serve.engine.Request` objects sorted by arrival
    time, with token ids drawn from ``[0, vocab_size)`` and one distinct
    sampling seed per request.
    """
    config = config or WorkloadConfig()
    if vocab_size < 2:
        raise ValueError("vocab_size must be >= 2")
    rng = np.random.default_rng(config.seed)
    if config.arrival_rate > 0:
        gaps = rng.exponential(1.0 / config.arrival_rate, size=config.num_requests)
        arrivals = np.cumsum(gaps)
    else:
        arrivals = np.zeros(config.num_requests)
    requests = []
    for index in range(config.num_requests):
        prompt_len = int(rng.integers(config.prompt_tokens[0], config.prompt_tokens[1] + 1))
        max_new = int(rng.integers(config.new_tokens[0], config.new_tokens[1] + 1))
        prompt = rng.integers(0, vocab_size, size=prompt_len)
        requests.append(Request(
            request_id=index,
            prompt_tokens=tuple(int(t) for t in prompt),
            max_new_tokens=max_new,
            arrival_time=float(arrivals[index]),
            temperature=config.temperature,
            top_k=config.top_k,
            seed=config.seed * 100_003 + index,
        ))
    return requests


def validate_arrival_rate(rate, positive: bool = False) -> None:
    """Reject unusable arrival rates at config time, before any trace math.

    A negative, NaN or infinite rate would otherwise slip into the
    exponential-gap draw (``1 / arrival_rate``) and come back out as NaN
    arrival times or a silent all-at-once burst.  ``positive=True`` is the
    open-loop contract (the gateway load generator): inter-arrival gaps must
    be real, so ``0`` — the closed-loop burst convention — is rejected too.
    """
    if not np.isfinite(rate) or rate < 0 or (positive and rate == 0):
        bound = "> 0" if positive else ">= 0 (0 = closed-loop burst)"
        raise ValueError(
            f"arrival_rate must be a finite offered load {bound} in requests/s, "
            f"got {rate!r}"
        )


def _validate_range(name: str, bounds) -> None:
    lo, hi = bounds
    if lo < 1 or hi < lo:
        raise ValueError(f"{name} must be an increasing range of positive ints")


def _validate_sampling(temperature: float, top_k: int) -> None:
    if temperature < 0:
        raise ValueError("temperature must be >= 0 (0 = greedy decoding)")
    if top_k < 0:
        raise ValueError("top_k must be >= 0 (0 = no top-k truncation)")


@dataclass(frozen=True)
class SharedPrefixConfig:
    """A trace where many prompts open with one of a few shared prefixes.

    ``shared_fraction`` of the requests draw one of ``num_prefixes`` fixed
    ``prefix_tokens``-long prefixes (uniformly); the rest get a private
    random prefix of the same length, so the prompt-length distribution is
    identical with and without sharing and throughput differences isolate
    cache reuse.  Every prompt ends in a per-request unique suffix.
    """

    num_requests: int = 32
    arrival_rate: float = 8.0
    num_prefixes: int = 4
    prefix_tokens: int = 32
    unique_tokens: tuple = (4, 12)
    new_tokens: tuple = (4, 16)
    shared_fraction: float = 0.8
    temperature: float = 0.0
    top_k: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        validate_arrival_rate(self.arrival_rate)
        if self.num_prefixes < 1:
            raise ValueError("num_prefixes must be >= 1")
        if self.prefix_tokens < 1:
            raise ValueError("prefix_tokens must be >= 1")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ValueError("shared_fraction must be in [0, 1]")
        _validate_range("unique_tokens", self.unique_tokens)
        _validate_range("new_tokens", self.new_tokens)
        _validate_sampling(self.temperature, self.top_k)


def generate_shared_prefix_requests(vocab_size: int,
                                    config: SharedPrefixConfig = None) -> list:
    """Build a deterministic shared-prefix trace (see :class:`SharedPrefixConfig`)."""
    config = config or SharedPrefixConfig()
    if vocab_size < 2:
        raise ValueError("vocab_size must be >= 2")
    rng = np.random.default_rng(config.seed)
    prefixes = [tuple(int(t) for t in rng.integers(0, vocab_size,
                                                   size=config.prefix_tokens))
                for _ in range(config.num_prefixes)]
    if config.arrival_rate > 0:
        arrivals = np.cumsum(rng.exponential(1.0 / config.arrival_rate,
                                             size=config.num_requests))
    else:
        arrivals = np.zeros(config.num_requests)
    requests = []
    for index in range(config.num_requests):
        if rng.random() < config.shared_fraction:
            prefix = prefixes[int(rng.integers(0, config.num_prefixes))]
        else:
            prefix = tuple(int(t) for t in rng.integers(0, vocab_size,
                                                        size=config.prefix_tokens))
        unique_len = int(rng.integers(config.unique_tokens[0],
                                      config.unique_tokens[1] + 1))
        suffix = tuple(int(t) for t in rng.integers(0, vocab_size, size=unique_len))
        max_new = int(rng.integers(config.new_tokens[0], config.new_tokens[1] + 1))
        requests.append(Request(
            request_id=index,
            prompt_tokens=prefix + suffix,
            max_new_tokens=max_new,
            arrival_time=float(arrivals[index]),
            temperature=config.temperature,
            top_k=config.top_k,
            seed=config.seed * 100_003 + index,
        ))
    return requests


@dataclass(frozen=True)
class MultiTurnConfig:
    """Conversations whose every turn resubmits the growing history.

    Each conversation opens with a ``system_tokens``-long system prompt
    (shared across *all* conversations, like one deployment-wide template)
    and runs a uniform number of turns in ``turns``.  The prompt of turn
    ``t`` is the system prompt plus every user message up to ``t`` — a
    strict extension of turn ``t-1``'s prompt, so a prefix cache re-serves
    the whole history and only the new message needs prefill.  (Assistant
    tokens are not folded back into later prompts: the trace is fixed ahead
    of the run, which keeps it replayable across engines and backends.)

    Conversations start as a Poisson process at ``arrival_rate``; successive
    turns of one conversation are spaced ``think_time_s`` apart.
    """

    num_conversations: int = 8
    turns: tuple = (2, 4)
    arrival_rate: float = 4.0
    think_time_s: float = 0.5
    system_tokens: int = 16
    user_tokens: tuple = (4, 12)
    new_tokens: tuple = (2, 8)
    temperature: float = 0.0
    top_k: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.num_conversations < 1:
            raise ValueError("num_conversations must be >= 1")
        validate_arrival_rate(self.arrival_rate)
        if self.think_time_s < 0:
            raise ValueError("think_time_s must be >= 0")
        if self.system_tokens < 1:
            raise ValueError("system_tokens must be >= 1")
        _validate_range("turns", self.turns)
        _validate_range("user_tokens", self.user_tokens)
        _validate_range("new_tokens", self.new_tokens)
        _validate_sampling(self.temperature, self.top_k)


def generate_multi_turn_requests(vocab_size: int,
                                 config: MultiTurnConfig = None) -> list:
    """Build a deterministic multi-turn conversation trace.

    Returns requests sorted by arrival time with globally unique ids;
    ``request_id`` ordering within one conversation follows turn order.
    """
    config = config or MultiTurnConfig()
    if vocab_size < 2:
        raise ValueError("vocab_size must be >= 2")
    rng = np.random.default_rng(config.seed)
    system = tuple(int(t) for t in rng.integers(0, vocab_size,
                                                size=config.system_tokens))
    if config.arrival_rate > 0:
        starts = np.cumsum(rng.exponential(1.0 / config.arrival_rate,
                                           size=config.num_conversations))
    else:
        starts = np.zeros(config.num_conversations)
    drafts = []  # (arrival_time, conversation, turn, prompt, max_new)
    for conversation in range(config.num_conversations):
        n_turns = int(rng.integers(config.turns[0], config.turns[1] + 1))
        history = system
        for turn in range(n_turns):
            user_len = int(rng.integers(config.user_tokens[0],
                                        config.user_tokens[1] + 1))
            history = history + tuple(
                int(t) for t in rng.integers(0, vocab_size, size=user_len))
            max_new = int(rng.integers(config.new_tokens[0], config.new_tokens[1] + 1))
            arrival = float(starts[conversation]) + turn * config.think_time_s
            drafts.append((arrival, conversation, turn, history, max_new))
    drafts.sort(key=lambda d: (d[0], d[1], d[2]))
    requests = []
    for index, (arrival, _conversation, _turn, prompt, max_new) in enumerate(drafts):
        requests.append(Request(
            request_id=index,
            prompt_tokens=prompt,
            max_new_tokens=max_new,
            arrival_time=arrival,
            temperature=config.temperature,
            top_k=config.top_k,
            seed=config.seed * 100_003 + index,
        ))
    return requests


def generate_trace(vocab_size: int, config) -> list:
    """Dispatch a trace config to its generator (the benchmark entry point)."""
    if isinstance(config, SharedPrefixConfig):
        return generate_shared_prefix_requests(vocab_size, config)
    if isinstance(config, MultiTurnConfig):
        return generate_multi_turn_requests(vocab_size, config)
    if isinstance(config, WorkloadConfig):
        return generate_requests(vocab_size, config)
    raise TypeError(f"unsupported workload config {type(config).__name__!r}")
