"""Synthetic request traces for the serving benchmark.

Real serving traffic is bursty: requests arrive as a Poisson process and mix
short chat-style prompts with longer documents and varying continuation
lengths.  :func:`generate_requests` reproduces that shape deterministically —
exponential inter-arrival gaps at a configurable offered load, uniformly
mixed prompt/output lengths, and per-request sampling seeds — so two runs of
the benchmark (or the same run under two KV-quantisation specs) replay the
identical trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serve.engine import Request

__all__ = ["WorkloadConfig", "generate_requests"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a synthetic request trace.

    ``arrival_rate`` is the offered load in requests per second (``0`` makes
    every request available at time 0 — a closed-loop burst); prompt and
    output lengths are drawn uniformly from the inclusive ranges.
    """

    num_requests: int = 32
    arrival_rate: float = 8.0
    prompt_tokens: tuple = (8, 32)
    new_tokens: tuple = (4, 16)
    temperature: float = 0.0
    top_k: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be >= 0")
        if self.temperature < 0:
            raise ValueError("temperature must be >= 0 (0 = greedy decoding)")
        if self.top_k < 0:
            raise ValueError("top_k must be >= 0 (0 = no top-k truncation)")
        for name in ("prompt_tokens", "new_tokens"):
            lo, hi = getattr(self, name)
            if lo < 1 or hi < lo:
                raise ValueError(f"{name} must be an increasing range of positive ints")


def generate_requests(vocab_size: int, config: WorkloadConfig = None) -> list:
    """Build a deterministic Poisson-arrival request trace.

    Returns :class:`~repro.serve.engine.Request` objects sorted by arrival
    time, with token ids drawn from ``[0, vocab_size)`` and one distinct
    sampling seed per request.
    """
    config = config or WorkloadConfig()
    if vocab_size < 2:
        raise ValueError("vocab_size must be >= 2")
    rng = np.random.default_rng(config.seed)
    if config.arrival_rate > 0:
        gaps = rng.exponential(1.0 / config.arrival_rate, size=config.num_requests)
        arrivals = np.cumsum(gaps)
    else:
        arrivals = np.zeros(config.num_requests)
    requests = []
    for index in range(config.num_requests):
        prompt_len = int(rng.integers(config.prompt_tokens[0], config.prompt_tokens[1] + 1))
        max_new = int(rng.integers(config.new_tokens[0], config.new_tokens[1] + 1))
        prompt = rng.integers(0, vocab_size, size=prompt_len)
        requests.append(Request(
            request_id=index,
            prompt_tokens=tuple(int(t) for t in prompt),
            max_new_tokens=max_new,
            arrival_time=float(arrivals[index]),
            temperature=config.temperature,
            top_k=config.top_k,
            seed=config.seed * 100_003 + index,
        ))
    return requests
