"""Paged KV storage: a block pool with refcounts and a radix prefix index.

The dense :class:`~repro.serve.kv_cache.KVCache` reserves ``batch x
max_seq_len`` positions up front — worst-case memory, no sharing.  This
module provides the two primitives the paged cache is built from (the
vLLM/SGLang idiom):

* :class:`BlockPool` — all K/V storage lives in fixed-size *pages* of
  ``page_size`` token positions (every layer, both K and V sides).  Pages are
  handed out from a free list, reference-counted so several sequences can
  share one page, and copied on demand (:meth:`BlockPool.copy_block`) when a
  writer must diverge from a shared page — copy-on-write.
* :class:`RadixIndex` — a radix tree over token ids at page granularity:
  each node owns one *full* page and is keyed by the ``page_size`` token ids
  it covers.  A new request walks the tree with its prompt and adopts every
  full page of the longest cached prefix instead of recomputing prefill;
  retired requests insert their full pages back.  Unreferenced chains are
  evicted least-recently-used when the pool runs dry, using a logical access
  counter so eviction order (and therefore every report built on top) is
  deterministic.

Correctness of sharing rests on causality: the K/V of position ``i`` depends
only on tokens ``0..i``, so two requests whose prompts agree on the first
``k * page_size`` tokens may share those ``k`` pages bit-for-bit.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.llm.config import ModelConfig

__all__ = ["BlockPool", "RadixIndex", "PoolExhaustedError"]


class PoolExhaustedError(RuntimeError):
    """Raised when an allocation cannot be satisfied even after eviction."""


class BlockPool:
    """Fixed-size pages of per-layer K/V storage with refcounted allocation.

    One block holds ``page_size`` token positions for *every* decoder layer
    (layout per layer: ``(num_blocks, n_heads, page_size, head_dim)``), so a
    sequence's block table is one list of ids, not one per layer.  Blocks are
    allocated lowest-id-first from a heap so allocation order is
    deterministic, and freed back when their reference count drops to zero.

    >>> from repro.llm.config import ModelConfig
    >>> config = ModelConfig(name="doc", vocab_size=64, d_model=8, n_heads=2,
    ...                      n_layers=1, d_ff=16, max_seq_len=32)
    >>> pool = BlockPool(config, num_blocks=4, page_size=8)
    >>> block = pool.alloc()
    >>> pool.retain(block)            # a second holder (e.g. a forked sequence)
    >>> pool.refcount(block), pool.num_free
    (2, 3)
    >>> pool.release(block); pool.release(block)
    >>> pool.num_free
    4
    """

    def __init__(self, config: ModelConfig, num_blocks: int, page_size: int):
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self.config = config
        self.num_blocks = int(num_blocks)
        self.page_size = int(page_size)
        shape = (self.num_blocks, config.n_heads, self.page_size, config.head_dim)
        self.k_store = [np.zeros(shape) for _ in range(config.n_layers)]
        self.v_store = [np.zeros(shape) for _ in range(config.n_layers)]
        self._refcounts = np.zeros(self.num_blocks, dtype=np.int64)
        self._free = list(range(self.num_blocks))  # heap: lowest id first
        heapq.heapify(self._free)
        self._peak_pages = 0

    # ------------------------------------------------------------- allocation
    @property
    def capacity(self) -> int:
        return self.num_blocks

    @property
    def num_free(self) -> int:
        return len(self._free)

    @property
    def pages_in_use(self) -> int:
        return self.num_blocks - len(self._free)

    @property
    def peak_pages_in_use(self) -> int:
        """High-water mark of concurrently allocated pages."""
        return self._peak_pages

    def try_alloc(self) -> int:
        """Allocate one page (refcount 1), or return ``None`` when empty."""
        if not self._free:
            return None
        block = heapq.heappop(self._free)
        self._refcounts[block] = 1
        self._peak_pages = max(self._peak_pages, self.pages_in_use)
        return block

    def alloc(self) -> int:
        """Allocate one page (refcount 1); raises :class:`PoolExhaustedError`."""
        block = self.try_alloc()
        if block is None:
            raise PoolExhaustedError(
                f"all {self.num_blocks} KV pages are referenced; nothing to allocate"
            )
        return block

    def refcount(self, block: int) -> int:
        return int(self._refcounts[block])

    def allocated_blocks(self) -> list:
        """Ids of every currently allocated page (refcount > 0), ascending.

        The audit surface: together with per-holder expectations (block
        tables, radix nodes) this lets a test or a shutdown check prove that
        no page leaked — see :meth:`repro.serve.engine.ServeEngine.audit_kv_pages`.
        """
        return [int(block) for block in np.flatnonzero(self._refcounts > 0)]

    def retain(self, block: int) -> int:
        """Add one reference to an allocated page (share it); returns the id."""
        if self._refcounts[block] < 1:
            raise ValueError(f"cannot retain free block {block}")
        self._refcounts[block] += 1
        return block

    def release(self, block: int) -> None:
        """Drop one reference; the page returns to the free list at zero."""
        if self._refcounts[block] < 1:
            raise ValueError(f"double free of block {block}")
        self._refcounts[block] -= 1
        if self._refcounts[block] == 0:
            heapq.heappush(self._free, int(block))

    def copy_block(self, block: int) -> int:
        """Copy-on-write helper: clone a page's K/V into a fresh page.

        The caller keeps its reference on the source (release separately) and
        receives a private copy with refcount 1 — the divergence step of a
        forked sequence that must overwrite a shared page.
        """
        clone = self.alloc()
        for layer in range(self.config.n_layers):
            self.k_store[layer][clone] = self.k_store[layer][block]
            self.v_store[layer][clone] = self.v_store[layer][block]
        return clone


class _RadixNode:
    """One full page of a cached prefix: keyed by its ``page_size`` token ids."""

    __slots__ = ("key", "block", "parent", "children", "last_access")

    def __init__(self, key, block, parent):
        self.key = key                  # tuple of page_size token ids (None at root)
        self.block = block              # pool block id (None at root)
        self.parent = parent
        self.children = {}              # key tuple -> _RadixNode
        self.last_access = 0


class RadixIndex:
    """Token-prefix -> block-chain map at full-page granularity.

    The index holds its own pool reference on every node's block, so cached
    chains survive the requests that built them; a chain whose blocks are
    referenced *only* by the index (refcount 1) is evictable.  Access
    recency is a logical tick, not wall time, so LRU order is reproducible.
    """

    def __init__(self, pool: BlockPool):
        self.pool = pool
        self.page_size = pool.page_size
        self._root = _RadixNode(key=None, block=None, parent=None)
        self._num_nodes = 0
        self._tick = 0

    def __len__(self) -> int:
        """Number of cached pages (tree nodes, excluding the root)."""
        return self._num_nodes

    def _touch(self, node: _RadixNode) -> None:
        self._tick += 1
        node.last_access = self._tick

    def _page_key(self, tokens, page: int):
        lo = page * self.page_size
        return tuple(int(t) for t in tokens[lo:lo + self.page_size])

    # ---------------------------------------------------------------- lookup
    def match(self, tokens, max_tokens: int = None) -> list:
        """Longest cached chain of full pages prefixing ``tokens``.

        Returns the matched nodes root-outward.  ``max_tokens`` bounds the
        match (e.g. ``len(prompt) - 1`` so at least one prompt token is left
        to prefill and produce first-token logits).
        """
        limit = len(tokens) if max_tokens is None else min(max_tokens, len(tokens))
        matched = []
        node = self._root
        while (len(matched) + 1) * self.page_size <= limit:
            child = node.children.get(self._page_key(tokens, len(matched)))
            if child is None:
                break
            matched.append(child)
            node = child
        return matched

    def acquire(self, nodes) -> list:
        """Retain every matched block for a request; returns the block ids."""
        blocks = []
        for node in nodes:
            self.pool.retain(node.block)
            self._touch(node)
            blocks.append(node.block)
        return blocks

    # --------------------------------------------------------------- insert
    def insert(self, tokens, blocks) -> int:
        """Register a retired sequence's full pages for future reuse.

        ``blocks`` is the sequence's block table; page ``i`` of ``tokens``
        lives in ``blocks[i]``.  Only full pages are inserted.  Existing
        nodes keep their block (the duplicate page stays owned by the caller,
        who releases it); new nodes take an index-owned reference on the
        caller's block.  Returns the number of newly inserted pages.
        """
        full_pages = min(len(tokens) // self.page_size, len(blocks))
        node = self._root
        inserted = 0
        for page in range(full_pages):
            key = self._page_key(tokens, page)
            child = node.children.get(key)
            if child is None:
                child = _RadixNode(key=key, block=self.pool.retain(blocks[page]),
                                   parent=node)
                node.children[key] = child
                self._num_nodes += 1
                inserted += 1
            self._touch(child)
            node = child
        return inserted

    # -------------------------------------------------------------- eviction
    def owned_blocks(self) -> list:
        """Block ids the index holds a reference on (one per tree node)."""
        return [node.block for node in self._walk()]

    def evictable_blocks(self) -> int:
        """Pages held only by the index (refcount 1) — reclaimable supply."""
        return sum(1 for node in self._walk()
                   if self.pool.refcount(node.block) == 1)

    def _walk(self):
        stack = list(self._root.children.values())
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            yield node

    def evict_one(self) -> bool:
        """Evict the least-recently-used unreferenced leaf page.

        Only leaves are candidates (evicting an inner node would orphan its
        chain); any active request holding a child also holds every ancestor,
        so an unreferenced subtree always exposes an unreferenced leaf.
        Returns ``False`` when nothing is evictable.
        """
        victim = None
        for node in self._walk():
            if node.children or self.pool.refcount(node.block) != 1:
                continue
            if victim is None or node.last_access < victim.last_access:
                victim = node
        if victim is None:
            return False
        self.pool.release(victim.block)
        del victim.parent.children[victim.key]
        self._num_nodes -= 1
        return True

    def clear(self) -> None:
        """Drop every cached chain (releases all index-owned references)."""
        for node in list(self._walk()):
            self.pool.release(node.block)
        self._root.children.clear()
        self._num_nodes = 0
