"""Pre-allocated per-layer K/V cache with optional quantised storage.

The cache backs :meth:`repro.llm.inference.InferenceModel.forward_step`: each
decoder layer appends the keys/values of newly processed positions and reads
back the full cached context for attention, so decoding one token costs one
token's worth of linear layers instead of re-running the whole prefix.

KV storage is where a serving system's memory goes (the weights are shared
across requests, the cache is per request), so the cache optionally pushes
every appended key/value through a :mod:`repro.quant` quantiser — any spec
string the registry understands (``"bfp8@b32"``, ``"int8"``, ``"mxfp4"``...).
Like everywhere else in the reproduction this is fake quantisation: the
arrays hold the dequantised values while :meth:`bits_per_token` /
:meth:`memory_bits` account for the encoded footprint, so the accuracy cost
and the memory saving of a KV format are both measurable.
"""

from __future__ import annotations

import numpy as np

from repro.llm.config import ModelConfig

__all__ = ["KVCache"]

#: Bits per stored element when no quantiser is configured: serving systems
#: keep the KV cache in half precision, so FP16 is the memory baseline the
#: quantised specs are compared against.
UNQUANTIZED_KV_BITS = 16.0


class KVCache:
    """Per-layer K/V storage for up to ``batch_size`` concurrent sequences.

    Layout: one ``(batch, n_heads, max_seq_len, head_dim)`` array per layer
    and per K/V side — the shape attention consumes, so reads need no
    transpose.  ``lengths[row]`` tracks how many positions of slot ``row``
    are valid; slots are independent, so a continuous-batching engine can
    prefill, decode and recycle them in any interleaving.

    Parameters
    ----------
    config:
        Architecture of the model the cache serves (layer/head geometry).
    batch_size:
        Number of concurrent sequence slots.
    max_seq_len:
        Capacity per slot; defaults to the model's ``max_seq_len``.
    kv_spec:
        Optional :mod:`repro.quant` spec string (or config/quantizer) applied
        to every appended key/value block along the ``head_dim`` axis.
        ``None`` stores exact values and accounts memory at FP16.
    """

    def __init__(self, config: ModelConfig, batch_size: int, max_seq_len: int = None,
                 kv_spec=None):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.config = config
        self.batch_size = int(batch_size)
        self.max_seq_len = int(max_seq_len) if max_seq_len is not None else config.max_seq_len
        if self.max_seq_len < 1 or self.max_seq_len > config.max_seq_len:
            raise ValueError(
                f"max_seq_len must be in [1, {config.max_seq_len}], got {self.max_seq_len}"
            )
        if kv_spec is None:
            self.quantizer = None
        else:
            from repro.quant import get_quantizer

            self.quantizer = get_quantizer(kv_spec)
        shape = (self.batch_size, config.n_heads, self.max_seq_len, config.head_dim)
        self._k = [np.zeros(shape) for _ in range(config.n_layers)]
        self._v = [np.zeros(shape) for _ in range(config.n_layers)]
        self._lengths = np.zeros(self.batch_size, dtype=np.int64)

    # -------------------------------------------------------------- identity
    @property
    def kv_spec(self) -> str:
        """Canonical spec of the KV quantiser, or ``"fp16"`` when unquantised."""
        return self.quantizer.spec if self.quantizer is not None else "fp16"

    @property
    def lengths(self) -> np.ndarray:
        """Valid positions per slot (do not mutate; use append/advance/reset)."""
        return self._lengths

    def __repr__(self) -> str:
        return (f"KVCache(batch_size={self.batch_size}, max_seq_len={self.max_seq_len}, "
                f"kv_spec={self.kv_spec!r}, cached_tokens={int(self._lengths.sum())})")

    # ------------------------------------------------------------ read/write
    def append(self, layer: int, rows, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Store new K/V positions for ``rows`` starting at their current lengths.

        ``k_new`` / ``v_new`` have shape ``(len(rows), n_heads, n_new,
        head_dim)``.  The write offset is ``lengths[row]`` — every layer of
        one forward step appends at the same offset; :meth:`advance` moves the
        offsets once the step has run all layers.  When a quantiser is
        configured the values are quantise-dequantised along ``head_dim``
        before storage, one row (sequence) at a time: co-batched sequences
        never share a quantisation scale, so a request's cached K/V does not
        depend on which requests happen to decode alongside it.  (For block
        formats this is a no-op split — their scales live within one
        position; for per-tensor INT the scale spans each row's appended
        block.)
        """
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        n_new = k_new.shape[2]
        starts = self._lengths[rows]
        if np.any(starts + n_new > self.max_seq_len):
            raise ValueError(
                f"append of {n_new} position(s) overflows the cache capacity "
                f"{self.max_seq_len}"
            )
        for index, row in enumerate(rows):
            k_row, v_row = k_new[index], v_new[index]
            if self.quantizer is not None:
                k_row = self.quantizer.quantize_dequantize(k_row, axis=-1)
                v_row = self.quantizer.quantize_dequantize(v_row, axis=-1)
            stop = starts[index] + n_new
            self._k[layer][row, :, starts[index]:stop] = k_row
            self._v[layer][row, :, starts[index]:stop] = v_row

    def context(self, layer: int, rows, context_len: int) -> tuple:
        """Return ``(k, v)`` of shape ``(len(rows), n_heads, context_len, head_dim)``.

        ``context_len`` covers positions appended this step but not yet
        advanced; rows shorter than ``context_len`` carry stale tail values
        the caller must mask (the causal mask of ``forward_step`` does).
        """
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        return self._k[layer][rows, :, :context_len], self._v[layer][rows, :, :context_len]

    def advance(self, rows, n_new: int) -> None:
        """Commit ``n_new`` appended positions of ``rows`` (once per forward step)."""
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        if np.any(self._lengths[rows] + n_new > self.max_seq_len):
            raise ValueError("advance past the cache capacity")
        self._lengths[rows] += n_new

    def reset(self, rows=None) -> None:
        """Invalidate ``rows`` (all slots by default) so they can be reused."""
        if rows is None:
            self._lengths[:] = 0
        else:
            rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
            self._lengths[rows] = 0

    # --------------------------------------------------------------- costing
    def bits_per_token(self) -> float:
        """Storage bits one cached token position costs (K and V, all layers)."""
        element_bits = (self.quantizer.bits_per_element() if self.quantizer is not None
                        else UNQUANTIZED_KV_BITS)
        return 2.0 * self.config.n_layers * self.config.d_model * element_bits

    def memory_bits(self) -> float:
        """Footprint of the currently cached tokens at the configured format."""
        return float(self._lengths.sum()) * self.bits_per_token()

    def memory_efficiency(self) -> float:
        """KV memory density improvement relative to FP16 storage."""
        if self.quantizer is None:
            return 1.0
        return UNQUANTIZED_KV_BITS / self.quantizer.bits_per_element()
