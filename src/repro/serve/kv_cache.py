"""Per-layer K/V caches (paged and contiguous) with optional quantised storage.

The caches back :meth:`repro.llm.inference.InferenceModel.forward_step`: each
decoder layer appends the keys/values of newly processed positions and reads
back the full cached context for attention, so decoding one token costs one
token's worth of linear layers instead of re-running the whole prefix.

Two storage layouts share one interface (``append`` / ``context`` /
``advance`` / ``reset`` / ``bits_per_token`` plus the request lifecycle hooks
``match_prefix`` / ``begin_request`` / ``retire_request``):

* :class:`PagedKVCache` — the default.  Storage is a :class:`~repro.serve.
  paging.BlockPool` of fixed-size pages addressed through per-slot block
  tables, with a :class:`~repro.serve.paging.RadixIndex` mapping token
  prefixes to page chains: a request whose prompt starts with an
  already-cached prefix adopts those pages and skips their prefill entirely,
  shared pages are refcounted and copied on write when sequences diverge,
  and unreferenced chains are LRU-evicted when the pool runs dry.
* :class:`KVCache` — the ``contiguous`` fallback: one dense ``(batch,
  max_seq_len)`` pre-allocation per layer, worst-case memory, no sharing.

KV storage is where a serving system's memory goes (the weights are shared
across requests, the cache is per request), so both caches optionally push
every appended key/value through a :mod:`repro.quant` quantiser — any spec
string the registry understands (``"bfp8@b32"``, ``"int8"``, ``"mxfp4"``...).
Like everywhere else in the reproduction this is fake quantisation: the
arrays hold the dequantised values while :meth:`bits_per_token` /
:meth:`memory_bits` account for the encoded footprint, so the accuracy cost
and the memory saving of a KV format are both measurable.
"""

from __future__ import annotations

import time

import numpy as np

from repro.llm.config import ModelConfig
from repro.obs.profiler import PAGE_GATHER, QUANT_APPEND
from repro.serve.paging import BlockPool, PoolExhaustedError, RadixIndex

__all__ = ["KVCache", "PagedKVCache"]

#: Bits per stored element when no quantiser is configured: serving systems
#: keep the KV cache in half precision, so FP16 is the memory baseline the
#: quantised specs are compared against.
UNQUANTIZED_KV_BITS = 16.0


class _KVCacheBase:
    """Shared quantiser plumbing and costing of both cache layouts."""

    #: Optional :class:`~repro.obs.profiler.PhaseProfiler` attached by the
    #: owning engine; ``None`` (the class default) costs one attribute test
    #: at each instrumented site.
    profiler = None

    def __init__(self, config: ModelConfig, batch_size: int, max_seq_len: int = None,
                 kv_spec=None):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.config = config
        self.batch_size = int(batch_size)
        self.max_seq_len = int(max_seq_len) if max_seq_len is not None else config.max_seq_len
        if self.max_seq_len < 1 or self.max_seq_len > config.max_seq_len:
            raise ValueError(
                f"max_seq_len must be in [1, {config.max_seq_len}], got {self.max_seq_len}"
            )
        if kv_spec is None:
            self.quantizer = None
        else:
            from repro.quant import get_quantizer

            self.quantizer = get_quantizer(kv_spec)
        self._lengths = np.zeros(self.batch_size, dtype=np.int64)

    # -------------------------------------------------------------- identity
    @property
    def kv_spec(self) -> str:
        """Canonical spec of the KV quantiser, or ``"fp16"`` when unquantised."""
        return self.quantizer.spec if self.quantizer is not None else "fp16"

    @property
    def lengths(self) -> np.ndarray:
        """Valid positions per slot (do not mutate; use append/advance/reset)."""
        return self._lengths

    def _quantize_row(self, k_row: np.ndarray, v_row: np.ndarray) -> tuple:
        """Fake-quantise one sequence's appended K/V along ``head_dim``.

        Applied one row (sequence) at a time: co-batched sequences never
        share a quantisation scale, so a request's cached K/V does not depend
        on which requests happen to decode alongside it.  (For block formats
        this is a no-op split — their scales live within one position; for
        per-tensor INT the scale spans each row's appended chunk.)
        """
        if self.quantizer is None:
            return k_row, v_row
        return (self.quantizer.quantize_dequantize(k_row, axis=-1),
                self.quantizer.quantize_dequantize(v_row, axis=-1))

    # --------------------------------------------------------------- costing
    def bits_per_token(self) -> float:
        """Storage bits one cached token position costs (K and V, all layers)."""
        element_bits = (self.quantizer.bits_per_element() if self.quantizer is not None
                        else UNQUANTIZED_KV_BITS)
        return 2.0 * self.config.n_layers * self.config.d_model * element_bits

    def memory_efficiency(self) -> float:
        """KV memory density improvement relative to FP16 storage."""
        if self.quantizer is None:
            return 1.0
        return UNQUANTIZED_KV_BITS / self.quantizer.bits_per_element()


class KVCache(_KVCacheBase):
    """Contiguous per-layer K/V storage for up to ``batch_size`` sequences.

    Layout: one ``(batch, n_heads, max_seq_len, head_dim)`` array per layer
    and per K/V side — the shape attention consumes, so reads need no
    transpose.  ``lengths[row]`` tracks how many positions of slot ``row``
    are valid; slots are independent, so a continuous-batching engine can
    prefill, decode and recycle them in any interleaving.  This is the
    ``contiguous`` backend of :class:`~repro.serve.engine.EngineConfig`:
    worst-case pre-allocation, no prefix sharing (every lifecycle hook below
    degenerates to a slot reset).

    Parameters
    ----------
    config:
        Architecture of the model the cache serves (layer/head geometry).
    batch_size:
        Number of concurrent sequence slots.
    max_seq_len:
        Capacity per slot; defaults to the model's ``max_seq_len``.
    kv_spec:
        Optional :mod:`repro.quant` spec string (or config/quantizer) applied
        to every appended key/value block along the ``head_dim`` axis.
        ``None`` stores exact values and accounts memory at FP16.
    """

    #: Contiguous storage has no pages; reported as such by the engine.
    page_size = None

    def __init__(self, config: ModelConfig, batch_size: int, max_seq_len: int = None,
                 kv_spec=None):
        super().__init__(config, batch_size, max_seq_len=max_seq_len, kv_spec=kv_spec)
        shape = (self.batch_size, config.n_heads, self.max_seq_len, config.head_dim)
        self._k = [np.zeros(shape) for _ in range(config.n_layers)]
        self._v = [np.zeros(shape) for _ in range(config.n_layers)]
        self._peak_tokens = 0

    def __repr__(self) -> str:
        return (f"KVCache(batch_size={self.batch_size}, max_seq_len={self.max_seq_len}, "
                f"kv_spec={self.kv_spec!r}, cached_tokens={int(self._lengths.sum())})")

    # ------------------------------------------------------------ read/write
    def append(self, layer: int, rows, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Store new K/V positions for ``rows`` starting at their current lengths.

        ``k_new`` / ``v_new`` have shape ``(len(rows), n_heads, n_new,
        head_dim)``.  The write offset is ``lengths[row]`` — every layer of
        one forward step appends at the same offset; :meth:`advance` moves the
        offsets once the step has run all layers.  When a quantiser is
        configured the values are quantise-dequantised along ``head_dim``
        before storage (see :meth:`_KVCacheBase._quantize_row`).
        """
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        n_new = k_new.shape[2]
        starts = self._lengths[rows]
        if np.any(starts + n_new > self.max_seq_len):
            raise ValueError(
                f"append of {n_new} position(s) overflows the cache capacity "
                f"{self.max_seq_len}"
            )
        for index, row in enumerate(rows):
            k_row, v_row = self._quantize_row(k_new[index], v_new[index])
            stop = starts[index] + n_new
            self._k[layer][row, :, starts[index]:stop] = k_row
            self._v[layer][row, :, starts[index]:stop] = v_row

    def context(self, layer: int, rows, context_len: int) -> tuple:
        """Return ``(k, v)`` of shape ``(len(rows), n_heads, context_len, head_dim)``.

        ``context_len`` covers positions appended this step but not yet
        advanced; rows shorter than ``context_len`` carry stale tail values
        the caller must mask (the causal mask of ``forward_step`` does).
        """
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        return self._k[layer][rows, :, :context_len], self._v[layer][rows, :, :context_len]

    def advance(self, rows, n_new: int) -> None:
        """Commit ``n_new`` appended positions of ``rows`` (once per forward step)."""
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        if np.any(self._lengths[rows] + n_new > self.max_seq_len):
            raise ValueError("advance past the cache capacity")
        self._lengths[rows] += n_new
        self._peak_tokens = max(self._peak_tokens, int(self._lengths.sum()))

    def reset(self, rows=None) -> None:
        """Invalidate ``rows`` (all slots by default) so they can be reused."""
        if rows is None:
            self._lengths[:] = 0
        else:
            rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
            self._lengths[rows] = 0

    # --------------------------------------------- request lifecycle (no-ops)
    def match_prefix(self, tokens) -> int:
        """Contiguous storage caches nothing across requests: no prefix hits."""
        return 0

    def begin_request(self, row: int, tokens) -> int:
        """Claim ``row`` for a new request; returns the reused prefix length (0)."""
        self.reset(rows=[row])
        return 0

    def commit_prefix(self, row: int, tokens) -> None:
        """Contiguous storage shares nothing: committing a prefix is a no-op."""

    def retire_request(self, row: int, tokens=None) -> None:
        """Free ``row``; the dense layout keeps nothing for future requests."""
        self.reset(rows=[row])

    def admission_block_cost(self, prompt_tokens, projected_tokens: int) -> int:
        """Pages a request would consume — always 0 (admission is slot-bound)."""
        return 0

    def blocks_outstanding(self, row: int, projected_tokens: int) -> int:
        """Pages an active request may still allocate — always 0."""
        return 0

    @property
    def available_blocks(self) -> int:
        return 0

    @property
    def pages_in_use(self) -> int:
        return 0

    @property
    def peak_pages_in_use(self) -> int:
        return 0

    # --------------------------------------------------------------- costing
    def memory_bits(self) -> float:
        """Footprint of the currently cached tokens at the configured format."""
        return float(self._lengths.sum()) * self.bits_per_token()

    def peak_memory_bits(self) -> float:
        """High-water mark of :meth:`memory_bits` over the cache's lifetime."""
        return float(self._peak_tokens) * self.bits_per_token()


class PagedKVCache(_KVCacheBase):
    """Paged K/V storage with radix-tree prefix sharing (the default backend).

    Every slot addresses its K/V through a *block table* — a list of page ids
    into one shared :class:`~repro.serve.paging.BlockPool` — so memory is
    allocated on demand at ``page_size``-token granularity instead of
    reserved for the worst case.  The request lifecycle threads through the
    :class:`~repro.serve.paging.RadixIndex`:

    * :meth:`begin_request` matches the prompt against cached prefixes and
      adopts every full page of the longest hit (the engine then prefills
      only the remaining suffix);
    * :meth:`retire_request` inserts the finished sequence's full pages into
      the index for future reuse before releasing the slot's references;
    * allocation evicts least-recently-used unreferenced chains when the
      pool runs dry, and :meth:`fork` / copy-on-write let sequences share
      pages until they diverge.

    Greedy decode is token-identical to :class:`KVCache` on the same trace:
    pages hold exactly the values the dense layout would, sharing reuses
    positions whose K/V depend only on the shared tokens, and gathers
    preserve order.

    Parameters mirror :class:`KVCache` plus ``page_size`` (tokens per page)
    and ``num_blocks`` (pool capacity; default ``batch_size *
    ceil(max_seq_len / page_size)`` — enough for a full fleet of worst-case
    requests, the same budget the dense layout reserves up front).
    """

    def __init__(self, config: ModelConfig, batch_size: int, max_seq_len: int = None,
                 kv_spec=None, page_size: int = 16, num_blocks: int = None):
        super().__init__(config, batch_size, max_seq_len=max_seq_len, kv_spec=kv_spec)
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self.page_size = int(page_size)
        blocks_per_slot = -(-self.max_seq_len // self.page_size)
        self.num_blocks = (int(num_blocks) if num_blocks is not None
                           else self.batch_size * blocks_per_slot)
        if self.num_blocks < blocks_per_slot:
            raise ValueError(
                f"num_blocks ({self.num_blocks}) cannot hold even one full "
                f"sequence ({blocks_per_slot} pages of {self.page_size})"
            )
        self.pool = BlockPool(config, self.num_blocks, self.page_size)
        self.index = RadixIndex(self.pool)
        self._tables = [[] for _ in range(self.batch_size)]

    def __repr__(self) -> str:
        return (f"PagedKVCache(batch_size={self.batch_size}, max_seq_len={self.max_seq_len}, "
                f"page_size={self.page_size}, blocks={self.pool.pages_in_use}"
                f"/{self.num_blocks}, kv_spec={self.kv_spec!r}, "
                f"cached_prefix_pages={len(self.index)})")

    # ------------------------------------------------------------ allocation
    def _alloc_block(self) -> int:
        """One fresh page, evicting LRU unreferenced prefix chains if needed."""
        block = self.pool.try_alloc()
        while block is None:
            if not self.index.evict_one():
                raise PoolExhaustedError(
                    f"KV block pool exhausted: all {self.num_blocks} pages are "
                    f"referenced by active requests"
                )
            block = self.pool.try_alloc()
        return block

    def _ensure_capacity(self, row: int, upto: int) -> None:
        """Grow ``row``'s block table to cover positions ``[0, upto)``."""
        table = self._tables[row]
        while len(table) * self.page_size < upto:
            table.append(self._alloc_block())

    def _ensure_writable(self, row: int, start: int, n_new: int) -> None:
        """Copy-on-write: privatise every shared page the write will touch.

        Engine-driven writes start at a page boundary (prefix matches are
        page-aligned), so they only touch fresh pages; forked sequences
        (:meth:`fork`) diverge mid-page and trigger a real copy here.
        """
        table = self._tables[row]
        for page in range(start // self.page_size,
                          -(-(start + n_new) // self.page_size)):
            if self.pool.refcount(table[page]) > 1:
                clone = self.pool.copy_block(table[page])
                self.pool.release(table[page])
                table[page] = clone

    # ------------------------------------------------------------ read/write
    def append(self, layer: int, rows, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Store new K/V positions for ``rows`` across their block tables.

        Same contract as :meth:`KVCache.append`; pages are allocated on
        demand when the first layer of a step writes past the table's
        coverage (all layers of one step share the same offsets, so the
        allocation happens exactly once).
        """
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        n_new = k_new.shape[2]
        starts = self._lengths[rows]
        if np.any(starts + n_new > self.max_seq_len):
            raise ValueError(
                f"append of {n_new} position(s) overflows the cache capacity "
                f"{self.max_seq_len}"
            )
        prof = self.profiler
        for index, row in enumerate(rows):
            row = int(row)
            start = int(starts[index])
            self._ensure_capacity(row, start + n_new)
            self._ensure_writable(row, start, n_new)
            if prof is not None:
                _t0 = time.perf_counter()
                k_row, v_row = self._quantize_row(k_new[index], v_new[index])
                prof.add(QUANT_APPEND, time.perf_counter() - _t0)
            else:
                k_row, v_row = self._quantize_row(k_new[index], v_new[index])
            table = self._tables[row]
            offset = 0
            while offset < n_new:
                position = start + offset
                page, within = divmod(position, self.page_size)
                take = min(self.page_size - within, n_new - offset)
                block = table[page]
                self.pool.k_store[layer][block][:, within:within + take] = \
                    k_row[:, offset:offset + take]
                self.pool.v_store[layer][block][:, within:within + take] = \
                    v_row[:, offset:offset + take]
                offset += take

    def context(self, layer: int, rows, context_len: int) -> tuple:
        """Gather ``(k, v)`` of shape ``(len(rows), n_heads, context_len, head_dim)``.

        Pages are gathered in table order into a dense array — the shape
        attention consumes.  Positions past a row's coverage come back as
        zeros; like the dense cache's stale tail they are masked by the
        caller's causal mask.
        """
        prof = self.profiler
        if prof is not None:
            _t0 = time.perf_counter()
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        config = self.config
        shape = (len(rows), config.n_heads, context_len, config.head_dim)
        k_out = np.zeros(shape)
        v_out = np.zeros(shape)
        pages = -(-context_len // self.page_size)
        for index, row in enumerate(rows):
            table = self._tables[int(row)][:pages]
            if not table:
                continue
            take = min(len(table) * self.page_size, context_len)
            # one fancy-index gather per side: (n_pages, heads, page, hd) ->
            # (heads, n_pages * page, hd), then trim to the context window
            k_pages = self.pool.k_store[layer][table]
            v_pages = self.pool.v_store[layer][table]
            k_out[index, :, :take] = k_pages.transpose(1, 0, 2, 3).reshape(
                config.n_heads, -1, config.head_dim)[:, :take]
            v_out[index, :, :take] = v_pages.transpose(1, 0, 2, 3).reshape(
                config.n_heads, -1, config.head_dim)[:, :take]
        if prof is not None:
            prof.add(PAGE_GATHER, time.perf_counter() - _t0)
        return k_out, v_out

    def advance(self, rows, n_new: int) -> None:
        """Commit ``n_new`` appended positions of ``rows`` (once per forward step)."""
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        if np.any(self._lengths[rows] + n_new > self.max_seq_len):
            raise ValueError("advance past the cache capacity")
        self._lengths[rows] += n_new

    def reset(self, rows=None) -> None:
        """Release ``rows``' pages (all slots by default) without indexing them."""
        targets = (range(self.batch_size) if rows is None
                   else np.atleast_1d(np.asarray(rows, dtype=np.int64)))
        for row in targets:
            row = int(row)
            for block in self._tables[row]:
                self.pool.release(block)
            self._tables[row] = []
            self._lengths[row] = 0

    # --------------------------------------------------- request lifecycle
    def match_prefix(self, tokens) -> int:
        """Reusable prefix length (tokens) a prompt would hit, without claiming it.

        Full pages only, and capped at ``len(tokens) - 1`` so at least one
        prompt token remains to prefill (the logits that sample the first
        generated token).
        """
        return len(self.index.match(tokens, max_tokens=len(tokens) - 1)) * self.page_size

    def begin_request(self, row: int, tokens) -> int:
        """Claim ``row`` and adopt the longest cached prefix of ``tokens``.

        The matched chain's pages are retained and become the head of the
        slot's block table with ``lengths[row]`` set past them, so the
        engine's prefill covers only ``tokens[matched:]``.  Returns the
        number of reused prefix tokens (0 on a miss).
        """
        if self._tables[row]:
            self.reset(rows=[row])
        matched = self.index.match(tokens, max_tokens=len(tokens) - 1)
        self._tables[row] = self.index.acquire(matched)
        self._lengths[row] = len(matched) * self.page_size
        return len(matched) * self.page_size

    def commit_prefix(self, row: int, tokens) -> None:
        """Index a just-prefilled prompt's full pages for immediate reuse.

        Called by the engine right after prefill: the prompt's K/V is
        complete from that moment on, so a same-prefix request admitted in
        the very same step already hits — without this, concurrent members
        of a prefix group would all miss until the first one retired.  The
        indexed pages are full and never rewritten by the running request
        (its decode appends past the prompt), and copy-on-write guards the
        partial tail page, which is not indexed.
        """
        cached = int(self._lengths[row])
        self.index.insert(tuple(tokens)[:cached], self._tables[row])

    def retire_request(self, row: int, tokens) -> None:
        """Index the finished sequence's full pages, then release the slot.

        ``tokens`` is the full sequence (prompt + generated); the cache holds
        K/V for its first ``lengths[row]`` positions.  Full pages go into the
        radix index (which takes its own references), so a later request with
        the same prefix skips their prefill; partial pages are just freed.
        """
        cached = int(self._lengths[row])
        self.index.insert(tuple(tokens)[:cached], self._tables[row])
        self.reset(rows=[row])

    def fork(self, src_row: int, dst_row: int) -> None:
        """Share ``src_row``'s pages with ``dst_row`` (copy-on-write on divergence)."""
        if self._tables[dst_row]:
            self.reset(rows=[dst_row])
        self._tables[dst_row] = [self.pool.retain(block)
                                 for block in self._tables[src_row]]
        self._lengths[dst_row] = self._lengths[src_row]

    # -------------------------------------------------- admission accounting
    def admission_block_cost(self, prompt_tokens, projected_tokens: int) -> int:
        """Pages admitting this request consumes from the reclaimable supply.

        Fresh pages it must allocate (worst case, ``projected_tokens``
        positions beyond the matched prefix) plus matched index pages that
        would leave the evictable pool once acquired — both reduce what
        other requests can still claim, so admission compares their sum
        against :attr:`available_blocks`.
        """
        matched = self.index.match(prompt_tokens, max_tokens=len(prompt_tokens) - 1)
        need_new = -(-projected_tokens // self.page_size) - len(matched)
        pinned = sum(1 for node in matched if self.pool.refcount(node.block) == 1)
        return need_new + pinned

    def blocks_outstanding(self, row: int, projected_tokens: int) -> int:
        """Pages an active request may still allocate before finishing."""
        return max(0, -(-projected_tokens // self.page_size) - len(self._tables[row]))

    @property
    def available_blocks(self) -> int:
        """Reclaimable pages: free now plus evictable from the prefix index."""
        return self.pool.num_free + self.index.evictable_blocks()

    @property
    def pages_in_use(self) -> int:
        return self.pool.pages_in_use

    @property
    def peak_pages_in_use(self) -> int:
        return self.pool.peak_pages_in_use

    # --------------------------------------------------------------- costing
    def memory_bits(self) -> float:
        """Footprint of the allocated pages (page-granular, shared pages once)."""
        return float(self.pool.pages_in_use * self.page_size) * self.bits_per_token()

    def peak_memory_bits(self) -> float:
        """High-water mark of :meth:`memory_bits` over the cache's lifetime."""
        return float(self.pool.peak_pages_in_use * self.page_size) * self.bits_per_token()
