"""Serving layer: KV-cached incremental decoding and continuous batching.

The experiment drivers evaluate quantisation offline (perplexity over fixed
windows); this package is the online counterpart — the subsystem a deployment
would actually run:

* paged K/V storage with radix-tree prefix sharing
  (:mod:`repro.serve.paging`, :mod:`repro.serve.kv_cache`): fixed-size
  refcounted pages with copy-on-write, a radix index that lets a request
  adopt every full page of the longest cached prompt prefix instead of
  re-prefilling it, LRU eviction of unreferenced chains, and optional
  quantised storage — the dense pre-allocated :class:`KVCache` remains as
  the ``contiguous`` fallback;
* a continuous-batching engine (:mod:`repro.serve.engine`): FIFO admission
  under a KV token budget plus free-block accounting, per-step batched
  prefill (with cached-prefix skipping) + decode, per-request sampling
  state and stop conditions, deterministic under a virtual clock;
* synthetic request traces (:mod:`repro.serve.workload`): Poisson,
  shared-prefix and multi-turn conversation shapes — and the
  ``serve_bench`` experiment driver (:mod:`repro.serve.bench`) reporting
  TTFT/latency percentiles, tokens/s, prefix-hit rate, pages in use and
  quantised-KV perplexity per format.

See ``docs/serving.md`` for the architecture and benchmark interpretation.
"""

from repro.serve.bench import (
    DEFAULT_KV_SPECS,
    kv_cached_negative_log_likelihood,
    kv_cached_perplexity,
    serve_bench,
)
from repro.serve.engine import (
    CompletedRequest,
    EngineConfig,
    Request,
    ServeEngine,
    ServeReport,
    VirtualClock,
    WallClock,
)
from repro.serve.kv_cache import KVCache, PagedKVCache
from repro.serve.paging import BlockPool, PoolExhaustedError, RadixIndex
from repro.serve.workload import (
    MultiTurnConfig,
    SharedPrefixConfig,
    WorkloadConfig,
    generate_multi_turn_requests,
    generate_requests,
    generate_shared_prefix_requests,
    generate_trace,
)

__all__ = [
    "KVCache",
    "PagedKVCache",
    "BlockPool",
    "RadixIndex",
    "PoolExhaustedError",
    "Request",
    "CompletedRequest",
    "EngineConfig",
    "ServeEngine",
    "ServeReport",
    "WallClock",
    "VirtualClock",
    "WorkloadConfig",
    "SharedPrefixConfig",
    "MultiTurnConfig",
    "generate_requests",
    "generate_shared_prefix_requests",
    "generate_multi_turn_requests",
    "generate_trace",
    "DEFAULT_KV_SPECS",
    "kv_cached_negative_log_likelihood",
    "kv_cached_perplexity",
    "serve_bench",
]
