"""Serving layer: KV-cached incremental decoding and continuous batching.

The experiment drivers evaluate quantisation offline (perplexity over fixed
windows); this package is the online counterpart — the subsystem a deployment
would actually run:

* a pre-allocated per-layer K/V cache with optional quantised storage
  (:mod:`repro.serve.kv_cache`), feeding the incremental
  :meth:`~repro.llm.inference.InferenceModel.forward_step` path so decoding
  one token costs one token's forward instead of the whole prefix;
* a continuous-batching engine (:mod:`repro.serve.engine`): FIFO admission
  under a KV token budget, per-step batched prefill + decode, per-request
  sampling state and stop conditions, deterministic under a virtual clock;
* synthetic Poisson request traces (:mod:`repro.serve.workload`) and the
  ``serve_bench`` experiment driver (:mod:`repro.serve.bench`) reporting
  TTFT/latency percentiles, tokens/s and quantised-KV perplexity per format.

See ``docs/serving.md`` for the architecture and benchmark interpretation.
"""

from repro.serve.bench import (
    DEFAULT_KV_SPECS,
    kv_cached_negative_log_likelihood,
    kv_cached_perplexity,
    serve_bench,
)
from repro.serve.engine import (
    CompletedRequest,
    EngineConfig,
    Request,
    ServeEngine,
    ServeReport,
    VirtualClock,
    WallClock,
)
from repro.serve.kv_cache import KVCache
from repro.serve.workload import WorkloadConfig, generate_requests

__all__ = [
    "KVCache",
    "Request",
    "CompletedRequest",
    "EngineConfig",
    "ServeEngine",
    "ServeReport",
    "WallClock",
    "VirtualClock",
    "WorkloadConfig",
    "generate_requests",
    "DEFAULT_KV_SPECS",
    "kv_cached_negative_log_likelihood",
    "kv_cached_perplexity",
    "serve_bench",
]
