"""The ``serve_bench`` experiment: latency/throughput/accuracy per KV format.

One driver run replays the same synthetic Poisson trace through a
:class:`~repro.serve.engine.ServeEngine` once per KV-quantisation spec and
reports, per spec: decode/total tokens per second, time-to-first-token and
end-to-end latency percentiles (p50/p95), the KV storage cost per cached
token, and the teacher-forced perplexity under quantised KV attention.  The
rows read like a Table II for the serving path — how much KV memory a block
format saves and what that costs in accuracy, at measured throughput.

Registered as ``serve_bench`` in the experiment runner, so it runs under the
cached parallel pipeline (``repro run serve_bench --fast``) and is also
reachable directly as ``repro serve-bench``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.llm.activations import log_softmax
from repro.llm.inference import InferenceModel
from repro.serve.engine import EngineConfig, ServeEngine, VirtualClock, WallClock
from repro.serve.kv_cache import KVCache
from repro.serve.workload import WorkloadConfig, generate_trace

__all__ = ["DEFAULT_KV_SPECS", "serve_model_name", "default_workload",
           "default_engine_config", "clock_factory",
           "kv_cached_negative_log_likelihood",
           "kv_cached_perplexity", "serve_bench", "run"]

#: KV storage formats compared by default: the FP16 baseline plus one block
#: float and one integer spec (``None`` means unquantised storage).
DEFAULT_KV_SPECS = (None, "bfp8@b32", "int8")


def serve_model_name(fast: bool) -> str:
    """The zoo checkpoint the serve benchmark runs against.

    Single source of truth shared by :func:`run`, the ``repro serve-bench``
    CLI and the pipeline dependency declaration
    (``experiment_model_specs("serve_bench")``).
    """
    return "Llama-1B" if fast else "Llama-7B"


def default_workload(fast: bool) -> WorkloadConfig:
    """The benchmark's standard trace shape for the given mode."""
    if fast:
        return WorkloadConfig(num_requests=10, arrival_rate=40.0,
                              prompt_tokens=(6, 16), new_tokens=(3, 8), seed=0)
    return WorkloadConfig(num_requests=48, arrival_rate=16.0,
                          prompt_tokens=(16, 48), new_tokens=(8, 24), seed=0)


def default_engine_config(fast: bool) -> EngineConfig:
    """The benchmark's standard engine shape for the given mode.

    Fast mode uses a deliberately small KV page size so prompts span several
    pages and the paging paths (block tables, radix sharing, free-block
    admission) are genuinely exercised by CI, not just configured.
    """
    if fast:
        return EngineConfig(max_batch_size=4, token_budget=96, kv_page_size=4)
    return EngineConfig(max_batch_size=8, token_budget=512)


def clock_factory(clock):
    """Resolve a clock option into a zero-argument clock constructor.

    ``None`` / ``"wall"`` measure real compute time (:class:`WallClock`,
    machine-dependent rows); ``"virtual"`` advances deterministically with
    processed tokens (:class:`VirtualClock`, byte-identical rows across runs
    and machines).  A callable is returned as-is, so callers can inject a
    custom clock (e.g. a :class:`VirtualClock` with a roofline-derived token
    rate).  One fresh clock is constructed per engine run, which is why this
    resolves to a factory rather than an instance.
    """
    if clock is None or clock == "wall":
        return WallClock
    if clock == "virtual":
        return VirtualClock
    if callable(clock):
        return clock
    raise ValueError(f"unknown clock {clock!r}; expected 'wall', 'virtual' or a factory")


# ----------------------------------------------------------- KV-quant quality
def kv_cached_negative_log_likelihood(model: InferenceModel, tokens, kv_spec=None) -> float:
    """Mean next-token NLL with K/V routed through a (quantised) cache.

    Equivalent to :meth:`InferenceModel.negative_log_likelihood` when
    ``kv_spec`` is ``None``; with a spec, every key/value is quantised on
    append, so the returned NLL measures exactly the accuracy cost a serving
    system pays for storing its KV cache in that format.  Block formats scale
    within one position (blocked along ``head_dim``), so for them one
    whole-window call and a token-by-token decode produce identical values;
    per-tensor INT scales span each appended block instead.
    """
    tokens = np.asarray(tokens, dtype=np.int64)
    if tokens.ndim == 1:
        tokens = tokens[None, :]
    batch, seq = tokens.shape
    if seq < 2:
        raise ValueError("need at least two tokens to score next-token NLL")
    cache = KVCache(model.config, batch, kv_spec=kv_spec)
    logits = model.forward_step(tokens[:, :-1], cache)
    log_probs = log_softmax(logits, axis=-1)
    picked = np.take_along_axis(log_probs, tokens[:, 1:, None], axis=-1)[..., 0]
    return float(-picked.mean())


def kv_cached_perplexity(model: InferenceModel, corpus, kv_spec=None,
                         eval_config=None) -> float:
    """Perplexity ``exp(mean NLL)`` with the KV cache stored in ``kv_spec``.

    Same evaluation loop as :func:`repro.llm.perplexity.evaluate_perplexity`
    (shared via its ``nll_fn`` hook), so the number is directly comparable to
    the offline Table II perplexities.
    """
    from repro.llm.perplexity import EvalConfig, evaluate_perplexity

    return evaluate_perplexity(
        model, corpus, eval_config or EvalConfig(),
        nll_fn=lambda batch: kv_cached_negative_log_likelihood(model, batch, kv_spec=kv_spec),
    )


# ------------------------------------------------------------------ benchmark
def serve_bench(model: InferenceModel, kv_specs=DEFAULT_KV_SPECS,
                workload=None, engine: EngineConfig = None,
                corpus=None, eval_config=None, clock=None) -> list:
    """Replay one trace per KV spec; returns the result rows.

    Every spec sees the identical request trace (same seeds, same arrivals),
    so differences between rows isolate the KV format: storage density,
    throughput, and — when ``corpus`` is given — quantised-KV perplexity.
    ``workload`` may be any :mod:`repro.serve.workload` config (Poisson,
    shared-prefix, multi-turn); ``clock`` selects the engine clock per
    :func:`clock_factory`: ``"virtual"`` makes every latency/throughput
    column deterministic.
    """
    import dataclasses

    workload = workload or WorkloadConfig()
    make_clock = clock_factory(clock)
    requests = generate_trace(model.config.vocab_size, workload)
    rows = []
    for spec in kv_specs:
        engine_config = engine or EngineConfig()
        if engine_config.kv_spec != spec:
            engine_config = dataclasses.replace(engine_config, kv_spec=spec)
        runner = ServeEngine(model, engine_config, clock=make_clock())
        report = runner.run(requests)
        summary = report.summary()
        row = {
            "kv_cache": runner.cache.kv_spec,
            "kv_bits_per_token": runner.cache.bits_per_token(),
            "kv_memory_efficiency": runner.cache.memory_efficiency(),
        }
        if corpus is not None:
            row["kv_perplexity"] = kv_cached_perplexity(model, corpus, kv_spec=spec,
                                                        eval_config=eval_config)
        for key in ("requests", "decode_tokens_per_s", "total_tokens_per_s",
                    "ttft_p50_ms", "ttft_p95_ms", "latency_p50_ms", "latency_p95_ms",
                    "peak_active", "kv_hit_rate", "peak_pages_in_use",
                    "kv_peak_memory_mib"):
            row[key] = summary[key]
        rows.append(row)
    return rows


def run(fast=None, kv_specs=None, num_requests=None, arrival_rate=None,
        virtual_clock=None, kv_page_size=None, kv_backend=None) -> ExperimentResult:
    """Continuous-batching serve benchmark: TTFT/latency/throughput per KV-cache format.

    The registered ``serve_bench`` experiment driver (the pipeline calls it
    with ``fast`` only).  Fast mode serves a short trace against the Llama-1B
    zoo model; the full run uses Llama-7B and a longer, heavier trace.  The
    keyword overrides back the ``repro serve-bench`` CLI flags: alternative
    KV specs (``None`` entries mean unquantised), ad-hoc trace shapes, and
    the clock.  ``virtual_clock`` defaults to the fast flag: fast/CI rows are
    deterministic (machine-independent) under :class:`VirtualClock`, full
    runs keep measuring real compute time unless asked otherwise.
    """
    import dataclasses

    from repro.experiments.common import eval_config, is_fast_mode
    from repro.llm.zoo import default_corpus, load_inference_model

    fast_mode = is_fast_mode(fast)
    model_name = serve_model_name(fast_mode)
    corpus = default_corpus(fast=fast)
    model = load_inference_model(model_name, corpus=corpus)
    overrides = {}
    if num_requests is not None:
        overrides["num_requests"] = num_requests
    if arrival_rate is not None:
        overrides["arrival_rate"] = arrival_rate
    workload = dataclasses.replace(default_workload(fast_mode), **overrides)
    engine = default_engine_config(fast_mode)
    engine_overrides = {}
    if kv_page_size is not None:
        engine_overrides["kv_page_size"] = kv_page_size
    if kv_backend is not None:
        engine_overrides["kv_backend"] = kv_backend
    if engine_overrides:
        engine = dataclasses.replace(engine, **engine_overrides)
    kv_specs = tuple(kv_specs) if kv_specs else DEFAULT_KV_SPECS
    if virtual_clock is None:
        virtual_clock = fast_mode
    clock = "virtual" if virtual_clock else "wall"
    rows = serve_bench(model, kv_specs=kv_specs, workload=workload,
                       engine=engine, corpus=corpus, eval_config=eval_config(fast),
                       clock=clock)
    return ExperimentResult(
        experiment_id="Serve-Bench",
        title=f"Continuous-batching serving of {model_name}: KV-cache formats under one trace",
        rows=rows,
        columns=["kv_cache", "kv_bits_per_token", "kv_memory_efficiency", "kv_perplexity",
                 "requests", "decode_tokens_per_s", "total_tokens_per_s", "ttft_p50_ms",
                 "ttft_p95_ms", "latency_p50_ms", "latency_p95_ms", "peak_active",
                 "kv_hit_rate", "peak_pages_in_use", "kv_peak_memory_mib"],
        notes=(
            "Every row replays the identical Poisson trace; only the KV-cache storage format "
            "changes.  Quantised KV shrinks the dominant per-request memory (kv_bits_per_token) "
            "at a small perplexity cost — the serving-side analogue of the paper's Table II "
            "weight/activation sweep.  Throughput differences between rows are within "
            "measurement noise here because the fake-quantised cache stores dequantised "
            "values (and vanish entirely under the deterministic virtual clock); the "
            "memory column is what a deployment trades against kv_perplexity."
        ),
        metadata={
            "fast": fast_mode,
            "model": model_name,
            "workload": {"num_requests": workload.num_requests,
                         "arrival_rate": workload.arrival_rate,
                         "prompt_tokens": list(workload.prompt_tokens),
                         "new_tokens": list(workload.new_tokens),
                         "seed": workload.seed},
            "engine": {"max_batch_size": engine.max_batch_size,
                       "token_budget": engine.token_budget,
                       "kv_backend": engine.kv_backend,
                       "kv_page_size": engine.kv_page_size},
            "clock": clock,
            "kv_specs": [spec or "fp16" for spec in kv_specs],
        },
    )
