"""Continuous-batching inference engine over the KV-cached forward path.

One :class:`ServeEngine` owns an :class:`~repro.llm.inference.InferenceModel`,
a KV cache with one slot per concurrent request (a
:class:`~repro.serve.kv_cache.PagedKVCache` by default, or the dense
:class:`~repro.serve.kv_cache.KVCache` under the ``contiguous`` backend),
and a FIFO arrival queue.  Every :meth:`~ServeEngine.step`:

1. **admits** queued requests whose arrival time has passed, in strict
   arrival order (head-of-line blocking — a large request cannot be starved
   by smaller ones overtaking it), while a free slot exists, the projected
   KV footprint stays within the token budget, and — under the paged
   backend — the request's worst-case page need plus what the already-active
   requests may still allocate fits the reclaimable page supply (free pages
   plus LRU-evictable cached prefix chains), so decode can never run the
   pool dry mid-request;
2. **prefills** each admitted request (one ``forward_step`` over the part of
   its prompt not already covered by a cached prefix — a radix-index hit
   skips straight past every shared full page) and samples its first token —
   the time-to-first-token moment;
3. **decodes** every active request in a single batched ``forward_step`` of
   one token per request, samples the next tokens, and
4. **retires** finished requests (length limit or stop token), freeing their
   slot and cache rows for the next admission.

Time comes from a pluggable clock: :class:`WallClock` measures real compute
time (and fast-forwards over idle gaps instead of sleeping, so light traffic
finishes instantly), while :class:`VirtualClock` advances deterministically
with the number of processed tokens — scheduling decisions, metrics and
sampled tokens are then exactly reproducible under a fixed seed.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.stats import percentile_summary
from repro.llm.inference import InferenceModel
from repro.llm.sampling import sample_token
from repro.obs import Observability
from repro.obs.profiler import (ADMISSION, DECODE_FORWARD, PREFILL_FORWARD,
                                RELEASE, SAMPLING)
from repro.serve.kv_cache import KVCache, PagedKVCache

__all__ = ["Request", "CompletedRequest", "EngineConfig", "ServeEngine", "ServeReport",
           "WallClock", "VirtualClock", "OK_FINISH_REASONS"]


# --------------------------------------------------------------------- clocks
class WallClock:
    """Real elapsed time, with idle gaps fast-forwarded instead of slept."""

    def __init__(self):
        self._origin = time.perf_counter()
        self._offset = 0.0

    def now(self) -> float:
        return time.perf_counter() - self._origin + self._offset

    def wait_until(self, t: float) -> None:
        """Jump to ``t`` if it is in the future (simulated waiting, no sleep)."""
        gap = t - self.now()
        if gap > 0:
            self._offset += gap

    def on_tokens(self, n: int) -> None:
        """Compute time is observed directly; nothing to account."""


class VirtualClock:
    """Deterministic clock: time advances only with processed tokens."""

    def __init__(self, time_per_token: float = 1e-3):
        self.time_per_token = float(time_per_token)
        self._now = 0.0

    def now(self) -> float:
        return self._now

    def wait_until(self, t: float) -> None:
        self._now = max(self._now, t)

    def on_tokens(self, n: int) -> None:
        self._now += n * self.time_per_token


# ------------------------------------------------------------------- requests
@dataclass(frozen=True)
class Request:
    """One generation request as it enters the queue.

    ``prompt_tokens`` are model-vocabulary token ids; ``max_new_tokens``
    bounds the continuation; ``arrival_time`` is the submission instant on
    the engine clock (0 = available immediately).  Sampling parameters
    mirror :class:`~repro.llm.generation.GenerationConfig`; ``stop_token``
    optionally terminates generation early when sampled.  ``deadline`` is an
    absolute engine-clock instant: a request still queued past it is timed
    out without ever touching the cache, and a decoding request is finished
    with reason ``"timeout"`` at the first step boundary past it.
    """

    request_id: int
    prompt_tokens: tuple
    max_new_tokens: int = 16
    arrival_time: float = 0.0
    temperature: float = 0.0
    top_k: int = 0
    seed: int = 0
    stop_token: Optional[int] = None
    deadline: Optional[float] = None

    def __post_init__(self):
        object.__setattr__(self, "prompt_tokens",
                           tuple(int(t) for t in np.asarray(self.prompt_tokens).ravel()))
        if not self.prompt_tokens:
            raise ValueError("prompt_tokens must contain at least one token")
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.temperature < 0 or self.top_k < 0:
            raise ValueError("temperature and top_k must be >= 0")
        if self.deadline is not None and not np.isfinite(self.deadline):
            raise ValueError("deadline must be a finite clock instant (or None)")

    @property
    def projected_tokens(self) -> int:
        """KV positions this request may occupy: prompt plus continuation."""
        return len(self.prompt_tokens) + self.max_new_tokens


#: Finish reasons of requests that produced their full answer — the records
#: latency percentiles and goodput are computed over.
OK_FINISH_REASONS = ("length", "stop_token")


@dataclass(frozen=True)
class CompletedRequest:
    """A finished request with its tokens and per-request latency metrics.

    ``finish_reason`` is ``"length"`` or ``"stop_token"`` for requests that
    ran to completion, ``"cancelled"`` for explicit :meth:`ServeEngine.cancel`
    victims and ``"timeout"`` for deadline expiries.  Requests terminated
    while still queued never held a slot: their ``admitted_time`` and
    ``first_token_time`` are ``None``.
    """

    request: Request
    generated_tokens: tuple
    finish_reason: str
    arrival_time: float
    admitted_time: Optional[float]
    first_token_time: Optional[float]
    finish_time: float

    @property
    def ok(self) -> bool:
        """Whether the request ran to completion (not cancelled or timed out)."""
        return self.finish_reason in OK_FINISH_REASONS

    @property
    def tokens(self) -> np.ndarray:
        """Full sequence (prompt + continuation) as an int64 array."""
        return np.array(self.request.prompt_tokens + self.generated_tokens, dtype=np.int64)

    @property
    def time_to_first_token_s(self) -> Optional[float]:
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time

    @property
    def latency_s(self) -> float:
        return self.finish_time - self.arrival_time


class _ActiveRequest:
    """Mutable per-slot decoding state."""

    def __init__(self, request: Request, slot: int, admitted_time: float):
        self.request = request
        self.slot = slot
        self.admitted_time = admitted_time
        self.generated = []
        self.rng = (np.random.default_rng(request.seed)
                    if request.temperature > 0 else None)
        self.first_token_time = None
        self.finish_reason = None

    @property
    def last_token(self) -> int:
        return self.generated[-1]

    def sample(self, logits: np.ndarray) -> int:
        token = sample_token(logits, temperature=self.request.temperature,
                             top_k=self.request.top_k, rng=self.rng)
        self.generated.append(token)
        if token == self.request.stop_token:
            self.finish_reason = "stop_token"
        elif len(self.generated) >= self.request.max_new_tokens:
            self.finish_reason = "length"
        return token


# --------------------------------------------------------------------- engine
@dataclass(frozen=True)
class EngineConfig:
    """Scheduling shape of a :class:`ServeEngine`.

    ``max_batch_size`` bounds concurrent requests (one KV slot each);
    ``token_budget`` bounds the *projected* KV occupancy — the sum of
    ``prompt + max_new_tokens`` over admitted requests — so admission can
    never overcommit cache memory (default: every slot full).  ``kv_spec``
    selects the KV-cache quantiser; ``max_seq_len`` shrinks the per-slot
    capacity below the model's limit.

    ``kv_backend`` picks the cache layout: ``"paged"`` (the default) stores
    K/V in ``kv_page_size``-token pages with radix-tree prefix sharing and
    free-block admission accounting; ``"contiguous"`` is the dense
    worst-case pre-allocation.  ``num_kv_blocks`` sizes the paged pool
    (default ``max_batch_size * ceil(max_seq_len / kv_page_size)`` — the
    same budget the dense layout reserves, so paged admission is never more
    restrictive than the slot and token-budget checks unless the pool is
    shrunk explicitly).
    """

    max_batch_size: int = 8
    token_budget: Optional[int] = None
    kv_spec: Optional[str] = None
    max_seq_len: Optional[int] = None
    kv_backend: str = "paged"
    kv_page_size: int = 16
    num_kv_blocks: Optional[int] = None

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.token_budget is not None and self.token_budget < 1:
            raise ValueError("token_budget must be >= 1")
        if self.kv_backend not in ("paged", "contiguous"):
            raise ValueError(
                f"kv_backend must be 'paged' or 'contiguous', got {self.kv_backend!r}"
            )
        if self.kv_page_size < 1:
            raise ValueError("kv_page_size must be >= 1")
        if self.num_kv_blocks is not None and self.num_kv_blocks < 1:
            raise ValueError("num_kv_blocks must be >= 1")


@dataclass
class ServeReport:
    """Outcome of an engine run: terminal request records plus aggregate counters.

    ``completed`` holds every terminal record — requests that ran to their
    stop condition *and* cancelled/timed-out ones (distinguished by
    ``finish_reason``); latency percentiles and the ``requests`` count cover
    only the former, so a run without cancellations reports exactly what it
    always did.
    """

    completed: list
    elapsed_s: float
    steps: int
    prefill_tokens: int
    decode_tokens: int
    kv_spec: str
    peak_active: int = 0
    reused_tokens: int = 0
    kv_backend: str = "contiguous"
    kv_page_size: Optional[int] = None
    peak_pages_in_use: int = 0
    kv_peak_memory_bits: float = 0.0
    cancelled: int = 0
    timed_out: int = 0

    @property
    def kv_hit_rate(self) -> float:
        """Fraction of prompt tokens served from cached prefixes (not prefilled).

        ``reused + prefill`` is the total prompt tokens the engine saw
        (``prefill_tokens`` counts only positions actually processed).
        """
        seen = self.reused_tokens + self.prefill_tokens
        return self.reused_tokens / seen if seen else 0.0

    def summary(self) -> dict:
        """Aggregate latency/throughput metrics (the serve-bench row shape)."""
        elapsed = max(self.elapsed_s, 1e-12)
        ok = [c for c in self.completed if c.ok]
        return {
            "requests": len(ok),
            "elapsed_s": self.elapsed_s,
            "prefill_tokens": self.prefill_tokens,
            "decode_tokens": self.decode_tokens,
            "decode_tokens_per_s": self.decode_tokens / elapsed,
            "total_tokens_per_s": (self.prefill_tokens + self.decode_tokens) / elapsed,
            **percentile_summary((c.time_to_first_token_s for c in ok),
                                 "ttft", scale=1e3, unit="ms"),
            **percentile_summary((c.latency_s for c in ok),
                                 "latency", scale=1e3, unit="ms"),
            "peak_active": self.peak_active,
            "kv_hit_rate": self.kv_hit_rate,
            "peak_pages_in_use": self.peak_pages_in_use,
            "kv_peak_memory_mib": self.kv_peak_memory_bits / 8.0 / 2**20,
            "cancelled": self.cancelled,
            "timed_out": self.timed_out,
        }


class ServeEngine:
    """Continuous-batching scheduler over one model and one KV cache.

    Beyond :meth:`run` (drive-to-drain, the benchmark loop) the engine can be
    driven externally one :meth:`step` at a time — the cluster simulator and
    the :mod:`repro.gateway` event loop both do — via ``next_event_time`` /
    ``queue_depth`` / ``projected_load``, and supports online control:
    :meth:`cancel` removes a queued or active request and releases its KV
    pages immediately, per-request deadlines are enforced at admission and at
    every decode step boundary, and the optional ``on_admit(request_id,
    now)`` / ``on_token(request_id, token, now)`` callbacks let a streaming
    front door observe admissions and sampled tokens as they happen.
    """

    def __init__(self, model: InferenceModel, config: Optional[EngineConfig] = None,
                 clock=None, on_admit=None, on_token=None,
                 obs: Optional[Observability] = None):
        self.model = model
        self.config = config or EngineConfig()
        max_seq_len = (self.config.max_seq_len if self.config.max_seq_len is not None
                       else model.config.max_seq_len)
        if self.config.kv_backend == "contiguous":
            self.cache = KVCache(model.config, self.config.max_batch_size,
                                 max_seq_len=max_seq_len, kv_spec=self.config.kv_spec)
        else:
            self.cache = PagedKVCache(model.config, self.config.max_batch_size,
                                      max_seq_len=max_seq_len, kv_spec=self.config.kv_spec,
                                      page_size=self.config.kv_page_size,
                                      num_blocks=self.config.num_kv_blocks)
        self.clock = clock or WallClock()
        self.token_budget = (self.config.token_budget
                             if self.config.token_budget is not None
                             else self.config.max_batch_size * self.cache.max_seq_len)
        self.on_admit = on_admit
        self.on_token = on_token
        self._queue = []  # heap of (arrival_time, submit_seq, Request)
        self._submit_seq = 0
        self._active = {}  # slot -> _ActiveRequest
        self._free_slots = sorted(range(self.config.max_batch_size), reverse=True)
        self._completed = []
        self._seen_ids = set()
        self._steps = 0
        self._prefill_tokens = 0
        self._decode_tokens = 0
        self._reused_tokens = 0
        self._peak_active = 0
        self._cancelled = 0
        self._timed_out = 0
        # observability: metrics are resolved ONCE here and updated by plain
        # attribute arithmetic; with a disabled bundle every self._m_* is the
        # shared no-op metric and tracer/profiler are None (one `is not None`
        # test per hot-path use) — the pay-for-what-you-use contract.
        self.obs = obs if obs is not None else Observability.disabled()
        self._tracer = self.obs.tracer
        self._profiler = self.obs.profiler
        self.cache.profiler = self._profiler
        self._pool = getattr(self.cache, "pool", None)
        registry = self.obs.registry
        labels = self.obs.labels
        self._m_prefill = registry.counter(
            "engine_prefill_tokens_total", "Prompt tokens actually prefilled", labels)
        self._m_decode = registry.counter(
            "engine_decode_tokens_total", "Tokens generated by batched decode", labels)
        self._m_reused = registry.counter(
            "engine_reused_tokens_total",
            "Prompt tokens adopted from cached prefixes", labels)
        self._m_steps = registry.counter(
            "engine_steps_total", "Scheduler iterations", labels)
        self._m_queue_depth = registry.gauge(
            "engine_queue_depth", "Requests waiting for admission", labels)
        self._m_active = registry.gauge(
            "engine_active_requests", "Requests holding a cache slot", labels)
        self._m_kv_pages = registry.gauge(
            "engine_kv_pages_in_use", "Allocated KV pages (paged backend)", labels)
        self._m_ttft = registry.histogram(
            "engine_ttft_seconds", "Arrival to first sampled token", labels)
        self._m_latency = registry.histogram(
            "engine_request_latency_seconds",
            "Arrival to terminal record, completed requests", labels)
        self._m_finished = {
            reason: registry.counter(
                "engine_requests_finished_total",
                "Terminal request records by finish reason",
                dict(labels, reason=reason))
            for reason in OK_FINISH_REASONS + ("cancelled", "timeout")
        }

    # ------------------------------------------------------------ submission
    def submit(self, request: Request, not_before: Optional[float] = None) -> None:
        """Queue a request (validated against the model and cache limits).

        ``not_before`` optionally floors the admission instant below which
        the request may not be scheduled, without touching the request's own
        ``arrival_time`` (which keeps anchoring its latency).  A cluster uses
        this for deliveries that physically happen after the arrival — a
        crash-orphaned request rerouted at the crash instant, or an arrival
        held at the router until a network partition heals — so a request can
        never be admitted before the router could have delivered it.
        """
        if request.request_id in self._seen_ids:
            raise ValueError(
                f"duplicate request id {request.request_id}: ids key the engine's "
                f"queue, cancellation and completion records, so every request "
                f"submitted to one engine must carry a distinct id"
            )
        prompt = np.asarray(request.prompt_tokens)
        if prompt.min() < 0 or prompt.max() >= self.model.config.vocab_size:
            raise ValueError("prompt contains token ids outside the model vocabulary")
        window = min(self.cache.max_seq_len, self.model.config.max_seq_len)
        if len(request.prompt_tokens) > window:
            raise ValueError(
                f"request {request.request_id}: prompt length "
                f"({len(request.prompt_tokens)}) exceeds the engine's positional "
                f"window ({window}); truncate the prompt or raise max_seq_len"
            )
        if request.projected_tokens > self.cache.max_seq_len:
            raise ValueError(
                f"request {request.request_id}: prompt + max_new_tokens "
                f"({request.projected_tokens}) exceeds the per-slot capacity "
                f"({self.cache.max_seq_len})"
            )
        if request.projected_tokens > self.token_budget:
            raise ValueError(
                f"request {request.request_id}: projected tokens "
                f"({request.projected_tokens}) exceed the engine token budget "
                f"({self.token_budget})"
            )
        available = (request.arrival_time if not_before is None
                     else max(request.arrival_time, float(not_before)))
        heapq.heappush(self._queue, (available, self._submit_seq, request))
        self._submit_seq += 1
        self._seen_ids.add(request.request_id)

    @property
    def has_work(self) -> bool:
        return bool(self._queue or self._active)

    @property
    def queue_depth(self) -> int:
        """Requests submitted but not yet admitted (the waiting line)."""
        return len(self._queue)

    @property
    def num_active(self) -> int:
        """Requests currently holding a cache slot (prefilled, decoding)."""
        return len(self._active)

    def queued_requests(self) -> list:
        """Waiting requests in admission order (the shedding policies' view)."""
        return [request for _, _, request in sorted(self._queue)]

    @property
    def active_request_ids(self) -> frozenset:
        """Ids of the requests currently holding a cache slot."""
        return frozenset(state.request.request_id for state in self._active.values())

    def active_requests(self) -> list:
        """Requests currently holding a cache slot, in slot order."""
        return [self._active[slot].request for slot in sorted(self._active)]

    def inflight_requests(self) -> list:
        """Every request submitted but not yet terminal: active, then queued.

        The crash-recovery hook: when a replica dies, this is exactly the
        set of requests the fleet must retry elsewhere or report lost —
        returned in deterministic order (decode slots, then the waiting
        line in admission order) so chaos runs replay bit-for-bit.
        """
        return self.active_requests() + self.queued_requests()

    @property
    def active_projected_tokens(self) -> int:
        """Projected KV occupancy of the currently admitted requests."""
        return sum(state.request.projected_tokens for state in self._active.values())

    @property
    def projected_load(self) -> int:
        """Projected KV tokens of everything on this engine: active plus queued.

        The load signal routing policies compare replicas by — unlike
        ``queue_depth`` it weighs a queued 500-token document more than a
        queued 10-token chat turn.
        """
        return self.active_projected_tokens + sum(
            request.projected_tokens for _, _, request in self._queue
        )

    @property
    def kv_hit_rate(self) -> float:
        """Running fraction of prompt tokens served from cached prefixes."""
        seen = self._reused_tokens + self._prefill_tokens
        return self._reused_tokens / seen if seen else 0.0

    @property
    def reused_tokens(self) -> int:
        """Prompt tokens adopted from cached prefixes so far."""
        return self._reused_tokens

    @property
    def peak_pages_in_use(self) -> int:
        """High-water mark of allocated KV pages (0 under ``contiguous``)."""
        return self.cache.peak_pages_in_use

    @property
    def next_event_time(self) -> float:
        """Engine-clock instant the next :meth:`step` would act at.

        ``now`` while requests are decoding, the head-of-queue arrival when
        the engine is idle with queued work, ``inf`` when fully drained.  An
        external driver co-simulating several engines on virtual clocks (the
        cluster simulator) steps whichever engine's event time is earliest,
        so cross-engine event order is deterministic.
        """
        if self._active:
            return self.clock.now()
        if self._queue:
            return max(self.clock.now(), self._queue[0][0])
        return float("inf")

    # ---------------------------------------------------------- cancellation
    def cancel(self, request_id: int) -> CompletedRequest:
        """Remove a queued or active request and reclaim its KV pages now.

        Queued requests are dropped before ever touching the cache; active
        ones release their slot's pages immediately — private pages return to
        the free list, pages adopted from the radix index drop back to being
        index-owned (refcount 1, evictable) — without indexing the partial
        generation for reuse, since nobody asked to keep it.  Returns the
        terminal :class:`CompletedRequest` record (``finish_reason
        "cancelled"``); raises :class:`KeyError` for ids this engine has never
        seen or has already finished.
        """
        for index, (_arrival, _seq, request) in enumerate(self._queue):
            if request.request_id == request_id:
                del self._queue[index]
                heapq.heapify(self._queue)
                self._cancelled += 1
                return self._record_queued_termination(request, "cancelled")
        for state in self._active.values():
            if state.request.request_id == request_id:
                state.finish_reason = "cancelled"
                self._cancelled += 1
                return self._release(state, index_pages=False)
        raise KeyError(
            f"request id {request_id} is not queued or active on this engine "
            f"(never submitted, or already finished)"
        )

    def _record_queued_termination(self, request: Request, reason: str) -> CompletedRequest:
        """Terminal record for a request that never held a slot (no KV to free)."""
        done = CompletedRequest(
            request=request,
            generated_tokens=(),
            finish_reason=reason,
            arrival_time=request.arrival_time,
            admitted_time=None,
            first_token_time=None,
            finish_time=self.clock.now(),
        )
        self._completed.append(done)
        self._m_finished[reason].inc()
        if self._tracer is not None:
            self._trace_terminal(done)
        return done

    def _expire_queued(self, now: float) -> list:
        """Time out every queued request whose deadline has passed.

        Swept at the top of each step so an expired request neither blocks
        the head of the line nor wastes prefill compute on an answer nobody
        is waiting for.
        """
        expired = [entry for entry in self._queue
                   if entry[2].deadline is not None and entry[2].deadline < now]
        if not expired:
            return []
        expired_ids = {entry[2].request_id for entry in expired}
        self._queue = [entry for entry in self._queue
                       if entry[2].request_id not in expired_ids]
        heapq.heapify(self._queue)
        records = []
        for _arrival, _seq, request in sorted(expired):
            self._timed_out += 1
            records.append(self._record_queued_termination(request, "timeout"))
        return records

    def _kv_capacity_ok(self, request: Request) -> bool:
        """Free-block admission check (always true for the contiguous backend).

        The request's worst-case page consumption plus the pages every active
        request may still allocate must fit the reclaimable supply (free pages
        plus evictable cached chains) — the invariant that keeps mid-decode
        allocation from ever exhausting the pool.  The supply scan is O(pool)
        per admission attempt, which is noise next to one model forward at
        this simulator's scale.
        """
        if self.cache.page_size is None:
            return True  # contiguous backend: admission is slot/budget-bound
        cost = self.cache.admission_block_cost(request.prompt_tokens,
                                               request.projected_tokens)
        outstanding = sum(
            self.cache.blocks_outstanding(state.slot, state.request.projected_tokens)
            for state in self._active.values()
        )
        return cost + outstanding <= self.cache.available_blocks

    # -------------------------------------------------------------- stepping
    def _emit_token(self, state: _ActiveRequest) -> None:
        if self.on_token is not None:
            self.on_token(state.request.request_id, state.generated[-1],
                          self.clock.now())

    def step(self) -> list:
        """One scheduling iteration; returns the requests it terminated."""
        completed_now = []
        prof = self._profiler
        if not self._active and self._queue:
            # idle engine: fast-forward to the next arrival instead of spinning
            self.clock.wait_until(self._queue[0][0])
        completed_now.extend(self._expire_queued(self.clock.now()))

        # admission + prefill, in strict arrival order; the clock is re-read
        # per admission so a request arriving while an earlier prefill ran is
        # admitted this step and timestamps reflect the real admission instant
        while self._queue and self._free_slots:
            if prof is not None:
                _t0 = time.perf_counter()
            now = self.clock.now()
            arrival, _seq, request = self._queue[0]
            if arrival > now:
                if prof is not None:
                    prof.add(ADMISSION, time.perf_counter() - _t0)
                break
            if request.deadline is not None and request.deadline < now:
                heapq.heappop(self._queue)
                self._timed_out += 1
                completed_now.append(self._record_queued_termination(request, "timeout"))
                if prof is not None:
                    prof.add(ADMISSION, time.perf_counter() - _t0)
                continue
            if (self.active_projected_tokens + request.projected_tokens > self.token_budget
                    or not self._kv_capacity_ok(request)):
                if prof is not None:
                    prof.add(ADMISSION, time.perf_counter() - _t0)
                break  # head-of-line blocks until budget/pages free up: no starvation
            heapq.heappop(self._queue)
            slot = self._free_slots.pop()
            state = _ActiveRequest(request, slot, admitted_time=now)
            self._active[slot] = state
            if self.on_admit is not None:
                self.on_admit(request.request_id, now)
            prompt = np.array(request.prompt_tokens, dtype=np.int64)
            # adopt the longest cached prefix (paged backend) and prefill the rest
            reused = self.cache.begin_request(slot, request.prompt_tokens)
            suffix = prompt[reused:]
            if prof is not None:
                _t1 = time.perf_counter()
                prof.add(ADMISSION, _t1 - _t0)
            logits = self.model.forward_step(suffix[None, :], self.cache, rows=[slot])
            # the prompt's K/V is complete: index its full pages now so
            # same-prefix requests admitted this very step already hit
            self.cache.commit_prefix(slot, request.prompt_tokens)
            if prof is not None:
                _t2 = time.perf_counter()
                prof.add(PREFILL_FORWARD, _t2 - _t1)
            self._prefill_tokens += suffix.size
            self._reused_tokens += reused
            self._m_prefill.inc(suffix.size)
            self._m_reused.inc(reused)
            self.clock.on_tokens(suffix.size)
            state.sample(logits[0, -1])
            state.first_token_time = self.clock.now()
            self._emit_token(state)
            if prof is not None:
                prof.add(SAMPLING, time.perf_counter() - _t2)
            if state.finish_reason is not None:
                completed_now.append(self._release(state))
        self._peak_active = max(self._peak_active, len(self._active))

        # batched decode: one new token for every active request
        if self._active:
            if prof is not None:
                _t0 = time.perf_counter()
            slots = sorted(self._active)
            last_tokens = np.array([[self._active[s].last_token] for s in slots],
                                   dtype=np.int64)
            logits = self.model.forward_step(last_tokens, self.cache, rows=slots)
            if prof is not None:
                prof.add(DECODE_FORWARD, time.perf_counter() - _t0)
            self._decode_tokens += len(slots)
            self._m_decode.inc(len(slots))
            self.clock.on_tokens(len(slots))
            finish_time = self.clock.now()
            for index, slot in enumerate(slots):
                state = self._active[slot]
                if prof is not None:
                    _t1 = time.perf_counter()
                state.sample(logits[index, -1])
                self._emit_token(state)
                if prof is not None:
                    prof.add(SAMPLING, time.perf_counter() - _t1)
                deadline = state.request.deadline
                if (state.finish_reason is None and deadline is not None
                        and deadline < finish_time):
                    state.finish_reason = "timeout"
                    self._timed_out += 1
                if state.finish_reason is not None:
                    completed_now.append(self._release(state, finish_time))
        self._steps += 1
        self._m_steps.inc()
        self._m_queue_depth.set(len(self._queue))
        self._m_active.set(len(self._active))
        if self._pool is not None:
            self._m_kv_pages.set(self._pool.pages_in_use)
        return completed_now

    def _release(self, state: _ActiveRequest, finish_time: Optional[float] = None,
                 index_pages: bool = True) -> CompletedRequest:
        """Retire an active request: build its record, free its slot and pages.

        ``index_pages`` keeps the sequence's full pages in the radix index for
        prefix reuse (normal completion and deadline timeouts — their K/V is
        valid); cancellation passes ``False`` so the pages are reclaimed
        outright instead of being cached on the cancelled requester's behalf.
        """
        prof = self._profiler
        if prof is not None:
            _t0 = time.perf_counter()
        done = CompletedRequest(
            request=state.request,
            generated_tokens=tuple(state.generated),
            finish_reason=state.finish_reason,
            arrival_time=state.request.arrival_time,
            admitted_time=state.admitted_time,
            first_token_time=state.first_token_time,
            finish_time=finish_time if finish_time is not None else self.clock.now(),
        )
        del self._active[state.slot]
        if index_pages:
            self.cache.retire_request(
                state.slot, state.request.prompt_tokens + tuple(state.generated))
        else:
            self.cache.reset(rows=[state.slot])
        self._free_slots.append(state.slot)
        self._free_slots.sort(reverse=True)
        self._completed.append(done)
        if prof is not None:
            prof.add(RELEASE, time.perf_counter() - _t0)
        self._m_finished[done.finish_reason].inc()
        if done.first_token_time is not None:
            self._m_ttft.observe(done.first_token_time - done.arrival_time)
        if done.ok:
            self._m_latency.observe(done.latency_s)
        if self._tracer is not None:
            self._trace_terminal(done)
        return done

    def _trace_terminal(self, done: CompletedRequest) -> None:
        """Emit one terminal record's lifecycle spans (queued → prefill → decode).

        Runs once per request, entirely from timestamps the engine already
        tracks for its latency report — tracing adds nothing per token.
        """
        tracer = self._tracer
        track = self.obs.track
        rid = done.request.request_id
        if done.admitted_time is None:
            # never held a slot: one queued span ending at the terminal
            # instant (which may precede a future nominal arrival — a
            # cancel of a not-yet-due request — hence the clamp)
            start = min(done.arrival_time, done.finish_time)
            tracer.complete("queued", start, done.finish_time, track,
                            args={"request_id": rid,
                                  "finish_reason": done.finish_reason})
            return
        tracer.complete("queued", done.arrival_time, done.admitted_time, track,
                        args={"request_id": rid})
        tracer.complete("prefill", done.admitted_time, done.first_token_time,
                        track, args={"request_id": rid})
        tracer.complete("decode", done.first_token_time, done.finish_time, track,
                        args={"request_id": rid,
                              "finish_reason": done.finish_reason,
                              "tokens": len(done.generated_tokens)})

    # ------------------------------------------------------------------- run
    def run(self, requests=None, max_steps: Optional[int] = None) -> ServeReport:
        """Drive the engine until the queue drains; returns the report."""
        for request in requests or ():
            self.submit(request)
        while self.has_work:
            if max_steps is not None and self._steps >= max_steps:
                raise RuntimeError(
                    f"engine did not drain within {max_steps} steps "
                    f"({len(self._active)} active, {len(self._queue)} queued)"
                )
            self.step()
        return self.report()

    def report(self) -> ServeReport:
        return ServeReport(
            completed=list(self._completed),
            elapsed_s=self.clock.now(),
            steps=self._steps,
            prefill_tokens=self._prefill_tokens,
            decode_tokens=self._decode_tokens,
            kv_spec=self.cache.kv_spec,
            peak_active=self._peak_active,
            reused_tokens=self._reused_tokens,
            kv_backend=self.config.kv_backend,
            kv_page_size=self.cache.page_size,
            peak_pages_in_use=self.cache.peak_pages_in_use,
            kv_peak_memory_bits=self.cache.peak_memory_bits(),
            cancelled=self._cancelled,
            timed_out=self._timed_out,
        )

    # ----------------------------------------------------------------- audit
    def audit_kv_pages(self) -> dict:
        """Account for every allocated KV page; the leak detector.

        Under the paged backend each allocated block's reference count must
        equal the number of active block tables holding it plus one if the
        radix index owns a node for it — anything else is a leak (a cancel or
        retire that dropped references incorrectly).  The contiguous backend
        has no pages; its equivalent invariant is that only active slots hold
        cached positions.  Returns ``{"leaked": [...], "pages_in_use": n,
        "index_pages": m, "active_pages": k}`` where ``leaked`` is empty iff
        the audit passes.
        """
        if self.cache.page_size is None:
            active_rows = {state.slot for state in self._active.values()}
            leaked = [int(row) for row in range(self.cache.batch_size)
                      if row not in active_rows and self.cache.lengths[row] != 0]
            return {"leaked": leaked, "pages_in_use": 0, "index_pages": 0,
                    "active_pages": 0}
        expected = {}
        active_pages = set()
        for state in self._active.values():
            for block in self.cache._tables[state.slot]:
                expected[block] = expected.get(block, 0) + 1
                active_pages.add(block)
        for block in self.cache.index.owned_blocks():
            expected[block] = expected.get(block, 0) + 1
        pool = self.cache.pool
        leaked = sorted(
            block for block in set(pool.allocated_blocks()) | set(expected)
            if pool.refcount(block) != expected.get(block, 0)
        )
        return {
            "leaked": [int(b) for b in leaked],
            "pages_in_use": pool.pages_in_use,
            "index_pages": len(self.cache.index),
            "active_pages": len(active_pages),
        }
