"""Hardware model of the pipelined BBFP nonlinear computation unit (Fig. 6).

The unit processes vectors (a softmax row, a SiLU activation tile) through a
pipeline of stages:

``Align Exponent -> LUT File -> Sub/Mul Unit -> Adder Tree -> Div Unit -> Output Encoder``

Each stage is buffered, sub-tables are streamed from external memory (masked
by the pipeline), and the datapath keeps full-precision integer multipliers
and dividers — the paper accepts their area/power cost in exchange for
accuracy and for compatibility with many functions (the same unit computes
Softmax, SiLU, GELU and sigmoid by re-ordering the dataflow).

This module provides both the *numerics* (delegated to
:class:`repro.nonlinear.lut.LUTNonlinear`) and the *cost/timing* model used by
Table V and by the accelerator-level simulations (Fig. 1(b), Fig. 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.bbfp import BBFPConfig
from repro.hardware.adders import ripple_carry_adder
from repro.hardware.gates import GateCounts
from repro.hardware.multipliers import array_multiplier, barrel_shifter, comparator, divider
from repro.hardware.technology import TSMC28_LIKE, TechnologyModel
from repro.nonlinear.lut import LUTNonlinear

__all__ = ["NonlinearUnitConfig", "NonlinearUnitCost", "NonlinearUnit"]


@dataclass(frozen=True)
class NonlinearUnitConfig:
    """Configuration of the nonlinear computation unit.

    The paper's evaluation instance uses BBFP(10,5), 7-bit LUT addresses,
    16 lanes, 18 softmax sub-tables and 24 SiLU sub-tables.
    """

    input_format: BBFPConfig = BBFPConfig(10, 5)
    address_bits: int = 7
    lanes: int = 16
    datapath_bits: int = 16
    pipeline_stages: int = 6
    subtable_load_cycles: int = 8
    subtables: dict = field(default_factory=lambda: {"softmax": 18, "silu": 24, "gelu": 24,
                                                     "sigmoid": 16})
    lut_entry_bits: int = 16

    def __post_init__(self):
        if self.lanes < 1:
            raise ValueError("lanes must be >= 1")
        if self.address_bits < 1:
            raise ValueError("address_bits must be >= 1")

    @property
    def name(self) -> str:
        fmt = self.input_format
        return f"BBFP({fmt.mantissa_bits},{fmt.overlap_bits},{fmt.exponent_bits})"

    @property
    def lut_entries(self) -> int:
        return 1 << self.address_bits

    def onchip_lut_bits(self) -> int:
        """On-chip buffer: double-buffered single sub-table (rest stays in external memory)."""
        return 2 * self.lut_entries * self.lut_entry_bits


@dataclass(frozen=True)
class NonlinearUnitCost:
    """Area / power / timing summary of a nonlinear unit design."""

    name: str
    num_format: str
    lanes: int
    gates: GateCounts
    lut_buffer_bits: int
    pipeline_stages: int
    subtable_load_cycles: int
    technology: TechnologyModel = TSMC28_LIKE
    compatibility: tuple = ("softmax",)
    #: Sustained elements processed per cycle; defaults to ``lanes`` (fully
    #: pipelined).  Designs that iterate internally (e.g. the high-precision
    #: base-2 unit) sustain fewer elements per cycle than they have lanes.
    elements_per_cycle: float = None

    @property
    def sustained_elements_per_cycle(self) -> float:
        return self.elements_per_cycle if self.elements_per_cycle is not None else float(self.lanes)

    def area_um2(self) -> float:
        lut_area = (self.lut_buffer_bits / 8.0) * self.technology.sram_area_per_byte_um2
        return self.gates.area_um2(self.technology) + lut_area

    def area_mm2(self) -> float:
        return self.area_um2() * 1e-6

    def dynamic_power_w(self, activity: float = 0.35) -> float:
        energy_per_cycle = self.gates.dynamic_energy_j(self.technology, activity=activity)
        return energy_per_cycle * self.technology.clock_frequency_hz

    def static_power_w(self) -> float:
        lut_ge = (self.lut_buffer_bits / 8.0) * self.technology.sram_area_per_byte_um2 / \
            self.technology.nand2_area_um2 * 0.25
        return (self.gates.gate_equivalents() + lut_ge) * self.technology.static_power_per_ge_nw * 1e-9

    def power_w(self, activity: float = 0.35) -> float:
        return self.dynamic_power_w(activity) + self.static_power_w()

    def latency_cycles(self, vector_length: int) -> int:
        """Cycles to process one vector of ``vector_length`` elements."""
        if vector_length < 1:
            raise ValueError("vector_length must be >= 1")
        beats = math.ceil(vector_length / self.sustained_elements_per_cycle)
        return beats + self.pipeline_stages + self.subtable_load_cycles

    def latency_s(self, vector_length: int) -> float:
        return self.latency_cycles(vector_length) * self.technology.cycle_time_s

    def throughput_elements_per_s(self, vector_length: int = 1024) -> float:
        return vector_length / self.latency_s(vector_length)

    # ----------------------------------------------------- Table V metrics
    def adp(self, vector_length: int = 1024) -> float:
        """Area-delay product in mm^2 * us."""
        return self.area_mm2() * self.latency_s(vector_length) * 1e6

    def edp(self, vector_length: int = 1024, activity: float = 0.35) -> float:
        """Energy-delay product in nJ * us."""
        delay_s = self.latency_s(vector_length)
        energy_j = self.power_w(activity) * delay_s
        return (energy_j * 1e9) * (delay_s * 1e6)

    def efficiency(self, vector_length: int = 1024, activity: float = 0.35) -> float:
        """Throughput / (area x power) in Gelem/s per (mm^2 * W)."""
        throughput = self.throughput_elements_per_s(vector_length) * 1e-9
        return throughput / (self.area_mm2() * self.power_w(activity))

    def as_row(self, vector_length: int = 1024) -> dict:
        return {
            "design": self.name,
            "lanes": self.lanes,
            "num_format": self.num_format,
            "area_mm2": self.area_mm2(),
            "power_w": self.power_w(),
            "adp": self.adp(vector_length),
            "edp": self.edp(vector_length),
            "efficiency": self.efficiency(vector_length),
            "compatibility": ", ".join(self.compatibility),
        }


class NonlinearUnit:
    """Numerics + hardware cost of the proposed BBFP nonlinear unit."""

    def __init__(self, config: NonlinearUnitConfig = NonlinearUnitConfig()):
        self.config = config
        self.lut = LUTNonlinear(config.input_format, address_bits=config.address_bits)

    # ------------------------------------------------------------- numerics
    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self.lut.softmax(x, axis=axis)

    def activation(self, kind: str, x: np.ndarray) -> np.ndarray:
        if kind == "relu":
            return np.maximum(np.asarray(x, dtype=np.float64), 0.0)
        return self.lut.apply(kind, x, axis=-1)

    def softmax_fn(self):
        """Drop-in ``softmax_fn`` for :class:`repro.llm.inference.QuantizationScheme`."""
        return lambda x, axis=-1: self.softmax(x, axis=axis)

    def nonlinear_fn(self):
        """Drop-in ``nonlinear_fn`` for :class:`repro.llm.inference.QuantizationScheme`."""
        return lambda kind, x: self.activation(kind, x)

    # ------------------------------------------------------------- hardware
    def cost(self) -> NonlinearUnitCost:
        cfg = self.config
        bits = cfg.datapath_bits
        m = cfg.input_format.mantissa_bits
        exponent_bits = cfg.input_format.exponent_bits

        align_unit = (comparator(exponent_bits) + barrel_shifter(width=m + 2, positions=m)) * cfg.lanes
        sub_unit = ripple_carry_adder(bits) * cfg.lanes
        mul_unit = array_multiplier(bits, bits) * cfg.lanes
        adder_tree = ripple_carry_adder(bits + 8) * max(1, cfg.lanes - 1)
        div_unit = divider(bits + 8)
        encoder = (barrel_shifter(width=m + 2, positions=m) + comparator(exponent_bits)) * cfg.lanes
        stage_buffers = GateCounts.of(flipflop=cfg.pipeline_stages * cfg.lanes * bits)
        control = GateCounts.of(flipflop=64, mux2=32, and2=32)

        gates = align_unit + sub_unit + mul_unit + adder_tree + div_unit + encoder + stage_buffers + control
        return NonlinearUnitCost(
            name="BBAL nonlinear unit (ours)",
            num_format=cfg.name,
            lanes=cfg.lanes,
            gates=gates,
            lut_buffer_bits=cfg.onchip_lut_bits(),
            pipeline_stages=cfg.pipeline_stages,
            subtable_load_cycles=cfg.subtable_load_cycles,
            compatibility=("softmax", "silu", "gelu", "sigmoid"),
        )

    def external_table_bits(self, function: str) -> int:
        """Storage of all sub-tables of ``function`` held in external memory."""
        tables = self.config.subtables.get(function)
        if tables is None:
            raise ValueError(
                f"unknown function {function!r}; known: {sorted(self.config.subtables)}"
            )
        return tables * self.config.lut_entries * self.config.lut_entry_bits

    def latency_cycles(self, vector_length: int) -> int:
        return self.cost().latency_cycles(vector_length)
