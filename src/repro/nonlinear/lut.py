"""Exponent-segmented lookup tables over block floating point inputs.

The key idea of the paper's nonlinear unit: because every BBFP block carries a
*shared* exponent, a transcendental function can be tabulated per exponent
segment and the (truncated) mantissa used directly as the table address.
A BBFP(10,5) input with a 7-bit LUT address gives each segment 128 entries;
the quality of the result is therefore governed by the resolution of the
*input quantisation* — which is exactly where BBFP and BFP differ:

* BFP10 aligns the whole block to the maximum exponent, so moderate inputs
  keep only a few significant address bits and the tabulated function output
  is badly staircased (the PPL blow-up of Table IV);
* BBFP(10,5) keeps fine resolution for the small/moderate inputs that
  dominate Softmax and SiLU, so the LUT output stays within a small error of
  the FP32 reference.

:class:`SegmentedLUT` materialises the actual sub-tables (what the hardware
would store in external memory) and :class:`LUTNonlinear` provides the fast
vectorised evaluation path used inside the perplexity experiments; the tests
check that both agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bbfp import BBFPConfig, quantize_bbfp
from repro.core.blockfp import BFPConfig, quantize_bfp
from repro.llm import activations as ref_act

__all__ = ["SegmentedLUT", "LUTNonlinear", "lut_softmax", "lut_function"]

_FUNCTIONS = {
    "exp": ref_act.exponential,
    "silu": ref_act.silu,
    "gelu": ref_act.gelu,
    "sigmoid": ref_act.sigmoid,
}


def _quantize(x: np.ndarray, config, axis: int = -1):
    """Quantise ``x`` with a BBFP or BFP config and return the quantised tensor object."""
    if isinstance(config, BBFPConfig):
        return quantize_bbfp(x, config, axis=axis)
    if isinstance(config, BFPConfig):
        return quantize_bfp(x, config, axis=axis)
    raise TypeError(f"unsupported LUT input format {type(config)!r}")


def _address_of(mantissas: np.ndarray, mantissa_bits: int, address_bits: int) -> np.ndarray:
    """Truncate stored mantissas to the LUT address width (drop the low bits)."""
    drop = max(0, mantissa_bits - address_bits)
    return (mantissas.astype(np.int64) >> drop).astype(np.int64)


def _representative_value(address: np.ndarray, sign: np.ndarray, effective_exponent: np.ndarray,
                          mantissa_bits: int, address_bits: int) -> np.ndarray:
    """Input value represented by a LUT address within its exponent segment."""
    drop = max(0, mantissa_bits - address_bits)
    codes = (address.astype(np.float64)) * (1 << drop)
    step = np.exp2(effective_exponent.astype(np.float64) - (mantissa_bits - 1))
    return sign * codes * step


@dataclass
class SegmentedLUT:
    """Materialised sub-tables for one scalar function.

    Each sub-table is keyed by ``(effective_exponent, sign)`` — the effective
    exponent folds the BBFP flag into the shared exponent
    (``E + flag * (m - o)``), mirroring how the hardware selects which segment
    to load from external memory once the alignment stage has run.
    """

    function: str
    input_format: object
    address_bits: int = 7
    tables: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.function not in _FUNCTIONS:
            raise ValueError(f"unknown function {self.function!r}; known: {sorted(_FUNCTIONS)}")
        if self.address_bits < 1:
            raise ValueError("address_bits must be >= 1")

    @property
    def entries_per_table(self) -> int:
        return 1 << self.address_bits

    @property
    def num_subtables(self) -> int:
        return len(self.tables)

    def table_bits(self, entry_bits: int = 16) -> int:
        """Total storage of the materialised sub-tables in bits."""
        return self.num_subtables * self.entries_per_table * entry_bits

    def _segment_key(self, effective_exponent: int, sign: int) -> tuple:
        return int(effective_exponent), int(np.sign(sign) if sign != 0 else 1)

    def build_segment(self, effective_exponent: int, sign: int) -> np.ndarray:
        """Build (and cache) the sub-table for one exponent/sign segment."""
        key = self._segment_key(effective_exponent, sign)
        if key not in self.tables:
            m = self.input_format.mantissa_bits
            addresses = np.arange(self.entries_per_table)
            inputs = _representative_value(
                addresses,
                np.full_like(addresses, key[1], dtype=np.float64),
                np.full_like(addresses, key[0]),
                m,
                self.address_bits,
            )
            self.tables[key] = _FUNCTIONS[self.function](inputs)
        return self.tables[key]

    def lookup(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Evaluate the function through explicit table lookups (hardware-faithful path)."""
        x = np.asarray(x, dtype=np.float64)
        quantised = _quantize(x, self.input_format, axis=axis)
        m = self.input_format.mantissa_bits
        flags = getattr(quantised, "flags", np.zeros_like(quantised.mantissas))
        if isinstance(self.input_format, BBFPConfig):
            shift = self.input_format.mantissa_bits - self.input_format.overlap_bits
        else:
            shift = 0
        effective = quantised.shared_exponents[..., None] + flags * shift
        addresses = _address_of(quantised.mantissas, m, self.address_bits)
        signs = quantised.signs

        out_blocks = np.empty_like(addresses, dtype=np.float64)
        flat_eff = effective.reshape(-1)
        flat_addr = addresses.reshape(-1)
        flat_sign = signs.reshape(-1)
        flat_out = out_blocks.reshape(-1)
        for i in range(flat_addr.size):
            table = self.build_segment(flat_eff[i], flat_sign[i])
            flat_out[i] = table[flat_addr[i]]

        from repro.core.blocking import from_blocks

        return from_blocks(out_blocks, quantised.layout)


class LUTNonlinear:
    """Vectorised LUT evaluation (numerically identical to :class:`SegmentedLUT.lookup`).

    This is the implementation the perplexity experiments use: the quantised
    input is truncated to the LUT address resolution, re-expanded to its
    representative value and passed through the exact scalar function — which
    is precisely what reading the pre-tabulated value would return.

    ``requantize_output=True`` additionally re-encodes the looked-up values
    into the same block format before they are consumed by the next operator,
    matching the paper's "INT computation" flow where the sub-table entries
    themselves are stored in BBFP so the datapath never leaves the block
    format.
    """

    def __init__(self, input_format, address_bits: int = 7, requantize_output: bool = True):
        if not isinstance(input_format, (BBFPConfig, BFPConfig)):
            raise TypeError(f"unsupported LUT input format {type(input_format)!r}")
        self.input_format = input_format
        self.address_bits = address_bits
        self.requantize_output = requantize_output

    def _requantize(self, y: np.ndarray, axis: int = -1) -> np.ndarray:
        if not self.requantize_output:
            return y
        return _quantize(y, self.input_format, axis=axis).dequantize()

    def quantise_to_address_grid(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Return the representative input value seen by the LUT for every element."""
        quantised = _quantize(x, self.input_format, axis=axis)
        m = self.input_format.mantissa_bits
        flags = getattr(quantised, "flags", np.zeros_like(quantised.mantissas))
        if isinstance(self.input_format, BBFPConfig):
            shift = self.input_format.mantissa_bits - self.input_format.overlap_bits
        else:
            shift = 0
        effective = quantised.shared_exponents[..., None] + flags * shift
        addresses = _address_of(quantised.mantissas, m, self.address_bits)
        values = _representative_value(addresses, quantised.signs, effective, m, self.address_bits)

        from repro.core.blocking import from_blocks

        return from_blocks(values, quantised.layout)

    def apply(self, function: str, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Evaluate ``function`` on the LUT-resolved input grid (output re-encoded if configured)."""
        if function not in _FUNCTIONS:
            raise ValueError(f"unknown function {function!r}; known: {sorted(_FUNCTIONS)}")
        y = _FUNCTIONS[function](self.quantise_to_address_grid(x, axis=axis))
        return self._requantize(y, axis=axis)

    def softmax(self, x: np.ndarray, axis: int = -1, input_clip: float = -64.0) -> np.ndarray:
        """Softmax with the exponential evaluated through the LUT (Fig. 6 dataflow).

        The max subtraction is done by the accelerator's Max unit (exact), the
        exponential goes through the LUT, and the adder tree / divider operate
        at full precision — matching the paper's unit, which keeps
        "full-precision, high-bitwidth integer multipliers and dividers to
        minimise numerical error".

        ``input_clip`` saturates the subtractor output: causally-masked score
        positions arrive as very large negative numbers, and letting them set
        the block's shared exponent would be meaningless (their exponential is
        zero for any format).  The hardware clamps the aligned input instead,
        which is what the clip models; ``exp(-64)`` underflows to zero in every
        compared format.
        """
        x = np.asarray(x, dtype=np.float64)
        shifted = x - x.max(axis=axis, keepdims=True)
        shifted = np.maximum(shifted, input_clip)
        numerator = self.apply("exp", shifted, axis=axis)
        denominator = numerator.sum(axis=axis, keepdims=True)
        denominator = np.where(denominator == 0.0, 1.0, denominator)
        return self._requantize(numerator / denominator, axis=axis)


def lut_softmax(input_format, address_bits: int = 7):
    """Return a drop-in ``softmax_fn`` for :class:`repro.llm.inference.QuantizationScheme`."""
    lut = LUTNonlinear(input_format, address_bits=address_bits)

    def softmax_fn(x: np.ndarray, axis: int = -1) -> np.ndarray:
        return lut.softmax(x, axis=axis)

    return softmax_fn


def lut_function(input_format, address_bits: int = 7):
    """Return a drop-in ``nonlinear_fn`` (kind, x) for the inference scheme."""
    lut = LUTNonlinear(input_format, address_bits=address_bits)

    def nonlinear_fn(kind: str, x: np.ndarray) -> np.ndarray:
        if kind == "relu":
            return ref_act.relu(x)
        return lut.apply(kind, x, axis=-1)

    return nonlinear_fn
