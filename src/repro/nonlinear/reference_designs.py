"""Comparator nonlinear-unit designs of Table V.

The paper compares its nonlinear unit against two published softmax designs:

* **[32] pseudo-softmax (Cardarilli et al., 2021)** — an INT8 approximation
  that replaces the exponential with a base-2 shift trick and avoids the
  divider: tiny area and energy (best ADP/EDP), but it only approximates
  softmax and supports nothing else.
* **[33] high-precision base-2 softmax (Zhang et al., 2023)** — a 27-bit
  integer design with full-precision exponent evaluation and division: very
  accurate but roughly two orders of magnitude behind in efficiency.

Both are modelled with the same gate primitives as the BBAL unit so the
ADP / EDP / efficiency comparison is consistent.
"""

from __future__ import annotations

from repro.hardware.adders import ripple_carry_adder
from repro.hardware.gates import GateCounts
from repro.hardware.multipliers import array_multiplier, barrel_shifter, comparator, divider
from repro.nonlinear.unit import NonlinearUnit, NonlinearUnitConfig, NonlinearUnitCost

__all__ = [
    "PSEUDO_SOFTMAX_INT8",
    "HIGH_PRECISION_INT27",
    "bbal_nonlinear_reference",
    "comparison_table",
]


def _pseudo_softmax_int8(lanes: int = 10) -> NonlinearUnitCost:
    """[32]: INT8 pseudo-softmax — shift-based exponential, no divider."""
    bits = 8
    per_lane = (
        comparator(bits)
        + ripple_carry_adder(bits)
        + barrel_shifter(width=bits + 4, positions=bits)
    )
    adder_tree = ripple_carry_adder(bits + 4) * max(1, lanes - 1)
    normaliser = barrel_shifter(width=bits + 4, positions=bits + 4) * lanes
    buffers = GateCounts.of(flipflop=3 * lanes * bits)
    gates = per_lane * lanes + adder_tree + normaliser + buffers
    return NonlinearUnitCost(
        name="Pseudo-softmax [32]",
        num_format="Int8",
        lanes=lanes,
        gates=gates,
        lut_buffer_bits=0,
        pipeline_stages=3,
        subtable_load_cycles=0,
        compatibility=("softmax (approximate)",),
        # The published design targets 10-class classification: it produces one
        # 10-element softmax per invocation and re-normalises serially, so its
        # sustained rate is far below one element per lane per cycle.
        elements_per_cycle=2.0,
    )


def _high_precision_int27(lanes: int = 8) -> NonlinearUnitCost:
    """[33]: high-precision base-2 softmax — 27-bit integer datapath with division."""
    bits = 27
    per_lane = (
        array_multiplier(bits, bits)
        + ripple_carry_adder(bits + 5)
        + barrel_shifter(width=bits + 5, positions=bits)
    )
    adder_tree = ripple_carry_adder(bits + 8) * max(1, lanes - 1)
    dividers = divider(bits + 5) * lanes
    buffers = GateCounts.of(flipflop=6 * lanes * bits)
    gates = per_lane * lanes + adder_tree + dividers + buffers
    return NonlinearUnitCost(
        name="High-precision softmax [33]",
        num_format="Int27",
        lanes=lanes,
        gates=gates,
        lut_buffer_bits=0,
        pipeline_stages=8,
        subtable_load_cycles=0,
        compatibility=("softmax",),
        # The base-2 high-precision evaluation iterates over mantissa digits,
        # so each lane needs several cycles per element.
        elements_per_cycle=2.0,
    )


PSEUDO_SOFTMAX_INT8 = _pseudo_softmax_int8()
HIGH_PRECISION_INT27 = _high_precision_int27()


def bbal_nonlinear_reference(config: NonlinearUnitConfig = NonlinearUnitConfig()) -> NonlinearUnitCost:
    """The paper's unit (16 lanes, BBFP(10,5,5)) costed with the same primitives."""
    return NonlinearUnit(config).cost()


def comparison_table(vector_length: int = 1024) -> list:
    """Table V rows: ADP / EDP / efficiency / compatibility for the three designs."""
    designs = [PSEUDO_SOFTMAX_INT8, HIGH_PRECISION_INT27, bbal_nonlinear_reference()]
    return [design.as_row(vector_length) for design in designs]
