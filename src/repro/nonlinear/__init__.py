"""The BBFP nonlinear computation unit (Section IV-B).

Transformer nonlinear operators (Softmax, SiLU, GELU, sigmoid) normally need
floating-point transcendental evaluation.  The paper replaces them with an
exponent-segmented lookup table driven by BBFP(10,5):

* the function domain is split into sub-tables, one per (effective exponent,
  sign) segment, stored in external memory and loaded on demand once the
  block's shared exponent is known;
* within a segment the BBFP mantissa is used *directly* as the LUT address
  (no extra mapping logic), with a 7-bit address width;
* the whole unit is pipelined (align exponent → LUT → multiply/subtract →
  adder tree → divide → output encode) and reconfigurable across functions.

:mod:`repro.nonlinear.lut` implements the numerics (and is what the
perplexity experiments of Table IV plug into the inference path);
:mod:`repro.nonlinear.unit` implements the hardware cost and pipeline timing
model used for Table V; :mod:`repro.nonlinear.reference_designs` models the
two comparator designs of Table V.
"""

from repro.nonlinear.lut import SegmentedLUT, LUTNonlinear
from repro.nonlinear.unit import NonlinearUnit, NonlinearUnitConfig, NonlinearUnitCost
from repro.nonlinear.reference_designs import (
    PSEUDO_SOFTMAX_INT8,
    HIGH_PRECISION_INT27,
    bbal_nonlinear_reference,
    comparison_table,
)

__all__ = [
    "SegmentedLUT",
    "LUTNonlinear",
    "NonlinearUnit",
    "NonlinearUnitConfig",
    "NonlinearUnitCost",
    "PSEUDO_SOFTMAX_INT8",
    "HIGH_PRECISION_INT27",
    "bbal_nonlinear_reference",
    "comparison_table",
]
