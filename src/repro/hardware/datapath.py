"""Bit-accurate model of the BBFP MAC datapath (Fig. 5, Eq. 10–14).

The cost models in :mod:`repro.hardware.mac` count gates; this module checks
that the *behaviour* those gates implement is the one the paper derives from
the data format:

* the intra-block multiplication of Eq. 10 — an ``m x m`` integer multiply
  followed by a flag-controlled left shift of ``0``, ``m - o`` or
  ``2 (m - o)`` bits, so the product has a structurally-zero bit pattern
  (Fig. 5(a));
* the partial-sum addition of Fig. 5(b) — a narrower full adder plus a
  *carry chain* covering the positions where the product is structurally
  zero, whose cells implement Eq. 13/14 instead of the full Eq. 11/12.

Everything here operates on integers bit by bit, exactly as the RTL would, and
is verified against both a behavioural addition and the integer-exact block
dot product of :mod:`repro.core.dotproduct` — so the gate-count savings
claimed in Table I rest on an addition that provably still produces the right
bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bbfp import BBFPConfig, BBFPTensor
from repro.core.dotproduct import bbfp_product_shift

__all__ = [
    "full_adder_bit",
    "carry_chain_bit",
    "ripple_add",
    "sparse_ripple_add",
    "product_zero_mask",
    "bbfp_multiply_codes",
    "MACDatapath",
]


def full_adder_bit(a: int, b: int, carry_in: int) -> tuple:
    """One mirror full adder (Eq. 11 / Eq. 12): returns ``(sum, carry_out)``."""
    s = carry_in ^ a ^ b
    carry_out = (a & b) | (carry_in & (a ^ b))
    return s, carry_out


def carry_chain_bit(a: int, carry_in: int) -> tuple:
    """One carry-chain cell (Eq. 13 / Eq. 14), valid only where ``b`` is structurally zero."""
    s = carry_in ^ a
    carry_out = carry_in & a
    return s, carry_out


def ripple_add(a: int, b: int, width: int) -> tuple:
    """Bit-serial ripple-carry addition of two unsigned ``width``-bit integers.

    Returns ``(sum mod 2**width, carry_out)`` — the reference the sparse adder
    is checked against.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if a < 0 or b < 0:
        raise ValueError("operands must be unsigned")
    if a >= (1 << width) or b >= (1 << width):
        raise ValueError(f"operands must fit in {width} bits")
    carry = 0
    result = 0
    for i in range(width):
        bit_a = (a >> i) & 1
        bit_b = (b >> i) & 1
        s, carry = full_adder_bit(bit_a, bit_b, carry)
        result |= s << i
    return result, carry


def sparse_ripple_add(a: int, b: int, width: int, chain_mask: int) -> tuple:
    """The paper's sparse adder: carry-chain cells where ``chain_mask`` is set.

    ``chain_mask`` marks the bit positions where the second operand ``b`` is
    structurally zero (Fig. 5(a)); those positions use the reduced Eq. 13/14
    cell.  A ``b`` bit that is set inside the mask violates the structural
    assumption and raises — the hardware would simply compute the wrong sum.

    Returns ``(sum mod 2**width, carry_out)``.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if a < 0 or b < 0:
        raise ValueError("operands must be unsigned")
    if a >= (1 << width) or b >= (1 << width):
        raise ValueError(f"operands must fit in {width} bits")
    if b & chain_mask:
        raise ValueError(
            f"operand b=0b{b:b} has set bits inside the carry-chain mask 0b{chain_mask:b}"
        )
    carry = 0
    result = 0
    for i in range(width):
        bit_a = (a >> i) & 1
        if (chain_mask >> i) & 1:
            s, carry = carry_chain_bit(bit_a, carry)
        else:
            bit_b = (b >> i) & 1
            s, carry = full_adder_bit(bit_a, bit_b, carry)
        result |= s << i
    return result, carry


def product_zero_mask(flag_a: int, flag_b: int, config: BBFPConfig) -> int:
    """Structurally-zero bit positions of one Eq. 10 product (Fig. 5(a)).

    The raw ``m x m`` product occupies ``2 m`` bits; the flag-controlled shift
    widens it to ``2 m + 2 (m - o)`` bits of which:

    * flags ``0/0``  — the top ``2 (m - o)`` bits are zero;
    * flags ``0/1`` or ``1/0`` — the bottom ``m - o`` and top ``m - o`` bits
      are zero;
    * flags ``1/1``  — the bottom ``2 (m - o)`` bits are zero.

    Returns a bit mask over the ``2 m + 2 (m - o)``-bit product with ones at
    the structurally-zero positions.
    """
    m = config.mantissa_bits
    shift_unit = m - config.overlap_bits
    product_width = 2 * m + 2 * shift_unit
    shift = (int(flag_a == 1) + int(flag_b == 1)) * shift_unit
    low_zeros = (1 << shift) - 1
    high_zeros_count = product_width - (2 * m + shift)
    high_zeros = ((1 << high_zeros_count) - 1) << (2 * m + shift)
    return low_zeros | high_zeros


def bbfp_multiply_codes(mantissa_a: int, flag_a: int, mantissa_b: int, flag_b: int,
                        config: BBFPConfig) -> int:
    """One Eq. 10 mantissa product: integer multiply then flag-controlled shift."""
    if not 0 <= mantissa_a <= config.max_mantissa_level:
        raise ValueError(f"mantissa_a out of range: {mantissa_a}")
    if not 0 <= mantissa_b <= config.max_mantissa_level:
        raise ValueError(f"mantissa_b out of range: {mantissa_b}")
    shift_unit = config.mantissa_bits - config.overlap_bits
    shift = (int(flag_a == 1) + int(flag_b == 1)) * shift_unit
    return (mantissa_a * mantissa_b) << shift


@dataclass(frozen=True)
class MACDatapath:
    """Bit-accurate weight-stationary MAC processing one BBFP block pair at a time.

    The accumulator keeps two unsigned magnitudes (one per product sign), each
    updated through :func:`sparse_ripple_add`, mirroring a sign-magnitude
    datapath; the final partial sum is their difference scaled by the two
    shared exponents.  ``accumulator_bits`` defaults to the product width plus
    enough guard bits for a 32-element block.
    """

    config: BBFPConfig
    accumulator_bits: int = 0

    def __post_init__(self):
        if self.accumulator_bits <= 0:
            object.__setattr__(self, "accumulator_bits", self._default_accumulator_bits())

    def _default_accumulator_bits(self) -> int:
        m = self.config.mantissa_bits
        shift_unit = m - self.config.overlap_bits
        product_bits = 2 * m + 2 * shift_unit
        guard = max(1, int(np.ceil(np.log2(max(2, self.config.block_size))))) + 1
        return product_bits + guard

    @property
    def product_bits(self) -> int:
        m = self.config.mantissa_bits
        return 2 * m + 2 * (m - self.config.overlap_bits)

    def block_dot(self, a: BBFPTensor, b: BBFPTensor) -> np.ndarray:
        """Per-block dot products computed through the bit-level datapath.

        Both operands must carry the same blocking (same shapes) and the same
        configuration as this datapath.  The result equals
        :func:`repro.core.dotproduct.bbfp_block_dot` exactly.
        """
        for operand, name in ((a, "a"), (b, "b")):
            if operand.config.mantissa_bits != self.config.mantissa_bits or \
                    operand.config.overlap_bits != self.config.overlap_bits:
                raise ValueError(f"operand {name} was quantised with a different BBFP configuration")
        if a.mantissas.shape != b.mantissas.shape:
            raise ValueError("operands must share blocking")

        width = self.accumulator_bits
        mantissas_a = a.mantissas.reshape(-1, a.mantissas.shape[-1])
        mantissas_b = b.mantissas.reshape(-1, b.mantissas.shape[-1])
        flags_a = a.flags.reshape(mantissas_a.shape)
        flags_b = b.flags.reshape(mantissas_b.shape)
        signs = (a.signs * b.signs).reshape(mantissas_a.shape)
        shifts = bbfp_product_shift(a.flags, b.flags, a.config, b.config).reshape(mantissas_a.shape)

        partials = np.zeros(mantissas_a.shape[0], dtype=np.float64)
        for block in range(mantissas_a.shape[0]):
            positive_acc = 0
            negative_acc = 0
            for lane in range(mantissas_a.shape[1]):
                product = bbfp_multiply_codes(
                    int(mantissas_a[block, lane]), int(flags_a[block, lane]),
                    int(mantissas_b[block, lane]), int(flags_b[block, lane]),
                    self.config,
                )
                mask = product_zero_mask(
                    int(flags_a[block, lane]), int(flags_b[block, lane]), self.config
                )
                # Extend the structural-zero mask across the accumulator guard
                # bits: the product can never reach them either.
                mask |= ((1 << width) - 1) ^ ((1 << self.product_bits) - 1)
                assert shifts[block, lane] == 0 or product % (1 << int(shifts[block, lane])) == 0
                if signs[block, lane] >= 0:
                    positive_acc, _ = sparse_ripple_add(positive_acc, product, width, mask)
                else:
                    negative_acc, _ = sparse_ripple_add(negative_acc, product, width, mask)
            partials[block] = float(positive_acc - negative_acc)

        scale = np.exp2(
            a.shared_exponents.astype(np.float64)
            + b.shared_exponents.astype(np.float64)
            - 2 * (self.config.mantissa_bits - 1)
        )
        return partials.reshape(a.shared_exponents.shape) * scale
