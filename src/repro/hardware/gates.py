"""Gate-equivalent accounting for combinational and sequential primitives.

Every arithmetic block in :mod:`repro.hardware` is described as a
:class:`GateCounts` — how many of each primitive cell it instantiates — and
converted to gate equivalents (NAND2-normalised area) with the usual standard
cell weights.  Keeping the counts symbolic (instead of collapsing to a single
number immediately) lets the tests assert structural facts, e.g. that the
carry-chain unit of Eq. 13/14 removes exactly one AND and two XOR gates
relative to a full adder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.technology import TechnologyModel

__all__ = ["GateCounts", "GATE_EQUIVALENT_WEIGHTS", "FULL_ADDER", "HALF_ADDER"]

#: NAND2-equivalent area weights of the primitive cells (typical standard-cell
#: library ratios).
GATE_EQUIVALENT_WEIGHTS = {
    "nand2": 1.0,
    "and2": 1.5,
    "or2": 1.5,
    "xor2": 3.0,
    "not": 0.7,
    "mux2": 2.3,
    "flipflop": 6.0,
}


@dataclass(frozen=True)
class GateCounts:
    """A bag of primitive-cell counts with arithmetic for composing blocks."""

    counts: dict = field(default_factory=dict)

    @staticmethod
    def of(**kwargs) -> "GateCounts":
        unknown = set(kwargs) - set(GATE_EQUIVALENT_WEIGHTS)
        if unknown:
            raise ValueError(f"unknown gate types {sorted(unknown)}")
        return GateCounts({k: float(v) for k, v in kwargs.items() if v})

    def __add__(self, other: "GateCounts") -> "GateCounts":
        merged = dict(self.counts)
        for key, value in other.counts.items():
            merged[key] = merged.get(key, 0.0) + value
        return GateCounts(merged)

    def __mul__(self, factor: float) -> "GateCounts":
        return GateCounts({k: v * factor for k, v in self.counts.items()})

    __rmul__ = __mul__

    def count(self, gate: str) -> float:
        return self.counts.get(gate, 0.0)

    def gate_equivalents(self) -> float:
        """Total area in NAND2 equivalents."""
        return sum(GATE_EQUIVALENT_WEIGHTS[k] * v for k, v in self.counts.items())

    def area_um2(self, technology: TechnologyModel) -> float:
        return technology.logic_area_um2(self.gate_equivalents())

    def dynamic_energy_j(self, technology: TechnologyModel, activity: float = 1.0) -> float:
        """Energy of one evaluation assuming ``activity`` of the gates toggle."""
        return technology.dynamic_energy_j(self.gate_equivalents() * activity)

    def static_power_w(self, technology: TechnologyModel) -> float:
        return self.gate_equivalents() * technology.static_power_per_ge_nw * 1e-9

    def as_dict(self) -> dict:
        return dict(self.counts)


#: A mirror-style full adder: 2 XOR, 2 AND, 1 OR (sum = a ^ b ^ cin,
#: carry = ab + cin(a ^ b)) — the reference the sparse adder is compared with.
FULL_ADDER = GateCounts.of(xor2=2, and2=2, or2=1)

#: Half adder: 1 XOR (sum), 1 AND (carry).
HALF_ADDER = GateCounts.of(xor2=1, and2=1)
