"""Adder cost models, including the paper's carry-chain sparse adder (Fig. 5(b)).

The partial-sum addition in a BBFP MAC adds an accumulator ``a`` to a
multiplication result ``b`` whose low (or middle) bits are structurally zero:
a BBFP(4,2) product is 12 bits wide, but depending on the two flag bits either
the bottom 4, the middle 2x2 or the top 4 bits are constant zero (Fig. 5(a)).
Where ``b_i = 0`` the full adder

    ``S = Cin ^ a_i ^ b_i``         (Eq. 11)
    ``Cout = a_i b_i + Cin (a_i ^ b_i)``   (Eq. 12)

collapses to the *carry chain* cell

    ``S = Cin ^ a_i``               (Eq. 13)
    ``Cout = Cin a_i``              (Eq. 14)

which removes one AND and two XOR gates per bit.  Replacing a 12-bit ripple
adder by an 8-bit adder plus a 4-bit carry chain therefore saves roughly 15 %
of the adder area — the optimisation the BBAL PE uses.
"""

from __future__ import annotations

from repro.hardware.gates import FULL_ADDER, GateCounts

__all__ = [
    "ripple_carry_adder",
    "carry_chain",
    "sparse_partial_sum_adder",
    "adder_savings_ratio",
]


def ripple_carry_adder(bits: int) -> GateCounts:
    """A ``bits``-wide ripple-carry adder built from mirror full adders."""
    if bits < 1:
        raise ValueError(f"adder width must be >= 1, got {bits}")
    return FULL_ADDER * bits


#: One carry-chain bit cell (Eq. 13 / Eq. 14): an XOR for the sum and an AND
#: for the carry propagation.
CARRY_CHAIN_CELL = GateCounts.of(xor2=1, and2=1)


def carry_chain(bits: int) -> GateCounts:
    """A ``bits``-long carry chain handling positions where one operand is zero."""
    if bits < 0:
        raise ValueError(f"carry chain length must be >= 0, got {bits}")
    return CARRY_CHAIN_CELL * bits


def sparse_partial_sum_adder(total_bits: int, chain_bits: int) -> GateCounts:
    """The paper's sparse adder: ``total_bits - chain_bits`` full-adder bits plus a carry chain.

    ``chain_bits`` is the number of positions where the multiplication result
    is structurally zero (for BBFP(m, o) products this is ``m - o`` or
    ``2 (m - o)`` depending on the flag combination; the hardware sizes the
    chain for the worst case it replaces).
    """
    if not 0 <= chain_bits <= total_bits:
        raise ValueError(
            f"need 0 <= chain_bits <= total_bits, got chain={chain_bits}, total={total_bits}"
        )
    return ripple_carry_adder(total_bits - chain_bits) + carry_chain(chain_bits)


def adder_savings_ratio(total_bits: int, chain_bits: int) -> float:
    """Fractional area saved by the sparse adder versus a full ``total_bits`` adder."""
    full = ripple_carry_adder(total_bits).gate_equivalents()
    sparse = sparse_partial_sum_adder(total_bits, chain_bits).gate_equivalents()
    return 1.0 - sparse / full
