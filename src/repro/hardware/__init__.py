"""Gate-level analytic hardware cost models (area, energy, memory).

The paper implements BBAL in Chisel and reports post-synthesis numbers under
TSMC 28 nm (Design Compiler for logic, CACTI for on-chip memories).  Offline,
this package substitutes an analytic model built from technology-normalised
gate equivalents: every compared design (FP16 / INT8 / BFP / BBFP / Oltron /
Olive MAC units and PEs, the carry-chain sparse adders, the segmented-LUT
nonlinear unit, SRAM buffers and DRAM) is costed with the *same* primitive
library, so the relative comparisons the paper reports (Tables I, III, V,
Figs. 4, 8, 9) are preserved even though absolute square microns differ.
"""

from repro.hardware.technology import TechnologyModel, TSMC28_LIKE
from repro.hardware.gates import GateCounts
from repro.hardware.adders import ripple_carry_adder, carry_chain, sparse_partial_sum_adder
from repro.hardware.multipliers import array_multiplier, barrel_shifter
from repro.hardware.multiplier_arch import (
    MultiplierDesign,
    array_multiplier_design,
    booth_radix4_multiplier,
    wallace_tree_multiplier,
    multiplier_architecture_table,
)
from repro.hardware.datapath import MACDatapath, ripple_add, sparse_ripple_add
from repro.hardware.mac import MACUnit, mac_unit_for_format, mac_table
from repro.hardware.pe import PEDesign, pe_for_strategy
from repro.hardware.memory import SRAMBuffer, DRAMModel
from repro.hardware.energy import EnergyBreakdown

__all__ = [
    "TechnologyModel",
    "TSMC28_LIKE",
    "GateCounts",
    "ripple_carry_adder",
    "carry_chain",
    "sparse_partial_sum_adder",
    "array_multiplier",
    "barrel_shifter",
    "MultiplierDesign",
    "array_multiplier_design",
    "booth_radix4_multiplier",
    "wallace_tree_multiplier",
    "multiplier_architecture_table",
    "MACDatapath",
    "ripple_add",
    "sparse_ripple_add",
    "MACUnit",
    "mac_unit_for_format",
    "mac_table",
    "PEDesign",
    "pe_for_strategy",
    "SRAMBuffer",
    "DRAMModel",
    "EnergyBreakdown",
]
