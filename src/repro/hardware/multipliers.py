"""Multiplier, shifter and comparator cost models."""

from __future__ import annotations

import math

from repro.hardware.gates import FULL_ADDER, GateCounts, HALF_ADDER

__all__ = ["array_multiplier", "barrel_shifter", "comparator", "exponent_adder", "divider"]


def array_multiplier(bits_a: int, bits_b: int) -> GateCounts:
    """Unsigned array multiplier: one AND per partial-product bit plus an adder array.

    The classic carry-save array uses ``bits_a * bits_b`` AND gates,
    ``(bits_a - 1) * bits_b`` full adders (minus the half adders of the first
    row).  The quadratic growth with mantissa width is what makes the PE area
    comparison of Table III be dominated by the multiplier.
    """
    if bits_a < 1 or bits_b < 1:
        raise ValueError("multiplier operand widths must be >= 1")
    partial_products = GateCounts.of(and2=bits_a * bits_b)
    if bits_a == 1 or bits_b == 1:
        return partial_products
    full_adders = FULL_ADDER * max(0, (bits_a - 2) * bits_b)
    half_adders = HALF_ADDER * bits_b
    return partial_products + full_adders + half_adders


def barrel_shifter(width: int, positions: int) -> GateCounts:
    """Mux-based shifter over ``positions`` distinct shift amounts.

    Each of ``ceil(log2(positions))`` stages needs one 2:1 mux per output bit.
    Used for the flag-controlled shift of the BBFP MAC (Eq. 10) and for the
    mantissa alignment in the FP-to-BBFP encoder.
    """
    if width < 1:
        raise ValueError("shifter width must be >= 1")
    if positions < 1:
        raise ValueError("positions must be >= 1")
    stages = max(1, math.ceil(math.log2(positions))) if positions > 1 else 0
    return GateCounts.of(mux2=width * stages)


def comparator(bits: int) -> GateCounts:
    """Magnitude comparator (used by the max unit and the exponent alignment)."""
    if bits < 1:
        raise ValueError("comparator width must be >= 1")
    return GateCounts.of(xor2=bits, and2=bits, or2=bits)


def exponent_adder(bits: int = 5) -> GateCounts:
    """Small adder for shared-exponent addition (one per block dot product)."""
    return FULL_ADDER * bits


def divider(bits: int) -> GateCounts:
    """Iterative restoring divider (used by the softmax normalisation stage).

    A restoring divider is roughly one subtractor plus a mux per quotient bit.
    """
    if bits < 1:
        raise ValueError("divider width must be >= 1")
    per_stage = FULL_ADDER * bits + GateCounts.of(mux2=bits)
    return per_stage * bits
