"""Technology constants for the analytic 28 nm-class cost model.

All logic area is expressed in *gate equivalents* (GE, the area of one NAND2)
and converted to square microns with the NAND2 area of a 28 nm-class library.
Dynamic energy is charged per gate equivalent toggled, static power per gate
equivalent present; memory energies follow the usual CACTI-style ordering
(register file < SRAM < DRAM, roughly 1 : 10 : 200 per byte).

The absolute values are representative, not foundry data — every result built
on them is reported as a *ratio* between designs costed with the same
constants, mirroring how the paper normalises its figures.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechnologyModel", "TSMC28_LIKE"]


@dataclass(frozen=True)
class TechnologyModel:
    """Process/technology constants used by every hardware cost model."""

    name: str
    nand2_area_um2: float
    clock_frequency_hz: float
    dynamic_energy_per_ge_fj: float
    static_power_per_ge_nw: float
    sram_read_energy_per_byte_pj: float
    sram_write_energy_per_byte_pj: float
    sram_area_per_byte_um2: float
    dram_energy_per_byte_pj: float
    register_energy_per_byte_pj: float

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.clock_frequency_hz

    def logic_area_um2(self, gate_equivalents: float) -> float:
        """Convert gate equivalents to square microns."""
        return gate_equivalents * self.nand2_area_um2

    def dynamic_energy_j(self, gate_equivalents_toggled: float) -> float:
        """Dynamic switching energy in joules for the given toggled GE count."""
        return gate_equivalents_toggled * self.dynamic_energy_per_ge_fj * 1e-15

    def static_energy_j(self, gate_equivalents: float, seconds: float) -> float:
        """Leakage energy in joules of ``gate_equivalents`` over ``seconds``."""
        return gate_equivalents * self.static_power_per_ge_nw * 1e-9 * seconds


#: Representative 28 nm-class constants (the paper's TSMC 28 nm flow).
TSMC28_LIKE = TechnologyModel(
    name="28nm-class",
    nand2_area_um2=0.49,
    clock_frequency_hz=1.0e9,
    dynamic_energy_per_ge_fj=0.8,
    static_power_per_ge_nw=2.0,
    sram_read_energy_per_byte_pj=1.2,
    sram_write_energy_per_byte_pj=1.5,
    sram_area_per_byte_um2=1.6,
    dram_energy_per_byte_pj=160.0,
    register_energy_per_byte_pj=0.15,
)
