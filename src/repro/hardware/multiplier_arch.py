"""Alternative multiplier and adder micro-architectures for the PE ablations.

Table I / Table III cost every PE with a plain carry-save *array* multiplier
(:func:`repro.hardware.multipliers.array_multiplier`), which is what the
paper's PE area comparison implies (all formats use the same multiplier
structure, only its width changes).  A designer porting BBAL to a different
operating point would also consider:

* **Booth radix-4 recoding** — halves the number of partial products, trading
  AND-array area for recoders and selectors; pays off for wide operands,
  costs area for the 3–6-bit mantissas BBFP actually uses.
* **Wallace-tree reduction** — same partial products as the array, but a
  logarithmic-depth compressor tree plus a final carry-propagate adder;
  roughly area-neutral while much shorter in logic depth (higher clock).
* **Carry-save accumulation** — keeps the partial sum in redundant
  (sum, carry) form so each accumulation step is a single full-adder delay;
  more registers, no carry propagation until the final conversion.

Each design is described by a :class:`MultiplierDesign` carrying both the
:class:`~repro.hardware.gates.GateCounts` (area/energy) and an estimate of the
*logic depth* in full-adder delays, so the ablation bench can show the
area–frequency trade-off that the paper's single-architecture tables cannot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.gates import FULL_ADDER, GateCounts, HALF_ADDER
from repro.hardware.multipliers import array_multiplier
from repro.hardware.technology import TSMC28_LIKE, TechnologyModel

__all__ = [
    "MultiplierDesign",
    "array_multiplier_design",
    "booth_radix4_multiplier",
    "wallace_tree_multiplier",
    "carry_save_accumulator",
    "multiplier_architecture_table",
]

#: Logic depth of one full-adder cell, in the same arbitrary unit used by all
#: depth estimates below (one "FA delay").
_FA_DEPTH = 1.0


def _lookahead_cpa(width: int) -> GateCounts:
    """Final carry-propagate adder of the tree/Booth multipliers.

    Modelled as a carry-lookahead structure: full-adder cells plus a
    generate/propagate network of roughly one AND and one OR per bit level.
    The array multiplier keeps its plain ripple carry, which is exactly why
    its depth is linear while these are logarithmic.
    """
    return FULL_ADDER * width + GateCounts.of(and2=width, or2=width)


def _cpa_depth(width: int) -> float:
    """Depth of the lookahead CPA in FA delays (logarithmic in the width)."""
    return _FA_DEPTH * max(1.0, math.log2(max(2, width)))


@dataclass(frozen=True)
class MultiplierDesign:
    """One multiplier micro-architecture: its gates and an estimated logic depth."""

    name: str
    operand_bits: tuple
    gates: GateCounts
    logic_depth_fa: float

    def area_um2(self, technology: TechnologyModel = TSMC28_LIKE) -> float:
        return self.gates.area_um2(technology)

    def gate_equivalents(self) -> float:
        return self.gates.gate_equivalents()

    def max_frequency_ghz(self, fa_delay_ps: float = 45.0) -> float:
        """Rough attainable clock assuming the multiplier is the critical path."""
        if self.logic_depth_fa <= 0:
            return float("inf")
        return 1e3 / (self.logic_depth_fa * fa_delay_ps)

    def area_delay_product(self, technology: TechnologyModel = TSMC28_LIKE,
                           fa_delay_ps: float = 45.0) -> float:
        """Area x delay (µm² x ns) — the figure of merit of the ablation."""
        return self.area_um2(technology) * self.logic_depth_fa * fa_delay_ps * 1e-3


def array_multiplier_design(bits_a: int, bits_b: int) -> MultiplierDesign:
    """The baseline carry-save array (what Table I / III use), with its depth estimate."""
    gates = array_multiplier(bits_a, bits_b)
    # Carry ripples through roughly bits_a + bits_b full-adder stages.
    depth = _FA_DEPTH * max(1, bits_a + bits_b - 2)
    return MultiplierDesign("array", (bits_a, bits_b), gates, depth)


def booth_radix4_multiplier(bits_a: int, bits_b: int) -> MultiplierDesign:
    """Radix-4 Booth multiplier: ``ceil(b/2) + 1`` partial products.

    Each Booth group needs a recoder (the classic 3-input encode is a couple of
    XORs and ANDs) and one selector cell per partial-product bit (a mux plus a
    conditional inversion).  The partial products are then reduced with an
    adder array and a final carry-propagate adder.
    """
    if bits_a < 1 or bits_b < 1:
        raise ValueError("multiplier operand widths must be >= 1")
    groups = bits_b // 2 + 1
    pp_width = bits_a + 1  # sign extension of the +/-2x terms
    recoders = GateCounts.of(xor2=2 * groups, and2=2 * groups, or2=groups)
    selectors = GateCounts.of(mux2=groups * pp_width, xor2=groups * pp_width)
    reduction_rows = max(0, groups - 2)
    reduction = FULL_ADDER * (reduction_rows * pp_width) + HALF_ADDER * pp_width
    final_adder = _lookahead_cpa(bits_a + bits_b)
    gates = recoders + selectors + reduction + final_adder
    depth = _FA_DEPTH * (1 + max(0, groups - 1)) + _cpa_depth(bits_a + bits_b)
    return MultiplierDesign("booth-r4", (bits_a, bits_b), gates, depth)


def wallace_tree_multiplier(bits_a: int, bits_b: int) -> MultiplierDesign:
    """Wallace-tree multiplier: AND array + 3:2 compressor tree + final CPA.

    The compressor tree uses essentially the same number of full adders as the
    array (reducing ``a*b`` partial-product bits to two rows costs about
    ``a*b - 2*(a+b)`` compressors) but its depth is logarithmic in the number
    of partial products instead of linear.
    """
    if bits_a < 1 or bits_b < 1:
        raise ValueError("multiplier operand widths must be >= 1")
    partial_products = GateCounts.of(and2=bits_a * bits_b)
    compressors = FULL_ADDER * max(0, bits_a * bits_b - 2 * (bits_a + bits_b))
    half = HALF_ADDER * (bits_a + bits_b)
    final_adder = _lookahead_cpa(bits_a + bits_b)
    gates = partial_products + compressors + half + final_adder
    # Reduction depth ~ log_1.5 of the partial-product count, plus the CPA.
    rows = max(2, bits_b)
    tree_depth = math.ceil(math.log(rows / 2.0, 1.5)) if rows > 2 else 1
    depth = _FA_DEPTH * tree_depth + _cpa_depth(bits_a + bits_b)
    return MultiplierDesign("wallace", (bits_a, bits_b), gates, depth)


def carry_save_accumulator(bits: int, terms: int) -> GateCounts:
    """Carry-save accumulation of ``terms`` values of ``bits`` width.

    One row of full adders per accumulated term (each step is O(1) in delay),
    plus the final carry-propagate adder converting (sum, carry) back to
    binary.  Used by the MAC ablation as the alternative to the paper's
    sparse ripple adder.
    """
    if bits < 1:
        raise ValueError("adder width must be >= 1")
    if terms < 1:
        raise ValueError("terms must be >= 1")
    per_term = FULL_ADDER * bits
    final = FULL_ADDER * bits
    # Redundant-form partial sums double the accumulator registers; registers
    # are accounted by the PE model, so only adders appear here.
    return per_term * max(1, terms - 1) + final


def multiplier_architecture_table(operand_bits,
                                  technology: TechnologyModel = TSMC28_LIKE) -> list:
    """Compare all three multiplier architectures over a list of operand widths.

    Returns one row per (width, architecture) with area, depth, attainable
    frequency and area-delay product — the data behind the multiplier ablation
    bench.
    """
    rows = []
    for bits in operand_bits:
        designs = (
            array_multiplier_design(bits, bits),
            booth_radix4_multiplier(bits, bits),
            wallace_tree_multiplier(bits, bits),
        )
        for design in designs:
            rows.append(
                {
                    "bits": bits,
                    "architecture": design.name,
                    "area_um2": design.area_um2(technology),
                    "gate_equivalents": design.gate_equivalents(),
                    "logic_depth_fa": design.logic_depth_fa,
                    "max_frequency_ghz": design.max_frequency_ghz(),
                    "area_delay_product": design.area_delay_product(technology),
                }
            )
    return rows
