"""Processing-element (PE) cost models for every quantisation strategy (Table III).

The BBAL PE (Fig. 7) is weight-stationary: it keeps one quantised weight in a
local register, multiplies it with the forwarded input activation every cycle
and accumulates into the forwarded partial sum.  Two PE flavours exist — one
with a shared-exponent adder and one with an exponent bypass — so on average
only a fraction of the PEs carry the 5-bit exponent adder.

Following the paper's own accounting ("the PE area consists of two
components: multiplier and adder, with multiplier occupying the majority"),
the reported PE area covers the arithmetic datapath:

* the mantissa multiplier (quadratic in the mantissa width — the dominant
  term that orders Table III);
* the partial-sum adder, sized for the product width plus accumulation
  headroom; BBFP products are wider (``2m + 2(m-o)``) but the structurally
  zero positions use the cheap carry-chain cells of Fig. 5(b);
* the flag-controlled product shifter and flag decode (BBFP only);
* an amortised share of the shared-exponent adder.

The pipeline registers (weight / forwarded input / partial sum) are modelled
separately — they are needed by the accelerator energy model but excluded
from the Table III area, matching the paper.

The comparison strategies are modelled with the same skeleton:

* **Oltron** — outlier-aware accelerator whose regular path uses 3-bit
  multipliers and low-bit adders, plus a small outlier-index controller.
* **Olive** — outlier-victim pair quantisation: a 4-bit datapath with the
  extra decode/escape logic needed to reconstruct outliers that replaced
  their "victim" neighbours.
* **BFPm / BBFP(m,o)** — the block formats.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.core.integer import IntQuantConfig
from repro.hardware.adders import ripple_carry_adder, sparse_partial_sum_adder
from repro.hardware.gates import GateCounts
from repro.hardware.multipliers import array_multiplier, barrel_shifter, exponent_adder
from repro.hardware.technology import TSMC28_LIKE, TechnologyModel

__all__ = ["PEDesign", "pe_for_strategy", "pe_area_table", "STRATEGY_NAMES",
           "ACCUMULATION_HEADROOM_BITS", "EXPONENT_ADDER_SHARE"]

#: Strategy names accepted by :func:`pe_for_strategy` in addition to format configs.
STRATEGY_NAMES = ("Oltron", "Olive")

#: Extra adder bits beyond the product width, covering the in-array partial-sum
#: accumulation over a 32-element block.
ACCUMULATION_HEADROOM_BITS = 5

#: Fraction of PEs that carry the shared-exponent adder (Fig. 7 PE type 1); the
#: rest bypass the exponent, so the per-PE average is amortised.
EXPONENT_ADDER_SHARE = 0.25


@dataclass(frozen=True)
class PEDesign:
    """Cost summary of one processing element."""

    name: str
    datapath_gates: GateCounts
    register_gates: GateCounts
    multiplier_bits: int

    @property
    def gates(self) -> GateCounts:
        """Datapath plus pipeline registers (used by the energy model)."""
        return self.datapath_gates + self.register_gates

    def gate_equivalents(self, include_registers: bool = False) -> float:
        gates = self.gates if include_registers else self.datapath_gates
        return gates.gate_equivalents()

    def area_um2(self, technology: TechnologyModel = TSMC28_LIKE,
                 include_registers: bool = False) -> float:
        gates = self.gates if include_registers else self.datapath_gates
        return gates.area_um2(technology)

    def energy_per_mac_j(self, technology: TechnologyModel = TSMC28_LIKE,
                         activity: float = 0.5) -> float:
        """Dynamic energy of one multiply-accumulate (registers included)."""
        return self.gates.dynamic_energy_j(technology, activity=activity)

    def static_power_w(self, technology: TechnologyModel = TSMC28_LIKE) -> float:
        return self.gates.static_power_w(technology)

    def macs_per_cycle(self) -> float:
        """Every modelled PE performs one multiply-accumulate per cycle."""
        return 1.0


def _registers(weight_bits: int, accumulator_bits: int) -> GateCounts:
    """Weight register + forwarded-input register + partial-sum register."""
    return GateCounts.of(flipflop=2 * weight_bits + accumulator_bits)


def _make_pe(name, multiplier_bits, datapath, accumulator_bits) -> PEDesign:
    return PEDesign(
        name=name,
        datapath_gates=datapath,
        register_gates=_registers(multiplier_bits + 2, accumulator_bits),
        multiplier_bits=multiplier_bits,
    )


def _bfp_pe(config: BFPConfig) -> PEDesign:
    m = config.mantissa_bits
    adder_bits = 2 * m + ACCUMULATION_HEADROOM_BITS
    datapath = (
        array_multiplier(m, m)
        + ripple_carry_adder(adder_bits)
        + exponent_adder(config.exponent_bits) * EXPONENT_ADDER_SHARE
    )
    return _make_pe(config.name, m, datapath, adder_bits)


def _bbfp_pe(config: BBFPConfig) -> PEDesign:
    m = config.mantissa_bits
    shift = m - config.overlap_bits
    product_bits = 2 * m + 2 * shift
    adder_bits = product_bits + ACCUMULATION_HEADROOM_BITS
    datapath = (
        array_multiplier(m, m)
        + barrel_shifter(width=2 * m, positions=3)  # flag-controlled shift of Eq. 10
        + GateCounts.of(and2=2, xor2=1)  # flag decode + output flag encode
        + sparse_partial_sum_adder(total_bits=adder_bits, chain_bits=2 * shift)
        + exponent_adder(config.exponent_bits) * EXPONENT_ADDER_SHARE
    )
    return _make_pe(config.name, m, datapath, adder_bits)


def _int_pe(config: IntQuantConfig) -> PEDesign:
    bits = config.bits
    adder_bits = 2 * bits + ACCUMULATION_HEADROOM_BITS
    datapath = array_multiplier(bits, bits) + ripple_carry_adder(adder_bits)
    return _make_pe(config.name, bits, datapath, adder_bits)


def _oltron_pe() -> PEDesign:
    """Oltron-style PE: 3-bit regular datapath, low-bit adder, outlier-index control."""
    adder_bits = 2 * 3 + ACCUMULATION_HEADROOM_BITS + 2  # widened for outlier partial sums
    datapath = (
        array_multiplier(3, 3)
        + ripple_carry_adder(adder_bits)
        + GateCounts.of(mux2=4, and2=4)  # outlier index steering
    )
    return _make_pe("Oltron", 3, datapath, adder_bits)


def _olive_pe() -> PEDesign:
    """Olive-style PE: 4-bit datapath plus outlier-victim pair decode and escape path."""
    adder_bits = 2 * 4 + ACCUMULATION_HEADROOM_BITS + 2
    pair_decode = GateCounts.of(mux2=16, and2=8, xor2=4)
    escape_adder = ripple_carry_adder(4)  # widens the product when an outlier is decoded
    datapath = (
        array_multiplier(4, 4)
        + ripple_carry_adder(adder_bits)
        + pair_decode
        + escape_adder
    )
    return _make_pe("Olive", 4, datapath, adder_bits)


def pe_for_strategy(strategy) -> PEDesign:
    """Build the PE for a named baseline (``"Oltron"``/``"Olive"``) or a format config."""
    if isinstance(strategy, str):
        key = strategy.strip().lower()
        if key == "oltron":
            return _oltron_pe()
        if key in ("olive", "oliver"):
            return _olive_pe()
        raise ValueError(f"unknown PE strategy {strategy!r}; known names: {STRATEGY_NAMES}")
    if isinstance(strategy, BBFPConfig):
        return _bbfp_pe(strategy)
    if isinstance(strategy, BFPConfig):
        return _bfp_pe(strategy)
    if isinstance(strategy, IntQuantConfig):
        return _int_pe(strategy)
    raise TypeError(f"unsupported strategy type {type(strategy)!r}")


def pe_area_table(strategies, technology: TechnologyModel = TSMC28_LIKE,
                  normalise_to=None) -> list:
    """Build Table III rows: PE area per strategy, normalised to a reference design.

    ``normalise_to`` defaults to the largest area in the list (the paper
    normalises to BBFP(6,3), which is its largest PE).
    """
    designs = [pe_for_strategy(s) for s in strategies]
    areas = [d.area_um2(technology) for d in designs]
    if normalise_to is None:
        reference = max(areas)
    else:
        reference = pe_for_strategy(normalise_to).area_um2(technology)
    return [
        {
            "strategy": design.name,
            "area_um2": area,
            "normalised_area": area / reference,
            "multiplier_bits": design.multiplier_bits,
        }
        for design, area in zip(designs, areas)
    ]
