"""MAC-unit cost models for every compared number format (Table I).

A MAC (multiply-accumulate) unit consists of the operand multiplier, the
partial-sum adder and — for block formats — the shared-exponent adder and the
flag/shift handling.  The models here reproduce the structure of Section IV-A:

* **FP16**: full floating-point multiply-add (mantissa multiplier, alignment
  and normalisation shifters, wide mantissa adder, rounding/exception
  control), by far the largest unit.
* **INT8**: a plain integer multiplier and accumulator.
* **BFPm**: an m-bit integer multiplier, an accumulator sized for the block
  dot product and one shared-exponent adder — fixed-point efficiency with a
  floating-point-like dynamic range.
* **BBFP(m,o)**: the BFP datapath plus the flag-controlled product shifter of
  Eq. 10 and the sparse partial-sum adder of Fig. 5(b) (full adders where the
  product bits can be non-zero, carry-chain cells where they are structurally
  zero).  The area is slightly larger than BFPm — the price of the extra
  representational range — matching the Table I ordering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.core.floatspec import FP16, FloatSpec
from repro.core.integer import IntQuantConfig
from repro.hardware.adders import ripple_carry_adder, sparse_partial_sum_adder
from repro.hardware.gates import GateCounts
from repro.hardware.multipliers import array_multiplier, barrel_shifter, exponent_adder
from repro.hardware.technology import TSMC28_LIKE, TechnologyModel

__all__ = ["MACUnit", "mac_unit_for_format", "mac_table", "ACCUMULATOR_GUARD_BITS"]

#: Extra accumulator bits beyond the widest single product, covering the block
#: dot-product accumulation without overflow (32-element blocks need 5 bits;
#: one more bit of headroom matches common accelerator practice).
ACCUMULATOR_GUARD_BITS = 6

#: Control, rounding, exception and subnormal handling of an IEEE FP multiply-
#: add, expressed as a multiplier on the datapath gate count.  Block formats
#: avoid this logic entirely, which is the main source of their efficiency.
_FP_CONTROL_OVERHEAD = 1.9


@dataclass(frozen=True)
class MACUnit:
    """Cost summary of one MAC unit (Table I row)."""

    name: str
    gates: GateCounts
    block_size: int
    equivalent_bit_width: float
    multiplier_bits: int

    def area_um2(self, technology: TechnologyModel = TSMC28_LIKE) -> float:
        return self.gates.area_um2(technology)

    def gate_equivalents(self) -> float:
        return self.gates.gate_equivalents()

    def memory_efficiency(self, reference_bits: float = 16.0) -> float:
        return reference_bits / self.equivalent_bit_width

    def energy_per_mac_j(self, technology: TechnologyModel = TSMC28_LIKE,
                         activity: float = 0.5) -> float:
        """Dynamic energy of one multiply-accumulate."""
        return self.gates.dynamic_energy_j(technology, activity=activity)


def _accumulator_width(product_bits: int, block_size: int) -> int:
    return product_bits + max(1, math.ceil(math.log2(max(2, block_size)))) + ACCUMULATOR_GUARD_BITS - 5


def fp16_mac() -> MACUnit:
    """IEEE FP16 multiply with FP32-style accumulation."""
    mantissa = FP16.mantissa_bits + 1  # implicit leading one
    datapath = (
        array_multiplier(mantissa, mantissa)
        + exponent_adder(FP16.exponent_bits)
        + barrel_shifter(width=2 * mantissa + 2, positions=2 ** FP16.exponent_bits)  # align
        + ripple_carry_adder(2 * mantissa + 2)  # mantissa addition
        + barrel_shifter(width=2 * mantissa + 2, positions=2 * mantissa + 2)  # normalise
    )
    gates = datapath * _FP_CONTROL_OVERHEAD
    return MACUnit(
        name="FP16",
        gates=gates,
        block_size=1,
        equivalent_bit_width=16.0,
        multiplier_bits=mantissa,
    )


def int_mac(config: IntQuantConfig) -> MACUnit:
    """Plain integer MAC (INT8 in Table I)."""
    bits = config.bits
    product_bits = 2 * bits
    gates = array_multiplier(bits, bits) + ripple_carry_adder(
        _accumulator_width(product_bits, 32)
    )
    return MACUnit(
        name=config.name,
        gates=gates,
        block_size=1,
        equivalent_bit_width=config.equivalent_bit_width(),
        multiplier_bits=bits,
    )


def bfp_mac(config: BFPConfig) -> MACUnit:
    """Vanilla BFP MAC: integer multiplier + accumulator + shared-exponent adder."""
    m = config.mantissa_bits
    product_bits = 2 * m
    gates = (
        array_multiplier(m, m)
        + ripple_carry_adder(_accumulator_width(product_bits, config.block_size))
        + exponent_adder(config.exponent_bits)
    )
    return MACUnit(
        name=config.name,
        gates=gates,
        block_size=config.block_size,
        equivalent_bit_width=config.equivalent_bit_width(),
        multiplier_bits=m,
    )


def bbfp_mac(config: BBFPConfig) -> MACUnit:
    """BBFP MAC: integer multiplier + flag shifter (Eq. 10) + sparse adder (Fig. 5(b))."""
    m = config.mantissa_bits
    shift = m - config.overlap_bits
    product_bits = 2 * m + 2 * shift  # worst case: both flags set
    # The flag-controlled shifter selects between 0, `shift` and `2*shift`.
    flag_shifter = barrel_shifter(width=2 * m, positions=3)
    flag_logic = GateCounts.of(and2=2, xor2=1)  # Eq. 10 flag decode + output flag encode
    adder = sparse_partial_sum_adder(
        total_bits=_accumulator_width(product_bits, config.block_size),
        chain_bits=2 * shift,
    )
    gates = (
        array_multiplier(m, m)
        + flag_shifter
        + flag_logic
        + adder
        + exponent_adder(config.exponent_bits)
    )
    return MACUnit(
        name=config.name,
        gates=gates,
        block_size=config.block_size,
        equivalent_bit_width=config.equivalent_bit_width(),
        multiplier_bits=m,
    )


def mac_unit_for_format(config) -> MACUnit:
    """Dispatch a format config (FloatSpec / IntQuantConfig / BFPConfig / BBFPConfig) to its MAC model."""
    if isinstance(config, BBFPConfig):
        return bbfp_mac(config)
    if isinstance(config, BFPConfig):
        return bfp_mac(config)
    if isinstance(config, IntQuantConfig):
        return int_mac(config)
    if isinstance(config, FloatSpec):
        if config.name != "FP16":
            raise ValueError(f"only the FP16 MAC baseline is modelled, got {config.name}")
        return fp16_mac()
    raise TypeError(f"unsupported format config {type(config)!r}")


def mac_table(configs, technology: TechnologyModel = TSMC28_LIKE) -> list:
    """Build Table I rows: datatype, block size, area, equivalent bit-width, memory efficiency."""
    rows = []
    for config in configs:
        unit = mac_unit_for_format(config)
        rows.append(
            {
                "datatype": unit.name,
                "block_size": unit.block_size,
                "area_um2": unit.area_um2(technology),
                "gate_equivalents": unit.gate_equivalents(),
                "equivalent_bit_width": unit.equivalent_bit_width,
                "memory_efficiency": unit.memory_efficiency(),
            }
        )
    return rows
