"""On-chip SRAM buffers and external DRAM (CACTI-style analytic model).

The paper uses CACTI for the on-chip input/weight/output buffers and counts
DRAM traffic for the energy breakdown of Fig. 9.  This model captures the two
properties that matter for those comparisons:

* energy per byte grows slowly with buffer capacity (bitline/wordline length),
  modelled as a square-root capacity factor on a 28 nm-class base energy;
* DRAM access energy is two orders of magnitude above SRAM, so formats with a
  smaller memory footprint (fewer bits per element) directly save DRAM energy
  — the reason BBFP's extra flag bit shows up in the Fig. 9 DRAM component.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.technology import TSMC28_LIKE, TechnologyModel

__all__ = ["SRAMBuffer", "DRAMModel"]

_REFERENCE_SRAM_BYTES = 32 * 1024  # energy constants are quoted for a 32 KiB macro


@dataclass(frozen=True)
class SRAMBuffer:
    """A single on-chip SRAM buffer (input, weight or output buffer)."""

    name: str
    capacity_bytes: int
    technology: TechnologyModel = TSMC28_LIKE

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")

    @property
    def _capacity_factor(self) -> float:
        return max(0.25, (self.capacity_bytes / _REFERENCE_SRAM_BYTES) ** 0.5)

    def area_um2(self) -> float:
        return self.capacity_bytes * self.technology.sram_area_per_byte_um2

    def read_energy_j(self, num_bytes: float) -> float:
        return num_bytes * self.technology.sram_read_energy_per_byte_pj * 1e-12 * self._capacity_factor

    def write_energy_j(self, num_bytes: float) -> float:
        return num_bytes * self.technology.sram_write_energy_per_byte_pj * 1e-12 * self._capacity_factor

    def leakage_power_w(self) -> float:
        # SRAM leakage scales with capacity; ~25% of the equivalent logic leakage per area.
        gate_equivalents = self.area_um2() / self.technology.nand2_area_um2
        return 0.25 * gate_equivalents * self.technology.static_power_per_ge_nw * 1e-9


@dataclass(frozen=True)
class DRAMModel:
    """External memory access energy (no timing model — bandwidth is assumed sufficient)."""

    technology: TechnologyModel = TSMC28_LIKE

    def access_energy_j(self, num_bytes: float) -> float:
        return num_bytes * self.technology.dram_energy_per_byte_pj * 1e-12
