"""Energy accounting: the static / DRAM / buffer / core breakdown of Fig. 9."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one workload execution split into the paper's four components (joules)."""

    static_j: float
    dram_j: float
    buffer_j: float
    core_j: float

    @property
    def total_j(self) -> float:
        return self.static_j + self.dram_j + self.buffer_j + self.core_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            static_j=self.static_j + other.static_j,
            dram_j=self.dram_j + other.dram_j,
            buffer_j=self.buffer_j + other.buffer_j,
            core_j=self.core_j + other.core_j,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            static_j=self.static_j * factor,
            dram_j=self.dram_j * factor,
            buffer_j=self.buffer_j * factor,
            core_j=self.core_j * factor,
        )

    def normalised_to(self, reference: "EnergyBreakdown") -> dict:
        """Components divided by the reference design's *total* (Fig. 9 style)."""
        ref_total = reference.total_j
        if ref_total <= 0:
            raise ValueError("reference total energy must be positive")
        return {
            "static": self.static_j / ref_total,
            "dram": self.dram_j / ref_total,
            "buffer": self.buffer_j / ref_total,
            "core": self.core_j / ref_total,
            "total": self.total_j / ref_total,
        }

    def as_dict(self) -> dict:
        return {
            "static_j": self.static_j,
            "dram_j": self.dram_j,
            "buffer_j": self.buffer_j,
            "core_j": self.core_j,
            "total_j": self.total_j,
        }
