"""Ablation studies for the design choices called out in DESIGN.md.

These go beyond the paper's own tables: they isolate individual design
decisions so their contribution can be quantified.

* ``carry_chain_ablation`` — sparse partial-sum adder (Fig. 5(b)) vs a plain
  ripple adder of the full product width, across BBFP configurations.
* ``block_size_ablation`` — quantisation error and memory efficiency as the
  block size varies (the paper fixes 32).
* ``lut_address_ablation`` — nonlinear LUT address width vs softmax accuracy
  and table storage (the paper fixes 7 bits).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.core.bbfp import BBFPConfig, bbfp_quantize_dequantize
from repro.core.blockfp import BFPConfig, bfp_quantize_dequantize
from repro.hardware.adders import adder_savings_ratio, ripple_carry_adder, sparse_partial_sum_adder
from repro.llm.activations import softmax
from repro.nonlinear.lut import LUTNonlinear

__all__ = ["carry_chain_ablation", "block_size_ablation", "lut_address_ablation"]


def carry_chain_ablation(configs=None, fast=None) -> ExperimentResult:
    """Adder area with and without the carry-chain optimisation, per BBFP config."""
    configs = configs or (BBFPConfig(3, 1), BBFPConfig(4, 2), BBFPConfig(6, 3), BBFPConfig(8, 4))
    rows = []
    for config in configs:
        shift = config.mantissa_bits - config.overlap_bits
        total_bits = 2 * config.mantissa_bits + 2 * shift + 5
        chain_bits = 2 * shift
        full = ripple_carry_adder(total_bits).gate_equivalents()
        sparse = sparse_partial_sum_adder(total_bits, chain_bits).gate_equivalents()
        rows.append(
            {
                "format": config.name,
                "adder_bits": total_bits,
                "carry_chain_bits": chain_bits,
                "full_adder_ge": full,
                "sparse_adder_ge": sparse,
                "savings": adder_savings_ratio(total_bits, chain_bits),
            }
        )
    return ExperimentResult(
        experiment_id="Ablation-CarryChain",
        title="Carry-chain sparse adder vs full-width ripple adder",
        rows=rows,
        notes=(
            "The savings grow as the flag-controlled shift (m - o) grows, matching the paper's "
            "~15% figure for the BBFP(4,2) 12-bit adder and its remark that the optimisation "
            "strengthens with wider mantissas / fewer overlap bits."
        ),
    )


def block_size_ablation(block_sizes=(8, 16, 32, 64, 128), mantissa_bits: int = 4,
                        overlap_bits: int = 2, seed: int = 0, fast=None) -> ExperimentResult:
    """Quantisation MSE and equivalent bit-width as the block size varies."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(8192)
    x[::64] *= 25.0  # sprinkle outliers so the block size actually matters
    denom = float(np.mean(x**2))

    rows = []
    for block_size in block_sizes:
        bbfp = BBFPConfig(mantissa_bits, overlap_bits, block_size=block_size)
        bfp = BFPConfig(mantissa_bits, block_size=block_size)
        rows.append(
            {
                "block_size": block_size,
                "bbfp_relative_mse": float(np.mean((x - bbfp_quantize_dequantize(x, bbfp)) ** 2)) / denom,
                "bfp_relative_mse": float(np.mean((x - bfp_quantize_dequantize(x, bfp)) ** 2)) / denom,
                "bbfp_equivalent_bits": bbfp.equivalent_bit_width(),
                "bfp_equivalent_bits": bfp.equivalent_bit_width(),
            }
        )
    return ExperimentResult(
        experiment_id="Ablation-BlockSize",
        title="Block size vs quantisation error and storage",
        rows=rows,
        notes=(
            "Smaller blocks reduce error (fewer elements share an exponent) but amortise the "
            "shared exponent over fewer elements; BBFP stays below BFP at every block size."
        ),
    )


def lut_address_ablation(address_bits=(4, 5, 6, 7, 8, 9), seed: int = 0, fast=None) -> ExperimentResult:
    """Nonlinear LUT address width vs softmax fidelity and sub-table storage."""
    rng = np.random.default_rng(seed)
    scores = rng.normal(0.0, 4.0, size=(64, 128))
    reference = softmax(scores, axis=-1)

    rows = []
    for bits in address_bits:
        lut = LUTNonlinear(BBFPConfig(10, 5), address_bits=bits)
        approx = lut.softmax(scores, axis=-1)
        error = float(np.mean(np.abs(approx - reference)))
        kl = float(np.mean(np.sum(reference * (np.log(reference + 1e-12) - np.log(approx + 1e-12)),
                                  axis=-1)))
        rows.append(
            {
                "address_bits": bits,
                "entries_per_subtable": 1 << bits,
                "mean_abs_error": error,
                "mean_kl_divergence": kl,
                "subtable_bits": (1 << bits) * 16,
            }
        )
    return ExperimentResult(
        experiment_id="Ablation-LUTAddress",
        title="LUT address width vs softmax fidelity",
        rows=rows,
        notes=(
            "Fidelity improves monotonically with the address width while storage doubles per "
            "bit; 7 bits (the paper's choice) is where the KL divergence stops improving "
            "meaningfully relative to the storage cost."
        ),
    )
