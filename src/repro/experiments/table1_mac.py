"""Table I: MAC-unit area and memory efficiency across number formats."""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.core.floatspec import FP16
from repro.core.integer import IntQuantConfig
from repro.hardware.mac import mac_table

__all__ = ["run", "TABLE1_FORMATS"]

#: The formats listed in Table I, in the paper's row order.
TABLE1_FORMATS = (
    FP16,
    IntQuantConfig(8),
    BFPConfig(8),
    BFPConfig(6),
    BBFPConfig(8, 4),
    BBFPConfig(6, 3),
)


def run(fast=None) -> ExperimentResult:
    """Regenerate Table I from the gate-level MAC cost model.

    The expected shape: FP16 is several times larger than every block format;
    BFP8 costs about the same as INT8 while keeping a floating-point-like
    range; BBFP is slightly larger than BFP at equal mantissa width (the flag
    shifter and the wider sparse adder) and its memory efficiency is slightly
    lower (the extra flag bit); BBFP(6,3) still beats BFP8 on both area and
    memory footprint while representing a wider mantissa range.
    """
    rows = mac_table(TABLE1_FORMATS)
    reference = rows[0]["area_um2"]
    for row in rows:
        row["area_vs_fp16"] = row["area_um2"] / reference
    return ExperimentResult(
        experiment_id="Table1",
        title="MAC unit area and memory efficiency per data type",
        rows=rows,
        notes=(
            "Equivalent bit-width and memory efficiency match the paper analytically "
            "(e.g. BBFP(6,3) = 8.16 bits, 1.96x); areas come from the shared gate-level "
            "model, so compare the ratios rather than absolute square microns."
        ),
    )
