"""Table II: perplexity of linear-layer weight-activation quantisation, 12 models x 11 schemes."""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.baselines import build_olive_scheme, build_oltron_scheme, build_omniquant_scheme
from repro.experiments.common import TABLE2_LINEAR_FORMATS, eval_config, is_fast_mode, table2_model_specs
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.zoo import default_corpus, load_inference_model

__all__ = ["run", "evaluate_model_row"]


def evaluate_model_row(spec, corpus, evaluation) -> dict:
    """Evaluate one zoo model under every Table II scheme; returns the table row."""
    model = load_inference_model(spec, corpus=corpus)
    row = {"model": spec.paper_name}

    schemes = [QuantizationScheme.fp16()]
    schemes.append(build_oltron_scheme())
    schemes.append(build_olive_scheme())
    schemes.append(build_omniquant_scheme(model, corpus))
    schemes.extend(QuantizationScheme.from_format(fmt) for fmt in TABLE2_LINEAR_FORMATS)

    for scheme in schemes:
        model.set_scheme(scheme)
        row[scheme.name] = evaluate_perplexity(model, corpus, evaluation)
    model.set_scheme(QuantizationScheme.fp_reference())
    return row


def run(fast=None, model_specs=None) -> ExperimentResult:
    """Regenerate Table II over the simulated Llama/OPT zoo.

    The absolute perplexities belong to the miniature zoo models, not to the
    billion-parameter checkpoints; the comparisons that carry over are the
    per-model orderings: BBFP(m,o) <= BFP(m); BBFP(6,x) ~ FP16; BBFP(4,2)
    close to BFP6; the outlier-aware baselines (Oltron, Olive) degrading much
    more on the Llama-like family (more outliers) than on the OPT-like one.
    """
    corpus = default_corpus()
    evaluation = eval_config(fast)
    specs = model_specs if model_specs is not None else table2_model_specs(fast)
    rows = [evaluate_model_row(spec, corpus, evaluation) for spec in specs]

    # Per-scheme averages across the two families (used by Fig. 8).
    scheme_names = [k for k in rows[0] if k != "model"]
    averages = {"model": "Average"}
    for name in scheme_names:
        averages[name] = sum(r[name] for r in rows) / len(rows)
    rows.append(averages)

    return ExperimentResult(
        experiment_id="Table2",
        title="Perplexity of quantised models (linear layers, weight + activation)",
        rows=rows,
        notes=(
            "Lower is better. Compare orderings within each row: BBFP at a given mantissa "
            "width should match or beat the BFP of the same width, BBFP(6,x) should sit at "
            "the FP16 level, and Oltron/Olive should degrade most on the Llama-like models."
        ),
        metadata={"fast_mode": is_fast_mode(fast), "models": [s.paper_name for s in specs]},
    )
