"""Table III: PE area per quantisation strategy, normalised to BBFP(6,3)."""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.core.bbfp import BBFPConfig
from repro.experiments.common import FIG8_STRATEGIES
from repro.hardware.pe import pe_area_table

__all__ = ["run", "PAPER_TABLE3_NORMALISED"]

#: The paper's normalised Table III values, keyed by strategy label (for side-by-side output).
PAPER_TABLE3_NORMALISED = {
    "Oltron": 0.33,
    "Olive": 0.65,
    "BFP4": 0.46,
    "BFP6": 0.90,
    "BBFP(3,1)": 0.32,
    "BBFP(3,2)": 0.31,
    "BBFP(4,2)": 0.49,
    "BBFP(4,3)": 0.47,
    "BBFP(6,3)": 1.00,
    "BBFP(6,4)": 0.96,
    "BBFP(6,5)": 0.93,
}


def run(fast=None) -> ExperimentResult:
    """Regenerate Table III and put the paper's normalised numbers alongside."""
    rows = pe_area_table(FIG8_STRATEGIES, normalise_to=BBFPConfig(6, 3))
    for row in rows:
        row["paper_normalised"] = PAPER_TABLE3_NORMALISED.get(row["strategy"])
    return ExperimentResult(
        experiment_id="Table3",
        title="PE area across quantisation strategies (normalised to BBFP(6,3))",
        rows=rows,
        notes=(
            "The multiplier width dominates, so 3-bit designs (Oltron, BBFP(3,x)) are the "
            "smallest, BFP6/BBFP(6,x) the largest, and BBFP sits a few percent above BFP at "
            "equal mantissa width — the same ordering as the paper."
        ),
    )
