"""Fig. 9: normalised energy breakdown (static / DRAM / buffer / core) per strategy."""

from __future__ import annotations

from repro.accelerator import AcceleratorConfig, AcceleratorSimulator, decoder_workload
from repro.analysis.reporting import ExperimentResult
from repro.experiments.common import FIG8_STRATEGIES, is_fast_mode
from repro.experiments.fig1_runtime import LLAMA_7B_DIMENSIONS

__all__ = ["run"]


def run(fast=None, seq_len: int = 512, strategies=FIG8_STRATEGIES) -> ExperimentResult:
    """Regenerate Fig. 9: energy of one Llama-7B prefill pass per strategy.

    All strategies use the same PE count and buffer sizes (the paper's
    iso-resource condition), so the differences come from the PE datapath
    energy (core), the storage footprint of the format (DRAM, buffer) and the
    area-dependent leakage (static).  Everything is normalised to the largest
    total (BBFP(6,3) in the paper).
    """
    if is_fast_mode(fast):
        seq_len = min(seq_len, 256)
    workload = decoder_workload(LLAMA_7B_DIMENSIONS, seq_len, phase="prefill")

    reports = []
    for strategy in strategies:
        config = AcceleratorConfig(strategy=strategy, pe_rows=32, pe_cols=32)
        report = AcceleratorSimulator(config, nonlinear_style="bbal").run(workload)
        reports.append(report)

    reference = max(reports, key=lambda r: r.energy.total_j)
    rows = []
    for report in reports:
        normalised = report.energy.normalised_to(reference.energy)
        rows.append(
            {
                "strategy": report.config_name,
                "static": normalised["static"],
                "dram": normalised["dram"],
                "buffer": normalised["buffer"],
                "core": normalised["core"],
                "total": normalised["total"],
                "total_mj": report.energy.total_j * 1e3,
            }
        )

    return ExperimentResult(
        experiment_id="Fig9",
        title="Normalised energy breakdown under identical PE count and buffer size",
        rows=rows,
        notes=(
            "Lower-bit formats save core and DRAM energy; BBFP costs a few percent more than "
            "BFP at equal mantissa width (wider datapath + the extra flag bit in DRAM), and "
            "BBFP with a 3-bit mantissa undercuts BFP4 — the same ordering as the paper."
        ),
        metadata={"seq_len": seq_len, "workload": workload.name},
    )
