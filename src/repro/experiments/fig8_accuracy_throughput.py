"""Fig. 8: accuracy (average Llama / OPT perplexity) vs throughput at equal PE area."""

from __future__ import annotations

from repro.accelerator.metrics import iso_area_design_points
from repro.analysis.reporting import ExperimentResult
from repro.baselines import build_olive_scheme, build_oltron_scheme
from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.experiments.common import FIG8_STRATEGIES, eval_config, fig8_model_specs, is_fast_mode
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.zoo import default_corpus, load_inference_model

__all__ = ["run"]


def _scheme_for_strategy(strategy) -> QuantizationScheme:
    if isinstance(strategy, str):
        key = strategy.lower()
        if key == "oltron":
            return build_oltron_scheme()
        if key in ("olive", "oliver"):
            return build_olive_scheme()
        raise ValueError(f"unknown strategy {strategy!r}")
    return QuantizationScheme.from_format(strategy)


def _family_average_ppl(strategies, specs, corpus, evaluation) -> dict:
    """Average perplexity of each strategy over a model family."""
    totals = {}
    for spec in specs:
        model = load_inference_model(spec, corpus=corpus)
        for strategy in strategies:
            scheme = _scheme_for_strategy(strategy)
            model.set_scheme(scheme)
            ppl = evaluate_perplexity(model, corpus, evaluation)
            totals.setdefault(scheme.name, []).append(ppl)
        model.set_scheme(QuantizationScheme.fp_reference())
    return {name: sum(values) / len(values) for name, values in totals.items()}


def run(fast=None, strategies=FIG8_STRATEGIES) -> ExperimentResult:
    """Regenerate Fig. 8: per-strategy relative throughput (iso-area) and average PPL.

    Hardware half: strategies with smaller PEs fit more PEs in the shared area
    budget and gain peak throughput.  Accuracy half: the average perplexity of
    each strategy over the Llama-like and OPT-like families.  The headline
    comparisons are BBFP(3,x) vs Oltron (same 3-bit multipliers, similar
    throughput, better accuracy) and BBFP(3,x) vs BFP4 (similar accuracy,
    higher throughput).
    """
    corpus = default_corpus()
    evaluation = eval_config(fast)
    specs = fig8_model_specs(fast)
    llama_specs = tuple(s for s in specs if s.family == "llama")
    opt_specs = tuple(s for s in specs if s.family == "opt")

    points = {p.strategy_name: p for p in iso_area_design_points(strategies)}
    llama_ppl = _family_average_ppl(strategies, llama_specs, corpus, evaluation)
    opt_ppl = _family_average_ppl(strategies, opt_specs, corpus, evaluation)

    rows = []
    for strategy in strategies:
        scheme_name = _scheme_for_strategy(strategy).name
        point_name = scheme_name if scheme_name in points else str(strategy)
        point = points.get(point_name)
        if point is None:
            # PE designs name Oltron/Olive by their plain strategy names.
            point = points[[k for k in points if k.lower().startswith(scheme_name.lower()[:5])][0]]
        rows.append(
            {
                "strategy": scheme_name,
                "relative_throughput": point.relative_throughput,
                "num_pes": point.num_pes,
                "avg_llama_ppl": llama_ppl[scheme_name],
                "avg_opt_ppl": opt_ppl[scheme_name],
            }
        )

    return ExperimentResult(
        experiment_id="Fig8",
        title="Quantisation strategies at equal PE area: throughput vs average perplexity",
        rows=rows,
        notes=(
            "Relative throughput is peak MACs/cycle under the shared area budget (higher is "
            "better); perplexities are family averages (lower is better).  BBFP(3,x) should "
            "match Oltron's throughput with markedly lower Llama perplexity, and should beat "
            "BFP4's throughput at comparable accuracy."
        ),
        metadata={"fast_mode": is_fast_mode(fast)},
    )
