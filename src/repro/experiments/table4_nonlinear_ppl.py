"""Table IV: perplexity impact of running the nonlinear layers on the BBFP LUT unit."""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.experiments.common import eval_config, is_fast_mode, table4_model_specs
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.zoo import default_corpus, load_inference_model
from repro.nonlinear.lut import lut_function, lut_softmax

__all__ = ["run", "nonlinear_schemes"]


def nonlinear_schemes(data_format, label: str) -> dict:
    """The three Table IV rows for one format: softmax-only, SiLU-only, altogether."""
    softmax_fn = lut_softmax(data_format)
    nonlinear_fn = lut_function(data_format)
    base = QuantizationScheme.fp_reference()
    return {
        f"{label} / Softmax only": base.with_nonlinear(softmax_fn=softmax_fn),
        f"{label} / SILU only": base.with_nonlinear(nonlinear_fn=nonlinear_fn),
        f"{label} / Altogether": base.with_nonlinear(softmax_fn=softmax_fn,
                                                     nonlinear_fn=nonlinear_fn),
    }


def run(fast=None, address_bits: int = 7) -> ExperimentResult:
    """Regenerate Table IV on the Llama-style zoo models.

    Expected shape: BBFP(10,5) stays within a small perplexity delta of the
    FP32 nonlinear baseline for every configuration, while BFP10 — whose
    max-aligned mantissa loses the resolution of moderate inputs before the
    LUT lookup — degrades visibly (catastrophically so on the paper's
    billion-parameter models; the miniature zoo shows the same ordering with
    a smaller magnitude, see EXPERIMENTS.md).
    """
    corpus = default_corpus()
    evaluation = eval_config(fast)
    specs = table4_model_specs(fast)

    schemes = {"FP32 / Altogether": QuantizationScheme.fp_reference()}
    schemes.update(nonlinear_schemes(BBFPConfig(10, 5), "BBFP(10,5)"))
    schemes.update(nonlinear_schemes(BFPConfig(10), "BFP10"))

    rows = []
    for scheme_label, scheme in schemes.items():
        data_format, _, operation = scheme_label.partition(" / ")
        row = {"data_format": data_format, "nonlinear_operation": operation}
        for spec in specs:
            model = load_inference_model(spec, corpus=corpus, scheme=scheme)
            row[spec.paper_name] = evaluate_perplexity(model, corpus, evaluation)
        rows.append(row)

    return ExperimentResult(
        experiment_id="Table4",
        title="Perplexity with nonlinear layers computed by the segmented-LUT unit",
        rows=rows,
        notes=(
            "BBFP(10,5) should track the FP32 row closely; BFP10 should be strictly worse "
            "for every model and operation, because max-exponent alignment starves the LUT "
            "address of resolution for moderate inputs."
        ),
        metadata={"fast_mode": is_fast_mode(fast), "address_bits": address_bits},
    )
