"""Fig. 1(a): weight and activation distribution of an OPT-style model."""

from __future__ import annotations

from repro.analysis.distributions import distribution_histograms, model_tensor_stats
from repro.analysis.reporting import ExperimentResult
from repro.llm.zoo import default_corpus, load_inference_model

__all__ = ["run"]


def run(model_name: str = "OPT-6.7B", fast=None) -> ExperimentResult:
    """Regenerate the Fig. 1(a) statistics (outlier magnitude/ratio, histograms).

    The paper's annotations — weights with ~10x average outliers, activations
    with up to ~100x extreme values that integer formats cannot capture — are
    reproduced here as the ``outlier_magnitude`` column (extreme quantile over
    mean absolute value).
    """
    corpus = default_corpus()
    model = load_inference_model(model_name, corpus=corpus)
    stats = model_tensor_stats(model, corpus)
    histograms = distribution_histograms(model, corpus)

    rows = [stats["weight"].as_dict(), stats["activation"].as_dict()]
    metadata = {
        "model": model_name,
        "weight_histogram_counts": histograms["weight"]["counts"].tolist(),
        "weight_histogram_edges": histograms["weight"]["bin_edges"].tolist(),
        "activation_histogram_counts": histograms["activation"]["counts"].tolist(),
        "activation_histogram_edges": histograms["activation"]["bin_edges"].tolist(),
    }
    return ExperimentResult(
        experiment_id="Fig1a",
        title="Weight and activation distribution (outlier analysis)",
        rows=rows,
        notes=(
            "Activations should show a much larger outlier_magnitude and kurtosis than "
            "weights, mirroring the paper's observation that activations contain rare "
            "extreme outliers while weights are well concentrated."
        ),
        metadata=metadata,
    )
