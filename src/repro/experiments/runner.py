"""Regenerate every table and figure of the paper in one run.

Usage::

    python -m repro.experiments.runner                # full run, writes results/
    python -m repro.experiments.runner --fast --jobs 4
    python -m repro.experiments.runner --list         # catalog with descriptions

Execution is delegated to :mod:`repro.pipeline`: independent experiments run
concurrently (``--jobs``), model-zoo training is a shared upstream stage,
results are served from a content-addressed cache when neither the code nor
the configuration changed (``--no-cache`` opts out), and an interrupted run
can be continued with ``--resume`` thanks to the JSON run manifest written
alongside the results.  :func:`run_all` remains as the serial, uncached
compatibility entry point.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ablations,
    extensions,
    fig1_distribution,
    fig1_runtime,
    fig3_shared_exponent,
    fig4_overlap,
    fig8_accuracy_throughput,
    fig9_energy,
    table1_mac,
    table2_linear_ppl,
    table3_pe_area,
    table4_nonlinear_ppl,
    table5_nonlinear_eff,
)
from repro.cluster import bench as cluster_bench_driver
# imported by submodule path: the package re-exports the chaos_bench
# *function*, which shadows the module attribute of the same name
from repro.cluster.chaos_bench import run as chaos_bench_run
from repro.gateway import bench as gateway_bench_driver
from repro.serve import bench as serve_bench_driver

__all__ = ["EXPERIMENTS", "experiment_descriptions", "run_all", "print_catalog", "main"]

#: Ordered registry of every experiment driver.
EXPERIMENTS = {
    "fig1a": fig1_distribution.run,
    "fig1b": fig1_runtime.run,
    "fig3": fig3_shared_exponent.run,
    "fig4": fig4_overlap.run,
    "table1": table1_mac.run,
    "table2": table2_linear_ppl.run,
    "table3": table3_pe_area.run,
    "table4": table4_nonlinear_ppl.run,
    "table5": table5_nonlinear_eff.run,
    "fig8": fig8_accuracy_throughput.run,
    "fig9": fig9_energy.run,
    "ablation_carry_chain": ablations.carry_chain_ablation,
    "ablation_block_size": ablations.block_size_ablation,
    "ablation_lut_address": ablations.lut_address_ablation,
    "ext_rounding": extensions.rounding_mode_ablation,
    "ext_multiplier": extensions.multiplier_architecture_ablation,
    "ext_format_family": extensions.format_family_ablation,
    "ext_format_ppl": extensions.extended_format_ppl,
    "ext_roofline": extensions.roofline_extension,
    "ext_dataflow": extensions.dataflow_extension,
    "ext_generation": extensions.generation_latency_extension,
    "ext_mixed_precision": extensions.mixed_precision_extension,
    "serve_bench": serve_bench_driver.run,
    "cluster_bench": cluster_bench_driver.run,
    "chaos_bench": chaos_bench_run,
    "gateway_bench": gateway_bench_driver.run,
}


def experiment_descriptions() -> dict:
    """``{name: one-line description}`` pulled from each driver's docstring."""
    descriptions = {}
    for name, fn in EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip()
        descriptions[name] = doc.splitlines()[0].rstrip(".") if doc else ""
    return descriptions


def run_all(names=None, fast=None, output_dir="results", verbose: bool = True) -> dict:
    """Run the selected experiments (all by default); returns ``{name: ExperimentResult}``.

    Compatibility shim over :func:`repro.pipeline.run_experiments`: serial
    (one in-process worker) and cache disabled, so every driver executes,
    in registry order, like the historical ``for`` loop.  One behavioural
    difference: a failing driver no longer aborts the run mid-way — the
    remaining experiments still execute and a
    :class:`~repro.pipeline.PipelineError` (chained from the first driver
    exception) is raised at the end.  Use the pipeline (or ``repro run``)
    for parallelism, caching and resumable manifests.
    """
    from repro.pipeline import run_experiments

    return run_experiments(names, fast=fast, output_dir=output_dir, jobs=1,
                           use_cache=False, verbose=verbose)


def print_catalog(stream=None) -> None:
    """Print every experiment name with its one-line description."""
    stream = stream or sys.stdout
    descriptions = experiment_descriptions()
    width = max(len(name) for name in descriptions)
    for name, description in descriptions.items():
        print(f"{name:<{width}}  {description}", file=stream)


def main(argv=None) -> int:
    from repro.pipeline.cli import add_run_arguments, run_from_args

    parser = argparse.ArgumentParser(description=__doc__)
    add_run_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
