"""Regenerate every table and figure of the paper in one run.

Usage::

    python -m repro.experiments.runner            # full run, writes results/
    REPRO_FAST=1 python -m repro.experiments.runner --fast

The first invocation trains the model zoo (cached under ``.cache/models``);
subsequent runs reuse the cache and complete in a few minutes.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.analysis.reporting import ExperimentResult, save_result
from repro.experiments import (
    ablations,
    extensions,
    fig1_distribution,
    fig1_runtime,
    fig3_shared_exponent,
    fig4_overlap,
    fig8_accuracy_throughput,
    fig9_energy,
    table1_mac,
    table2_linear_ppl,
    table3_pe_area,
    table4_nonlinear_ppl,
    table5_nonlinear_eff,
)

__all__ = ["EXPERIMENTS", "run_all", "main"]

#: Ordered registry of every experiment driver.
EXPERIMENTS = {
    "fig1a": fig1_distribution.run,
    "fig1b": fig1_runtime.run,
    "fig3": fig3_shared_exponent.run,
    "fig4": fig4_overlap.run,
    "table1": table1_mac.run,
    "table2": table2_linear_ppl.run,
    "table3": table3_pe_area.run,
    "table4": table4_nonlinear_ppl.run,
    "table5": table5_nonlinear_eff.run,
    "fig8": fig8_accuracy_throughput.run,
    "fig9": fig9_energy.run,
    "ablation_carry_chain": ablations.carry_chain_ablation,
    "ablation_block_size": ablations.block_size_ablation,
    "ablation_lut_address": ablations.lut_address_ablation,
    "ext_rounding": extensions.rounding_mode_ablation,
    "ext_multiplier": extensions.multiplier_architecture_ablation,
    "ext_format_family": extensions.format_family_ablation,
    "ext_format_ppl": extensions.extended_format_ppl,
    "ext_roofline": extensions.roofline_extension,
    "ext_dataflow": extensions.dataflow_extension,
    "ext_generation": extensions.generation_latency_extension,
    "ext_mixed_precision": extensions.mixed_precision_extension,
}


def run_all(names=None, fast=None, output_dir="results", verbose: bool = True) -> dict:
    """Run the selected experiments (all by default); returns ``{name: ExperimentResult}``."""
    names = list(names) if names else list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; known: {sorted(EXPERIMENTS)}")

    results = {}
    for name in names:
        start = time.time()
        result: ExperimentResult = EXPERIMENTS[name](fast=fast)
        results[name] = result
        if output_dir is not None:
            save_result(result, Path(output_dir))
        if verbose:
            print(result.to_text())
            print(f"[{name}] completed in {time.time() - start:.1f}s\n")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="subset of experiments to run (default: all)")
    parser.add_argument("--fast", action="store_true", help="small models / fewer eval batches")
    parser.add_argument("--output-dir", default="results", help="directory for JSON/text results")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    run_all(args.experiments or None, fast=args.fast or None, output_dir=args.output_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
