"""Fig. 4: overlap-bit-width selection for BBFP with a 6-bit mantissa (Algorithm 1)."""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.core.overlap_search import select_overlap_width
from repro.experiments.common import eval_config, is_fast_mode
from repro.hardware.pe import pe_for_strategy
from repro.llm.inference import QuantizationScheme
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.zoo import default_corpus, load_inference_model

__all__ = ["run"]


def run(model_name: str = "Llama-7B", mantissa_bits: int = 6, overhead_weight: float = 0.5,
        fast=None) -> ExperimentResult:
    """Regenerate Fig. 4: PPL and hardware overhead for every overlap width of BBFP(m, o).

    The PPL evaluator quantises the zoo model's linear layers with each
    candidate BBFP(m, o); the overhead evaluator is the PE datapath area of
    that configuration.  Algorithm 1 then normalises both and picks the
    overlap width with the best weighted score.
    """
    corpus = default_corpus()
    model = load_inference_model(model_name, corpus=corpus)
    evaluation = eval_config(fast)

    def ppl_fn(config) -> float:
        model.set_scheme(QuantizationScheme.from_format(config))
        return evaluate_perplexity(model, corpus, evaluation)

    def overhead_fn(config) -> float:
        return pe_for_strategy(config).area_um2()

    result = select_overlap_width(
        mantissa_bits=mantissa_bits,
        ppl_fn=ppl_fn,
        overhead_fn=overhead_fn,
        overhead_weight=overhead_weight,
    )
    model.set_scheme(QuantizationScheme.fp_reference())

    rows = result.as_rows()
    for row in rows:
        row["selected"] = row["overlap_bits"] == result.best_overlap
    return ExperimentResult(
        experiment_id="Fig4",
        title=f"Overlap-width selection for BBFP({mantissa_bits}, o) via Algorithm 1",
        rows=rows,
        notes=(
            "PPL falls then rises again as the overlap width grows (accuracy-best in the "
            "middle), while the hardware overhead falls monotonically with wider overlap; "
            "Algorithm 1 picks the weighted optimum."
        ),
        metadata={
            "model": model_name,
            "overhead_weight": overhead_weight,
            "best_overlap": result.best_overlap,
            "fast_mode": is_fast_mode(fast),
        },
    )
