"""Fig. 1(b): linear vs nonlinear runtime of a Llama-7B decoder layer stack.

The paper measures the decoder-stage runtime of Llama-7B while growing the
sequence length from 128 to 4096 and observes the nonlinear operators
(Softmax + SiLU) taking a progressively larger share when they run on a
conventional full-precision vector unit — the motivation for the BBFP
nonlinear unit.  The reproduction runs the same operator list (at the real
Llama-7B dimensions; no weights are needed for a timing model) through the
cycle-level simulator twice: once with an FP32-style nonlinear unit and once
with the proposed BBFP unit.
"""

from __future__ import annotations

from repro.accelerator import AcceleratorConfig, AcceleratorSimulator, decoder_workload
from repro.analysis.reporting import ExperimentResult
from repro.core.bbfp import BBFPConfig
from repro.llm.config import ModelConfig

__all__ = ["run", "LLAMA_7B_DIMENSIONS"]

#: The real Llama-7B architecture dimensions (only shapes matter for timing).
LLAMA_7B_DIMENSIONS = ModelConfig(
    name="Llama-7B-dims",
    vocab_size=32000,
    d_model=4096,
    n_heads=32,
    n_layers=32,
    d_ff=11008,
    max_seq_len=4096,
    arch="llama",
)

_DEFAULT_SEQ_LENGTHS = (128, 256, 512, 1024, 2048, 4096)


def run(seq_lengths=_DEFAULT_SEQ_LENGTHS, fast=None) -> ExperimentResult:
    """Regenerate the Fig. 1(b) runtime breakdown across sequence lengths."""
    config = AcceleratorConfig(strategy=BBFPConfig(4, 2), pe_rows=32, pe_cols=32)
    fp32_sim = AcceleratorSimulator(config, nonlinear_style="fp32")
    bbal_sim = AcceleratorSimulator(config, nonlinear_style="bbal")

    rows = []
    for seq_len in seq_lengths:
        workload = decoder_workload(LLAMA_7B_DIMENSIONS, seq_len, phase="prefill")
        fp32_report = fp32_sim.run(workload)
        bbal_report = bbal_sim.run(workload)
        rows.append(
            {
                "seq_len": seq_len,
                "linear_ms": fp32_report.linear_runtime_s * 1e3,
                "nonlinear_fp32_ms": fp32_report.nonlinear_runtime_s * 1e3,
                "nonlinear_bbal_ms": bbal_report.nonlinear_runtime_s * 1e3,
                "nonlinear_share_fp32": fp32_report.nonlinear_runtime_s / fp32_report.runtime_s,
                "nonlinear_share_bbal": bbal_report.nonlinear_runtime_s / bbal_report.runtime_s,
            }
        )
    return ExperimentResult(
        experiment_id="Fig1b",
        title="Linear vs nonlinear runtime of the Llama-7B decoder stage",
        rows=rows,
        notes=(
            "The nonlinear share under the FP32-style unit grows with sequence length "
            "(softmax work scales with seq^2), reproducing the paper's bottleneck "
            "observation; the BBFP nonlinear unit keeps the share small at every length."
        ),
        metadata={"model_dims": LLAMA_7B_DIMENSIONS.as_dict()},
    )
