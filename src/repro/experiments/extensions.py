"""Extension experiments beyond the paper's own tables and figures.

These drivers exercise the parts of the library that generalise the paper's
design space rather than reproduce a specific artefact:

* ``rounding_mode_ablation`` — what the round-to-nearest assumption of Eq. 8
  is worth versus truncation and stochastic rounding.
* ``multiplier_architecture_ablation`` — array vs Booth vs Wallace multipliers
  at the mantissa widths the PE comparison of Table III uses.
* ``format_family_ablation`` — BBFP against the wider block-format landscape
  (vanilla BFP, OCP microscaling, bi-exponent BiE, plain INT) at matched
  storage budgets.
* ``roofline_extension`` — compute- vs memory-bound classification of every
  decoder GEMM in prefill and decode (the mechanism behind Fig. 1(b)/Fig. 8).
* ``generation_latency_extension`` — end-to-end prefill + decode latency,
  tokens/s and energy/token per number format.
* ``mixed_precision_extension`` — the greedy per-layer-kind BBFP assignment
  search on a zoo model.

Each driver returns an :class:`~repro.analysis.reporting.ExperimentResult`
and is registered with the experiment runner under the ``ext_*`` names.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.generation import GenerationLatencyModel
from repro.accelerator.roofline import analyze_workload
from repro.accelerator.workloads import decoder_workload
from repro.analysis.reporting import ExperimentResult
from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.core.rounding import RoundingMode
from repro.experiments.common import eval_config, is_fast_mode
from repro.experiments.fig1_runtime import LLAMA_7B_DIMENSIONS
from repro.hardware.multiplier_arch import multiplier_architecture_table
from repro.quant import get_quantizer

__all__ = [
    "rounding_mode_ablation",
    "multiplier_architecture_ablation",
    "format_family_ablation",
    "extended_format_ppl",
    "roofline_extension",
    "dataflow_extension",
    "generation_latency_extension",
    "mixed_precision_extension",
]


def _synthetic_activation(size: int = 8192, outlier_stride: int = 64,
                          outlier_scale: float = 25.0, seed: int = 0) -> np.ndarray:
    """The outlier-heavy synthetic activation tensor shared by the format ablations."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(size)
    x[::outlier_stride] *= outlier_scale
    return x


def rounding_mode_ablation(fast=None) -> ExperimentResult:
    """Quantisation MSE of BFP/BBFP under nearest, truncate and stochastic rounding."""
    x = _synthetic_activation()
    denom = float(np.mean(x**2))
    formats = (
        ("BFP4", lambda mode: BFPConfig(4, rounding=mode)),
        ("BBFP(4,2)", lambda mode: BBFPConfig(4, 2, rounding=mode)),
        ("BBFP(6,3)", lambda mode: BBFPConfig(6, 3, rounding=mode)),
    )
    rows = []
    for name, make_config in formats:
        row = {"format": name}
        for mode in RoundingMode:
            quantizer = get_quantizer(make_config(mode))
            x_hat = quantizer.quantize_dequantize(x, rng=np.random.default_rng(1))
            row[f"{mode.value}_relative_mse"] = float(np.mean((x - x_hat) ** 2)) / denom
        rows.append(row)
    return ExperimentResult(
        experiment_id="Ext-Rounding",
        title="Mantissa rounding mode vs quantisation error",
        rows=rows,
        notes=(
            "Round-to-nearest (the Eq. 8 assumption and the BBAL encoder behaviour) roughly "
            "halves the error variance of truncation; stochastic rounding sits in between on a "
            "single pass but is unbiased in expectation."
        ),
    )


def multiplier_architecture_ablation(fast=None) -> ExperimentResult:
    """Array vs Booth-radix-4 vs Wallace-tree multipliers at PE mantissa widths."""
    bits = (3, 4, 6, 8, 11, 16)
    rows = multiplier_architecture_table(bits)
    return ExperimentResult(
        experiment_id="Ext-Multiplier",
        title="Multiplier micro-architecture: area, depth and area-delay product",
        rows=rows,
        notes=(
            "At the 3-6 bit mantissa widths BBFP uses, the plain array multiplier (what the "
            "Table III PEs assume) is the smallest and its depth is short enough; Booth and "
            "Wallace only pay off at FP16-class widths."
        ),
    )


def format_family_ablation(fast=None) -> ExperimentResult:
    """BBFP against BFP, microscaling, BiE and INT at matched storage budgets."""
    x = _synthetic_activation()
    denom = float(np.mean(x**2))
    specs = ("int4", "int8", "bfp4", "bfp6", "bbfp(4,2)", "bbfp(6,3)",
             "bie4", "bie6", "mxfp4", "mxfp6_e3m2", "mxfp8")
    rows = []
    for spec in specs:
        quantizer = get_quantizer(spec)
        x_hat = quantizer.quantize_dequantize(x)
        rows.append(
            {
                "format": quantizer.name,
                "equivalent_bits": quantizer.bits_per_element(),
                "memory_efficiency": quantizer.memory_efficiency(),
                "relative_mse": float(np.mean((x - x_hat) ** 2)) / denom,
            }
        )
    return ExperimentResult(
        experiment_id="Ext-FormatFamily",
        title="Block-format landscape at matched storage budgets",
        rows=rows,
        notes=(
            "Every outlier-aware block mechanism (BBFP's flag bit, BiE's second exponent, "
            "MX's per-element micro-exponents) improves on vanilla BFP and plain INT at a "
            "comparable storage budget; BBFP and BiE are the strongest in the 6-8-bit class "
            "while INT4 collapses on the outliers (the Fig. 1(a) motivation)."
        ),
    )


def extended_format_ppl(fast=None) -> ExperimentResult:
    """Perplexity of the extension formats and GPTQ on one model per family.

    Table II sweeps the paper's own format list; this driver evaluates the
    additional comparators the library implements — BiE, microscaling and
    GPTQ — on a Llama-like and an OPT-like zoo model so their end-to-end
    accuracy can be read against the same FP16 / BBFP anchor points.
    """
    from repro.baselines.gptq import GPTQConfig, build_gptq_scheme
    from repro.llm.inference import QuantizationScheme
    from repro.llm.perplexity import evaluate_perplexity
    from repro.experiments.common import format_ppl_model_specs
    from repro.llm.zoo import default_corpus, load_inference_model

    specs = format_ppl_model_specs(fast)
    corpus = default_corpus(fast=fast)
    evaluation = eval_config(fast)

    rows = []
    for spec in specs:
        model = load_inference_model(spec, corpus=corpus)
        schemes = [QuantizationScheme.fp16()]
        schemes += [QuantizationScheme.from_format(spec) for spec in
                    ("bbfp(4,2)", "bbfp(6,3)", "bie4", "bie6", "mxfp6_e3m2", "mxfp8")]
        schemes += [
            build_gptq_scheme(model, corpus, GPTQConfig(weight_bits=4), name="GPTQ-W4"),
            build_gptq_scheme(model, corpus, GPTQConfig(weight_bits=4, activation_bits=8),
                              name="GPTQ-W4A8"),
        ]
        row = {"model": spec.paper_name}
        for scheme in schemes:
            model.set_scheme(scheme)
            row[scheme.name] = evaluate_perplexity(model, corpus, evaluation)
        model.set_scheme(QuantizationScheme.fp_reference())
        rows.append(row)

    return ExperimentResult(
        experiment_id="Ext-FormatPPL",
        title="Perplexity of the extension formats (BiE, MXFP, GPTQ) vs the BBFP anchors",
        rows=rows,
        notes=(
            "GPTQ-W4 is weight-only and therefore sits near FP16; once activations are "
            "quantised too (GPTQ-W4A8), the block formats' outlier handling matters again. "
            "BiE tracks BBFP at equal mantissa width; MXFP8 is safe, MXFP6 starts to "
            "degrade on the outlier-heavy Llama-like model."
        ),
        metadata={"fast": is_fast_mode(fast), "models": [s.paper_name for s in specs]},
    )


def roofline_extension(fast=None) -> ExperimentResult:
    """Compute- vs memory-bound classification of the Llama-7B decoder GEMMs."""
    config = AcceleratorConfig(strategy=BBFPConfig(4, 2), pe_rows=32, pe_cols=32)
    rows = []
    for phase, seq_len in (("prefill", 512), ("decode", 1024)):
        workload = decoder_workload(LLAMA_7B_DIMENSIONS, seq_len, phase=phase)
        for analysis in analyze_workload(config, workload):
            row = analysis.as_dict()
            row["phase"] = phase
            rows.append(row)
    return ExperimentResult(
        experiment_id="Ext-Roofline",
        title="Roofline classification of decoder GEMMs (BBFP(4,2) accelerator)",
        rows=rows,
        columns=["phase", "op", "macs", "arithmetic_intensity", "bound", "attainable_gmacs"],
        notes=(
            "Prefill GEMMs are compute bound (the PE-area advantage of cheap formats sets the "
            "roof); decode matrix-vector products are memory bound (the bits-per-element "
            "advantage sets the roof) — the two mechanisms behind Fig. 8."
        ),
    )


def dataflow_extension(fast=None) -> ExperimentResult:
    """Weight-stationary (the BBAL choice) vs output-/input-stationary dataflows."""
    from repro.accelerator.dataflow import compare_dataflows
    from repro.accelerator.workloads import MatmulOp

    bits = BBFPConfig(4, 2).equivalent_bit_width()
    d_model = LLAMA_7B_DIMENSIONS.d_model
    d_ff = LLAMA_7B_DIMENSIONS.d_ff
    cases = (
        MatmulOp("prefill-fc1", 512, d_model, d_ff),
        MatmulOp("prefill-qkv", 512, d_model, d_model),
        MatmulOp("decode-fc1", 1, d_model, d_ff),
    )
    rows = []
    for op in cases:
        for row in compare_dataflows(op, rows=32, cols=32, bits_per_element=bits):
            row["gemm"] = op.name
            rows.append(row)
    return ExperimentResult(
        experiment_id="Ext-Dataflow",
        title="PE-array dataflow comparison on Llama-7B GEMM shapes (BBFP(4,2) operands)",
        rows=rows,
        columns=["gemm", "dataflow", "cycles", "utilisation", "operand_bytes", "output_bytes"],
        notes=(
            "All dataflows execute the same MACs; they differ in which operand is re-fetched. "
            "Weight stationary (Fig. 7) reads the quantised weights exactly once — the operand "
            "whose density BBFP optimises — at the price of spilling partial sums, which the "
            "FP adder path of the BBAL architecture absorbs."
        ),
    )


def generation_latency_extension(fast=None) -> ExperimentResult:
    """End-to-end prefill + decode latency and energy per number format (iso-area arrays)."""
    import math

    from repro.accelerator.metrics import iso_area_design_points

    fast = is_fast_mode(fast)
    model_dims = LLAMA_7B_DIMENSIONS
    prompt, generated = (128, 32) if fast else (512, 128)
    strategies = ("Oltron", BFPConfig(6), BBFPConfig(4, 2), BBFPConfig(3, 1))
    # Like Fig. 8, every format gets the same PE-area budget: cheaper PEs buy a
    # larger array, which shortens both the prefill GEMMs and the per-tile
    # weight reloads of the decode matrix-vector products.
    points = {p.strategy_name: p for p in iso_area_design_points(strategies, reference_pes=1024)}
    rows = []
    for strategy in strategies:
        name = strategy if isinstance(strategy, str) else strategy.name
        side = max(4, int(math.sqrt(points[name].num_pes)))
        config = AcceleratorConfig(strategy=strategy, pe_rows=side, pe_cols=side)
        model = GenerationLatencyModel(config, model_dims, decode_step_stride=16)
        report = model.estimate(prompt_tokens=prompt, generated_tokens=generated)
        rows.append(
            {
                "strategy": config.strategy_name,
                "iso_area_pes": side * side,
                "time_to_first_token_ms": report.time_to_first_token_s * 1e3,
                "tokens_per_second": report.tokens_per_second,
                "energy_per_token_mj": report.energy_per_token_j * 1e3,
                "decode_nonlinear_share": report.decode.nonlinear_share,
            }
        )
    return ExperimentResult(
        experiment_id="Ext-Generation",
        title="Prompt-to-completion latency and energy per number format (iso-area)",
        rows=rows,
        notes=(
            "Under an equal PE-area budget, denser formats win twice: a larger array shortens "
            "the compute-bound prefill (time-to-first-token) and the per-token decode work, "
            "while fewer bits per element cut the DRAM energy of every generated token."
        ),
        metadata={"prompt_tokens": prompt, "generated_tokens": generated},
    )


def mixed_precision_extension(model_name: str = "Llama-1B", fast=None) -> ExperimentResult:
    """Greedy per-layer-kind BBFP assignment on a zoo model."""
    from repro.llm.zoo import default_corpus, load_inference_model
    from repro.search.mixed_precision import greedy_mixed_precision_search

    fast_mode = is_fast_mode(fast)
    corpus = default_corpus(fast=fast)
    model = load_inference_model(model_name, corpus=corpus)
    candidates = ["bbfp(6,3)", "bbfp(4,2)", "bbfp(3,1)"]
    result = greedy_mixed_precision_search(
        model, corpus, candidates,
        ppl_budget_ratio=1.05,
        eval_config=eval_config(fast),
    )
    rows = result.as_rows()
    rows.append(
        {
            "kind": "(total)",
            "format": f"{result.footprint_saving * 100:.1f}% footprint saved",
            "bits_per_element": result.footprint_bits / max(1.0, result.uniform_footprint_bits)
            * get_quantizer(candidates[0]).bits_per_element(),
        }
    )
    return ExperimentResult(
        experiment_id="Ext-MixedPrecision",
        title=f"Per-layer-kind BBFP assignment for {model_name} (5% perplexity budget)",
        rows=rows,
        notes=(
            f"reference ppl {result.reference_perplexity:.3f}, mixed-precision ppl "
            f"{result.perplexity:.3f}, footprint saving {result.footprint_saving * 100:.1f}% "
            "versus uniform BBFP(6,3)."
        ),
        metadata={"fast": fast_mode, "model": model_name},
    )
