"""Shared configuration of the experiment drivers (fast mode, model subsets, schemes)."""

from __future__ import annotations

import os

from repro.llm.perplexity import EvalConfig
from repro.llm.zoo import LLAMA_FAMILY, NONLINEAR_FAMILY, OPT_FAMILY
from repro.quant import parse_spec

__all__ = [
    "is_fast_mode",
    "eval_config",
    "table2_model_specs",
    "table4_model_specs",
    "fig8_model_specs",
    "format_ppl_model_specs",
    "experiment_model_specs",
    "TABLE2_LINEAR_FORMATS",
    "FIG8_STRATEGIES",
]

#: The linear-quantisation formats swept in Table II (besides the baselines),
#: written as spec strings and resolved through the single parser.
TABLE2_LINEAR_FORMATS = tuple(parse_spec(spec) for spec in (
    "bfp6",
    "bfp4",
    "bbfp(3,1)",
    "bbfp(4,2)",
    "bbfp(4,3)",
    "bbfp(6,3)",
    "bbfp(6,4)",
))

#: The strategies compared under iso-area in Fig. 8 / costed in Table III / Fig. 9.
#: "Oltron" / "Olive" name the accelerator baseline datapaths of
#: :mod:`repro.hardware.pe`, not registrable tensor formats.
FIG8_STRATEGIES = ("Oltron", "Olive") + tuple(parse_spec(spec) for spec in (
    "bfp4",
    "bfp6",
    "bbfp(3,1)",
    "bbfp(3,2)",
    "bbfp(4,2)",
    "bbfp(4,3)",
    "bbfp(6,3)",
    "bbfp(6,4)",
    "bbfp(6,5)",
))


def is_fast_mode(fast=None) -> bool:
    """Fast mode shrinks model sets and evaluation sizes (``REPRO_FAST=1``)."""
    if fast is not None:
        return bool(fast)
    return os.environ.get("REPRO_FAST", "0") == "1"


def eval_config(fast=None) -> EvalConfig:
    return EvalConfig(max_batches=2 if is_fast_mode(fast) else 4)


def table2_model_specs(fast=None):
    """The Table II model list: the full 12-model zoo, or 4 representatives in fast mode."""
    if is_fast_mode(fast):
        return (LLAMA_FAMILY[0], LLAMA_FAMILY[2], OPT_FAMILY[0], OPT_FAMILY[2])
    return LLAMA_FAMILY + OPT_FAMILY


def table4_model_specs(fast=None):
    """The Table IV model list (Llama-7B, Llama2-7B, Llama3-8B), or just Llama-7B in fast mode."""
    if is_fast_mode(fast):
        return (NONLINEAR_FAMILY[0],)
    return NONLINEAR_FAMILY


def fig8_model_specs(fast=None):
    """The Fig. 8 accuracy-half model list: the full zoo, or the 1B/3B tiers in fast mode."""
    if is_fast_mode(fast):
        return LLAMA_FAMILY[:2] + OPT_FAMILY[:2]
    return LLAMA_FAMILY + OPT_FAMILY


def format_ppl_model_specs(fast=None):
    """The ext_format_ppl model pair: one Llama-like and one OPT-like checkpoint."""
    if is_fast_mode(fast):
        return (LLAMA_FAMILY[0], OPT_FAMILY[0])
    return (LLAMA_FAMILY[2], OPT_FAMILY[2])


def experiment_model_specs(name, fast=None) -> tuple:
    """Paper names of the zoo checkpoints experiment ``name`` evaluates.

    This is the dependency declaration the pipeline scheduler consumes: every
    listed model becomes a shared upstream ``zoo:<model>`` training task, so
    concurrent experiments wait for (and never duplicate) the same training
    run.  Hardware-only experiments return an empty tuple.  Multi-model
    selections come from the same ``*_model_specs`` helpers the drivers call,
    and single-model entries are the drivers' ``model_name`` defaults
    (pinned by a consistency test in ``tests/pipeline/test_run.py``).
    """
    fast = is_fast_mode(fast)
    if name in ("fig1a", "fig3"):
        return ("OPT-6.7B",)
    if name == "fig4":
        return ("Llama-7B",)
    if name == "table2":
        return tuple(spec.paper_name for spec in table2_model_specs(fast))
    if name == "table4":
        return tuple(spec.paper_name for spec in table4_model_specs(fast))
    if name == "fig8":
        return tuple(spec.paper_name for spec in fig8_model_specs(fast))
    if name == "ext_format_ppl":
        return tuple(spec.paper_name for spec in format_ppl_model_specs(fast))
    if name == "ext_mixed_precision":
        return ("Llama-1B",)
    if name == "serve_bench":
        from repro.serve.bench import serve_model_name

        return (serve_model_name(fast),)
    if name == "cluster_bench":
        from repro.cluster.bench import cluster_model_name

        return (cluster_model_name(fast),)
    if name == "chaos_bench":
        from repro.cluster.bench import cluster_model_name

        return (cluster_model_name(fast),)
    if name == "gateway_bench":
        from repro.gateway.bench import gateway_model_name

        return (gateway_model_name(fast),)
    return ()
