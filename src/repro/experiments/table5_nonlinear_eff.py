"""Table V: ADP / EDP / efficiency / compatibility of nonlinear units."""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.nonlinear.reference_designs import comparison_table

__all__ = ["run", "PAPER_TABLE5"]

#: The paper's published Table V values (their units), for side-by-side reading.
PAPER_TABLE5 = {
    "Pseudo-softmax [32]": {"adp": 4.33, "edp": 79.58, "efficiency": 85.98},
    "High-precision softmax [33]": {"adp": 299.13, "edp": 18691.24, "efficiency": 3.31},
    "BBAL nonlinear unit (ours)": {"adp": 32.64, "edp": 1040.40, "efficiency": 98.03},
}


def run(vector_length: int = 1024, fast=None) -> ExperimentResult:
    """Regenerate Table V from the shared gate-level cost model.

    All three designs are evaluated at the same clock and vector length, so
    compare ratios: the proposed unit should be far more efficient than the
    high-precision design [33] (the paper reports ~30x), should lose to the
    tiny approximate design [32] on ADP, and is the only one that also covers
    SiLU / GELU / sigmoid.
    """
    rows = comparison_table(vector_length=vector_length)
    for row in rows:
        paper = PAPER_TABLE5.get(row["design"], {})
        row["paper_adp"] = paper.get("adp")
        row["paper_edp"] = paper.get("edp")
        row["paper_efficiency"] = paper.get("efficiency")
    ours = next(r for r in rows if "ours" in r["design"])
    high_precision = next(r for r in rows if "[33]" in r["design"])
    speedup = ours["efficiency"] / high_precision["efficiency"]
    return ExperimentResult(
        experiment_id="Table5",
        title="Nonlinear unit comparison: ADP, EDP, efficiency, compatibility",
        rows=rows,
        notes=(
            f"Efficiency advantage of the proposed unit over the high-precision design "
            f"[33]: {speedup:.1f}x (paper reports ~30x). The published [32]/[33] numbers "
            f"use each paper's own operating point, so absolute values differ from the "
            f"shared-framework columns."
        ),
        metadata={"vector_length": vector_length},
    )
