"""Fig. 3: shared-exponent selection vs per-layer activation quantisation MSE."""

from __future__ import annotations

from repro.analysis.mse_sweep import layer_activation_mse
from repro.analysis.reporting import ExperimentResult
from repro.llm.zoo import default_corpus, load_inference_model

__all__ = ["run"]


def run(model_name: str = "OPT-6.7B", fast=None) -> ExperimentResult:
    """Regenerate Fig. 3: BBFP(4,2) alignment strategies (Max-1/2/3) vs BFP4, per layer kind.

    The expected ordering, as in the paper: Max-2 (the Eq. 9 rule) has the
    smallest error; Max-1 selects larger shared exponents and loses small
    values; Max-3 shifts the most significant bit out of the truncation
    window and is the worst; BFP4 sits well above Max-2.
    """
    corpus = default_corpus()
    model = load_inference_model(model_name, corpus=corpus)
    rows = layer_activation_mse(model, corpus, mantissa_bits=4, overlap_bits=2)
    return ExperimentResult(
        experiment_id="Fig3",
        title="Impact of shared-exponent selection on activation quantisation error",
        rows=rows,
        notes=(
            "Relative MSE per layer kind (lower is better). Max-2 = max(E) - (m - o) is the "
            "paper's proposed rule (Eq. 9); Max-1 / Max-3 shift it by one either way; BFP4 "
            "aligns to the maximum exponent."
        ),
        metadata={"model": model_name, "format": "BBFP(4,2)"},
    )
