"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every driver exposes ``run(...) -> ExperimentResult``; the benchmark suite
calls these functions and prints the regenerated rows, and
``python -m repro.experiments.runner`` regenerates everything at once into
``results/``.

| Driver                          | Paper artefact                                   |
|---------------------------------|--------------------------------------------------|
| ``fig1_distribution``           | Fig. 1(a) weight/activation distribution         |
| ``fig1_runtime``                | Fig. 1(b) linear vs nonlinear runtime            |
| ``fig3_shared_exponent``        | Fig. 3 shared-exponent selection MSE             |
| ``fig4_overlap``                | Fig. 4 overlap-width sweep (Algorithm 1)         |
| ``table1_mac``                  | Table I MAC area / memory efficiency             |
| ``table2_linear_ppl``           | Table II linear-layer quantisation perplexity    |
| ``table3_pe_area``              | Table III PE area                                |
| ``table4_nonlinear_ppl``        | Table IV nonlinear-unit perplexity               |
| ``table5_nonlinear_eff``        | Table V nonlinear-unit ADP/EDP/efficiency        |
| ``fig8_accuracy_throughput``    | Fig. 8 iso-area accuracy vs throughput           |
| ``fig9_energy``                 | Fig. 9 energy breakdown                          |
| ``ablations``                   | extra ablations called out in DESIGN.md          |
"""

__all__ = [
    "fig1_distribution",
    "fig1_runtime",
    "fig3_shared_exponent",
    "fig4_overlap",
    "table1_mac",
    "table2_linear_ppl",
    "table3_pe_area",
    "table4_nonlinear_ppl",
    "table5_nonlinear_eff",
    "fig8_accuracy_throughput",
    "fig9_energy",
    "ablations",
]
