"""Olive (Guo et al., ISCA 2023): outlier-victim pair quantisation, simplified.

Olive's observation is that outliers are rare, so an outlier can "steal" the
encoding space of its immediate neighbour (the *victim*): the victim is pruned
to zero and the freed code space is used to store the outlier with extended
range (a small exponent).  Everything stays 4 bits wide in memory and in the
multiplier, at the cost of the pruned victims and of coarse outlier values.

The hardware-relevant behaviour reproduced here:

* values within the normal INT4 range quantise as usual;
* a value beyond the range marks its right-hand neighbour as victim (pruned to
  zero) and is itself quantised on a coarse power-of-two-stepped grid with
  extended range;
* two adjacent outliers cannot both be represented — the weaker one is
  clamped to the normal range (the failure mode that makes Olive degrade
  sharply on outlier-heavy tensors, visible in the paper's Table II where
  Olive's perplexity explodes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.serializable import SerializableConfig
from repro.llm.inference import QuantizationScheme

__all__ = ["OliveConfig", "olive_quantize_dequantize", "build_olive_scheme"]


@dataclass(frozen=True)
class OliveConfig(SerializableConfig):
    """Parameters of the outlier-victim pair quantiser."""

    bits: int = 4
    outlier_exponent_levels: int = 4
    group_size: int = 128

    def __post_init__(self):
        if self.bits < 2:
            raise ValueError("bits must be >= 2")
        if self.group_size < 2:
            raise ValueError("group_size must be >= 2")

    @property
    def name(self) -> str:
        return f"Olive(INT{self.bits})"

    @property
    def max_code(self) -> int:
        return (1 << (self.bits - 1)) - 1


def _group_scales(x: np.ndarray, config: OliveConfig) -> np.ndarray:
    """Per-group scale from a robust (non-outlier) range estimate."""
    flat = x.reshape(-1)
    pad = (-flat.size) % config.group_size
    padded = np.pad(flat, (0, pad))
    groups = padded.reshape(-1, config.group_size)
    # Olive scales for the *normal* values: use a high percentile rather than
    # the absolute max so outliers do not inflate the step.
    robust_max = np.quantile(np.abs(groups), 0.98, axis=1)
    robust_max = np.maximum(robust_max, 1e-8)
    scales = robust_max / config.max_code
    expanded = np.repeat(scales, config.group_size)[: flat.size]
    return expanded.reshape(x.shape)


def olive_quantize_dequantize(x: np.ndarray, config: OliveConfig = OliveConfig()) -> np.ndarray:
    """Apply outlier-victim pair fake quantisation to ``x`` (last axis is the pairing axis)."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        return x.copy()
    scale = _group_scales(x, config)
    codes = np.rint(x / scale)
    is_outlier = np.abs(codes) > config.max_code

    # Normal path: clip to the INT range.
    normal = np.clip(codes, -config.max_code, config.max_code) * scale

    # Outlier path: coarse power-of-two grid with extended range.
    max_extension = 1 << config.outlier_exponent_levels
    magnitude = np.abs(x) / scale
    exponent = np.ceil(np.log2(np.maximum(magnitude / config.max_code, 1.0)))
    exponent = np.clip(exponent, 0, config.outlier_exponent_levels)
    coarse_step = scale * np.exp2(exponent)
    outlier_value = np.rint(x / coarse_step) * coarse_step
    outlier_value = np.clip(outlier_value, -config.max_code * scale * max_extension,
                            config.max_code * scale * max_extension)

    result = np.where(is_outlier, outlier_value, normal)

    # Victim pruning along the last axis: the element following an outlier is
    # zeroed; an outlier immediately following another outlier loses its
    # extension and is clamped to the normal range instead.
    outlier_flat = is_outlier.reshape(-1, x.shape[-1])
    result_flat = result.reshape(-1, x.shape[-1]).copy()
    normal_flat = normal.reshape(-1, x.shape[-1])
    victim = np.zeros_like(outlier_flat)
    victim[:, 1:] = outlier_flat[:, :-1]
    # Victims are pruned unless they are themselves outliers...
    prune = victim & ~outlier_flat
    result_flat[prune] = 0.0
    # ...in which case the second outlier of the pair falls back to the clipped value.
    clash = victim & outlier_flat
    result_flat[clash] = normal_flat[clash]
    return result_flat.reshape(x.shape)


def build_olive_scheme(config: OliveConfig = OliveConfig(), name: str = "Olive") -> QuantizationScheme:
    """Olive applied to both weights and activations (no calibration needed)."""
    return QuantizationScheme(
        name=name,
        weight_fn=lambda _, w: olive_quantize_dequantize(w, config),
        activation_fn=lambda _, x: olive_quantize_dequantize(x, config),
    )
