"""Calibration utilities shared by the baseline quantisation schemes.

SmoothQuant and OmniQuant are calibration-based: they observe the per-channel
activation statistics of every linear layer on a small calibration set before
deciding their scaling/clipping parameters.  (BBFP itself needs no
calibration — one of the paper's selling points.)
"""

from __future__ import annotations

import numpy as np

from repro.llm.dataset import SyntheticCorpus
from repro.llm.inference import InferenceModel

__all__ = ["collect_linear_input_stats", "collect_linear_input_hessians"]


def collect_linear_input_stats(model: InferenceModel, corpus: SyntheticCorpus,
                               num_batches: int = 2, batch_size: int = 4,
                               seq_len: int = 48, split: str = "train") -> dict:
    """Run calibration batches and return per-layer input-channel absolute maxima.

    Returns ``{linear_layer_name: per_channel_abs_max}`` where the vector
    length equals the layer's input features.  The model's current scheme is
    used as-is (callers normally calibrate on the FP reference scheme).
    """
    seq_len = min(seq_len, model.config.max_seq_len - 1)
    stats = {}
    with model.record_activations() as records:
        for batch in corpus.sequential_batches(split, batch_size, seq_len, max_batches=num_batches):
            model.forward(batch[:, :-1])
    for name, tensors in records.items():
        stacked = np.concatenate([t.reshape(-1, t.shape[-1]) for t in tensors], axis=0)
        stats[name] = np.abs(stacked).max(axis=0)
    if not stats:
        raise RuntimeError("calibration produced no activation records")
    return stats


def collect_linear_input_hessians(model: InferenceModel, corpus: SyntheticCorpus,
                                  num_batches: int = 2, batch_size: int = 4,
                                  seq_len: int = 48, split: str = "train") -> dict:
    """Run calibration batches and return the per-layer input Hessians ``X^T X``.

    Returns ``{linear_layer_name: hessian}`` where each Hessian is a square
    ``(in_features, in_features)`` matrix accumulated over every token the
    layer saw during calibration.  This is the statistic GPTQ's error
    compensation needs; the ``collect_linear_input_stats`` maxima are not
    sufficient for it.
    """
    seq_len = min(seq_len, model.config.max_seq_len - 1)
    with model.record_activations() as records:
        for batch in corpus.sequential_batches(split, batch_size, seq_len, max_batches=num_batches):
            model.forward(batch[:, :-1])
    hessians = {}
    for name, tensors in records.items():
        stacked = np.concatenate([t.reshape(-1, t.shape[-1]) for t in tensors], axis=0)
        hessians[name] = stacked.T @ stacked
    if not hessians:
        raise RuntimeError("calibration produced no activation records")
    return hessians
