"""Oltron (Xue et al., DAC 2024): outlier-aware quantisation with a fixed outlier budget.

Oltron keeps a small, architecturally-fixed fraction of values (the outliers)
in a high-precision side path while the dense bulk is quantised to a very low
bit width processed by 3-bit multipliers.  The budget is adapted between and
within layers, but it remains a *fixed proportion* of the tensor — which is
exactly why the paper observes it doing well on OPT-like models (few outliers,
budget suffices) and poorly on Llama-like models (more outliers than the
budget can absorb).

The re-implementation keeps values above the per-tensor magnitude threshold
(chosen so that exactly ``outlier_ratio`` of the values are outliers) in FP16
and quantises the rest with symmetric low-bit integers whose scale is set by
the *inlier* maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fp_formats import fp16_round
from repro.core.serializable import SerializableConfig
from repro.llm.inference import QuantizationScheme

__all__ = ["OltronConfig", "oltron_quantize_dequantize", "build_oltron_scheme"]


@dataclass(frozen=True)
class OltronConfig(SerializableConfig):
    """Parameters of the fixed-budget outlier-aware quantiser."""

    inlier_bits: int = 4
    outlier_ratio: float = 0.01
    multiplier_bits: int = 3

    def __post_init__(self):
        if self.inlier_bits < 2:
            raise ValueError("inlier_bits must be >= 2")
        if not 0.0 <= self.outlier_ratio < 0.5:
            raise ValueError("outlier_ratio must lie in [0, 0.5)")

    @property
    def name(self) -> str:
        return f"Oltron(W{self.inlier_bits}A{self.inlier_bits}, {self.outlier_ratio:.1%} outliers)"

    @property
    def max_code(self) -> int:
        return (1 << (self.inlier_bits - 1)) - 1


def oltron_quantize_dequantize(x: np.ndarray, config: OltronConfig = OltronConfig()) -> np.ndarray:
    """Fixed-proportion outlier-aware fake quantisation of ``x``."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        return x.copy()
    absx = np.abs(x)
    if config.outlier_ratio > 0:
        threshold = np.quantile(absx, 1.0 - config.outlier_ratio)
    else:
        threshold = np.inf
    is_outlier = absx > threshold

    inliers = np.where(is_outlier, 0.0, x)
    inlier_max = np.abs(inliers).max()
    scale = inlier_max / config.max_code if inlier_max > 0 else 1.0
    codes = np.clip(np.rint(x / scale), -config.max_code, config.max_code)
    dense = codes * scale

    outlier_values = fp16_round(x)
    return np.where(is_outlier, outlier_values, dense)


def build_oltron_scheme(config: OltronConfig = OltronConfig(), name: str = "Oltron") -> QuantizationScheme:
    """Oltron applied to both weights and activations (no calibration needed)."""
    return QuantizationScheme(
        name=name,
        weight_fn=lambda _, w: oltron_quantize_dequantize(w, config),
        activation_fn=lambda _, x: oltron_quantize_dequantize(x, config),
    )
