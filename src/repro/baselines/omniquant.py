"""OmniQuant (Shao et al., 2023), simplified re-implementation.

OmniQuant learns two things per linear layer: a *learnable weight clipping*
(how much of the weight range to keep before quantising) and a *learnable
equivalent transformation* (a per-channel scale migrating activation
difficulty into the weights, like SmoothQuant but trained).  The original
optimises both with gradient descent per transformer block; this
re-implementation keeps the same search space but optimises by grid search
against the layer-wise reconstruction MSE on calibration data, which is
sufficient for the low-bit weight–activation setting compared in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.calibration import collect_linear_input_stats
from repro.baselines.smoothquant import compute_smoothing_scales
from repro.core.integer import Granularity, IntQuantConfig, int_quantize_dequantize
from repro.llm.dataset import SyntheticCorpus
from repro.llm.inference import InferenceModel, QuantizationScheme

__all__ = ["OmniQuantConfig", "search_clip_ratio", "build_omniquant_scheme"]


@dataclass(frozen=True)
class OmniQuantConfig:
    """Hyper-parameters of the simplified OmniQuant scheme (W4A4 by default)."""

    weight_bits: int = 4
    activation_bits: int = 4
    smoothing_alpha: float = 0.5
    clip_candidates: tuple = (1.0, 0.95, 0.9, 0.85, 0.8, 0.7, 0.6)
    calibration_batches: int = 2

    def __post_init__(self):
        if self.weight_bits < 2 or self.activation_bits < 2:
            raise ValueError("bit widths must be >= 2")
        if not self.clip_candidates:
            raise ValueError("need at least one clip candidate")


def search_clip_ratio(weight: np.ndarray, bits: int, candidates) -> float:
    """Pick the clipping ratio minimising the weight reconstruction MSE."""
    best_ratio, best_mse = 1.0, np.inf
    for ratio in candidates:
        config = IntQuantConfig(bits, Granularity.PER_CHANNEL, clip_ratio=float(ratio))
        w_hat = int_quantize_dequantize(weight, config)
        mse = float(np.mean((weight - w_hat) ** 2))
        if mse < best_mse:
            best_ratio, best_mse = float(ratio), mse
    return best_ratio


def build_omniquant_scheme(model: InferenceModel, corpus: SyntheticCorpus,
                           config: OmniQuantConfig = OmniQuantConfig(),
                           name: str = "OmniQuant") -> QuantizationScheme:
    """Calibrate OmniQuant (clipping + equivalent transformation) on ``model``."""
    original_scheme = model.scheme
    model.set_scheme(QuantizationScheme.fp_reference())
    try:
        stats = collect_linear_input_stats(model, corpus, num_batches=config.calibration_batches)
    finally:
        model.set_scheme(original_scheme)

    scales = {}
    clip_ratios = {}
    for layer_name, act_max in stats.items():
        weight = model.state[f"{layer_name}.weight"]
        scale = compute_smoothing_scales(act_max, weight, config.smoothing_alpha)
        scales[layer_name] = scale
        clip_ratios[layer_name] = search_clip_ratio(
            weight * scale[:, None], config.weight_bits, config.clip_candidates
        )

    act_quant = IntQuantConfig(config.activation_bits, Granularity.PER_TENSOR)

    def weight_fn(layer_name: str, w: np.ndarray) -> np.ndarray:
        scale = scales.get(layer_name)
        ratio = clip_ratios.get(layer_name, 1.0)
        weight_quant = IntQuantConfig(config.weight_bits, Granularity.PER_CHANNEL, clip_ratio=ratio)
        if scale is None:
            return int_quantize_dequantize(w, weight_quant)
        smoothed = w * scale[:, None]
        return int_quantize_dequantize(smoothed, weight_quant) / scale[:, None]

    def activation_fn(layer_name: str, x: np.ndarray) -> np.ndarray:
        scale = scales.get(layer_name)
        if scale is None:
            return int_quantize_dequantize(x, act_quant)
        smoothed = x / scale
        return int_quantize_dequantize(smoothed, act_quant) * scale

    return QuantizationScheme(name=name, weight_fn=weight_fn, activation_fn=activation_fn)
