"""SmoothQuant (Xiao et al., ICML 2023), simplified re-implementation.

SmoothQuant migrates quantisation difficulty from activations to weights: for
every linear layer with input activations ``X`` and weight ``W`` it picks a
per-input-channel scale

    ``s_j = max|X_j|^alpha / max|W_j|^(1-alpha)``

and rewrites the layer as ``(X / s) @ (diag(s) W)``.  The activation outlier
channels shrink by ``s_j`` while the corresponding weight rows grow, after
which both operands are quantised with plain symmetric INT8.

This is the inverse of the outlier-injection transformation used by
:mod:`repro.llm.outliers`, so on the synthetic zoo SmoothQuant behaves exactly
as it does on real LLMs: it repairs most of the activation-outlier damage at
8-bit, but cannot rescue very low-bit settings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.calibration import collect_linear_input_stats
from repro.core.integer import Granularity, IntQuantConfig, int_quantize_dequantize
from repro.llm.dataset import SyntheticCorpus
from repro.llm.inference import InferenceModel, QuantizationScheme

__all__ = ["SmoothQuantConfig", "compute_smoothing_scales", "build_smoothquant_scheme"]


@dataclass(frozen=True)
class SmoothQuantConfig:
    """Hyper-parameters of the simplified SmoothQuant scheme."""

    alpha: float = 0.5
    weight_bits: int = 8
    activation_bits: int = 8
    calibration_batches: int = 2

    def __post_init__(self):
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        if self.weight_bits < 2 or self.activation_bits < 2:
            raise ValueError("bit widths must be >= 2")


def compute_smoothing_scales(activation_max: np.ndarray, weight: np.ndarray,
                             alpha: float) -> np.ndarray:
    """Per-input-channel smoothing scales ``s_j`` (clamped away from zero)."""
    activation_max = np.asarray(activation_max, dtype=np.float64)
    weight_max = np.abs(np.asarray(weight, dtype=np.float64)).max(axis=1)
    act = np.maximum(activation_max, 1e-5)
    wgt = np.maximum(weight_max, 1e-5)
    scales = act**alpha / wgt ** (1.0 - alpha)
    return np.clip(scales, 1e-4, 1e4)


def build_smoothquant_scheme(model: InferenceModel, corpus: SyntheticCorpus,
                             config: SmoothQuantConfig = SmoothQuantConfig(),
                             name: str = "SmoothQuant") -> QuantizationScheme:
    """Calibrate SmoothQuant on ``model`` and return the resulting inference scheme."""
    original_scheme = model.scheme
    model.set_scheme(QuantizationScheme.fp_reference())
    try:
        stats = collect_linear_input_stats(model, corpus, num_batches=config.calibration_batches)
    finally:
        model.set_scheme(original_scheme)

    scales = {}
    for layer_name, act_max in stats.items():
        weight = model.state[f"{layer_name}.weight"]
        scales[layer_name] = compute_smoothing_scales(act_max, weight, config.alpha)

    weight_quant = IntQuantConfig(config.weight_bits, Granularity.PER_CHANNEL)
    act_quant = IntQuantConfig(config.activation_bits, Granularity.PER_TENSOR)

    def weight_fn(layer_name: str, w: np.ndarray) -> np.ndarray:
        scale = scales.get(layer_name)
        if scale is None:
            return int_quantize_dequantize(w, weight_quant)
        smoothed = w * scale[:, None]
        return int_quantize_dequantize(smoothed, weight_quant) / scale[:, None]

    def activation_fn(layer_name: str, x: np.ndarray) -> np.ndarray:
        scale = scales.get(layer_name)
        if scale is None:
            return int_quantize_dequantize(x, act_quant)
        smoothed = x / scale
        return int_quantize_dequantize(smoothed, act_quant) * scale

    return QuantizationScheme(name=name, weight_fn=weight_fn, activation_fn=activation_fn)
