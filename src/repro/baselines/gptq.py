"""GPTQ (Frantar et al., 2022), simplified re-implementation.

GPTQ is the most widely used post-training *weight* quantiser for LLMs and is
cited by the paper as one of the fixed point PTQ methods BBFP is positioned
against.  It quantises a linear layer one input feature at a time and, after
rounding each slice, distributes the rounding error over the not-yet-quantised
input features using the inverse of the layer Hessian ``H = X^T X`` measured
on calibration data — so the *layer output* error, not the weight error, is
minimised.

This re-implementation keeps the algorithmic core (per-output-channel grids,
damped Hessian, sequential error compensation) and drops the engineering
optimisations of the released CUDA code (lazy batch updates, Cholesky kernels,
group-wise scale refresh), which only matter at billion-parameter scale.  It
plugs into the same :class:`repro.llm.inference.QuantizationScheme` interface
as every other comparator, and pairs the quantised weights with optional
integer activation quantisation so it can sit in the Table II style
weight–activation comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.calibration import collect_linear_input_hessians
from repro.core.integer import Granularity, IntQuantConfig, int_quantize_dequantize
from repro.llm.dataset import SyntheticCorpus
from repro.llm.inference import InferenceModel, QuantizationScheme

__all__ = ["GPTQConfig", "gptq_quantize_weight", "build_gptq_scheme"]


@dataclass(frozen=True)
class GPTQConfig:
    """Hyper-parameters of the simplified GPTQ scheme (W4 weight-only by default).

    Parameters
    ----------
    weight_bits:
        Bit width of the symmetric per-output-channel weight grid.
    activation_bits:
        Optional integer activation quantisation (``None`` keeps activations
        in floating point — the setting GPTQ itself is defined for).
    percdamp:
        Dampening added to the Hessian diagonal as a fraction of its mean,
        exactly as in the released implementation (stabilises the inverse when
        calibration batches are small).
    calibration_batches:
        Number of calibration batches used to accumulate ``X^T X``.
    """

    weight_bits: int = 4
    activation_bits: int = None
    percdamp: float = 0.01
    calibration_batches: int = 2

    def __post_init__(self):
        if self.weight_bits < 2:
            raise ValueError("weight_bits must be >= 2")
        if self.activation_bits is not None and self.activation_bits < 2:
            raise ValueError("activation_bits must be >= 2 (or None)")
        if self.percdamp <= 0:
            raise ValueError("percdamp must be positive")


def _per_channel_scales(weight: np.ndarray, bits: int) -> np.ndarray:
    """Symmetric per-output-channel scales (one per column of the ``(in, out)`` weight)."""
    max_code = (1 << (bits - 1)) - 1
    absmax = np.abs(weight).max(axis=0)
    absmax = np.where(absmax > 0, absmax, 1.0)
    return absmax / max_code


def _quantize_row(row: np.ndarray, scales: np.ndarray, bits: int) -> np.ndarray:
    """Round one input-feature slice onto the per-output-channel grid."""
    max_code = (1 << (bits - 1)) - 1
    codes = np.clip(np.rint(row / scales), -max_code, max_code)
    return codes * scales


def gptq_quantize_weight(weight: np.ndarray, hessian: np.ndarray,
                         config: GPTQConfig = GPTQConfig()) -> np.ndarray:
    """Quantise an ``(in_features, out_features)`` weight with Hessian-aware compensation.

    Parameters
    ----------
    weight:
        The layer weight, reduction axis first (the layout used by
        :class:`repro.llm.inference.InferenceModel`).
    hessian:
        ``X^T X`` accumulated over calibration activations, shape
        ``(in_features, in_features)``.
    config:
        GPTQ hyper-parameters.

    Returns
    -------
    numpy.ndarray
        The fake-quantised weight (same shape, every entry on the grid of its
        output channel).
    """
    weight = np.asarray(weight, dtype=np.float64)
    hessian = np.asarray(hessian, dtype=np.float64)
    in_features, _ = weight.shape
    if hessian.shape != (in_features, in_features):
        raise ValueError(
            f"hessian shape {hessian.shape} does not match in_features={in_features}"
        )

    # Dead input features (never activated during calibration) carry no output
    # signal; pin their Hessian diagonal so the inverse exists and zero them.
    work = weight.copy()
    diag = np.diag(hessian).copy()
    dead = diag == 0
    damp = config.percdamp * float(diag.mean()) if diag.mean() > 0 else config.percdamp
    hessian = hessian + np.eye(in_features) * damp
    if np.any(dead):
        hessian[dead, dead] = 1.0
        work[dead, :] = 0.0

    # The OBS recursion needs the inverse Hessian of the *remaining* feature
    # set after each elimination; the upper Cholesky factor of H^-1 encodes
    # exactly that (the trick the released GPTQ implementation uses).
    hinv = np.linalg.inv(hessian)
    hinv_upper = np.linalg.cholesky(hinv).T

    scales = _per_channel_scales(weight, config.weight_bits)
    quantised = np.empty_like(work)

    for i in range(in_features):
        q_row = _quantize_row(work[i, :], scales, config.weight_bits)
        quantised[i, :] = q_row
        error = (work[i, :] - q_row) / hinv_upper[i, i]
        if i + 1 < in_features:
            # Distribute the rounding error over the not-yet-quantised slices.
            work[i + 1 :, :] -= np.outer(hinv_upper[i, i + 1 :], error)
    return quantised


def build_gptq_scheme(model: InferenceModel, corpus: SyntheticCorpus,
                      config: GPTQConfig = GPTQConfig(),
                      name: str = "GPTQ") -> QuantizationScheme:
    """Calibrate GPTQ on ``model`` and return the resulting quantisation scheme.

    The Hessian of every linear layer is measured with the FP reference scheme
    (calibration never sees quantisation noise), after which each weight is
    quantised with :func:`gptq_quantize_weight`.  Activations are quantised
    with a per-tensor integer grid only when ``config.activation_bits`` is set.
    """
    original_scheme = model.scheme
    model.set_scheme(QuantizationScheme.fp_reference())
    try:
        hessians = collect_linear_input_hessians(
            model, corpus, num_batches=config.calibration_batches
        )
    finally:
        model.set_scheme(original_scheme)

    quantised_weights = {}
    for layer_name, hessian in hessians.items():
        weight = model.state[f"{layer_name}.weight"]
        quantised_weights[layer_name] = gptq_quantize_weight(weight, hessian, config)

    rtn_fallback = IntQuantConfig(config.weight_bits, Granularity.PER_CHANNEL)

    def weight_fn(layer_name: str, w: np.ndarray) -> np.ndarray:
        if layer_name in quantised_weights:
            return quantised_weights[layer_name]
        # Layers never exercised during calibration fall back to round-to-nearest.
        return int_quantize_dequantize(w, rtn_fallback)

    if config.activation_bits is None:
        return QuantizationScheme(name=name, weight_fn=weight_fn)

    act_quant = IntQuantConfig(config.activation_bits, Granularity.PER_TENSOR)

    def activation_fn(layer_name: str, x: np.ndarray) -> np.ndarray:
        return int_quantize_dequantize(x, act_quant)

    return QuantizationScheme(name=name, weight_fn=weight_fn, activation_fn=activation_fn)
