"""Comparator quantisation schemes (Table II / Fig. 8 baselines).

The paper compares BBFP against four published weight–activation quantisation
methods.  Their released implementations target GPU kernels and Hugging Face
checkpoints, so this package re-implements the *quantisation semantics* each
method applies to a linear layer, plugged into the same
:class:`repro.llm.inference.QuantizationScheme` interface as the block
formats:

* :mod:`repro.baselines.smoothquant` — per-channel difficulty migration from
  activations to weights, then INT8 quantisation;
* :mod:`repro.baselines.omniquant` — learnable (here: grid-searched) weight
  clipping plus smoothing, for low-bit weight–activation quantisation;
* :mod:`repro.baselines.olive` — outlier-victim pair encoding: outliers gain
  range by sacrificing their neighbour;
* :mod:`repro.baselines.oltron` — outlier-aware quantisation with a fixed
  outlier budget adapted across/within layers;
* :mod:`repro.baselines.gptq` — Hessian-aware sequential weight quantisation
  with error compensation (weight-only PTQ).
"""

from repro.baselines.smoothquant import SmoothQuantConfig, build_smoothquant_scheme
from repro.baselines.omniquant import OmniQuantConfig, build_omniquant_scheme
from repro.baselines.olive import OliveConfig, olive_quantize_dequantize, build_olive_scheme
from repro.baselines.oltron import OltronConfig, oltron_quantize_dequantize, build_oltron_scheme
from repro.baselines.gptq import GPTQConfig, gptq_quantize_weight, build_gptq_scheme
from repro.baselines.calibration import collect_linear_input_hessians, collect_linear_input_stats

__all__ = [
    "SmoothQuantConfig",
    "build_smoothquant_scheme",
    "OmniQuantConfig",
    "build_omniquant_scheme",
    "OliveConfig",
    "olive_quantize_dequantize",
    "build_olive_scheme",
    "OltronConfig",
    "oltron_quantize_dequantize",
    "build_oltron_scheme",
    "GPTQConfig",
    "gptq_quantize_weight",
    "build_gptq_scheme",
    "collect_linear_input_stats",
    "collect_linear_input_hessians",
]
