"""Minifloat (FP16 / FP8 / FP4) rounding used as baselines and conversion sources.

The paper's conversion pipeline starts from FP16 tensors (11-bit mantissa with
the implicit leading one) and quantises them to BFP or BBFP.  It also cites
FP8/FP4 as alternative wide-dynamic-range formats.  This module rounds a
float64 numpy array to the nearest value representable in a narrow
:class:`~repro.core.floatspec.FloatSpec`, including subnormal handling and
saturation to the largest finite value.
"""

from __future__ import annotations

import numpy as np

from repro.core.floatspec import (
    BF16,
    FP4_E2M1,
    FP8_E4M3,
    FP8_E5M2,
    FP16,
    FP32,
    FloatSpec,
    exponent_of,
)

__all__ = [
    "minifloat_quantize_dequantize",
    "FP16",
    "FP32",
    "BF16",
    "FP8_E4M3",
    "FP8_E5M2",
    "FP4_E2M1",
    "fp16_round",
]


def minifloat_quantize_dequantize(x: np.ndarray, spec: FloatSpec) -> np.ndarray:
    """Round ``x`` to the nearest value representable in ``spec``.

    Values larger than the format maximum saturate (no infinities are
    produced), values below the smallest subnormal flush to zero, and the
    subnormal range uses the fixed step ``2**(min_exponent - mantissa_bits)``.
    """
    x = np.asarray(x, dtype=np.float64)
    sign = np.where(np.signbit(x), -1.0, 1.0)
    mag = np.abs(x)

    exp = exponent_of(mag, zero_exponent=spec.min_exponent)
    exp = np.clip(exp, spec.min_exponent, spec.max_exponent)
    # Quantisation step in the binade of each value; the subnormal range of a
    # minifloat keeps the step of the smallest normal binade.
    step = np.exp2(exp.astype(np.float64) - spec.mantissa_bits)
    rounded = np.rint(mag / step) * step
    rounded = np.minimum(rounded, spec.max_value)
    return sign * rounded


def fp16_round(x: np.ndarray) -> np.ndarray:
    """Round to FP16 via numpy's native half type (exact IEEE behaviour)."""
    return np.asarray(x, dtype=np.float64).astype(np.float16).astype(np.float64)
