"""Bi-Exponent block floating point (BiE) — the format of the paper's reference [18].

BiE ("Bi-Exponent Block Floating-Point for Large Language Models Quantization",
ICML 2024) attacks the same weakness of vanilla BFP that BBFP does — aligning
everything to the block maximum destroys small and moderate values — but with a
different mechanism: instead of a per-element flag with one shared exponent,
each block stores *two* shared exponents.  The few largest elements of the
block (the "outlier sub-group") align to the larger exponent; everything else
aligns to a smaller exponent chosen from the remaining elements, so the bulk of
the block keeps its resolution.  A 1-bit per-element group-select records which
exponent applies.

Storage per element is therefore identical to BBFP (sign + select bit +
``m``-bit mantissa, two 5-bit exponents amortised over the block versus one),
which makes BiE the natural "same budget, different mechanism" comparator for
the accuracy ablations: the reproduction's extended format study quantifies how
much of BBFP's gain comes from the bidirectional-shift idea specifically rather
than from merely having a second alignment level.

The implementation mirrors :mod:`repro.core.blockfp`: ``BiEConfig``,
``BiETensor``, ``quantize_bie`` and ``bie_quantize_dequantize``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.blocking import BlockLayout, from_blocks, to_blocks
from repro.core.floatspec import exponent_of
from repro.core.rounding import RoundingMode, round_magnitudes
from repro.core.serializable import SerializableConfig

__all__ = ["BiEConfig", "BiETensor", "quantize_bie", "bie_quantize_dequantize"]


@dataclass(frozen=True)
class BiEConfig(SerializableConfig):
    """Configuration of a BiE (bi-exponent BFP) format.

    Parameters
    ----------
    mantissa_bits:
        Magnitude bits stored per element (the sign is stored separately).
    outlier_count:
        How many of the largest-magnitude elements per block join the
        high-exponent sub-group (the ICML paper uses a small fixed budget;
        2 out of 32 by default here).
    block_size:
        Elements sharing the pair of exponents (32, matching BFP/BBFP).
    exponent_bits:
        Width of *each* of the two shared exponent fields (5, matching the
        paper's BFP/BBFP configurations).
    rounding:
        Mantissa rounding mode (round-to-nearest by default).
    """

    mantissa_bits: int
    outlier_count: int = 2
    block_size: int = 32
    exponent_bits: int = 5
    rounding: RoundingMode = RoundingMode.NEAREST

    def __post_init__(self):
        if self.mantissa_bits < 1:
            raise ValueError(f"mantissa_bits must be >= 1, got {self.mantissa_bits}")
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if not 0 <= self.outlier_count < self.block_size:
            raise ValueError(
                f"outlier_count must satisfy 0 <= count < block_size, "
                f"got count={self.outlier_count} block_size={self.block_size}"
            )
        if self.exponent_bits < 2:
            raise ValueError(f"exponent_bits must be >= 2, got {self.exponent_bits}")

    @property
    def name(self) -> str:
        return f"BiE{self.mantissa_bits}(k={self.outlier_count})"

    @property
    def max_mantissa_level(self) -> int:
        """Largest stored magnitude code, ``2**m - 1``."""
        return (1 << self.mantissa_bits) - 1

    @property
    def exponent_min(self) -> int:
        return -(1 << (self.exponent_bits - 1)) + 1

    @property
    def exponent_max(self) -> int:
        return 1 << (self.exponent_bits - 1)

    def equivalent_bit_width(self) -> float:
        """Average storage bits per element: ``m`` + sign + select + two amortised exponents."""
        return self.mantissa_bits + 2 + 2 * self.exponent_bits / self.block_size

    def memory_efficiency(self, reference_bits: float = 16.0) -> float:
        """Memory density improvement relative to FP16 (Table I "Mem Eff.")."""
        return reference_bits / self.equivalent_bit_width()

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Fake-quantise ``x`` (hook used by :class:`repro.llm.inference.QuantizationScheme`)."""
        return bie_quantize_dequantize(x, self, axis=axis)


@dataclass
class BiETensor:
    """A tensor quantised to BiE, stored with hardware-faithful fields.

    Attributes
    ----------
    config:
        The :class:`BiEConfig` used for quantisation.
    signs:
        ``+/-1`` per element, blocked shape ``(..., num_blocks, block_size)``.
    selects:
        Per-element group select (0 = bulk / low exponent, 1 = outlier / high
        exponent).
    mantissas:
        Integer magnitude codes in ``[0, 2**m - 1]``.
    high_exponents, low_exponents:
        The two shared exponents per block, shape ``(..., num_blocks)``.
    layout:
        Blocking metadata used to restore the original tensor shape.
    """

    config: BiEConfig
    signs: np.ndarray
    selects: np.ndarray
    mantissas: np.ndarray
    high_exponents: np.ndarray
    low_exponents: np.ndarray
    layout: BlockLayout = field(repr=False)

    @property
    def block_values(self) -> np.ndarray:
        """Real values of each block element (still in blocked layout)."""
        m = self.config.mantissa_bits
        high_step = np.exp2(self.high_exponents[..., None].astype(np.float64) - (m - 1))
        low_step = np.exp2(self.low_exponents[..., None].astype(np.float64) - (m - 1))
        step = np.where(self.selects == 1, high_step, low_step)
        return self.signs * self.mantissas.astype(np.float64) * step

    def dequantize(self) -> np.ndarray:
        """Reconstruct a dense float tensor in the original shape."""
        return from_blocks(self.block_values, self.layout)

    def memory_bits(self) -> int:
        """Total storage footprint (mantissas + signs + selects + both exponents)."""
        elements = int(np.prod(self.mantissas.shape))
        blocks = int(np.prod(self.high_exponents.shape))
        return elements * (self.config.mantissa_bits + 2) + blocks * 2 * self.config.exponent_bits

    def outlier_fraction(self) -> float:
        """Fraction of elements in the high-exponent sub-group."""
        return float(np.mean(self.selects))


def quantize_bie(x: np.ndarray, config: BiEConfig, axis: int = -1,
                 rng: np.random.Generator = None) -> BiETensor:
    """Quantise ``x`` to BiE along ``axis``.

    Per block:

    1. the ``outlier_count`` largest-magnitude elements are *candidates* for
       the high group, whose shared exponent is the block maximum (vanilla
       BFP alignment);
    2. the remaining elements form the low group, whose shared exponent is the
       maximum exponent *within that group* — so the bulk of the block keeps
       full mantissa resolution;
    3. candidates that the low group could represent without clipping are
       demoted back to it (they gain nothing from the coarse grid and would
       only lose precision there);
    4. both groups round their mantissas to ``m`` bits relative to their own
       group's step.
    """
    blocks, layout = to_blocks(x, config.block_size, axis=axis)
    exponents = exponent_of(blocks)
    magnitudes = np.abs(blocks)
    m = config.mantissa_bits

    if config.outlier_count > 0:
        # Rank-based candidate selection: the outlier_count largest per block.
        order = np.argsort(-magnitudes, axis=-1, kind="stable")
        rank = np.empty_like(order)
        np.put_along_axis(rank, order, np.broadcast_to(np.arange(config.block_size),
                                                       magnitudes.shape).copy(), axis=-1)
        selects = ((rank < config.outlier_count) & (magnitudes > 0)).astype(np.int8)
    else:
        selects = np.zeros_like(magnitudes, dtype=np.int8)

    high_exp = exponents.max(axis=-1)
    low_candidates = np.where(selects == 1, np.iinfo(np.int64).min, exponents)
    low_exp = low_candidates.max(axis=-1)
    # Blocks whose every element is an outlier (tiny blocks) fall back to the max.
    low_exp = np.where(low_exp == np.iinfo(np.int64).min, high_exp, low_exp)

    high_exp = np.clip(high_exp, config.exponent_min, config.exponent_max)
    low_exp = np.clip(low_exp, config.exponent_min, config.exponent_max)

    # Demote candidates the low grid can hold without clipping: the coarse grid
    # would only cost them precision, and demotion keeps the low-group exponent
    # unchanged (a representable magnitude is below 2**(low_exp + 1)).
    low_reach = config.max_mantissa_level * np.exp2(low_exp[..., None].astype(np.float64) - (m - 1))
    selects = np.where((selects == 1) & (magnitudes <= low_reach), 0, selects).astype(np.int8)
    high_step = np.exp2(high_exp[..., None].astype(np.float64) - (m - 1))
    low_step = np.exp2(low_exp[..., None].astype(np.float64) - (m - 1))
    step = np.where(selects == 1, high_step, low_step)

    signs = np.where(blocks < 0, -1.0, 1.0)
    codes = round_magnitudes(magnitudes / step, config.rounding, rng=rng)
    codes = np.clip(codes, 0, config.max_mantissa_level).astype(np.int64)
    return BiETensor(
        config=config,
        signs=signs,
        selects=selects,
        mantissas=codes,
        high_exponents=high_exp,
        low_exponents=low_exp,
        layout=layout,
    )


def bie_quantize_dequantize(x: np.ndarray, config: BiEConfig, axis: int = -1,
                            rng: np.random.Generator = None) -> np.ndarray:
    """Quantise then immediately dequantise (fake quantisation for accuracy studies)."""
    return quantize_bie(x, config, axis=axis, rng=rng).dequantize()
