"""Small shared statistics helpers for report summaries.

The serving and cluster reports both summarise latency samples as scaled
percentiles (``ttft_p50_ms``, ``latency_p95_ms``...).  :func:`percentile_summary`
is the one implementation of that row shape, so every report computes and
names its percentiles identically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["percentile_summary", "load_imbalance"]


def percentile_summary(values, prefix: str, percentiles=(50, 95), scale: float = 1.0,
                       unit: str = "") -> dict:
    """Named percentiles of a sample: ``{f"{prefix}_p{p}[_{unit}]": value}``.

    ``scale`` converts units on the way out (``1e3`` for seconds -> ms);
    an empty sample yields ``nan`` for every percentile so report rows keep
    a stable shape even when nothing completed.
    """
    sample = np.asarray(list(values), dtype=float)
    summary = {}
    for p in percentiles:
        key = f"{prefix}_p{int(p)}" + (f"_{unit}" if unit else "")
        summary[key] = float(np.percentile(sample, p)) * scale if sample.size else float("nan")
    return summary


def load_imbalance(loads) -> float:
    """Max-over-mean load ratio across workers: 1.0 = perfectly balanced.

    The standard fleet imbalance metric (the makespan penalty of the current
    placement): a value of 2.0 means the busiest worker carries twice the
    mean load, so the fleet finishes half as fast as a perfectly balanced
    assignment of the same work.  A fleet with no load at all is balanced by
    definition (1.0); an empty fleet has no defined imbalance (``nan``).
    """
    sample = np.asarray(list(loads), dtype=float)
    if sample.size == 0:
        return float("nan")
    mean = float(sample.mean())
    if mean == 0.0:
        return 1.0
    return float(sample.max()) / mean
