"""Shared-exponent selection strategies for block floating point formats.

Section III-C of the paper studies how the choice of the *shared* exponent of
a block trades the error of large values (clipped or truncated when the shared
exponent is too small) against the error of small/moderate values (right
shifted out of the mantissa when the shared exponent is too large).

The strategies implemented here are exactly the ones compared in Fig. 3:

``MAX``
    Vanilla BFP alignment: ``E_shared = max(E)``.
``BBFP_DEFAULT``
    The paper's proposal (Eq. 9): ``E_shared = max(E) - (m - o)``.
``BBFP_PLUS_ONE`` (a.k.a. *max-1* in Fig. 3 for BBFP(4,2))
    ``E_shared = max(E) - (m - o) + 1`` — biased towards larger shared
    exponents, hurting small values.
``BBFP_MINUS_ONE`` (a.k.a. *max-3* in Fig. 3 for BBFP(4,2))
    ``E_shared = max(E) - (m - o) - 1`` — the most significant bit of the
    largest element falls outside the truncation window, causing large error.
``MAX_MINUS_K``
    Generic ``E_shared = max(E) - k`` used for ablations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ExponentStrategy",
    "SharedExponentRule",
    "select_shared_exponent",
    "strategy_from_name",
    "shift_for_strategy",
]


class ExponentStrategy(enum.Enum):
    """Enumeration of shared-exponent selection strategies."""

    MAX = "max"
    BBFP_DEFAULT = "bbfp_default"
    BBFP_PLUS_ONE = "bbfp_plus_one"
    BBFP_MINUS_ONE = "bbfp_minus_one"
    MAX_MINUS_K = "max_minus_k"


_ALIASES = {
    "max": ExponentStrategy.MAX,
    "bfp": ExponentStrategy.MAX,
    "bbfp_default": ExponentStrategy.BBFP_DEFAULT,
    "default": ExponentStrategy.BBFP_DEFAULT,
    "max-2": ExponentStrategy.BBFP_DEFAULT,
    "bbfp_plus_one": ExponentStrategy.BBFP_PLUS_ONE,
    "max-1": ExponentStrategy.BBFP_PLUS_ONE,
    "bbfp_minus_one": ExponentStrategy.BBFP_MINUS_ONE,
    "max-3": ExponentStrategy.BBFP_MINUS_ONE,
    "max_minus_k": ExponentStrategy.MAX_MINUS_K,
}


def strategy_from_name(name) -> ExponentStrategy:
    """Resolve a strategy from an :class:`ExponentStrategy` or a string alias.

    The Fig. 3 aliases ``"max-1"``, ``"max-2"``, ``"max-3"`` (which the paper
    uses for BBFP(4,2), where ``m - o == 2``) are accepted as well.
    """
    if isinstance(name, ExponentStrategy):
        return name
    key = str(name).strip().lower()
    if key not in _ALIASES:
        raise ValueError(
            f"unknown shared-exponent strategy {name!r}; "
            f"known: {sorted(set(_ALIASES))}"
        )
    return _ALIASES[key]


def shift_for_strategy(
    strategy: ExponentStrategy, mantissa_bits: int, overlap_bits: int, k: int = 0
) -> int:
    """Return the offset subtracted from ``max(E)`` for ``strategy``.

    ``E_shared = max(E) - shift``.
    """
    strategy = strategy_from_name(strategy)
    if strategy is ExponentStrategy.MAX:
        return 0
    if strategy is ExponentStrategy.BBFP_DEFAULT:
        return mantissa_bits - overlap_bits
    if strategy is ExponentStrategy.BBFP_PLUS_ONE:
        return mantissa_bits - overlap_bits - 1
    if strategy is ExponentStrategy.BBFP_MINUS_ONE:
        return mantissa_bits - overlap_bits + 1
    if strategy is ExponentStrategy.MAX_MINUS_K:
        return k
    raise ValueError(f"unhandled strategy {strategy}")


@dataclass(frozen=True)
class SharedExponentRule:
    """A fully-resolved shared-exponent rule (strategy + format parameters)."""

    strategy: ExponentStrategy
    mantissa_bits: int
    overlap_bits: int = 0
    k: int = 0

    @property
    def shift(self) -> int:
        return shift_for_strategy(self.strategy, self.mantissa_bits, self.overlap_bits, self.k)

    def apply(self, max_exponents: np.ndarray) -> np.ndarray:
        """Compute shared exponents from per-block maximum exponents."""
        return np.asarray(max_exponents, dtype=np.int64) - self.shift


def select_shared_exponent(
    block_exponents: np.ndarray,
    strategy,
    mantissa_bits: int,
    overlap_bits: int = 0,
    k: int = 0,
    exponent_min: int = -14,
    exponent_max: int = 16,
) -> np.ndarray:
    """Select a shared exponent per block.

    Parameters
    ----------
    block_exponents:
        Array of per-element exponents with shape ``(..., block_size)``; the
        reduction happens over the last axis.
    strategy:
        Strategy name or :class:`ExponentStrategy`.
    mantissa_bits, overlap_bits:
        Format parameters used by the BBFP strategies.
    k:
        Offset used by ``MAX_MINUS_K``.
    exponent_min, exponent_max:
        Clamping range for the stored shared exponent; by default a 5-bit
        biased exponent field (the paper fixes the shared exponent width at
        5 bits for all configurations).

    Returns
    -------
    numpy.ndarray
        Integer shared exponents with shape ``block_exponents.shape[:-1]``.
    """
    strategy = strategy_from_name(strategy)
    exps = np.asarray(block_exponents, dtype=np.int64)
    max_exp = exps.max(axis=-1)
    rule = SharedExponentRule(strategy, mantissa_bits, overlap_bits, k)
    shared = rule.apply(max_exp)
    return np.clip(shared, exponent_min, exponent_max)
