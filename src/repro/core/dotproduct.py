"""Integer-exact dot product semantics for BFP and BBFP (the MAC datapath).

Section IV-A of the paper derives the hardware datapath from the data format:

* the dot product of two BFP blocks is a single shared-exponent addition plus
  a sum of small integer mantissa products (Eq. 3);
* BBFP adds a flag-controlled left shift of ``m - o`` bits per operand
  (Eq. 7 / Eq. 10), so the 4-bit x 4-bit multiply of BBFP(4,2) produces a
  12-bit product of which 4 bits are constant zero — the structured bit-level
  sparsity the carry-chain adder exploits.

These functions compute the dot product *exactly as the hardware would*, using
integer mantissa arithmetic, and are checked in the tests against the
"mathematical" path (dequantise then ``numpy.dot``).  They are the golden
reference for :mod:`repro.hardware.mac` and the accelerator simulator.
"""

from __future__ import annotations

import numpy as np

from repro.core.bbfp import BBFPConfig, BBFPTensor, quantize_bbfp
from repro.core.blockfp import BFPConfig, BFPTensor, quantize_bfp

__all__ = [
    "bfp_block_dot",
    "bbfp_block_dot",
    "bfp_dot",
    "bbfp_dot",
    "bbfp_matmul",
    "bfp_matmul",
    "bbfp_product_shift",
]


def _check_same_blocking(a, b):
    if a.mantissas.shape != b.mantissas.shape:
        raise ValueError(
            f"operands must share blocking, got {a.mantissas.shape} vs {b.mantissas.shape}"
        )


def bfp_block_dot(a: BFPTensor, b: BFPTensor) -> np.ndarray:
    """Exact per-block dot product of two BFP tensors (Eq. 3).

    Returns an array of per-block partial results with shape
    ``(..., num_blocks)``; summing over the last axis gives the full dot
    product of the underlying vectors.
    """
    _check_same_blocking(a, b)
    signs = a.signs * b.signs
    products = a.mantissas.astype(np.int64) * b.mantissas.astype(np.int64)
    partial = np.sum(signs * products, axis=-1)
    scale = np.exp2(
        a.shared_exponents.astype(np.float64)
        + b.shared_exponents.astype(np.float64)
        - (a.config.mantissa_bits - 1)
        - (b.config.mantissa_bits - 1)
    )
    return partial * scale


def bbfp_product_shift(flag_a: np.ndarray, flag_b: np.ndarray, config_a: BBFPConfig,
                       config_b: BBFPConfig) -> np.ndarray:
    """Left-shift amount applied to each mantissa product (Eq. 10).

    ``0`` when both flags are 0, ``m - o`` when exactly one flag is set and
    ``2 (m - o)`` when both are set (for equal configurations; mixed
    configurations add each operand's own shift).
    """
    shift_a = np.where(flag_a == 1, config_a.mantissa_bits - config_a.overlap_bits, 0)
    shift_b = np.where(flag_b == 1, config_b.mantissa_bits - config_b.overlap_bits, 0)
    return shift_a + shift_b


def bbfp_block_dot(a: BBFPTensor, b: BBFPTensor) -> np.ndarray:
    """Exact per-block dot product of two BBFP tensors (Eq. 7).

    The mantissa products are integer multiplies followed by the
    flag-controlled left shift of Eq. 10; the result is scaled by the two
    shared exponents exactly once per block.
    """
    _check_same_blocking(a, b)
    signs = a.signs * b.signs
    shifts = bbfp_product_shift(a.flags, b.flags, a.config, b.config)
    products = (a.mantissas.astype(np.int64) * b.mantissas.astype(np.int64)) << shifts.astype(
        np.int64
    )
    partial = np.sum(signs * products, axis=-1)
    scale = np.exp2(
        a.shared_exponents.astype(np.float64)
        + b.shared_exponents.astype(np.float64)
        - (a.config.mantissa_bits - 1)
        - (b.config.mantissa_bits - 1)
    )
    return partial * scale


def bfp_dot(x: np.ndarray, y: np.ndarray, config: BFPConfig) -> float:
    """Quantise two vectors to BFP and compute their dot product with integer semantics."""
    a = quantize_bfp(np.asarray(x, dtype=np.float64), config)
    b = quantize_bfp(np.asarray(y, dtype=np.float64), config)
    return float(np.sum(bfp_block_dot(a, b)))


def bbfp_dot(x: np.ndarray, y: np.ndarray, config: BBFPConfig) -> float:
    """Quantise two vectors to BBFP and compute their dot product with integer semantics."""
    a = quantize_bbfp(np.asarray(x, dtype=np.float64), config)
    b = quantize_bbfp(np.asarray(y, dtype=np.float64), config)
    return float(np.sum(bbfp_block_dot(a, b)))


def _blocked_matmul(x: np.ndarray, w: np.ndarray, quantizer, block_dot) -> np.ndarray:
    """Shared implementation of the quantised matmul ``x @ w``.

    ``x`` has shape ``(..., K)`` and ``w`` has shape ``(K, N)``.  Both operands
    are quantised along the reduction axis ``K`` (the axis that shares
    exponents in the accelerator) and every output element is produced by the
    integer block-dot datapath.
    """
    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    if x.shape[-1] != w.shape[0]:
        raise ValueError(f"inner dimensions do not match: {x.shape} @ {w.shape}")
    xq = quantizer(x)  # blocks along last axis of x
    wq = quantizer(w.T)  # blocks along K for each output column
    # Dequantised operands reproduce the quantisation error; the integer path
    # is exactly equivalent (verified by tests), so the matmul itself can use
    # the dequantised values for throughput while individual block dots remain
    # available through `block_dot` for bit-exact checks.
    x_hat = xq.dequantize()
    w_hat = wq.dequantize().T
    return x_hat @ w_hat


def bfp_matmul(x: np.ndarray, w: np.ndarray, config: BFPConfig) -> np.ndarray:
    """Matrix multiply with both operands quantised to BFP along the reduction axis."""
    return _blocked_matmul(x, w, lambda t: quantize_bfp(t, config), bfp_block_dot)


def bbfp_matmul(x: np.ndarray, w: np.ndarray, config: BBFPConfig) -> np.ndarray:
    """Matrix multiply with both operands quantised to BBFP along the reduction axis."""
    return _blocked_matmul(x, w, lambda t: quantize_bbfp(t, config), bbfp_block_dot)
