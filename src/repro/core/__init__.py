"""Core numeric formats and quantisation algorithms.

The modules in this package implement the paper's primary contribution: the
Bidirectional Block Floating Point (BBFP) data format, together with the
classic Block Floating Point (BFP), integer, minifloat, microscaling (MX) and
bi-exponent (BiE) formats it is compared against, the shared-exponent
selection strategies, the mantissa rounding modes, the analytic
quantisation-error model and the overlap-bit-width search algorithm.
"""

from repro.core.floatspec import FloatSpec, decompose_float, exponent_of
from repro.core.blockfp import BFPConfig, BFPTensor, quantize_bfp, bfp_quantize_dequantize
from repro.core.bbfp import BBFPConfig, BBFPTensor, quantize_bbfp, bbfp_quantize_dequantize
from repro.core.bie import BiEConfig, BiETensor, quantize_bie, bie_quantize_dequantize
from repro.core.integer import IntQuantConfig, int_quantize_dequantize
from repro.core.fp_formats import minifloat_quantize_dequantize
from repro.core.microscaling import (
    MXConfig,
    MXTensor,
    MXFP4,
    MXFP6_E2M3,
    MXFP6_E3M2,
    MXFP8,
    quantize_mx,
    mx_quantize_dequantize,
)
from repro.core.rounding import RoundingMode, round_magnitudes, rounding_from_name
from repro.core.exponent_selection import (
    ExponentStrategy,
    select_shared_exponent,
    strategy_from_name,
)

__all__ = [
    "FloatSpec",
    "decompose_float",
    "exponent_of",
    "BFPConfig",
    "BFPTensor",
    "quantize_bfp",
    "bfp_quantize_dequantize",
    "BBFPConfig",
    "BBFPTensor",
    "quantize_bbfp",
    "bbfp_quantize_dequantize",
    "BiEConfig",
    "BiETensor",
    "quantize_bie",
    "bie_quantize_dequantize",
    "IntQuantConfig",
    "int_quantize_dequantize",
    "minifloat_quantize_dequantize",
    "MXConfig",
    "MXTensor",
    "MXFP4",
    "MXFP6_E2M3",
    "MXFP6_E3M2",
    "MXFP8",
    "quantize_mx",
    "mx_quantize_dequantize",
    "RoundingMode",
    "round_magnitudes",
    "rounding_from_name",
    "ExponentStrategy",
    "select_shared_exponent",
    "strategy_from_name",
]
