"""Helpers for reshaping tensors into fixed-size blocks along one axis.

Both BFP and BBFP operate on blocks of ``block_size`` consecutive elements
taken along a chosen axis (the paper uses blocks of 32 along the reduction
dimension of the matrix multiplication).  These helpers move the blocking
axis last, pad it to a multiple of the block size and restore the original
layout after dequantisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockLayout", "to_blocks", "from_blocks"]


@dataclass(frozen=True)
class BlockLayout:
    """Records how a tensor was reshaped into blocks so it can be restored."""

    original_shape: tuple
    axis: int
    block_size: int
    padded_length: int

    @property
    def axis_length(self) -> int:
        return self.original_shape[self.axis]

    @property
    def num_blocks_along_axis(self) -> int:
        return self.padded_length // self.block_size


def _normalise_axis(axis: int, ndim: int) -> int:
    if not -ndim <= axis < ndim:
        raise ValueError(f"axis {axis} out of range for ndim {ndim}")
    return axis % ndim


def to_blocks(x: np.ndarray, block_size: int, axis: int = -1) -> tuple:
    """Reshape ``x`` into ``(..., num_blocks, block_size)`` blocks.

    The blocking axis is moved last and zero-padded up to a multiple of
    ``block_size``.  Returns ``(blocks, layout)`` where ``layout`` is the
    :class:`BlockLayout` needed by :func:`from_blocks`.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 0:
        x = x.reshape(1)
    axis = _normalise_axis(axis, x.ndim)
    moved = np.moveaxis(x, axis, -1)
    length = moved.shape[-1]
    padded_length = int(np.ceil(length / block_size)) * block_size
    if padded_length != length:
        pad_width = [(0, 0)] * (moved.ndim - 1) + [(0, padded_length - length)]
        moved = np.pad(moved, pad_width, mode="constant")
    blocks = moved.reshape(moved.shape[:-1] + (padded_length // block_size, block_size))
    layout = BlockLayout(
        original_shape=tuple(np.asarray(x).shape),
        axis=axis,
        block_size=block_size,
        padded_length=padded_length,
    )
    return blocks, layout


def from_blocks(blocks: np.ndarray, layout: BlockLayout) -> np.ndarray:
    """Inverse of :func:`to_blocks`: restore the original shape and axis order."""
    blocks = np.asarray(blocks)
    flat = blocks.reshape(blocks.shape[:-2] + (layout.padded_length,))
    flat = flat[..., : layout.axis_length]
    restored = np.moveaxis(flat, -1, layout.axis)
    return restored.reshape(layout.original_shape)
